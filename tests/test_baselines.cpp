#include <gtest/gtest.h>

#include <memory>

#include "baselines/ga_ml.hpp"
#include "baselines/genetic.hpp"
#include "baselines/random_agent.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using circuits::SpecVector;

namespace {
circuits::SizingProblem synth() {
  return test_support::make_synthetic_problem(3, 21);
}
}  // namespace

TEST(GeneticAlgorithm, SolvesEasyTarget) {
  const auto prob = synth();
  baselines::GaConfig config;
  config.max_evals = 3000;
  config.seed = 2;
  // Lenient target: many designs qualify.
  const auto r = baselines::run_ga(prob, {9.6, 5.4, 1.45}, config);
  EXPECT_TRUE(r.reached);
  EXPECT_GT(r.evals_to_reach, 0);
  EXPECT_LE(r.evals_to_reach, r.total_evals);
}

TEST(GeneticAlgorithm, SolvesTightTargetWithMoreEvals) {
  const auto prob = synth();
  baselines::GaConfig config;
  config.max_evals = 6000;
  config.seed = 3;
  const auto easy = baselines::run_ga(prob, {9.6, 5.4, 1.45}, config);
  const auto hard = baselines::run_ga(prob, {11.8, 4.35, 1.35}, config);
  ASSERT_TRUE(easy.reached);
  ASSERT_TRUE(hard.reached);
  EXPECT_GT(hard.evals_to_reach, easy.evals_to_reach);
}

TEST(GeneticAlgorithm, RespectsEvalBudget) {
  const auto prob = synth();
  baselines::GaConfig config;
  config.max_evals = 50;
  config.seed = 5;
  // Impossible target: must stop at the budget, not loop forever.
  const auto r = baselines::run_ga(prob, {1e9, -1e9, 0.0}, config);
  EXPECT_FALSE(r.reached);
  EXPECT_LE(r.total_evals, config.max_evals + config.population);
  EXPECT_FALSE(r.best_params.empty());
  EXPECT_LE(r.best_reward, 0.0);
}

TEST(GeneticAlgorithm, SeedReproducible) {
  const auto prob = synth();
  baselines::GaConfig config;
  config.max_evals = 2000;
  config.seed = 7;
  const auto a = baselines::run_ga(prob, {11.0, 4.5, 1.3}, config);
  const auto b = baselines::run_ga(prob, {11.0, 4.5, 1.3}, config);
  EXPECT_EQ(a.reached, b.reached);
  EXPECT_EQ(a.evals_to_reach, b.evals_to_reach);
  EXPECT_EQ(a.best_params, b.best_params);
}

TEST(GeneticAlgorithm, BestParamsAreValid) {
  const auto prob = synth();
  baselines::GaConfig config;
  config.max_evals = 500;
  const auto r = baselines::run_ga(prob, {11.0, 4.5, 1.3}, config);
  EXPECT_TRUE(prob.valid_params(r.best_params));
}

TEST(GeneticAlgorithm, SweepKeepsBestResult) {
  const auto prob = synth();
  baselines::GaConfig config;
  config.max_evals = 3000;
  config.seed = 9;
  const auto best = baselines::run_ga_best_of_sweep(prob, {11.3, 4.5, 1.32},
                                                    config, {10, 30, 60});
  EXPECT_TRUE(best.reached);
  // The sweep result can't be worse than a single fixed-population run
  // with the same budget and one of the swept sizes.
  baselines::GaConfig single = config;
  single.population = 30;
  single.seed = config.seed + 2000;
  const auto one = baselines::run_ga(prob, {11.3, 4.5, 1.32}, single);
  if (one.reached) {
    EXPECT_LE(best.evals_to_reach, one.evals_to_reach * 3);
  }
}

TEST(RandomAgent, EpisodeRespectsHorizon) {
  auto prob = std::make_shared<const circuits::SizingProblem>(synth());
  env::EnvConfig config;
  config.horizon = 12;
  env::SizingEnv sizing_env(prob, config);
  sizing_env.set_target({1e9, -1e9, 0.0});  // unreachable
  util::Rng rng(3);
  const auto r = baselines::run_random_episode(sizing_env, rng);
  EXPECT_FALSE(r.reached);
  EXPECT_EQ(r.steps, 12);
}

TEST(RandomAgent, CanReachLenientTarget) {
  auto prob = std::make_shared<const circuits::SizingProblem>(synth());
  env::EnvConfig config;
  env::SizingEnv sizing_env(prob, config);
  sizing_env.set_target({9.5, 5.5, 1.49});  // the centre qualifies
  util::Rng rng(4);
  const auto r = baselines::run_random_episode(sizing_env, rng);
  EXPECT_TRUE(r.reached);
  EXPECT_GE(r.steps, 1);
}

TEST(RandomAgent, RarelyReachesTightTargets) {
  auto prob = std::make_shared<const circuits::SizingProblem>(synth());
  env::EnvConfig config;
  config.horizon = 10;
  env::SizingEnv sizing_env(prob, config);
  util::Rng rng(5);
  int reached = 0;
  for (int i = 0; i < 50; ++i) {
    sizing_env.set_target({12.8, 4.05, 1.07});  // far corner
    reached += baselines::run_random_episode(sizing_env, rng).reached ? 1 : 0;
  }
  EXPECT_LT(reached, 10);  // the paper's "random agent ~ nothing" row
}

TEST(GaMl, SolvesSyntheticProblem) {
  const auto prob = synth();
  baselines::GaMlConfig config;
  config.ga.max_evals = 3000;
  config.ga.population = 20;
  config.seed = 6;
  const auto r = baselines::run_ga_ml(prob, {11.3, 4.5, 1.32}, config);
  EXPECT_TRUE(r.reached);
  EXPECT_LE(r.evals_to_reach, 3000);
}

TEST(GaMl, RespectsSimulationBudget) {
  const auto prob = synth();
  baselines::GaMlConfig config;
  config.ga.max_evals = 120;
  config.ga.population = 20;
  const auto r = baselines::run_ga_ml(prob, {1e9, -1e9, 0.0}, config);
  EXPECT_FALSE(r.reached);
  EXPECT_LE(r.total_evals, config.ga.max_evals + config.ga.population);
}

TEST(GaMl, SeedReproducible) {
  const auto prob = synth();
  baselines::GaMlConfig config;
  config.ga.max_evals = 1500;
  config.seed = 8;
  const auto a = baselines::run_ga_ml(prob, {11.0, 4.5, 1.3}, config);
  const auto b = baselines::run_ga_ml(prob, {11.0, 4.5, 1.3}, config);
  EXPECT_EQ(a.evals_to_reach, b.evals_to_reach);
}

TEST(GaMl, DiscriminatorEconomyUsesFewerSimsPerCandidate) {
  // With sim_fraction 0.25 and candidate_factor 6, each generation
  // simulates ~1.5x the population instead of 6x: verify the accounting by
  // bounding total evals for a fixed number of generations.
  const auto prob = synth();
  baselines::GaMlConfig config;
  config.ga.population = 20;
  config.ga.max_evals = 20 + 3 * 30;  // init + ~3 generations of 30 sims
  config.candidate_factor = 6;
  config.sim_fraction = 0.25;
  const auto r = baselines::run_ga_ml(prob, {1e9, -1e9, 0.0}, config);
  EXPECT_LE(r.total_evals, config.ga.max_evals + 30);
}

// ---- evaluation-backend equivalence ----------------------------------------
// The GA simulates whole generations through evaluate_batch(); a cached +
// thread-pooled backend must reproduce the plain serial backend's GaResult
// bit for bit at a fixed seed — the backend is allowed to change wall-clock
// and sim counts, never values or the search trajectory.

#include "eval/cached_backend.hpp"
#include "eval/thread_pool.hpp"
#include "eval/threaded_backend.hpp"

namespace {

circuits::SizingProblem synth_with_decorated_backend() {
  auto prob = test_support::make_synthetic_problem(3, 21);
  prob.backend = std::make_shared<eval::CachedBackend>(
      std::make_shared<eval::ThreadPoolBackend>(
          prob.backend, std::make_shared<eval::ThreadPool>(4)),
      8);
  return prob;
}

void expect_same_ga_result(const baselines::GaResult& a,
                           const baselines::GaResult& b) {
  EXPECT_EQ(a.reached, b.reached);
  EXPECT_EQ(a.evals_to_reach, b.evals_to_reach);
  EXPECT_EQ(a.total_evals, b.total_evals);
  EXPECT_DOUBLE_EQ(a.best_reward, b.best_reward);
  EXPECT_EQ(a.best_params, b.best_params);
  EXPECT_EQ(a.best_specs, b.best_specs);
}

}  // namespace

TEST(GeneticAlgorithm, BatchedBackendMatchesSerialBackend) {
  const auto serial_prob = synth();
  const auto batched_prob = synth_with_decorated_backend();
  const SpecVector target = {10.4, 4.8, 1.4};
  for (std::uint64_t seed : {2ULL, 5ULL, 9ULL}) {
    baselines::GaConfig config;
    config.max_evals = 2500;
    config.seed = seed;
    expect_same_ga_result(baselines::run_ga(serial_prob, target, config),
                          baselines::run_ga(batched_prob, target, config));
  }
}

TEST(GaMl, BatchedBackendMatchesSerialBackend) {
  const auto serial_prob = synth();
  const auto batched_prob = synth_with_decorated_backend();
  const SpecVector target = {10.4, 4.8, 1.4};
  baselines::GaMlConfig config;
  config.ga.max_evals = 1200;
  config.ga.seed = 4;
  config.seed = 4;
  expect_same_ga_result(baselines::run_ga_ml(serial_prob, target, config),
                        baselines::run_ga_ml(batched_prob, target, config));
}

TEST(GeneticAlgorithm, BudgetCapRespectedWithBatching) {
  const auto prob = synth_with_decorated_backend();
  baselines::GaConfig config;
  config.max_evals = 97;  // deliberately not a multiple of the population
  config.seed = 8;
  // An unreachable target forces the run to the eval cap.
  const auto r = baselines::run_ga(prob, {14.0, 4.0, 1.0}, config);
  EXPECT_FALSE(r.reached);
  EXPECT_EQ(r.total_evals, 97);
}
