#include <gtest/gtest.h>

#include "pex/parasitics.hpp"
#include "pex/pvt.hpp"

using namespace autockt::pex;
using autockt::spice::TechCard;

TEST(Parasitics, DeterministicForSameNet) {
  ParasiticModel pm;
  const auto key = ParasiticModel::net_key("topo", "out");
  EXPECT_DOUBLE_EQ(pm.net_cap(1e-5, key), pm.net_cap(1e-5, key));
}

TEST(Parasitics, DifferentNetsDiffer) {
  ParasiticModel pm;
  const auto k1 = ParasiticModel::net_key("topo", "out");
  const auto k2 = ParasiticModel::net_key("topo", "in");
  EXPECT_NE(pm.net_cap(1e-5, k1), pm.net_cap(1e-5, k2));
}

TEST(Parasitics, SaltChangesLayout) {
  ParasiticModel a, b;
  b.salt = a.salt + 1;
  const auto key = ParasiticModel::net_key("topo", "out");
  EXPECT_NE(a.net_cap(1e-5, key), b.net_cap(1e-5, key));
}

TEST(Parasitics, GrowsWithAttachedWidth) {
  ParasiticModel pm;
  pm.variation = 0.0;  // isolate the deterministic part
  const auto key = ParasiticModel::net_key("t", "n");
  EXPECT_GT(pm.net_cap(2e-5, key), pm.net_cap(1e-5, key));
  EXPECT_NEAR(pm.net_cap(0.0, key), pm.cap_fixed, 1e-20);
}

TEST(Parasitics, VariationStaysWithinBounds) {
  ParasiticModel pm;
  pm.variation = 0.25;
  for (int i = 0; i < 200; ++i) {
    const auto key = ParasiticModel::net_key("t", "net" + std::to_string(i));
    const double base = pm.cap_fixed + pm.cap_per_width * 1e-5;
    const double c = pm.net_cap(1e-5, key);
    EXPECT_GE(c, base * (1.0 - pm.variation) - 1e-21);
    EXPECT_LE(c, base * (1.0 + pm.variation) + 1e-21);
  }
}

TEST(Parasitics, NetKeyIsStable) {
  EXPECT_EQ(ParasiticModel::net_key("a", "b"),
            ParasiticModel::net_key("a", "b"));
  EXPECT_NE(ParasiticModel::net_key("a", "b"),
            ParasiticModel::net_key("b", "a"));
}

TEST(Pvt, StandardCornersShape) {
  const auto corners = standard_corners();
  ASSERT_EQ(corners.size(), 3u);
  EXPECT_EQ(corners[0].name, "tt");
  // One slow-hot-lowV and one fast-cold-highV corner.
  EXPECT_LT(corners[1].vdd_scale, 1.0);
  EXPECT_GT(corners[1].temp_k, 300.0);
  EXPECT_GT(corners[2].vdd_scale, 1.0);
  EXPECT_LT(corners[2].temp_k, 300.0);
}

TEST(Pvt, TtCornerIsIdentityish) {
  const auto card = TechCard::finfet16();
  const auto tt = apply_corner(card, standard_corners()[0]);
  EXPECT_DOUBLE_EQ(tt.vdd, card.vdd);
  EXPECT_DOUBLE_EQ(tt.vth_n, card.vth_n);
  EXPECT_DOUBLE_EQ(tt.u_cox_n, card.u_cox_n);
}

TEST(Pvt, SlowCornerDegradesDevices) {
  const auto card = TechCard::finfet16();
  const auto ss = apply_corner(card, standard_corners()[1]);
  EXPECT_LT(ss.vdd, card.vdd);
  // vth up (shift) minus small temp drift
  EXPECT_GT(ss.vth_n, card.vth_n - 1e-9);
  EXPECT_LT(ss.u_cox_n, card.u_cox_n);     // mobility down (process + hot)
  EXPECT_GT(ss.temp_k, card.temp_k);
}

TEST(Pvt, FastCornerImprovesDrive) {
  const auto card = TechCard::finfet16();
  const auto ff = apply_corner(card, standard_corners()[2]);
  EXPECT_GT(ff.vdd, card.vdd);
  EXPECT_GT(ff.u_cox_n, card.u_cox_n);
}

TEST(Pvt, CornerNameIsAnnotated) {
  const auto card = TechCard::finfet16();
  const auto ss = apply_corner(card, standard_corners()[1]);
  EXPECT_NE(ss.name.find("ss_hot_lv"), std::string::npos);
}
