#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "rl/ppo.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using circuits::SpecVector;

namespace {

std::shared_ptr<const circuits::SizingProblem> synth() {
  return std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(3, 21));
}

rl::PpoConfig small_config() {
  rl::PpoConfig config;
  config.max_iterations = 40;
  config.steps_per_iteration = 800;
  config.minibatch = 128;
  config.epochs = 6;
  config.num_workers = 2;
  config.seed = 3;
  return config;
}

}  // namespace

TEST(PpoAgent, ActionShapesAndBounds) {
  rl::PpoConfig config;
  rl::PpoAgent agent(9, 3, config);
  util::Rng rng(1);
  const std::vector<double> obs(9, 0.1);
  const auto a = agent.act_sample(obs, rng);
  ASSERT_EQ(a.size(), 3u);
  for (int v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, env::SizingEnv::kActionsPerParam);
  }
  const auto g = agent.act_greedy(obs);
  ASSERT_EQ(g.size(), 3u);
}

TEST(PpoAgent, GreedyIsDeterministic) {
  rl::PpoConfig config;
  rl::PpoAgent agent(9, 3, config);
  const std::vector<double> obs(9, -0.2);
  EXPECT_EQ(agent.act_greedy(obs), agent.act_greedy(obs));
}

TEST(PpoAgent, LogProbIsConsistentWithSampling) {
  rl::PpoConfig config;
  rl::PpoAgent agent(9, 3, config);
  util::Rng rng(2);
  const std::vector<double> obs(9, 0.0);
  double logp = 0.0;
  agent.act_sample(obs, rng, &logp);
  EXPECT_LE(logp, 0.0);                       // probability <= 1
  EXPECT_GT(logp, 3.0 * std::log(1e-12));     // not degenerate
}

TEST(PpoAgent, TrainRejectsEmptyTargets) {
  rl::PpoConfig config;
  rl::PpoAgent agent(9, 3, config);
  auto prob = synth();
  EXPECT_THROW(agent.train([prob] { return env::SizingEnv(prob, {}); },
                           std::vector<SpecVector>{}),
               std::invalid_argument);
}

TEST(PpoAgent, LearnsSyntheticSizingProblem) {
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 15;
  env::SizingEnv probe(prob, env_config);

  rl::PpoConfig config = small_config();
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);

  util::Rng rng(11);
  const auto targets = env::sample_targets(*prob, 20, rng);
  const auto history = agent.train(
      [prob, env_config] { return env::SizingEnv(prob, env_config); },
      targets);

  ASSERT_FALSE(history.iterations.empty());
  const auto& first = history.iterations.front();
  const auto& last = history.iterations.back();
  EXPECT_GT(last.mean_episode_reward, first.mean_episode_reward);
  EXPECT_GT(last.goal_rate, 0.7);
  EXPECT_GT(history.total_env_steps, 0);
}

TEST(PpoAgent, TrainingIsSeedReproducible) {
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;

  auto run = [&](std::uint64_t seed) {
    env::SizingEnv probe(prob, env_config);
    rl::PpoConfig config = small_config();
    config.max_iterations = 3;
    config.seed = seed;
    rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
    util::Rng rng(7);
    const auto targets = env::sample_targets(*prob, 10, rng);
    const auto history = agent.train(
        [prob, env_config] { return env::SizingEnv(prob, env_config); },
        targets);
    return history.iterations.back().mean_episode_reward;
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
  // And a different seed gives a genuinely different trajectory.
  EXPECT_NE(run(5), run(6));
}

TEST(PpoAgent, EarlyStopOnGoalRate) {
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 15;
  env::SizingEnv probe(prob, env_config);
  rl::PpoConfig config = small_config();
  config.max_iterations = 60;
  config.target_goal_rate = 0.75;
  config.target_mean_reward = 1e9;  // force the goal-rate criterion
  config.stop_patience = 1;
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
  util::Rng rng(13);
  const auto targets = env::sample_targets(*prob, 10, rng);
  const auto history = agent.train(
      [prob, env_config] { return env::SizingEnv(prob, env_config); },
      targets);
  EXPECT_TRUE(history.converged);
  EXPECT_LT(static_cast<int>(history.iterations.size()),
            config.max_iterations);
}

TEST(PpoAgent, OnIterationCallbackFires) {
  auto prob = synth();
  env::EnvConfig env_config;
  env::SizingEnv probe(prob, env_config);
  rl::PpoConfig config = small_config();
  config.max_iterations = 2;
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
  util::Rng rng(17);
  const auto targets = env::sample_targets(*prob, 5, rng);
  int calls = 0;
  agent.train([prob, env_config] { return env::SizingEnv(prob, env_config); },
              targets,
              [&](const rl::IterationStats& s) {
                EXPECT_EQ(s.iteration, calls);
                ++calls;
              });
  EXPECT_EQ(calls, 2);
}

TEST(PpoAgent, SaveLoadRoundTrip) {
  rl::PpoConfig config;
  rl::PpoAgent agent(9, 3, config);
  std::stringstream ss;
  agent.save(ss);
  const auto loaded = rl::PpoAgent::load(ss);
  EXPECT_EQ(loaded.obs_size(), 9);
  EXPECT_EQ(loaded.num_params(), 3);
  const std::vector<double> obs(9, 0.3);
  EXPECT_EQ(agent.act_greedy(obs), loaded.act_greedy(obs));
  EXPECT_DOUBLE_EQ(agent.value(obs), loaded.value(obs));
}

TEST(PpoAgent, LoadRejectsGarbage) {
  std::stringstream ss("bogus");
  EXPECT_THROW(rl::PpoAgent::load(ss), std::runtime_error);
}

TEST(PpoConfig, ValidateRejectsNonpositiveRolloutShape) {
  rl::PpoConfig config;
  config.num_workers = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.num_workers = -2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = rl::PpoConfig{};
  config.envs_per_worker = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = rl::PpoConfig{};
  config.steps_per_iteration = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = rl::PpoConfig{};
  config.minibatch = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = rl::PpoConfig{};
  config.epochs = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(rl::PpoConfig{}.validate());
}

TEST(PpoAgent, TrainRejectsInvalidRolloutShape) {
  auto prob = synth();
  rl::PpoConfig config = small_config();
  config.num_workers = 0;
  rl::PpoAgent agent(9, 3, config);
  util::Rng rng(23);
  const auto targets = env::sample_targets(*prob, 4, rng);
  EXPECT_THROW(
      agent.train([prob] { return env::SizingEnv(prob, {}); }, targets),
      std::invalid_argument);
}

TEST(PpoAgent, TrajectoriesInvariantUnderWorkerLaneSplit) {
  // The rollout-engine contract: for a fixed seed, training depends only on
  // num_workers * envs_per_worker (lane seeds are drawn in global lane
  // order and each lane's stream is private), so any split of 4 lanes
  // produces identical iterations.
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;

  auto run = [&](int workers, int envs_per_worker) {
    env::SizingEnv probe(prob, env_config);
    rl::PpoConfig config = small_config();
    config.max_iterations = 3;
    config.num_workers = workers;
    config.envs_per_worker = envs_per_worker;
    config.seed = 31;
    rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
    util::Rng rng(7);
    const auto targets = env::sample_targets(*prob, 10, rng);
    return agent.train(
        [prob, env_config] { return env::SizingEnv(prob, env_config); },
        targets);
  };

  const auto h14 = run(1, 4);
  const auto h41 = run(4, 1);
  const auto h22 = run(2, 2);
  ASSERT_EQ(h14.iterations.size(), h41.iterations.size());
  ASSERT_EQ(h14.iterations.size(), h22.iterations.size());
  for (std::size_t i = 0; i < h14.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(h14.iterations[i].mean_episode_reward,
                     h41.iterations[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(h14.iterations[i].mean_episode_reward,
                     h22.iterations[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(h14.iterations[i].policy_loss,
                     h41.iterations[i].policy_loss);
    EXPECT_DOUBLE_EQ(h14.iterations[i].value_loss,
                     h22.iterations[i].value_loss);
    EXPECT_EQ(h14.iterations[i].cumulative_env_steps,
              h41.iterations[i].cumulative_env_steps);
  }
}

// ---- spec-scenario training (TrainOptions: sampler + holdout suite) --------

TEST(PpoAgent, SamplerApiMatchesLegacyTargetListBitwise) {
  // train(factory, targets) and train(factory, {SuiteSampler(targets)})
  // must collect identical trajectories: the suite sampler consumes the
  // lane RNG exactly like the historical inline pick.
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;
  util::Rng rng(7);
  const auto targets = env::sample_targets(*prob, 10, rng);

  auto run = [&](bool use_options) {
    env::SizingEnv probe(prob, env_config);
    rl::PpoConfig config = small_config();
    config.max_iterations = 3;
    rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
    auto factory = [prob, env_config] {
      return env::SizingEnv(prob, env_config);
    };
    if (!use_options) return agent.train(factory, targets);
    rl::TrainOptions options;
    options.sampler = std::make_shared<spec::SuiteSampler>(targets);
    return agent.train(factory, options);
  };
  const auto legacy = run(false);
  const auto sampled = run(true);
  ASSERT_EQ(legacy.iterations.size(), sampled.iterations.size());
  for (std::size_t i = 0; i < legacy.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy.iterations[i].mean_episode_reward,
                     sampled.iterations[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(legacy.iterations[i].policy_loss,
                     sampled.iterations[i].policy_loss);
  }
}

TEST(PpoAgent, HoldoutProbeRunsAtIntervalAndOnFinalIteration) {
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;
  env::SizingEnv probe(prob, env_config);
  rl::PpoConfig config = small_config();
  config.max_iterations = 5;
  config.target_mean_reward = 1e9;  // no early stop
  config.target_goal_rate = 2.0;
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);

  const spec::SpecSpace space(*prob);
  auto suites = spec::make_train_holdout_suites(space, 12, 6, 0xfeed, "t");
  rl::TrainOptions options;
  options.sampler =
      std::make_shared<spec::SuiteSampler>(suites.train.targets());
  options.holdout = suites.holdout;
  options.holdout_interval = 2;

  const auto history = agent.train(
      [prob, env_config] { return env::SizingEnv(prob, env_config); },
      options);
  ASSERT_EQ(history.iterations.size(), 5u);
  // Interval pattern: iterations 0, 2, 4 probe; 4 is also the final one.
  const std::vector<bool> expect_probe{true, false, true, false, true};
  for (std::size_t i = 0; i < history.iterations.size(); ++i) {
    EXPECT_EQ(history.iterations[i].holdout_evaluated, expect_probe[i])
        << "iteration " << i;
    if (expect_probe[i]) {
      EXPECT_GE(history.iterations[i].holdout_goal_rate, 0.0);
      EXPECT_LE(history.iterations[i].holdout_goal_rate, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(history.iterations[i].holdout_goal_rate, -1.0);
    }
  }
  EXPECT_DOUBLE_EQ(history.final_holdout_goal_rate,
                   history.iterations.back().holdout_goal_rate);
}

TEST(PpoAgent, HoldoutProbeDoesNotPerturbTraining) {
  // The probe interleaves greedy holdout rollouts with collection on the
  // shared backend; trajectories (and thus learned stats) must not move.
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;
  util::Rng rng(7);
  const auto targets = env::sample_targets(*prob, 10, rng);

  auto run = [&](std::size_t holdout_count) {
    env::SizingEnv probe(prob, env_config);
    rl::PpoConfig config = small_config();
    config.max_iterations = 3;
    rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
    rl::TrainOptions options;
    options.sampler = std::make_shared<spec::SuiteSampler>(targets);
    if (holdout_count > 0) {
      const spec::SpecSpace space(*prob);
      spec::StratifiedSampler stratified(
          space, static_cast<int>(holdout_count));
      options.holdout = spec::SpecSuite::generate(
          space, stratified, holdout_count, 0xcafe, "probe");
      options.holdout_interval = 1;
    }
    return agent.train(
        [prob, env_config] { return env::SizingEnv(prob, env_config); },
        options);
  };
  const auto without = run(0);
  const auto with = run(8);
  ASSERT_EQ(without.iterations.size(), with.iterations.size());
  for (std::size_t i = 0; i < without.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(without.iterations[i].mean_episode_reward,
                     with.iterations[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(without.iterations[i].value_loss,
                     with.iterations[i].value_loss);
  }
}

TEST(PpoAgent, CurriculumTrainingIsSeedReproducible) {
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;
  auto run = [&] {
    env::SizingEnv probe(prob, env_config);
    rl::PpoConfig config = small_config();
    config.max_iterations = 3;
    rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
    rl::TrainOptions options;
    options.sampler = std::make_shared<spec::CurriculumSampler>(
        spec::SpecSpace(*prob));
    return agent.train(
        [prob, env_config] { return env::SizingEnv(prob, env_config); },
        options);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iterations[i].mean_episode_reward,
                     b.iterations[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(a.iterations[i].policy_loss, b.iterations[i].policy_loss);
  }
}

TEST(PpoAgent, CurriculumLearnsFromOutcomes) {
  // After training on the synthetic problem, the curriculum must have
  // digested one outcome per collected episode.
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;
  env::SizingEnv probe(prob, env_config);
  rl::PpoConfig config = small_config();
  config.max_iterations = 2;
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
  auto curriculum = std::make_shared<spec::CurriculumSampler>(
      spec::SpecSpace(*prob));
  rl::TrainOptions options;
  options.sampler = curriculum;
  const auto history = agent.train(
      [prob, env_config] { return env::SizingEnv(prob, env_config); },
      options);
  EXPECT_GT(curriculum->outcomes_recorded(), 0);
  EXPECT_GT(history.total_env_steps, 0);
}

TEST(PpoAgent, RejectsSequentialSamplerWithMultipleWorkers) {
  auto prob = synth();
  rl::PpoConfig config = small_config();
  ASSERT_GT(config.num_workers, 1);
  rl::PpoAgent agent(9, 3, config);
  rl::TrainOptions options;
  options.sampler =
      std::make_shared<spec::StratifiedSampler>(spec::SpecSpace(*prob), 8);
  EXPECT_THROW(
      agent.train([prob] { return env::SizingEnv(prob, {}); }, options),
      std::invalid_argument);
}

TEST(PpoAgent, RejectsMissingSampler) {
  auto prob = synth();
  rl::PpoAgent agent(9, 3, small_config());
  EXPECT_THROW(
      agent.train([prob] { return env::SizingEnv(prob, {}); },
                  rl::TrainOptions{}),
      std::invalid_argument);
}

TEST(PpoAgent, EvaluateGoalRateIsLaneCountInvariant) {
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 10;
  env::SizingEnv probe(prob, env_config);
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), small_config());
  util::Rng rng(3);
  const auto targets = env::sample_targets(*prob, 11, rng);
  auto factory = [prob, env_config] {
    return env::SizingEnv(prob, env_config);
  };
  const double r1 = agent.evaluate_goal_rate(factory, targets, 1);
  const double r4 = agent.evaluate_goal_rate(factory, targets, 4);
  const double r16 = agent.evaluate_goal_rate(factory, targets, 16);
  EXPECT_DOUBLE_EQ(r1, r4);
  EXPECT_DOUBLE_EQ(r1, r16);
}

TEST(PpoAgent, SingleWorkerMatchesConfig) {
  // num_workers = 1 must work (serial path) and be reproducible.
  auto prob = synth();
  env::EnvConfig env_config;
  env_config.horizon = 8;
  env::SizingEnv probe(prob, env_config);
  rl::PpoConfig config = small_config();
  config.num_workers = 1;
  config.max_iterations = 2;
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), config);
  util::Rng rng(19);
  const auto targets = env::sample_targets(*prob, 5, rng);
  const auto history = agent.train(
      [prob, env_config] { return env::SizingEnv(prob, env_config); },
      targets);
  EXPECT_EQ(history.iterations.size(), 2u);
  EXPECT_GE(history.iterations[0].cumulative_env_steps,
            config.steps_per_iteration);
}
