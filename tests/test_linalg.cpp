#include <gtest/gtest.h>

#include <complex>
#include <type_traits>
#include <utility>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"
#include "util/rng.hpp"

using namespace autockt::linalg;
using autockt::util::Rng;

TEST(Matrix, InitializerListAndIndexing) {
  RealMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, TransposedSwapsIndices) {
  RealMatrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MulMatchesHandComputation) {
  RealMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = m.mul({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  RealMatrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto x = solve(a, {3.0, 5.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  RealMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuFactorization<double> lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_TRUE(solve(a, {1.0, 1.0}).empty());
}

TEST(Lu, RejectsNonSquare) {
  RealMatrix a(2, 3);
  LuFactorization<double> lu(a);
  EXPECT_FALSE(lu.ok());
}

TEST(Lu, DeterminantWithPivoting) {
  // Requires a row swap; det = -2.
  RealMatrix a{{0.0, 1.0}, {2.0, 0.0}};
  LuFactorization<double> lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.determinant(), -2.0, 1e-12);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  ComplexMatrix a{{C(1, 1), C(0, 0)}, {C(0, 0), C(0, 2)}};
  const auto x = solve(a, std::vector<C>{C(2, 0), C(4, 0)});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(std::abs(x[0] - C(1, -1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - C(0, -2)), 0.0, 1e-12);
}

// Property sweep: random diagonally dominant systems of several sizes must
// solve to tight residuals, for both plain and transposed solves.
class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, RandomSystemsSolveWithTightResidual) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 20; ++rep) {
    RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += n;  // dominance => well-conditioned
      b[static_cast<std::size_t>(r)] = rng.uniform(-2.0, 2.0);
    }
    LuFactorization<double> lu(a);
    ASSERT_TRUE(lu.ok());
    EXPECT_LT(residual_norm(a, lu.solve(b), b), 1e-9);
  }
}

TEST_P(LuProperty, TransposedSolveMatchesExplicitTranspose) {
  const int n = GetParam();
  Rng rng(2000 + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 10; ++rep) {
    RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += n;
      b[static_cast<std::size_t>(r)] = rng.uniform(-2.0, 2.0);
    }
    LuFactorization<double> lu(a);
    ASSERT_TRUE(lu.ok());
    const auto xt = lu.solve_transposed(b);
    EXPECT_LT(residual_norm(a.transposed(), xt, b), 1e-9);
  }
}

TEST_P(LuProperty, ComplexRandomSystems) {
  using C = std::complex<double>;
  const int n = GetParam();
  Rng rng(3000 + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 10; ++rep) {
    ComplexMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<C> b(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        a(r, c) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
      }
      a(r, r) += C(2.0 * n, 0.0);
      b[static_cast<std::size_t>(r)] =
          C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    LuFactorization<C> lu(a);
    ASSERT_TRUE(lu.ok());
    EXPECT_LT(residual_norm(a, lu.solve(b), b), 1e-9);
    EXPECT_LT(residual_norm(a.transposed(), lu.solve_transposed(b), b), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- scale-aware singularity (dense LU) -------------------------------------

TEST(Lu, UniformlyTinyMatrixIsNotSingular) {
  // Every entry ~1e-250: an absolute pivot epsilon would misclassify this
  // perfectly well-conditioned system; the scale-aware check must not.
  RealMatrix a{{2e-250, 1e-250}, {1e-250, 3e-250}};
  LuFactorization<double> lu(a);
  ASSERT_TRUE(lu.ok());
  const auto x = lu.solve({3e-250, 5e-250});
  EXPECT_NEAR(x[0], 0.8, 1e-9);
  EXPECT_NEAR(x[1], 1.4, 1e-9);
}

TEST(Lu, ScaledSingularMatrixIsDetected) {
  // A rank-1 matrix scaled by 1e-160: elimination cancels column 1 down to
  // roundoff (~1e-176), far above any absolute epsilon but far below the
  // column's scale — only a relative check catches it.
  const double s = 1e-160;
  RealMatrix a{{1.0 * s, 2.0 * s}, {2.0 * s, 4.0 * s}};
  LuFactorization<double> lu(a);
  EXPECT_FALSE(lu.ok());
}

TEST(Lu, ZeroColumnIsSingular) {
  RealMatrix a{{1.0, 0.0}, {2.0, 0.0}};
  LuFactorization<double> lu(a);
  EXPECT_FALSE(lu.ok());
}

// ---- sparse pattern ---------------------------------------------------------

TEST(SparsePattern, TripletAssemblyAndSlotLookup) {
  PatternBuilder b(3);
  b.add(0, 0);
  b.add(2, 1);
  b.add(0, 0);  // duplicate merges
  b.add(1, 2);
  b.add(2, 2, /*weak=*/true);
  SparsePattern p(std::move(b));
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.nnz(), 4u);
  EXPECT_GE(p.slot(0, 0), 0);
  EXPECT_GE(p.slot(2, 1), 0);
  EXPECT_GE(p.slot(1, 2), 0);
  EXPECT_GE(p.slot(2, 2), 0);
  EXPECT_EQ(p.slot(1, 1), -1);  // structurally zero
  // Weak flags survive assembly; strong+weak duplicates merge to strong.
  EXPECT_TRUE(p.weak()[static_cast<std::size_t>(p.slot(2, 2))]);
  EXPECT_FALSE(p.weak()[static_cast<std::size_t>(p.slot(0, 0))]);
}

TEST(SparsePattern, WeakMergesToStrongWhenAnyDeclarationIsStrong) {
  PatternBuilder b(2);
  b.add(0, 0, /*weak=*/true);
  b.add(0, 0, /*weak=*/false);
  b.add(1, 1, true);
  b.add(1, 1, true);
  SparsePattern p(std::move(b));
  EXPECT_FALSE(p.weak()[static_cast<std::size_t>(p.slot(0, 0))]);
  EXPECT_TRUE(p.weak()[static_cast<std::size_t>(p.slot(1, 1))]);
}

// ---- sparse LU: symbolic/numeric split --------------------------------------

namespace {

/// Random sparse system: ~density nonzeros per row plus a dominant diagonal.
/// Returns the pattern and a value-filler usable repeatedly (refactor tests).
struct SparseSystem {
  SparsePattern pattern;
  std::vector<std::pair<int, int>> coords;  // by slot
};

SparseSystem make_sparse_system(int n, double density, Rng& rng) {
  PatternBuilder b(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    b.add(static_cast<std::size_t>(r), static_cast<std::size_t>(r));
    for (int c = 0; c < n; ++c) {
      if (c != r && rng.uniform(0.0, 1.0) < density) {
        b.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      }
    }
  }
  SparseSystem sys{SparsePattern(std::move(b)), {}};
  sys.coords.resize(sys.pattern.nnz());
  for (std::size_t s = 0; s < sys.pattern.nnz(); ++s) {
    sys.coords[s] = {sys.pattern.row_of_slot(s), sys.pattern.col_of_slot(s)};
  }
  return sys;
}

template <typename T>
std::vector<T> random_values(const SparseSystem& sys, int n, Rng& rng) {
  std::vector<T> vals(sys.pattern.nnz());
  for (std::size_t s = 0; s < sys.pattern.nnz(); ++s) {
    const auto [r, c] = sys.coords[s];
    double v = rng.uniform(-1.0, 1.0);
    if (r == c) v += static_cast<double>(n);  // dominance
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      vals[s] = {v, rng.uniform(-1.0, 1.0)};
    } else {
      vals[s] = v;
    }
  }
  return vals;
}

template <typename T>
Matrix<T> to_dense(const SparseSystem& sys, const std::vector<T>& vals,
                   int n) {
  Matrix<T> a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t s = 0; s < vals.size(); ++s) {
    const auto [r, c] = sys.coords[s];
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += vals[s];
  }
  return a;
}

}  // namespace

class SparseLuProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseLuProperty, RefactorAndSolveMatchDenseReference) {
  const int n = GetParam();
  Rng rng(4000 + static_cast<std::uint64_t>(n));
  SparseSystem sys = make_sparse_system(n, 0.25, rng);
  SparseLuSymbolic symbolic(sys.pattern, sys.pattern.weak());
  ASSERT_TRUE(symbolic.ok());
  SparseLuNumeric<double> lu(symbolic);

  // The same symbolic analysis serves many value sets: the refactor path.
  for (int rep = 0; rep < 8; ++rep) {
    const auto vals = random_values<double>(sys, n, rng);
    ASSERT_TRUE(lu.refactor(vals.data()));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform(-2.0, 2.0);
    std::vector<double> x(static_cast<std::size_t>(n));
    lu.solve(b.data(), x.data());
    const auto dense = to_dense<double>(sys, vals, n);
    // The pivot order is purely structural (no numerical pivoting), so
    // element growth is a little above the partial-pivot dense LU; 1e-7 on
    // these O(n)-normed systems still catches any slot/program bug cold.
    EXPECT_LT(residual_norm(dense, x, b), 1e-7);

    lu.solve_transposed(b.data(), x.data());
    EXPECT_LT(residual_norm(dense.transposed(), x, b), 1e-7);
  }
}

TEST_P(SparseLuProperty, ComplexRefactorAndSolve) {
  using C = std::complex<double>;
  const int n = GetParam();
  Rng rng(5000 + static_cast<std::uint64_t>(n));
  SparseSystem sys = make_sparse_system(n, 0.3, rng);
  SparseLuSymbolic symbolic(sys.pattern, sys.pattern.weak());
  ASSERT_TRUE(symbolic.ok());
  SparseLuNumeric<C> lu(symbolic);
  for (int rep = 0; rep < 5; ++rep) {
    const auto vals = random_values<C>(sys, n, rng);
    ASSERT_TRUE(lu.refactor(vals.data()));
    std::vector<C> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    std::vector<C> x(static_cast<std::size_t>(n));
    lu.solve(b.data(), x.data());
    const auto dense = to_dense<C>(sys, vals, n);
    EXPECT_LT(residual_norm(dense, x, b), 1e-7);
    lu.solve_transposed(b.data(), x.data());
    EXPECT_LT(residual_norm(dense.transposed(), x, b), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(SparseLu, SingularValuesFailTheScaleAwarePivotCheck) {
  // Structurally fine, numerically rank-1: refactor must refuse (the
  // workspace then falls back to the dense kernel, which also refuses).
  PatternBuilder b(2);
  b.add(0, 0);
  b.add(0, 1);
  b.add(1, 0);
  b.add(1, 1);
  SparsePattern p(std::move(b));
  SparseLuSymbolic symbolic(p, p.weak());
  ASSERT_TRUE(symbolic.ok());
  SparseLuNumeric<double> lu(symbolic);
  std::vector<double> vals(4, 0.0);
  vals[static_cast<std::size_t>(p.slot(0, 0))] = 1.0;
  vals[static_cast<std::size_t>(p.slot(0, 1))] = 2.0;
  vals[static_cast<std::size_t>(p.slot(1, 0))] = 2.0;
  vals[static_cast<std::size_t>(p.slot(1, 1))] = 4.0;
  EXPECT_FALSE(lu.refactor(vals.data()));
}

TEST(SparseLu, MnaStyleZeroDiagonalPivotsViaPermutation) {
  // Voltage-source-like 2x2 block: zero diagonal on the branch row, +-1
  // couplings — Markowitz ordering must pivot off-diagonal.
  //   [ g  1 ] [v]   [0]
  //   [ 1  0 ] [i] = [V]
  PatternBuilder b(2);
  b.add(0, 0);
  b.add(0, 1);
  b.add(1, 0);
  SparsePattern p(std::move(b));
  SparseLuSymbolic symbolic(p, p.weak());
  ASSERT_TRUE(symbolic.ok());
  SparseLuNumeric<double> lu(symbolic);
  std::vector<double> vals(3, 0.0);
  vals[static_cast<std::size_t>(p.slot(0, 0))] = 1e-3;
  vals[static_cast<std::size_t>(p.slot(0, 1))] = 1.0;
  vals[static_cast<std::size_t>(p.slot(1, 0))] = 1.0;
  ASSERT_TRUE(lu.refactor(vals.data()));
  std::vector<double> rhs = {0.0, 5.0};
  std::vector<double> x(2);
  lu.solve(rhs.data(), x.data());
  EXPECT_NEAR(x[0], 5.0, 1e-12);        // v = V
  EXPECT_NEAR(x[1], -5e-3, 1e-15);      // i = -g*V
}
