#include <gtest/gtest.h>

#include <complex>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

using namespace autockt::linalg;
using autockt::util::Rng;

TEST(Matrix, InitializerListAndIndexing) {
  RealMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, TransposedSwapsIndices) {
  RealMatrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MulMatchesHandComputation) {
  RealMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto y = m.mul({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  RealMatrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto x = solve(a, {3.0, 5.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  RealMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuFactorization<double> lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_TRUE(solve(a, {1.0, 1.0}).empty());
}

TEST(Lu, RejectsNonSquare) {
  RealMatrix a(2, 3);
  LuFactorization<double> lu(a);
  EXPECT_FALSE(lu.ok());
}

TEST(Lu, DeterminantWithPivoting) {
  // Requires a row swap; det = -2.
  RealMatrix a{{0.0, 1.0}, {2.0, 0.0}};
  LuFactorization<double> lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.determinant(), -2.0, 1e-12);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  ComplexMatrix a{{C(1, 1), C(0, 0)}, {C(0, 0), C(0, 2)}};
  const auto x = solve(a, std::vector<C>{C(2, 0), C(4, 0)});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(std::abs(x[0] - C(1, -1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - C(0, -2)), 0.0, 1e-12);
}

// Property sweep: random diagonally dominant systems of several sizes must
// solve to tight residuals, for both plain and transposed solves.
class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, RandomSystemsSolveWithTightResidual) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 20; ++rep) {
    RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += n;  // dominance => well-conditioned
      b[static_cast<std::size_t>(r)] = rng.uniform(-2.0, 2.0);
    }
    LuFactorization<double> lu(a);
    ASSERT_TRUE(lu.ok());
    EXPECT_LT(residual_norm(a, lu.solve(b), b), 1e-9);
  }
}

TEST_P(LuProperty, TransposedSolveMatchesExplicitTranspose) {
  const int n = GetParam();
  Rng rng(2000 + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 10; ++rep) {
    RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += n;
      b[static_cast<std::size_t>(r)] = rng.uniform(-2.0, 2.0);
    }
    LuFactorization<double> lu(a);
    ASSERT_TRUE(lu.ok());
    const auto xt = lu.solve_transposed(b);
    EXPECT_LT(residual_norm(a.transposed(), xt, b), 1e-9);
  }
}

TEST_P(LuProperty, ComplexRandomSystems) {
  using C = std::complex<double>;
  const int n = GetParam();
  Rng rng(3000 + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 10; ++rep) {
    ComplexMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<C> b(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        a(r, c) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
      }
      a(r, r) += C(2.0 * n, 0.0);
      b[static_cast<std::size_t>(r)] =
          C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    LuFactorization<C> lu(a);
    ASSERT_TRUE(lu.ok());
    EXPECT_LT(residual_norm(a, lu.solve(b), b), 1e-9);
    EXPECT_LT(residual_norm(a.transposed(), lu.solve_transposed(b), b), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
