#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/expected.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autockt::util;

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BoundedZeroAndOne) {
  Rng rng(3);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double mean = 0.0, var = 0.0;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  for (double x : xs) mean += x;
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split(1);
  Rng a2(42);
  Rng child2 = a2.split(1);
  EXPECT_EQ(child.next(), child2.next());  // deterministic
  EXPECT_NE(child.next(), a.next());       // not the parent stream
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptyInputsAreSafe) {
  std::vector<double> none;
  EXPECT_EQ(mean(none), 0.0);
  EXPECT_EQ(stddev(none), 0.0);
  EXPECT_EQ(percentile(none, 50), 0.0);
  EXPECT_EQ(median(none), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(Stats, CorrelationSigns) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
}

TEST(Stats, CorrelationDegenerate) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(correlation(x, y), 0.0);
  EXPECT_EQ(correlation(x, {}), 0.0);
}

TEST(Stats, HistogramCountsAndClamping) {
  const auto h = make_histogram({-1.0, 0.1, 0.5, 0.9, 2.0}, 0.0, 1.0, 4);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts.front(), 2u);  // -1.0 clamped + 0.1
  EXPECT_EQ(h.counts.back(), 2u);   // 0.9 + 2.0 clamped
}

TEST(Stats, HistogramBinCenters) {
  const auto h = make_histogram({}, 0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 0.75);
}

TEST(Stats, EmaFirstValueAndSmoothing) {
  const auto smooth = ema({1.0, 2.0, 3.0}, 0.5);
  EXPECT_DOUBLE_EQ(smooth[0], 1.0);
  EXPECT_DOUBLE_EQ(smooth[1], 1.5);
  EXPECT_DOUBLE_EQ(smooth[2], 2.25);
}

// ---------------------------------------------------------------- Table / CSV

TEST(Table, AlignsColumnsAndPads) {
  Table t({"a", "long_header"});
  t.add_row({"xxxxx", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a     |"), std::string::npos);
  EXPECT_NE(s.find("| xxxxx | 1           |"), std::string::npos);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(Table::num(1063), "1063");
  EXPECT_EQ(Table::num(2.5e7, 3), "2.5e+07");
  EXPECT_EQ(Table::num(std::nan("")), "n/a");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Csv, RoundTripNumbersAndHeader) {
  CsvWriter csv({"x", "y"});
  csv.add_row(std::vector<double>{1.5, -2.0});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("x,y\n"), std::string::npos);
  EXPECT_NE(s.find("1.5,-2\n"), std::string::npos);
  EXPECT_EQ(csv.row_count(), 1u);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"name"});
  csv.add_row(std::vector<std::string>{"a,b \"quoted\""});
  EXPECT_NE(csv.to_string().find("\"a,b \"\"quoted\"\"\""), std::string::npos);
}

TEST(Csv, DoubleRowsRoundTripBitwise) {
  // SpecSuite's CSV contract: every double cell recovers the identical bits
  // through strtod. The old ostringstream-at-precision-10 formatting lost
  // the low digits (and depended on the global locale).
  const std::vector<double> values{0.1,
                                   1.0 / 3.0,
                                   6.62607015e-34,
                                   -1.2345678901234567e18,
                                   4.9406564584124654e-324,  // min denormal
                                   2.2e-10};
  CsvWriter csv({"a", "b", "c", "d", "e", "f"});
  csv.add_row(values);
  const std::string s = csv.to_string();

  // Parse the data row back and compare bitwise.
  const auto row_start = s.find('\n') + 1;
  std::string row = s.substr(row_start, s.find('\n', row_start) - row_start);
  std::size_t pos = 0;
  for (double expected : values) {
    const std::size_t comma = row.find(',', pos);
    const std::string cell = row.substr(pos, comma - pos);
    char* end = nullptr;
    const double parsed = std::strtod(cell.c_str(), &end);
    EXPECT_EQ(end, cell.c_str() + cell.size()) << cell;
    EXPECT_EQ(std::memcmp(&parsed, &expected, sizeof(double)), 0)
        << cell << " != " << expected;
    pos = comma == std::string::npos ? row.size() : comma + 1;
  }
  // Pin the %.17g shape (precision-10 would emit "0.1").
  EXPECT_NE(s.find("0.10000000000000001"), std::string::npos);
}

// ---------------------------------------------------------------- Fmt

namespace {
// Bit-level comparison; EXPECT_EQ on doubles would pass -0.0 == 0.0 and
// fail NaN == NaN, which is exactly backwards for a serialization contract.
::testing::AssertionResult SameBits(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << format_hex_bits(a) << " != " << format_hex_bits(b);
}
}  // namespace

TEST(Fmt, G17RoundTripsFiniteDoublesBitwise) {
  // The %.17g contract behind every text serialization path: CSVs, the
  // on-disk cache's human-readable fields. Denormals and -0.0 included.
  const double values[] = {0.0,
                           -0.0,
                           0.1,
                           1.0 / 3.0,
                           6.62607015e-34,
                           -1.2345678901234567e18,
                           std::numeric_limits<double>::denorm_min(),
                           -std::numeric_limits<double>::denorm_min(),
                           4.9406564584124654e-324,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::epsilon(),
                           2.2e-10};
  for (double v : values) {
    EXPECT_TRUE(SameBits(parse_g17(format_g17(v)), v)) << format_g17(v);
  }
  // -0.0 keeps its sign through the text route.
  EXPECT_TRUE(std::signbit(parse_g17(format_g17(-0.0))));
}

TEST(Fmt, BitCastsRoundTripEveryPattern) {
  // The u64 route must preserve patterns %.17g cannot: NaN payloads,
  // signalling bits, infinities.
  const std::uint64_t patterns[] = {
      0x0000000000000000ULL,  // +0.0
      0x8000000000000000ULL,  // -0.0
      0x0000000000000001ULL,  // smallest denormal
      0x000fffffffffffffULL,  // largest denormal
      0x7ff0000000000000ULL,  // +inf
      0xfff0000000000000ULL,  // -inf
      0x7ff8000000000000ULL,  // quiet NaN
      0x7ff8deadbeef1234ULL,  // NaN with payload
      0xfff4000000000001ULL,  // signalling NaN, sign set
      0x3fd5555555555555ULL,  // 1/3
  };
  for (std::uint64_t bits : patterns) {
    EXPECT_EQ(double_to_bits(bits_to_double(bits)), bits);
  }
  EXPECT_TRUE(SameBits(bits_to_double(double_to_bits(-0.0)), -0.0));
}

TEST(Fmt, HexBitsAreFixedWidthAndRoundTrip) {
  // The cache record format depends on exactly-16 lowercase hex digits.
  EXPECT_EQ(format_hex_bits(0.0), "0000000000000000");
  EXPECT_EQ(format_hex_bits(-0.0), "8000000000000000");
  EXPECT_EQ(format_hex_bits(1.0), "3ff0000000000000");
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           bits_to_double(0x7ff8deadbeef1234ULL)};
  for (double v : values) {
    const std::string hex = format_hex_bits(v);
    EXPECT_EQ(hex.size(), 16u);
    for (char c : hex) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
    }
    double back = 12345.0;
    ASSERT_TRUE(parse_hex_bits(hex, &back)) << hex;
    EXPECT_TRUE(SameBits(back, v)) << hex;
  }
  // Uppercase input is accepted (hand-edited cache files).
  double up = 0.0;
  ASSERT_TRUE(parse_hex_bits("3FF0000000000000", &up));
  EXPECT_TRUE(SameBits(up, 1.0));
}

TEST(Fmt, ParseHexBitsRejectsMalformedInput) {
  double out = 42.0;
  EXPECT_FALSE(parse_hex_bits("", &out));
  EXPECT_FALSE(parse_hex_bits("3ff000000000000", &out));    // 15 chars
  EXPECT_FALSE(parse_hex_bits("3ff00000000000000", &out));  // 17 chars
  EXPECT_FALSE(parse_hex_bits("3ff000000000000g", &out));   // non-hex
  EXPECT_FALSE(parse_hex_bits("3ff0 00000000000", &out));   // space
  EXPECT_FALSE(parse_hex_bits("0x3ff00000000000", &out));   // 0x prefix
  // Rejection leaves *out untouched.
  EXPECT_EQ(out, 42.0);
}

// ---------------------------------------------------------------- Cli

TEST(Cli, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--alpha=3", "--name=foo"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("name", ""), "foo");
}

TEST(Cli, ParsesKeySpaceValueAndFlags) {
  const char* argv[] = {"prog", "--n", "7", "pos", "--quick"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 7);
  EXPECT_TRUE(args.get_bool("quick"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Cli, FallbacksForMissingKeys) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", -5), -5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, BoolValues) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes"};
  CliArgs args(4, argv);
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_FALSE(args.get_bool("b"));
  EXPECT_TRUE(args.get_bool("c"));
}

// ---------------------------------------------------------------- Expected

TEST(Expected, HoldsValue) {
  Expected<int> e(5);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 5);
  EXPECT_EQ(e.value_or(9), 5);
}

TEST(Expected, HoldsError) {
  Expected<int> e(Error{"boom", 3});
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error().message, "boom");
  EXPECT_EQ(e.error().code, 3);
  EXPECT_EQ(e.value_or(9), 9);
}

TEST(Expected, ThrowsOnBadAccess) {
  Expected<int> e(Error{"nope"});
  EXPECT_THROW(e.value(), std::runtime_error);
}
