#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/mosfet.hpp"

using namespace autockt::spice;

namespace {

/// Channel current of a standalone device at given terminal voltages
/// (nodes: 1=d, 2=g, 3=s; ground unused).
double drain_current(const Mosfet& m, double vd, double vg, double vs) {
  const std::vector<double> v{0.0, vd, vg, vs};
  return m.linearize(v).id;
}

Mosfet make_nmos(const TechCard& card, double w = 10e-6, double l = 90e-9) {
  return Mosfet("m", 1, 2, 3, 0, MosType::Nmos, MosGeom{w, l, 1}, card);
}

Mosfet make_pmos(const TechCard& card, double w = 10e-6, double l = 90e-9) {
  return Mosfet("m", 1, 2, 3, 0, MosType::Pmos, MosGeom{w, l, 1}, card);
}

}  // namespace

TEST(Mosfet, CurrentIncreasesWithVgs) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  double prev = drain_current(m, 1.0, 0.2, 0.0);
  for (double vg = 0.3; vg <= 1.2; vg += 0.1) {
    const double id = drain_current(m, 1.0, vg, 0.0);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Mosfet, CurrentIncreasesWithVds) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  double prev = drain_current(m, 0.01, 0.8, 0.0);
  for (double vd = 0.05; vd <= 1.2; vd += 0.05) {
    const double id = drain_current(m, vd, 0.8, 0.0);
    EXPECT_GE(id, prev);  // monotone non-decreasing (CLM keeps slope > 0)
    prev = id;
  }
}

TEST(Mosfet, SubthresholdCurrentIsTiny) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  const double id_off = drain_current(m, 1.0, 0.0, 0.0);
  const double id_on = drain_current(m, 1.0, 1.0, 0.0);
  EXPECT_GT(id_on / std::max(id_off, 1e-30), 1e4);
}

TEST(Mosfet, DrainSourceSwapSymmetry) {
  // The channel is symmetric: exchanging the drain and source potentials
  // (same gate voltage) conducts the same current magnitude, with the
  // internal swap keeping the model smooth.
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  const double forward = drain_current(m, 0.3, 0.9, 0.0);
  // Labeled source now sits at the higher potential; the effective source
  // is the drain terminal, so Vgs_eff = 0.9 and Vds_eff = 0.3 again.
  const double reverse = drain_current(m, 0.0, 0.9, 0.3);
  EXPECT_NEAR(forward, reverse, std::fabs(forward) * 1e-9);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const auto card = TechCard::ptm45();
  TechCard sym = card;
  sym.u_cox_p = sym.u_cox_n;  // symmetric card for the mirror test
  sym.vth_p = sym.vth_n;
  sym.lambda_p = sym.lambda_n;
  const auto n = make_nmos(sym);
  const auto p = make_pmos(sym);
  const double id_n = drain_current(n, 0.6, 0.8, 0.0);
  // Mirror biasing: source at 1.2 V, gate 0.8 below it, drain 0.6 below it.
  const double id_p = drain_current(p, 0.6, 0.4, 1.2);
  EXPECT_NEAR(id_n, -id_p, std::fabs(id_n) * 1e-9);
}

TEST(Mosfet, GmMatchesNumericDerivative) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  const double h = 1e-7;
  for (double vg : {0.3, 0.45, 0.6, 0.9, 1.1}) {
    const auto ss = m.linearize({0.0, 0.8, vg, 0.0});
    const double numeric = (drain_current(m, 0.8, vg + h, 0.0) -
                            drain_current(m, 0.8, vg - h, 0.0)) /
                           (2.0 * h);
    EXPECT_NEAR(ss.gm, numeric, std::max(1e-9, std::fabs(numeric) * 1e-4))
        << "vg=" << vg;
  }
}

TEST(Mosfet, GdsMatchesNumericDerivative) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  const double h = 1e-7;
  for (double vd : {0.1, 0.3, 0.6, 1.0}) {
    const auto ss = m.linearize({0.0, vd, 0.8, 0.0});
    const double numeric = (drain_current(m, vd + h, 0.8, 0.0) -
                            drain_current(m, vd - h, 0.8, 0.0)) /
                           (2.0 * h);
    EXPECT_NEAR(ss.gds, numeric, std::max(1e-9, std::fabs(numeric) * 1e-4))
        << "vd=" << vd;
  }
}

TEST(Mosfet, RegionClassification) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  EXPECT_EQ(m.linearize({0.0, 1.0, 0.1, 0.0}).region,
            MosRegion::Subthreshold);
  EXPECT_EQ(m.linearize({0.0, 0.05, 1.1, 0.0}).region, MosRegion::Triode);
  EXPECT_EQ(m.linearize({0.0, 1.1, 0.7, 0.0}).region, MosRegion::Saturation);
}

TEST(Mosfet, CurrentScalesWithWidthAndMultiplier) {
  const auto card = TechCard::ptm45();
  const auto m1 = make_nmos(card, 5e-6);
  const auto m2 = make_nmos(card, 10e-6);
  const Mosfet m2x("m", 1, 2, 3, 0, MosType::Nmos, MosGeom{5e-6, 90e-9, 2},
                   card);
  const double i1 = drain_current(m1, 0.8, 0.8, 0.0);
  EXPECT_NEAR(drain_current(m2, 0.8, 0.8, 0.0), 2.0 * i1, i1 * 1e-9);
  EXPECT_NEAR(drain_current(m2x, 0.8, 0.8, 0.0), 2.0 * i1, i1 * 1e-9);
}

TEST(Mosfet, LongerChannelLowersLambda) {
  const auto card = TechCard::ptm45();
  const auto short_l = make_nmos(card, 10e-6, card.l_min);
  const auto long_l = make_nmos(card, 10e-6, 4.0 * card.l_min);
  const auto ss_short = short_l.linearize({0.0, 1.0, 0.8, 0.0});
  const auto ss_long = long_l.linearize({0.0, 1.0, 0.8, 0.0});
  // Normalize by current: gds/id is the CLM measure.
  EXPECT_GT(ss_short.gds / ss_short.id, ss_long.gds / ss_long.id);
}

TEST(Mosfet, CapacitancesScaleWithGeometry) {
  const auto card = TechCard::ptm45();
  const auto small = make_nmos(card, 2e-6);
  const auto big = make_nmos(card, 8e-6);
  EXPECT_NEAR(big.cgs() / small.cgs(), 4.0, 1e-9);
  EXPECT_NEAR(big.cgd() / small.cgd(), 4.0, 1e-9);
  EXPECT_GT(big.cdb(), small.cdb());
}

TEST(Mosfet, NoisePsdPositiveAndGrowsWithGm) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  std::vector<NoiseSource> weak, strong;
  m.collect_noise({0.0, 0.8, 0.5, 0.0}, 1e6, 300.0, weak);
  m.collect_noise({0.0, 0.8, 1.0, 0.0}, 1e6, 300.0, strong);
  ASSERT_EQ(weak.size(), 1u);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_GT(weak[0].psd, 0.0);
  EXPECT_GT(strong[0].psd, weak[0].psd);
}

TEST(Mosfet, FlickerNoiseFallsWithFrequency) {
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  std::vector<NoiseSource> lo, hi;
  m.collect_noise({0.0, 0.8, 1.0, 0.0}, 1e3, 300.0, lo);
  m.collect_noise({0.0, 0.8, 1.0, 0.0}, 1e9, 300.0, hi);
  EXPECT_GT(lo[0].psd, hi[0].psd);
}

TEST(Mosfet, SmoothAcrossThreshold) {
  // The smoothed model must have no kinks: check that gm is continuous by
  // comparing one-sided finite differences across Vth.
  const auto card = TechCard::ptm45();
  const auto m = make_nmos(card);
  const double vth = card.vth_n;
  const double below = m.linearize({0.0, 0.8, vth - 1e-6, 0.0}).gm;
  const double above = m.linearize({0.0, 0.8, vth + 1e-6, 0.0}).gm;
  EXPECT_NEAR(below, above, std::fabs(above) * 1e-3);
}

TEST(TechCards, SaneValues) {
  const auto p45 = TechCard::ptm45();
  const auto f16 = TechCard::finfet16();
  EXPECT_GT(p45.vdd, f16.vdd * 0.9);  // older node, higher supply
  EXPECT_FALSE(p45.quantized_width);
  EXPECT_TRUE(f16.quantized_width);
  EXPECT_GT(f16.fin_width, 0.0);
  EXPECT_GT(f16.u_cox_n, p45.u_cox_n);  // FinFET drive strength
  EXPECT_LT(f16.l_min, p45.l_min);
}

TEST(Mosfet, DiodeConnectedDcConverges) {
  // Diode-connected NMOS fed by a resistor — a classic NR test case.
  const auto card = TechCard::ptm45();
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId d = ckt.add_node("d");
  ckt.add<VoltageSource>("v1", vdd, kGround, Waveform::constant(card.vdd));
  ckt.add<Resistor>("r", vdd, d, 10e3);
  ckt.add<Mosfet>("m", d, d, kGround, kGround, MosType::Nmos,
                  MosGeom{10e-6, 90e-9, 1}, card);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  // Gate voltage must sit above threshold but far below the supply.
  EXPECT_GT(op->voltage(d), card.vth_n * 0.8);
  EXPECT_LT(op->voltage(d), card.vdd * 0.7);
}
