// VectorSizingEnv contract tests: N lockstep lanes over a FunctionBackend
// must be bitwise-identical to N independent serial envs with the same
// per-lane seeds — batching changes wall-clock, never values. Plus the
// batched-inference seams it relies on: Mlp::forward_batch vs a forward()
// loop, batched categorical heads vs per-row sampling, and the PpoAgent
// batched wrappers.

#include <gtest/gtest.h>

#include <memory>

#include "env/vector_env.hpp"
#include "nn/categorical.hpp"
#include "nn/mlp.hpp"
#include "rl/ppo.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using namespace autockt::env;
using circuits::SpecVector;

namespace {

std::shared_ptr<const circuits::SizingProblem> synth(int n = 3, int grid = 21) {
  return std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(n, grid));
}

/// Random-but-deterministic action, independent of the lane RNG streams.
std::vector<int> random_action(int num_params, util::Rng& rng) {
  std::vector<int> a(static_cast<std::size_t>(num_params));
  for (int& v : a) v = static_cast<int>(rng.bounded(3));
  return a;
}

}  // namespace

// ---- construction and validation -------------------------------------------

TEST(VectorSizingEnv, RejectsBadConstruction) {
  EXPECT_THROW(VectorSizingEnv(nullptr, EnvConfig{}, 2),
               std::invalid_argument);
  EXPECT_THROW(VectorSizingEnv(synth(), EnvConfig{}, 0),
               std::invalid_argument);
  EXPECT_THROW(VectorSizingEnv(synth(), EnvConfig{}, -3),
               std::invalid_argument);
}

TEST(VectorSizingEnv, ShapesMatchLaneEnv) {
  VectorSizingEnv venv(synth(), EnvConfig{}, 4);
  EXPECT_EQ(venv.num_lanes(), 4);
  EXPECT_EQ(venv.obs_size(), 2 * 3 + 3);
  EXPECT_EQ(venv.num_params(), 3);
  EXPECT_THROW(venv.lane(4), std::out_of_range);
  EXPECT_THROW(venv.set_target(-1, {}), std::out_of_range);
}

// ---- lockstep vs serial bitwise equivalence ---------------------------------

TEST(VectorSizingEnv, LockstepMatchesSerialBitwise) {
  auto prob = synth();
  // Per-spec targets far enough out that episodes run to the horizon.
  const SpecVector hard_target{1e9, -1e9, -1e9};
  EnvConfig config;
  config.horizon = 12;

  for (int lanes : {1, 2, 4, 8}) {
    VectorSizingEnv venv(prob, config, lanes);
    std::vector<SizingEnv> serial;
    for (int i = 0; i < lanes; ++i) {
      venv.set_target(i, hard_target);
      serial.emplace_back(prob, config);
      serial.back().set_target(hard_target);
    }

    // Reset: one batched evaluation must equal each serial reset bitwise.
    const auto obs0 = venv.reset_all();
    for (int i = 0; i < lanes; ++i) {
      EXPECT_EQ(obs0[static_cast<std::size_t>(i)],
                serial[static_cast<std::size_t>(i)].reset())
          << "lanes=" << lanes << " lane=" << i;
    }

    // Step with per-lane scripted actions; compare every field bitwise.
    util::Rng action_rng(17);
    for (int tick = 0; tick < config.horizon; ++tick) {
      std::vector<std::vector<int>> actions(static_cast<std::size_t>(lanes));
      for (int i = 0; i < lanes; ++i) {
        actions[static_cast<std::size_t>(i)] =
            random_action(venv.num_params(), action_rng);
      }
      const auto batch =
          venv.step_all(actions, [](int) { return false; });
      for (int i = 0; i < lanes; ++i) {
        const auto& ls = batch[static_cast<std::size_t>(i)];
        ASSERT_TRUE(ls.stepped);
        const auto sr =
            serial[static_cast<std::size_t>(i)].step(
                actions[static_cast<std::size_t>(i)]);
        EXPECT_EQ(ls.obs, sr.obs) << "lanes=" << lanes << " lane=" << i;
        EXPECT_EQ(ls.reward, sr.reward);  // bitwise, not approximate
        EXPECT_EQ(ls.done, sr.done);
        EXPECT_EQ(ls.goal_met, sr.goal_met);
        EXPECT_EQ(venv.lane(i).params(),
                  serial[static_cast<std::size_t>(i)].params());
      }
      if (tick + 1 == config.horizon) {
        for (int i = 0; i < lanes; ++i) {
          EXPECT_TRUE(batch[static_cast<std::size_t>(i)].done);
        }
      }
    }
    // Every lane halted at the horizon (continue_lane vetoed the reset).
    EXPECT_EQ(venv.running_count(), 0);
  }
}

TEST(VectorSizingEnv, AutoResetMatchesSerialEnvWithSamplerLoop) {
  auto prob = synth();
  EnvConfig config;
  config.horizon = 5;
  const std::vector<SpecVector> pool{
      {1e9, -1e9, -1e9}, {9.6, 5.3, 1.45}, {10.8, 4.7, 1.3}};

  const int lanes = 4;
  VectorSizingEnv venv(prob, config, lanes);
  venv.seed_lanes(99);
  venv.set_target_sampler([&pool](int /*lane*/, util::Rng& rng) {
    return pool[rng.bounded(pool.size())];
  });
  auto obs = venv.reset_all();

  // Serial reference: per lane, an identically seeded RNG drives the same
  // target-sample / reset / step loop.
  struct SerialLane {
    SizingEnv env;
    util::Rng rng;
  };
  std::vector<SerialLane> serial;
  {
    VectorSizingEnv seed_probe(prob, config, lanes);
    seed_probe.seed_lanes(99);
    for (int i = 0; i < lanes; ++i) {
      serial.push_back({SizingEnv(prob, config), seed_probe.lane_rng(i)});
      auto& lane = serial.back();
      lane.env.set_target(pool[lane.rng.bounded(pool.size())]);
      EXPECT_EQ(obs[static_cast<std::size_t>(i)], lane.env.reset());
    }
  }

  util::Rng action_rng(5);
  for (int tick = 0; tick < 40; ++tick) {
    std::vector<std::vector<int>> actions(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; ++i) {
      actions[static_cast<std::size_t>(i)] =
          random_action(venv.num_params(), action_rng);
    }
    const auto batch = venv.step_all(actions);  // auto-reset on done
    for (int i = 0; i < lanes; ++i) {
      auto& lane = serial[static_cast<std::size_t>(i)];
      const auto sr = lane.env.step(actions[static_cast<std::size_t>(i)]);
      const auto& ls = batch[static_cast<std::size_t>(i)];
      EXPECT_EQ(ls.reward, sr.reward) << "tick=" << tick << " lane=" << i;
      EXPECT_EQ(ls.done, sr.done);
      if (sr.done) {
        // The ended episode's terminal observation is preserved...
        EXPECT_EQ(ls.final_obs, sr.obs);
        // ...and the lane came back already reset on a resampled target.
        lane.env.set_target(pool[lane.rng.bounded(pool.size())]);
        EXPECT_EQ(ls.obs, lane.env.reset());
        EXPECT_EQ(venv.lane(i).steps_taken(), 0);
      } else {
        EXPECT_TRUE(ls.final_obs.empty());
        EXPECT_EQ(ls.obs, sr.obs);
      }
      EXPECT_EQ(venv.lane(i).target(), lane.env.target());
    }
  }
  EXPECT_EQ(venv.running_count(), lanes);
}

TEST(VectorSizingEnv, LaneStreamsIndependentOfLaneCount) {
  VectorSizingEnv small(synth(), EnvConfig{}, 2);
  VectorSizingEnv large(synth(), EnvConfig{}, 8);
  small.seed_lanes(1234);
  large.seed_lanes(1234);
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < 16; ++k) {
      EXPECT_EQ(small.lane_rng(i).next(), large.lane_rng(i).next());
    }
  }
}

TEST(VectorSizingEnv, HaltedLanesAreSkipped) {
  auto prob = synth();
  EnvConfig config;
  config.horizon = 2;
  VectorSizingEnv venv(prob, config, 3);
  for (int i = 0; i < 3; ++i) venv.set_target(i, {1e9, -1e9, -1e9});
  venv.reset_all();
  EXPECT_EQ(venv.running_count(), 3);
  venv.halt_lane(1);
  EXPECT_EQ(venv.running_count(), 2);

  const std::vector<std::vector<int>> actions(3, {1, 1, 1});
  auto batch = venv.step_all(actions, [](int) { return false; });
  EXPECT_TRUE(batch[0].stepped);
  EXPECT_FALSE(batch[1].stepped);
  EXPECT_TRUE(batch[2].stepped);
  EXPECT_EQ(venv.lane(1).steps_taken(), 0);

  // Second tick hits the horizon on the stepped lanes; they halt too.
  batch = venv.step_all(actions, [](int) { return false; });
  EXPECT_TRUE(batch[0].done);
  EXPECT_EQ(venv.running_count(), 0);

  // A halted lane can be restarted explicitly.
  const auto fresh = venv.reset_lanes({1});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_TRUE(venv.lane_running(1));
  EXPECT_EQ(venv.running_count(), 1);
}

TEST(VectorSizingEnv, BatchesFlowThroughTheBackend) {
  auto prob = synth();
  const auto before = prob->eval_stats();
  VectorSizingEnv venv(prob, EnvConfig{}, 6);
  for (int i = 0; i < 6; ++i) venv.set_target(i, {1e9, -1e9, -1e9});
  venv.reset_all();
  const std::vector<std::vector<int>> actions(6, {2, 2, 2});
  venv.step_all(actions, [](int) { return false; });
  const auto stats = prob->eval_stats().since(before);
  EXPECT_EQ(stats.batch_calls, 2);  // one reset batch + one step batch
  EXPECT_EQ(stats.batch_points, 12);
  EXPECT_EQ(stats.max_batch, 6);
  EXPECT_EQ(stats.pending_batches, 0);  // quiescent between ticks
}

// ---- batched MLP inference --------------------------------------------------

TEST(ForwardBatch, MatchesSerialForwardLoop) {
  nn::Mlp mlp({7, 50, 50, 50, 21}, nn::Activation::Tanh, 11);
  util::Rng rng(3);
  const int rows = 16;
  std::vector<double> x(static_cast<std::size_t>(rows) * 7);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  const auto batched = mlp.forward_batch(x, rows);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(rows) * 21);
  for (int r = 0; r < rows; ++r) {
    const std::vector<double> row(x.begin() + r * 7, x.begin() + (r + 1) * 7);
    const auto serial = mlp.forward(row);
    for (int o = 0; o < 21; ++o) {
      EXPECT_NEAR(batched[static_cast<std::size_t>(r * 21 + o)],
                  serial[static_cast<std::size_t>(o)], 1e-12);
      // Designed to be not just close but bitwise-identical (same
      // accumulation order), which is what keeps trajectories exact.
      EXPECT_EQ(batched[static_cast<std::size_t>(r * 21 + o)],
                serial[static_cast<std::size_t>(o)]);
    }
  }
}

TEST(ForwardBatch, RejectsBadShapes) {
  nn::Mlp mlp({4, 8, 2}, nn::Activation::Tanh, 1);
  EXPECT_THROW(mlp.forward_batch(std::vector<double>(7, 0.0), 2),
               std::invalid_argument);
  EXPECT_THROW(mlp.forward_batch(std::vector<double>(8, 0.0), -2),
               std::invalid_argument);
  EXPECT_TRUE(mlp.forward_batch({}, 0).empty());
}

TEST(CategoricalBatch, SampleHeadsMatchesPerRowSampling) {
  const int rows = 5, heads = 4, k = 3;
  util::Rng logit_rng(7);
  std::vector<double> logits(static_cast<std::size_t>(rows * heads * k));
  for (double& v : logits) v = logit_rng.uniform(-2.0, 2.0);

  std::vector<util::Rng> batch_streams, serial_streams;
  for (int r = 0; r < rows; ++r) {
    batch_streams.emplace_back(100 + static_cast<std::uint64_t>(r));
    serial_streams.emplace_back(100 + static_cast<std::uint64_t>(r));
  }
  std::vector<util::Rng*> rng_ptrs;
  for (auto& s : batch_streams) rng_ptrs.push_back(&s);

  std::vector<double> logps;
  const auto actions =
      nn::sample_heads_batch(logits, rows, heads, k, rng_ptrs, &logps);

  for (int r = 0; r < rows; ++r) {
    double logp = 0.0;
    for (int h = 0; h < heads; ++h) {
      const auto probs = nn::softmax_slice(
          logits, static_cast<std::size_t>((r * heads + h) * k),
          static_cast<std::size_t>(k));
      const int a = nn::sample_categorical(
          probs, serial_streams[static_cast<std::size_t>(r)]);
      EXPECT_EQ(actions[static_cast<std::size_t>(r * heads + h)], a);
      logp += std::log(std::max(probs[static_cast<std::size_t>(a)], 1e-12));
      EXPECT_EQ(nn::argmax_heads_batch(logits, rows, heads,
                                       k)[static_cast<std::size_t>(
                    r * heads + h)],
                nn::argmax(probs));
    }
    EXPECT_EQ(logps[static_cast<std::size_t>(r)], logp);
  }
}

TEST(PpoAgentBatch, BatchedActionsMatchSerialCalls) {
  rl::PpoConfig config;
  rl::PpoAgent agent(9, 3, config);
  const int rows = 6;
  util::Rng obs_rng(21);
  std::vector<double> obs_rows(static_cast<std::size_t>(rows) * 9);
  for (double& v : obs_rows) v = obs_rng.uniform(-1.0, 1.0);

  std::vector<util::Rng> batch_streams, serial_streams;
  for (int r = 0; r < rows; ++r) {
    batch_streams.emplace_back(7 + static_cast<std::uint64_t>(r));
    serial_streams.emplace_back(7 + static_cast<std::uint64_t>(r));
  }
  std::vector<util::Rng*> rng_ptrs;
  for (auto& s : batch_streams) rng_ptrs.push_back(&s);

  std::vector<double> logps;
  const auto actions = agent.act_sample_batch(obs_rows, rows, rng_ptrs, &logps);
  const auto greedy = agent.act_greedy_batch(obs_rows, rows);
  const auto values = agent.value_batch(obs_rows, rows);

  for (int r = 0; r < rows; ++r) {
    const std::vector<double> obs(obs_rows.begin() + r * 9,
                                  obs_rows.begin() + (r + 1) * 9);
    double logp = 0.0;
    const auto serial_action = agent.act_sample(
        obs, serial_streams[static_cast<std::size_t>(r)], &logp);
    for (int h = 0; h < 3; ++h) {
      EXPECT_EQ(actions[static_cast<std::size_t>(r * 3 + h)],
                serial_action[static_cast<std::size_t>(h)]);
      EXPECT_EQ(greedy[static_cast<std::size_t>(r * 3 + h)],
                agent.act_greedy(obs)[static_cast<std::size_t>(h)]);
    }
    EXPECT_EQ(logps[static_cast<std::size_t>(r)], logp);
    EXPECT_EQ(values[static_cast<std::size_t>(r)], agent.value(obs));
  }
}

TEST(PpoAgentBatch, RejectsMismatchedRngCount) {
  rl::PpoConfig config;
  rl::PpoAgent agent(9, 3, config);
  util::Rng rng(1);
  std::vector<util::Rng*> rngs{&rng};
  EXPECT_THROW(
      agent.act_sample_batch(std::vector<double>(18, 0.0), 2, rngs),
      std::invalid_argument);
}
