// Integration tests for the three paper topologies: biasing sanity,
// measurement ranges, monotonic design trends and the PEX overlay. These
// run real DC/AC/transient/noise analyses, so each case is a full (but
// sub-millisecond) circuit simulation.

#include <gtest/gtest.h>

#include "circuits/ngm_ota.hpp"
#include "circuits/problems.hpp"
#include "circuits/tia.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "spice/dc.hpp"
#include "util/rng.hpp"

using namespace autockt;
using namespace autockt::circuits;

// ---------------------------------------------------------------- TIA

TEST(Tia, FeedbackResistanceLadder) {
  TiaParams p;
  p.n_series = 4;
  p.n_parallel = 2;
  EXPECT_DOUBLE_EQ(p.feedback_resistance(), 5.6e3 * 4 / 2);
}

TEST(Tia, CenterDesignMeasuresSanely) {
  const auto prob = make_tia_problem();
  auto specs = prob.evaluate(prob.center_params());
  ASSERT_TRUE(specs.ok());
  const double settling = (*specs)[0];
  const double cutoff = (*specs)[1];
  const double noise = (*specs)[2];
  EXPECT_GT(settling, 1e-11);
  EXPECT_LT(settling, 1e-7);
  EXPECT_GT(cutoff, 1e7);
  EXPECT_LT(cutoff, 1e11);
  EXPECT_GT(noise, 1e-6);
  EXPECT_LT(noise, 1e-2);
}

TEST(Tia, LargerFeedbackResistorLowersCutoff) {
  const auto card = spice::TechCard::ptm45();
  TiaParams small_rf;
  small_rf.n_series = 2;
  small_rf.n_parallel = 10;
  TiaParams big_rf = small_rf;
  big_rf.n_series = 20;
  big_rf.n_parallel = 1;
  auto fast = simulate_tia(small_rf, card);
  auto slow = simulate_tia(big_rf, card);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(fast->cutoff_freq, slow->cutoff_freq);
  EXPECT_LT(fast->settling_time, slow->settling_time);
}

TEST(Tia, SettlingTracksBandwidthInversely) {
  const auto card = spice::TechCard::ptm45();
  TiaParams p;
  auto res = simulate_tia(p, card);
  ASSERT_TRUE(res.ok());
  // tau ~ 1/(2 pi f3db); 2% settling ~ 4 tau. Allow a factor-5 window —
  // this is a closed-loop, possibly peaked response.
  const double tau = 1.0 / (2.0 * 3.14159265 * res->cutoff_freq);
  EXPECT_GT(res->settling_time, 0.5 * tau);
  EXPECT_LT(res->settling_time, 40.0 * tau);
}

TEST(Tia, SelfBiasNearMidRail) {
  const auto card = spice::TechCard::ptm45();
  TiaParams p;
  auto ckt = build_tia(p, card);
  spice::DcOptions opt;
  opt.initial_node_v.assign(ckt.num_nodes(), 0.5 * card.vdd);
  opt.initial_node_v[0] = 0.0;
  opt.initial_node_v[ckt.node("vdd")] = card.vdd;
  auto op = spice::solve_op(ckt, opt);
  ASSERT_TRUE(op.ok());
  // Resistive feedback forces input == output == inverter trip point.
  EXPECT_NEAR(op->voltage(ckt.node("in")), op->voltage(ckt.node("out")),
              1e-3);
  EXPECT_GT(op->voltage(ckt.node("out")), 0.2 * card.vdd);
  EXPECT_LT(op->voltage(ckt.node("out")), 0.8 * card.vdd);
}

TEST(Tia, PexOverlayDegradesBandwidth) {
  const auto card = spice::TechCard::ptm45();
  pex::ParasiticModel pm;
  pm.cap_fixed = 20e-15;
  pm.cap_per_width = 5e-9;
  TiaParams p;
  auto nominal = simulate_tia(p, card);
  TiaBuildOptions options;
  options.parasitics = &pm;
  auto loaded = simulate_tia(p, card, options);
  ASSERT_TRUE(nominal.ok());
  ASSERT_TRUE(loaded.ok());
  EXPECT_LT(loaded->cutoff_freq, nominal->cutoff_freq);
}

TEST(Tia, GridMappingMatchesParamDefs) {
  const auto prob = make_tia_problem();
  const auto p = tia_params_from_grid(prob.params, {0, 0, 4, 15, 9, 19});
  EXPECT_DOUBLE_EQ(p.wn, 2e-6);
  EXPECT_EQ(p.mn, 2);
  EXPECT_DOUBLE_EQ(p.wp, 10e-6);
  EXPECT_EQ(p.mp, 32);
  EXPECT_EQ(p.n_series, 20);
  EXPECT_EQ(p.n_parallel, 20);
}

// ------------------------------------------------------ Two-stage op-amp

TEST(TwoStage, CenterDesignBiasesAndMeasures) {
  const auto prob = make_two_stage_problem();
  auto specs = prob.evaluate(prob.center_params());
  ASSERT_TRUE(specs.ok());
  EXPECT_GT((*specs)[0], 100.0);    // healthy gain
  EXPECT_GT((*specs)[1], 1e6);      // UGBW found
  EXPECT_GT((*specs)[2], 0.0);      // phase margin measured
  EXPECT_GT((*specs)[3], 1e-5);     // bias current flows
  EXPECT_LT((*specs)[3], 1e-2);
}

TEST(TwoStage, ServoCentersOutput) {
  const auto card = spice::TechCard::ptm45();
  TwoStageParams p;
  auto ckt = build_two_stage(p, card);
  spice::DcOptions opt;
  opt.initial_node_v.assign(ckt.num_nodes(), 0.5);
  opt.initial_node_v[0] = 0.0;
  opt.initial_node_v[ckt.node("vdd")] = card.vdd;
  opt.initial_node_v[ckt.node("d1")] = 0.65 * card.vdd;
  opt.initial_node_v[ckt.node("out1")] = 0.65 * card.vdd;
  opt.initial_node_v[ckt.node("tail")] = 0.2 * card.vdd;
  auto op = spice::solve_op(ckt, opt);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(ckt.node("out")), 0.55 * card.vdd, 1e-4);
}

TEST(TwoStage, MoreCompensationLowersUgbw) {
  const auto card = spice::TechCard::ptm45();
  TwoStageParams small_cc;
  small_cc.cc = 0.3e-12;
  TwoStageParams big_cc;
  big_cc.cc = 2.5e-12;
  auto fast = simulate_two_stage(small_cc, card);
  auto slow = simulate_two_stage(big_cc, card);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast->ugbw_found);
  ASSERT_TRUE(slow->ugbw_found);
  EXPECT_GT(fast->ugbw, slow->ugbw);
  // And Miller compensation buys phase margin.
  EXPECT_GT(slow->phase_margin, fast->phase_margin);
}

TEST(TwoStage, WiderBiasDiodeLowersCurrent) {
  const auto card = spice::TechCard::ptm45();
  TwoStageParams narrow;
  narrow.w8 = 2e-6;
  TwoStageParams wide = narrow;
  wide.w8 = 20e-6;
  auto a = simulate_two_stage(narrow, card);
  auto b = simulate_two_stage(wide, card);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Wider diode -> lower Vgs8 -> slightly higher reference current, but
  // mirrored tail/sink currents scale with W5/W8 and W7/W8, so shrink.
  EXPECT_LT(b->bias_current, a->bias_current);
}

TEST(TwoStage, GridMappingUsesPerDeviceUnits) {
  const auto prob = make_two_stage_problem();
  const auto p = two_stage_params_from_grid(
      prob.params, {0, 0, 0, 0, 0, 0, 0});
  EXPECT_NEAR(p.w12, 0.25e-6, 1e-12);
  EXPECT_NEAR(p.w34, 0.05e-6, 1e-12);
  EXPECT_NEAR(p.cc, 0.02e-12, 1e-18);
}

TEST(TwoStage, PexOverlayAddsLoadCaps) {
  const auto card = spice::TechCard::ptm45();
  pex::ParasiticModel pm;
  pm.cap_fixed = 30e-15;
  pm.cap_per_width = 1e-8;
  TwoStageParams p;
  OpampBuildOptions options;
  options.parasitics = &pm;
  auto nominal = simulate_two_stage(p, card);
  auto loaded = simulate_two_stage(p, card, options);
  ASSERT_TRUE(nominal.ok());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(nominal->ugbw_found);
  ASSERT_TRUE(loaded->ugbw_found);
  EXPECT_LT(loaded->ugbw, nominal->ugbw * 1.001);
}

// ------------------------------------------------------- Negative-gm OTA

TEST(NgmOta, CenterDesignIsAlive) {
  const auto prob = make_ngm_problem();
  auto specs = prob.evaluate(prob.center_params());
  ASSERT_TRUE(specs.ok());
  EXPECT_GT((*specs)[0], 1.0);   // gain above unity
  EXPECT_GT((*specs)[1], 1e7);   // UGBW in a plausible band
  EXPECT_GT((*specs)[2], 0.0);   // phase margin measured
}

TEST(NgmOta, CrossCouplingBoostsGain) {
  const auto card = spice::TechCard::finfet16();
  NgmParams weak;
  weak.nf_cross = 2;
  NgmParams strong = weak;
  strong.nf_cross = 24;  // still below nf_diode: no latch
  weak.nf_diode = strong.nf_diode = 40;
  auto lo = simulate_ngm_ota(weak, card);
  auto hi = simulate_ngm_ota(strong, card);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_GT(hi->gain, lo->gain);
}

TEST(NgmOta, OversizedCrossPairKillsTheAmplifier) {
  const auto card = spice::TechCard::finfet16();
  NgmParams latch;
  latch.nf_diode = 22;
  latch.nf_cross = 40;  // gm_cross > gm_diode: positive-feedback latch
  auto res = simulate_ngm_ota(latch, card);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->gain, 5.0);  // railed/latched first stage has no real gain
}

TEST(NgmOta, QuantizedWidthsUseFinCounts) {
  const auto prob = make_ngm_problem();
  const auto p = ngm_params_from_grid(prob.params, {1, 1, 1, 1, 1, 1, 1});
  EXPECT_EQ(p.nf_in, 2);      // grid [1,100,1] -> idx 1 = 2 fins
  EXPECT_EQ(p.nf_diode, 24);  // grid [22,80,2]
  EXPECT_NEAR(p.cc, 0.2e-12, 1e-18);
}

TEST(NgmOta, PexWorstCaseDegradesSpecs) {
  const auto schematic = make_ngm_problem();
  const auto pex = make_ngm_pex_problem();
  const auto center = schematic.center_params();
  auto sch = schematic.evaluate(center);
  auto px = pex.evaluate(center);
  ASSERT_TRUE(sch.ok());
  ASSERT_TRUE(px.ok());
  // Worst-case PVT + parasitics can only lower gain/UGBW (GreaterEq fold).
  EXPECT_LE((*px)[0], (*sch)[0] * 1.02);
  EXPECT_LE((*px)[1], (*sch)[1] * 1.02);
}

TEST(NgmOta, PexEvaluationIsDeterministic) {
  const auto pex = make_ngm_pex_problem();
  const auto center = pex.center_params();
  auto a = pex.evaluate(center);
  auto b = pex.evaluate(center);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

// ------------------------------------------------------ cross-topology

TEST(Problems, EvaluateIsDeterministicEverywhere) {
  for (const auto& prob :
       {make_tia_problem(), make_two_stage_problem(), make_ngm_problem()}) {
    const auto center = prob.center_params();
    auto a = prob.evaluate(center);
    auto b = prob.evaluate(center);
    ASSERT_TRUE(a.ok()) << prob.name;
    EXPECT_EQ(*a, *b) << prob.name;
  }
}

TEST(Problems, RandomGridPointsProduceFiniteSpecs) {
  util::Rng rng(123);
  for (const auto& prob :
       {make_tia_problem(), make_two_stage_problem(), make_ngm_problem()}) {
    for (int rep = 0; rep < 5; ++rep) {
      ParamVector p;
      for (const auto& def : prob.params) {
        p.push_back(static_cast<int>(
            rng.bounded(static_cast<std::uint64_t>(def.grid_size()))));
      }
      auto specs = prob.evaluate(p);
      if (!specs.ok()) continue;  // explicit failure is allowed
      for (double v : *specs) {
        EXPECT_TRUE(std::isfinite(v)) << prob.name;
      }
    }
  }
}
