// End-to-end deck tests: full netlists of the paper's circuit classes going
// through the text front end and every analysis — the closest thing to a
// user-level acceptance test for the simulator substrate.

#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/noise.hpp"
#include "spice/units.hpp"

using namespace autockt::spice;

TEST(DeckAcceptance, InverterTiaDeck) {
  // The paper's Fig. 4 TIA, written as a deck.
  const auto parsed = parse_netlist(R"(
.title tia
.card ptm45
vdd vdd 0 dc 1.2
iin 0 in dc 0 ac 1
cpd in 0 50f
mn out in 0 0 nmos w=4u l=90n mult=8
mp out in vdd vdd pmos w=4u l=90n mult=8
rf in out 11.2k
cl out 0 15f
.op
.ac out 100k 100g
.noise out 1k 10g
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());

  // Self-biased: input and output at the same level.
  EXPECT_NEAR(op->voltage(parsed->circuit.node("in")),
              op->voltage(parsed->circuit.node("out")), 1e-3);

  auto sweep = ac_sweep(parsed->circuit, *op, parsed->circuit.node("out"),
                        kGround, parsed->ac[0].options);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  // Transimpedance ~ Rf at DC.
  EXPECT_GT(m.dc_gain, 0.5 * 11.2e3);
  EXPECT_LT(m.dc_gain, 1.5 * 11.2e3);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_GT(m.f3db, 1e8);

  auto noise = noise_sweep(parsed->circuit, *op, parsed->circuit.node("out"),
                           kGround, parsed->noise[0].options);
  ASSERT_TRUE(noise.ok());
  EXPECT_GT(noise->total_output_vrms(), 1e-6);
  EXPECT_LT(noise->total_output_vrms(), 1e-2);
}

TEST(DeckAcceptance, FiveTransistorOtaDeck) {
  // A classic 5T OTA with the ideal bias servo, deck-driven.
  const auto parsed = parse_netlist(R"(
.title 5t-ota
.card ptm45
vdd vdd 0 dc 1.2
vin inn 0 dc 0.66 ac 1
m1 d1  inp tail 0   nmos w=5u l=90n
m2 out inn tail 0   nmos w=5u l=90n
m3 d1  d1  vdd  vdd pmos w=5u l=90n
m4 out d1  vdd  vdd pmos w=5u l=90n
m5 tail bias 0  0   nmos w=5u l=90n
m6 bias bias 0  0   nmos w=2u l=90n
rb vdd bias 20k
cl out 0 1p
b1 inp out 0.66
.nodeset vdd 1.2
.nodeset inp 0.66
.nodeset inn 0.66
.nodeset tail 0.2
.nodeset d1 0.75
.nodeset out 0.66
.nodeset bias 0.5
.ac out 100 100g
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  DcOptions dc_opt;
  dc_opt.initial_node_v = parsed->initial_node_voltages();
  auto op = solve_op(parsed->circuit, dc_opt);
  ASSERT_TRUE(op.ok());
  // Servo held the output at the common-mode level.
  EXPECT_NEAR(op->voltage(parsed->circuit.node("out")), 0.66, 1e-5);

  auto sweep = ac_sweep(parsed->circuit, *op, parsed->circuit.node("out"),
                        kGround, parsed->ac[0].options);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  EXPECT_GT(m.dc_gain, 5.0);  // a single stage of this card
  ASSERT_TRUE(m.ugbw_found);
  EXPECT_GT(m.phase_margin_deg, 45.0);  // single-stage: comfortably stable
}

TEST(DeckAcceptance, CommonSourceWithFinfetCard) {
  const auto parsed = parse_netlist(R"(
.card finfet16
vdd vdd 0 dc 0.8
vin in 0 dc 0.45 ac 1
m1 out in 0 0 nmos w=2u l=32n
rload vdd out 4k
cl out 0 100f
.ac out 1k 1t
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  auto sweep = ac_sweep(parsed->circuit, *op, parsed->circuit.node("out"),
                        kGround, parsed->ac[0].options);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  // This is a plumbing test (deck -> circuit -> analyses): the stage is
  // deliberately small, so only qualitative behaviour is pinned.
  EXPECT_GT(m.dc_gain, 0.05);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_LT(m.f3db, 1e11);
}
