// Sparse simulation kernel: dense-vs-sparse parity across every analysis on
// all four benchmark circuits (TIA, two-stage op-amp, negative-gm OTA, and
// its PEX variant), warm-start determinism against the cold-start path, and
// the kernel counters surfaced through EvalStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuits/ngm_ota.hpp"
#include "circuits/problems.hpp"
#include "circuits/tia.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "env/sizing_env.hpp"
#include "env/vector_env.hpp"
#include "pex/parasitics.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "spice/workspace.hpp"
#include "util/rng.hpp"

using namespace autockt;
using spice::SimKernel;

namespace {

constexpr double kParityRelTol = 1e-9;

/// Normwise relative difference: max |a-b| over max magnitude. Guards the
/// all-zero case by returning the absolute difference.
double rel_diff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double scale = 0.0, diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    scale = std::max({scale, std::fabs(a[i]), std::fabs(b[i])});
    diff = std::max(diff, std::fabs(a[i] - b[i]));
  }
  return scale == 0.0 ? diff : diff / scale;
}

double rel_diff_ac(const std::vector<spice::AcPoint>& a,
                   const std::vector<spice::AcPoint>& b) {
  EXPECT_EQ(a.size(), b.size());
  double scale = 0.0, diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].freq, b[i].freq);
    scale = std::max({scale, std::abs(a[i].value), std::abs(b[i].value)});
    diff = std::max(diff, std::abs(a[i].value - b[i].value));
  }
  return scale == 0.0 ? diff : diff / scale;
}

/// One benchmark circuit plus the probe and DC guess its simulate_* flow
/// uses. The builder is re-invoked per kernel so each run owns its circuit.
struct CircuitCase {
  std::string name;
  std::function<spice::Circuit()> build;
  std::function<spice::DcOptions(const spice::Circuit&)> dc_options;
  std::string probe;  // node name for AC/noise/transient probing
};

pex::ParasiticModel test_parasitics() {
  pex::ParasiticModel pm;
  pm.cap_fixed = 15e-15;
  pm.cap_per_width = 7.0e-9;
  pm.variation = 0.3;
  pm.salt = 0xba6;
  return pm;
}

std::vector<CircuitCase> benchmark_circuits() {
  std::vector<CircuitCase> cases;

  cases.push_back(
      {"tia",
       [] { return circuits::build_tia({}, spice::TechCard::ptm45()); },
       [](const spice::Circuit& ckt) {
         const auto card = spice::TechCard::ptm45();
         spice::DcOptions opt;
         opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
         opt.initial_node_v[ckt.node("vdd")] = card.vdd;
         opt.initial_node_v[ckt.node("in")] = card.vdd / 2.0;
         opt.initial_node_v[ckt.node("out")] = card.vdd / 2.0;
         return opt;
       },
       "out"});

  auto two_stage_dc = [](const spice::Circuit& ckt) {
    const auto card = spice::TechCard::ptm45();
    const double vcm = 0.55 * card.vdd;
    spice::DcOptions opt;
    opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
    opt.initial_node_v[ckt.node("vdd")] = card.vdd;
    opt.initial_node_v[ckt.node("inp")] = vcm;
    opt.initial_node_v[ckt.node("inn")] = vcm;
    opt.initial_node_v[ckt.node("tail")] = 0.2 * card.vdd;
    opt.initial_node_v[ckt.node("d1")] = 0.65 * card.vdd;
    opt.initial_node_v[ckt.node("out1")] = 0.65 * card.vdd;
    opt.initial_node_v[ckt.node("out")] = vcm;
    opt.initial_node_v[ckt.node("bias")] = 0.4 * card.vdd;
    return opt;
  };
  cases.push_back({"two_stage",
                   [] {
                     return circuits::build_two_stage(
                         {}, spice::TechCard::ptm45());
                   },
                   two_stage_dc, "out"});

  auto ngm_dc = [](const spice::Circuit& ckt) {
    const auto card = spice::TechCard::finfet16();
    const double vcm = 0.6 * card.vdd;
    spice::DcOptions opt;
    opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
    opt.initial_node_v[ckt.node("vdd")] = card.vdd;
    opt.initial_node_v[ckt.node("inp")] = vcm;
    opt.initial_node_v[ckt.node("inn")] = vcm;
    opt.initial_node_v[ckt.node("tail")] = 0.2 * card.vdd;
    opt.initial_node_v[ckt.node("x1")] = 0.6 * card.vdd;
    opt.initial_node_v[ckt.node("x2")] = 0.6 * card.vdd;
    opt.initial_node_v[ckt.node("out")] = vcm;
    opt.initial_node_v[ckt.node("bias")] = 0.45 * card.vdd;
    return opt;
  };
  cases.push_back({"ngm_ota",
                   [] {
                     return circuits::build_ngm_ota(
                         {}, spice::TechCard::finfet16());
                   },
                   ngm_dc, "out"});
  cases.push_back({"ngm_ota_pex",
                   [] {
                     static const pex::ParasiticModel pm = test_parasitics();
                     circuits::NgmBuildOptions build;
                     build.parasitics = &pm;
                     return circuits::build_ngm_ota(
                         {}, spice::TechCard::finfet16(), build);
                   },
                   ngm_dc, "out"});
  return cases;
}

}  // namespace

// ---- dense-vs-sparse parity -------------------------------------------------

TEST(SimKernelParity, DcOperatingPoint) {
  for (const CircuitCase& c : benchmark_circuits()) {
    SCOPED_TRACE(c.name);
    spice::Circuit ckt = c.build();
    spice::DcOptions dense_opt = c.dc_options(ckt);
    dense_opt.kernel = SimKernel::Dense;
    spice::DcOptions sparse_opt = c.dc_options(ckt);
    sparse_opt.kernel = SimKernel::Sparse;

    auto dense = spice::solve_op(ckt, dense_opt);
    auto sparse = spice::solve_op(ckt, sparse_opt);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    EXPECT_LT(rel_diff(dense->node_v, sparse->node_v), kParityRelTol);
    EXPECT_LT(rel_diff(dense->branch_i, sparse->branch_i), kParityRelTol);
  }
}

TEST(SimKernelParity, AcSweep) {
  for (const CircuitCase& c : benchmark_circuits()) {
    SCOPED_TRACE(c.name);
    spice::Circuit ckt = c.build();
    auto op = spice::solve_op(ckt, c.dc_options(ckt));
    ASSERT_TRUE(op.ok());

    spice::AcOptions dense_opt;
    dense_opt.kernel = SimKernel::Dense;
    spice::AcOptions sparse_opt;
    sparse_opt.kernel = SimKernel::Sparse;
    const spice::NodeId probe = ckt.node(c.probe);
    auto dense = spice::ac_sweep(ckt, *op, probe, spice::kGround, dense_opt);
    auto sparse = spice::ac_sweep(ckt, *op, probe, spice::kGround, sparse_opt);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    EXPECT_LT(rel_diff_ac(*dense, *sparse), kParityRelTol);
  }
}

TEST(SimKernelParity, NoiseSweep) {
  for (const CircuitCase& c : benchmark_circuits()) {
    SCOPED_TRACE(c.name);
    spice::Circuit ckt = c.build();
    auto op = spice::solve_op(ckt, c.dc_options(ckt));
    ASSERT_TRUE(op.ok());

    spice::NoiseOptions dense_opt;
    dense_opt.kernel = SimKernel::Dense;
    spice::NoiseOptions sparse_opt;
    sparse_opt.kernel = SimKernel::Sparse;
    const spice::NodeId probe = ckt.node(c.probe);
    auto dense =
        spice::noise_sweep(ckt, *op, probe, spice::kGround, dense_opt);
    auto sparse =
        spice::noise_sweep(ckt, *op, probe, spice::kGround, sparse_opt);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    EXPECT_LT(rel_diff(dense->out_psd, sparse->out_psd), kParityRelTol);
    const double scale = std::max(
        {dense->total_output_v2, sparse->total_output_v2, 1e-300});
    EXPECT_LT(std::fabs(dense->total_output_v2 - sparse->total_output_v2) /
                  scale,
              kParityRelTol);
  }
}

TEST(SimKernelParity, Transient) {
  for (const CircuitCase& c : benchmark_circuits()) {
    SCOPED_TRACE(c.name);
    spice::Circuit ckt = c.build();
    auto op = spice::solve_op(ckt, c.dc_options(ckt));
    ASSERT_TRUE(op.ok());

    spice::TranOptions dense_opt;
    dense_opt.t_stop = 1e-10;
    dense_opt.dt = 2e-12;  // 50 trapezoidal steps
    spice::TranOptions sparse_opt = dense_opt;
    dense_opt.kernel = SimKernel::Dense;
    sparse_opt.kernel = SimKernel::Sparse;
    const std::vector<spice::NodeId> probes = {ckt.node(c.probe)};
    auto dense = spice::transient(ckt, *op, probes, dense_opt);
    auto sparse = spice::transient(ckt, *op, probes, sparse_opt);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    ASSERT_EQ(dense->time.size(), sparse->time.size());
    EXPECT_LT(rel_diff(dense->waveforms[0], sparse->waveforms[0]),
              kParityRelTol);
  }
}

TEST(SimKernelParity, TransientWithStepStimulus) {
  // A genuinely dynamic waveform (the TIA settling measurement's shape):
  // photodiode current step into the inverter TIA, 400 steps.
  auto build_step = [] {
    using namespace spice;
    const auto card = TechCard::ptm45();
    const circuits::TiaParams params;
    Circuit ckt;
    const NodeId vdd = ckt.add_node("vdd");
    const NodeId in = ckt.add_node("in");
    const NodeId out = ckt.add_node("out");
    ckt.add<VoltageSource>("vsupply", vdd, kGround,
                           Waveform::constant(card.vdd));
    ckt.add<CurrentSource>("iin", kGround, in,
                           Waveform::step(0.0, 5e-6, 1e-10, 5e-13));
    ckt.add<Capacitor>("cpd", in, kGround, 50e-15);
    const double l = 2.0 * card.l_min;
    ckt.add<Mosfet>("mn", out, in, kGround, kGround, MosType::Nmos,
                    MosGeom{params.wn, l, params.mn}, card);
    ckt.add<Mosfet>("mp", out, in, vdd, vdd, MosType::Pmos,
                    MosGeom{params.wp, l, params.mp}, card);
    ckt.add<Resistor>("rf", in, out, params.feedback_resistance());
    ckt.add<Capacitor>("cl", out, kGround, 15e-15);
    return ckt;
  };
  spice::Circuit ckt = build_step();
  const auto card = spice::TechCard::ptm45();
  spice::DcOptions dc;
  dc.initial_node_v.assign(ckt.num_nodes(), 0.0);
  dc.initial_node_v[ckt.node("vdd")] = card.vdd;
  dc.initial_node_v[ckt.node("in")] = card.vdd / 2.0;
  dc.initial_node_v[ckt.node("out")] = card.vdd / 2.0;
  auto op = spice::solve_op(ckt, dc);
  ASSERT_TRUE(op.ok());

  spice::TranOptions dense_opt;
  dense_opt.t_stop = 1e-9;
  dense_opt.dt = 2.5e-12;  // 400 steps across the edge and settling tail
  spice::TranOptions sparse_opt = dense_opt;
  dense_opt.kernel = SimKernel::Dense;
  sparse_opt.kernel = SimKernel::Sparse;
  const std::vector<spice::NodeId> probes = {ckt.node("out")};
  auto dense = spice::transient(ckt, *op, probes, dense_opt);
  auto sparse = spice::transient(ckt, *op, probes, sparse_opt);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  // The waveform must actually move (step response), and the kernels agree.
  const auto& w = dense->waveforms[0];
  EXPECT_GT(std::fabs(w.front() - w.back()), 1e-3);
  EXPECT_LT(rel_diff(dense->waveforms[0], sparse->waveforms[0]),
            kParityRelTol);
}

TEST(SimKernelParity, WorkspaceReuseAcrossGridPoints) {
  // A reused workspace (one symbolic factorization) must produce the same
  // results as a fresh workspace per circuit.
  const auto card = spice::TechCard::ptm45();
  spice::SimWorkspace* shared = nullptr;
  for (int i = 0; i < 6; ++i) {
    circuits::TwoStageParams p;
    p.w12 = (5.0 + 2.5 * i) * 1e-6;
    spice::Circuit ckt = circuits::build_two_stage(p, card);
    if (shared == nullptr) {
      shared = &spice::workspace_for(ckt, "test_reuse_two_stage");
    }
    CircuitCase two_stage = benchmark_circuits()[1];
    spice::DcOptions with_ws = two_stage.dc_options(ckt);
    with_ws.workspace = shared;
    spice::DcOptions fresh = two_stage.dc_options(ckt);
    auto a = spice::solve_op(ckt, with_ws);
    auto b = spice::solve_op(ckt, fresh);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Same kernel, same symbolic ordering (it is purely structural): the
    // reused workspace is bit-identical to a fresh one.
    EXPECT_EQ(a->node_v, b->node_v);
    EXPECT_EQ(a->branch_i, b->branch_i);
  }
}

// ---- warm-start determinism -------------------------------------------------

namespace {

circuits::ProblemOptions raw_options() {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  return options;
}

/// Scripted random-walk actions shared by the warm/cold runs.
std::vector<std::vector<int>> scripted_actions(int steps, int params,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<int>> actions(static_cast<std::size_t>(steps));
  for (auto& a : actions) {
    a.resize(static_cast<std::size_t>(params));
    for (auto& v : a) v = static_cast<int>(rng.bounded(3));
  }
  return actions;
}

}  // namespace

TEST(WarmStart, TrajectoriesMatchColdStartedOnes) {
  auto prob = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem(raw_options()));
  env::EnvConfig warm_cfg;
  warm_cfg.warm_start = true;
  env::EnvConfig cold_cfg;
  cold_cfg.warm_start = false;

  env::SizingEnv warm_env(prob, warm_cfg);
  env::SizingEnv cold_env(prob, cold_cfg);
  warm_env.reset();
  cold_env.reset();
  EXPECT_EQ(warm_env.params(), cold_env.params());

  const auto actions =
      scripted_actions(12, warm_env.num_params(), /*seed=*/97);
  for (const auto& action : actions) {
    auto ws = warm_env.step(action);
    auto cs = cold_env.step(action);
    // The visited grid trajectory is identical...
    EXPECT_EQ(warm_env.params(), cold_env.params());
    // ...and the measured specs agree to the parity tolerance (the warm
    // Newton converges to the same fixed point as the cold chain).
    EXPECT_LT(rel_diff(warm_env.cur_specs(), cold_env.cur_specs()),
              kParityRelTol);
    EXPECT_EQ(ws.goal_met, cs.goal_met);
    EXPECT_EQ(ws.done, cs.done);
    EXPECT_NEAR(ws.reward, cs.reward, 1e-9 * (1.0 + std::fabs(cs.reward)));
    if (ws.done) break;
  }
}

TEST(WarmStart, RerunIsBitwiseReproducible) {
  auto prob = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem(raw_options()));
  env::EnvConfig cfg;
  cfg.warm_start = true;

  auto run = [&] {
    env::SizingEnv env(prob, cfg);
    env.reset();
    std::vector<circuits::SpecVector> specs;
    for (const auto& action :
         scripted_actions(10, env.num_params(), /*seed=*/53)) {
      env.step(action);
      specs.push_back(env.cur_specs());
    }
    return specs;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(WarmStart, VectorEnvLanesMatchSerialEnvsWithHints) {
  // The PR-2 lockstep contract must survive hint threading: a warm-started
  // vector env is bitwise-identical to warm-started serial envs.
  auto make_prob = [] {
    return std::make_shared<const circuits::SizingProblem>(
        circuits::make_two_stage_problem(raw_options()));
  };
  env::EnvConfig cfg;
  cfg.warm_start = true;
  const int kLanes = 3, kSteps = 4;

  auto prob_v = make_prob();
  env::VectorSizingEnv venv(prob_v, cfg, kLanes);
  venv.reset_all();

  auto prob_s = make_prob();
  std::vector<env::SizingEnv> serial;
  for (int i = 0; i < kLanes; ++i) serial.emplace_back(prob_s, cfg);
  for (auto& e : serial) e.reset();

  util::Rng rng(11);
  for (int t = 0; t < kSteps; ++t) {
    std::vector<std::vector<int>> actions(static_cast<std::size_t>(kLanes));
    for (auto& a : actions) {
      a.resize(static_cast<std::size_t>(serial[0].num_params()));
      for (auto& v : a) v = static_cast<int>(rng.bounded(3));
    }
    auto steps = venv.step_all(actions);
    for (int i = 0; i < kLanes; ++i) {
      auto sr = serial[static_cast<std::size_t>(i)].step(
          actions[static_cast<std::size_t>(i)]);
      EXPECT_EQ(venv.lane(i).cur_specs(),
                serial[static_cast<std::size_t>(i)].cur_specs());
      EXPECT_EQ(steps[static_cast<std::size_t>(i)].reward, sr.reward);
    }
  }
}

// ---- kernel counters through EvalStats --------------------------------------

TEST(KernelStats, SurfaceThroughEvalStats) {
  auto prob = circuits::make_two_stage_problem(raw_options());
  prob.reset_eval_stats();
  eval::SimHint hint;
  auto center = prob.center_params();
  for (int i = 0; i < 4; ++i) {
    center[0] = 40 + i;
    ASSERT_TRUE(prob.evaluate(center, &hint).ok());
  }
  const eval::EvalStats stats = prob.eval_stats();
  EXPECT_GT(stats.newton_iterations, 0);
  EXPECT_GT(stats.numeric_factorizations, 0);
  // Symbolic work amortizes: far fewer symbolic than numeric runs.
  EXPECT_LT(stats.symbolic_factorizations, stats.numeric_factorizations);
  // Steps 2..4 are one grid move apart and warm-start from the hint.
  EXPECT_EQ(stats.warm_start_attempts, 3);
  EXPECT_EQ(stats.warm_start_hits, 3);
  EXPECT_NEAR(stats.warm_start_hit_rate(), 1.0, 1e-12);
  // The one-line summary carries the kernel columns.
  EXPECT_NE(stats.summary().find("warm_start_attempts=3"), std::string::npos);
  EXPECT_NE(stats.summary().find("warm_start_hits=3"), std::string::npos);

  prob.reset_eval_stats();
  const eval::EvalStats cleared = prob.eval_stats();
  EXPECT_EQ(cleared.newton_iterations, 0);
  EXPECT_EQ(cleared.warm_start_attempts, 0);
}

TEST(KernelStats, EnvInvalidatesHintsOnReset) {
  auto prob = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem(raw_options()));
  env::EnvConfig cfg;
  cfg.warm_start = true;
  env::SizingEnv env(prob, cfg);
  prob->reset_eval_stats();
  env.reset();  // cold: no warm attempt
  const auto after_reset = prob->eval_stats();
  EXPECT_EQ(after_reset.warm_start_attempts, 0);

  std::vector<int> hold(static_cast<std::size_t>(env.num_params()), 2);
  env.step(hold);  // warm from the reset evaluation
  EXPECT_EQ(prob->eval_stats().warm_start_attempts, 1);

  env.reset();  // episode boundary invalidates the hint again
  env.step(hold);
  const auto final_stats = prob->eval_stats();
  EXPECT_EQ(final_stats.warm_start_attempts, 2);
}
