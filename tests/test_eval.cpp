// Tests for the evaluation-backend layer: decorator composition, cache
// hit/miss accounting, failure memoization, serial-vs-batch equivalence,
// corner fan-out parity with a serial reference loop, and a multi-threaded
// cache smoke test.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuits/problems.hpp"
#include "circuits/sizing_problem.hpp"
#include "eval/backend.hpp"
#include "eval/cached_backend.hpp"
#include "eval/corner_backend.hpp"
#include "eval/function_backend.hpp"
#include "eval/thread_pool.hpp"
#include "eval/threaded_backend.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

using namespace autockt;
using eval::EvalResult;
using eval::ParamVector;
using eval::SpecVector;

namespace {

/// A counting evaluator: spec0 = sum of indices, spec1 = product-ish. Fails
/// (returns Error) whenever the first index is negative... which valid grid
/// points never are, so failures are injected via a magic value instead.
constexpr int kFailIndex = 666;

std::shared_ptr<eval::FunctionBackend> counting_backend(
    std::shared_ptr<std::atomic<long>> calls) {
  return std::make_shared<eval::FunctionBackend>(
      [calls](const ParamVector& p) -> EvalResult {
        calls->fetch_add(1);
        if (!p.empty() && p[0] == kFailIndex) {
          return util::Error{"injected failure", 7};
        }
        double sum = 0.0;
        for (int x : p) sum += static_cast<double>(x);
        return SpecVector{sum, sum * 0.5};
      },
      "counting");
}

}  // namespace

TEST(EvalStats, MergeAndRates) {
  eval::EvalStats a;
  a.simulations = 10;
  a.cache_hits = 3;
  a.cache_misses = 7;
  a.batch_calls = 2;
  a.batch_points = 8;
  a.max_batch = 6;
  eval::EvalStats b;
  b.simulations = 5;
  b.max_batch = 4;
  eval::EvalStats c = a + b;
  EXPECT_EQ(c.simulations, 15);
  EXPECT_EQ(c.max_batch, 6);  // high-water mark, not a sum
  EXPECT_NEAR(c.cache_hit_rate(), 0.3, 1e-12);
  EXPECT_NEAR(c.mean_batch_size(), 4.0, 1e-12);

  eval::EvalStats delta = c.since(b);
  EXPECT_EQ(delta.simulations, 10);
}

TEST(EvalStats, PendingBatchGaugeTracksInFlightCalls) {
  // The leaf callable observes its own backend mid-batch: exactly one
  // evaluate_batch() must be pending from inside, zero once it returns.
  std::shared_ptr<eval::EvalBackend> backend;
  long seen_inside = -1;
  backend = std::make_shared<eval::FunctionBackend>(
      [&](const ParamVector&) -> EvalResult {
        seen_inside = backend->stats().pending_batches;
        return SpecVector{1.0};
      });
  EXPECT_EQ(backend->stats().pending_batches, 0);
  backend->evaluate_batch({{0}, {1}, {2}});
  EXPECT_EQ(seen_inside, 1);
  EXPECT_EQ(backend->stats().pending_batches, 0);
  // Single-point evaluate() is not a batch and does not touch the gauge.
  backend->evaluate({3});
  EXPECT_EQ(backend->stats().pending_batches, 0);
}

TEST(FunctionBackend, CountsSimulationsAndConvertsExceptions) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto backend = counting_backend(calls);
  auto r = backend->evaluate({1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[0], 6.0);
  EXPECT_EQ(backend->stats().simulations, 1);

  eval::FunctionBackend thrower(
      [](const ParamVector&) -> EvalResult {
        throw std::runtime_error("boom");
      },
      "thrower");
  auto bad = thrower.evaluate({0});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("boom"), std::string::npos);
}

TEST(EvalBackend, DefaultBatchMatchesSerial) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto backend = counting_backend(calls);
  std::vector<ParamVector> points = {{1, 1}, {2, 2}, {3, 3}};
  auto batch = backend->evaluate_batch(points);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto serial = backend->evaluate(points[i]);
    ASSERT_TRUE(batch[i].ok());
    EXPECT_EQ(batch[i].value(), serial.value());
  }
  const auto stats = backend->stats();
  EXPECT_EQ(stats.batch_calls, 1);
  EXPECT_EQ(stats.batch_points, 3);
  EXPECT_EQ(stats.max_batch, 3);
}

TEST(CachedBackend, HitMissAccounting) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto cached =
      std::make_shared<eval::CachedBackend>(counting_backend(calls), 4);

  auto first = cached->evaluate({5, 5});
  auto second = cached->evaluate({5, 5});
  auto third = cached->evaluate({6, 6});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), second.value());
  ASSERT_TRUE(third.ok());

  const auto stats = cached->stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.simulations, 2);  // merged from the leaf
  EXPECT_EQ(calls->load(), 2);
  EXPECT_EQ(cached->size(), 2u);

  cached->reset_stats();
  EXPECT_EQ(cached->stats().cache_hits, 0);
  EXPECT_EQ(cached->stats().simulations, 0);
  // reset_stats clears telemetry, not memoized entries.
  EXPECT_EQ(cached->size(), 2u);
}

TEST(CachedBackend, FailuresAreMemoizedToo) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto cached =
      std::make_shared<eval::CachedBackend>(counting_backend(calls), 4);

  auto first = cached->evaluate({kFailIndex});
  auto second = cached->evaluate({kFailIndex});
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.error().code, 7);
  EXPECT_EQ(second.error().message, first.error().message);
  EXPECT_EQ(calls->load(), 1) << "the failing point must not re-simulate";
  EXPECT_EQ(cached->stats().cache_hits, 1);
}

TEST(CachedBackend, BatchDeduplicatesRepeatedPoints) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto cached =
      std::make_shared<eval::CachedBackend>(counting_backend(calls), 4);

  std::vector<ParamVector> points = {{1}, {2}, {1}, {1}, {3}, {2}};
  auto batch = cached->evaluate_batch(points);
  ASSERT_EQ(batch.size(), 6u);
  EXPECT_EQ(calls->load(), 3) << "only unique points cost a simulation";
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    EXPECT_DOUBLE_EQ(batch[i].value()[0],
                     static_cast<double>(points[i][0]));
  }
  const auto stats = cached->stats();
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_hits, 3);  // duplicates within the batch
}

TEST(ThreadPoolBackend, BatchMatchesSerialValues) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto pool = std::make_shared<eval::ThreadPool>(4);
  auto threaded = std::make_shared<eval::ThreadPoolBackend>(
      counting_backend(calls), pool);

  std::vector<ParamVector> points;
  for (int i = 0; i < 64; ++i) points.push_back({i, i + 1});
  auto batch = threaded->evaluate_batch(points);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    EXPECT_DOUBLE_EQ(batch[i].value()[0],
                     static_cast<double>(points[i][0] + points[i][1]));
  }
  EXPECT_EQ(calls->load(), 64);
  EXPECT_EQ(threaded->stats().max_batch, 64);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  auto pool = std::make_shared<eval::ThreadPool>(2);
  std::atomic<int> total{0};
  pool->parallel_for(8, [&](std::size_t) {
    pool->parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(CornerBackend, MatchesSerialReferenceLoop) {
  // Corner evaluator: scales the spec by (corner+1); worst case folds with
  // min for spec0 (GreaterEq-like) via the injected fold.
  auto corner_eval = [](std::size_t corner, const ParamVector& p,
                        eval::OpHint*) -> EvalResult {
    double sum = 0.0;
    for (int x : p) sum += static_cast<double>(x);
    const double scale = 1.0 + 0.1 * static_cast<double>(corner);
    return SpecVector{sum * scale, sum / scale};
  };
  auto fold = [](const std::vector<SpecVector>& corners) {
    SpecVector out = corners.front();
    for (const auto& c : corners) {
      out[0] = std::min(out[0], c[0]);
      out[1] = std::max(out[1], c[1]);
    }
    return out;
  };

  const std::size_t kCorners = 5;
  eval::CornerBackend parallel_backend(
      kCorners, corner_eval, fold, std::make_shared<eval::ThreadPool>(4));
  eval::CornerBackend serial_backend(kCorners, corner_eval, fold, nullptr);

  for (int trial = 0; trial < 10; ++trial) {
    ParamVector p = {trial, trial * 2, 3};
    auto a = parallel_backend.evaluate(p);
    auto b = serial_backend.evaluate(p);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
  EXPECT_EQ(parallel_backend.stats().simulations,
            static_cast<long>(10 * kCorners));
}

TEST(CornerBackend, FirstFailingCornerWinsDeterministically) {
  // Corners 2 and 4 fail with distinct codes; the serial loop would surface
  // corner 2's error, so the parallel fan-out must as well.
  auto corner_eval = [](std::size_t corner, const ParamVector&,
                        eval::OpHint*) -> EvalResult {
    if (corner == 2) return util::Error{"corner 2 failed", 2};
    if (corner == 4) return util::Error{"corner 4 failed", 4};
    return SpecVector{1.0};
  };
  auto fold = [](const std::vector<SpecVector>& corners) {
    return corners.front();
  };
  eval::CornerBackend backend(6, corner_eval, fold,
                              std::make_shared<eval::ThreadPool>(4));
  for (int trial = 0; trial < 20; ++trial) {
    auto r = backend.evaluate({trial});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, 2);
  }
}

TEST(CachedBackend, MultiThreadedSmoke) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto cached =
      std::make_shared<eval::CachedBackend>(counting_backend(calls), 8);

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Overlapping key space across threads forces hit/miss races.
        ParamVector p = {(t + i) % 16, i % 7};
        auto r = cached->evaluate(p);
        const double expect = static_cast<double>((t + i) % 16 + i % 7);
        if (!r.ok() || r.value()[0] != expect) mismatch.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  const auto stats = cached->stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            static_cast<long>(kThreads * kIters));
  // At most one simulation per (possibly racing) miss, and no more misses
  // than the number of distinct keys times the worst-case race factor.
  EXPECT_EQ(stats.simulations, calls->load());
  EXPECT_GE(stats.cache_hits, static_cast<long>(kThreads * kIters) -
                                  stats.cache_misses);
}

TEST(SizingProblem, NullBackendYieldsErrorNotCrash) {
  circuits::SizingProblem prob;
  prob.name = "empty";
  auto r = prob.evaluate({1, 2});
  ASSERT_FALSE(r.ok());
  auto batch = prob.evaluate_batch({{1}, {2}});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch[0].ok());
  EXPECT_EQ(prob.eval_stats().simulations, 0);
}

TEST(SizingProblem, SetEvaluatorShimRoundTrips) {
  auto prob = test_support::make_synthetic_problem();
  ASSERT_TRUE(prob.backend != nullptr);
  auto serial = prob.evaluate(prob.center_params());
  ASSERT_TRUE(serial.ok());
  auto batch = prob.evaluate_batch({prob.center_params()});
  ASSERT_TRUE(batch[0].ok());
  EXPECT_EQ(batch[0].value(), serial.value());
}

TEST(Problems, PexCornerBackendMatchesSerialLoop) {
  // The acceptance check: the parallel CornerBackend PEX evaluation equals
  // the serial corner loop, point by point.
  circuits::ProblemOptions parallel_opts;
  circuits::ProblemOptions serial_opts;
  serial_opts.cache = false;
  serial_opts.parallel_batch = false;
  serial_opts.parallel_corners = false;
  auto parallel_prob = circuits::make_ngm_pex_problem(parallel_opts);
  auto serial_prob = circuits::make_ngm_pex_problem(serial_opts);

  util::Rng rng(1234);
  std::vector<circuits::ParamVector> points;
  points.push_back(parallel_prob.center_params());
  for (int i = 0; i < 4; ++i) {
    circuits::ParamVector p;
    for (const auto& def : parallel_prob.params) {
      p.push_back(static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(def.grid_size()))));
    }
    points.push_back(std::move(p));
  }

  for (const auto& p : points) {
    auto a = parallel_prob.evaluate(p);
    auto b = serial_prob.evaluate(p);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      ASSERT_EQ(a.value().size(), b.value().size());
      for (std::size_t s = 0; s < a.value().size(); ++s) {
        EXPECT_DOUBLE_EQ(a.value()[s], b.value()[s]);
      }
    } else {
      EXPECT_EQ(a.error().message, b.error().message);
    }
  }
  EXPECT_GT(parallel_prob.eval_stats().simulations, 0);
}

/// Pin the stat-dump surface: fields() must name every public EvalStats
/// field (in declaration order) and summary() must print every one of
/// them. A new field that is added to the struct but forgotten in fields()
/// — and therefore missing from trainer/deploy dumps, bench snapshots and
/// the OBSERVABILITY.md glossary — fails here.
TEST(EvalStats, FieldsAndSummaryNameEveryPublicField) {
  const std::vector<std::string> expected = {
      "simulations",
      "cache_hits",
      "cache_misses",
      "batch_calls",
      "batch_points",
      "max_batch",
      "pending_batches",
      "sim_seconds",
      "newton_iterations",
      "symbolic_factorizations",
      "numeric_factorizations",
      "dense_fallbacks",
      "warm_start_attempts",
      "warm_start_hits",
      "batch_refactorizations",
      "batch_lanes",
      "batch_lane_fallbacks",
      "disk_hits",
      "disk_appends",
      "worker_dispatches",
      "worker_retries",
      "worker_restarts",
  };
  const eval::EvalStats stats;
  const auto fields = stats.fields();
  ASSERT_EQ(fields.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fields[i].first, expected[i]) << "fields()[" << i << "]";
  }
  const std::string summary = stats.summary();
  for (const auto& name : expected) {
    EXPECT_NE(summary.find(name + "="), std::string::npos)
        << "summary() does not print " << name;
  }
  // The derived ratios ride along in every dump.
  EXPECT_NE(summary.find("cache_hit_rate="), std::string::npos);
  EXPECT_NE(summary.find("warm_start_hit_rate="), std::string::npos);
}

TEST(EvalStats, FieldsReflectValues) {
  eval::EvalStats stats;
  stats.simulations = 7;
  stats.pending_batches = 2;
  stats.dense_fallbacks = 3;
  stats.warm_start_attempts = 5;
  stats.sim_seconds = 1.5;
  std::map<std::string, double> by_name;
  for (const auto& [name, value] : stats.fields()) by_name[name] = value;
  EXPECT_DOUBLE_EQ(by_name["simulations"], 7.0);
  EXPECT_DOUBLE_EQ(by_name["pending_batches"], 2.0);
  EXPECT_DOUBLE_EQ(by_name["dense_fallbacks"], 3.0);
  EXPECT_DOUBLE_EQ(by_name["warm_start_attempts"], 5.0);
  EXPECT_DOUBLE_EQ(by_name["sim_seconds"], 1.5);
}
