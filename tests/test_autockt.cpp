// Integration tests for the AutoCkt facade: train -> deploy -> transfer on
// the cheap synthetic problem, plus deployment statistics and trajectory
// tracing contracts.

#include <gtest/gtest.h>

#include <memory>

#include "autockt/autockt.hpp"
#include "autockt/experiments.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using circuits::SpecVector;

namespace {

std::shared_ptr<const circuits::SizingProblem> synth() {
  return std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(3, 21));
}

core::AutoCktConfig small_config() {
  core::AutoCktConfig config;
  config.ppo.max_iterations = 20;
  config.ppo.steps_per_iteration = 400;
  config.ppo.num_workers = 2;
  config.env_config.horizon = 15;
  config.train_target_count = 20;
  config.seed = 5;
  return config;
}

}  // namespace

TEST(AutoCkt, TrainDeployRoundTrip) {
  auto prob = synth();
  auto outcome = core::train_agent(prob, small_config());
  EXPECT_EQ(outcome.train_targets.size(), 20u);
  ASSERT_FALSE(outcome.history.iterations.empty());

  util::Rng rng(9);
  const auto targets = env::sample_targets(*prob, 40, rng);
  const auto stats = core::deploy_agent(outcome.agent, prob, targets,
                                        small_config().env_config);
  EXPECT_EQ(stats.total(), 40);
  EXPECT_GT(stats.reach_fraction(), 0.7);
  EXPECT_GT(stats.avg_steps_reached(), 0.0);
  // A failed greedy attempt may be followed by one stochastic retry, so a
  // reached target can cost up to two horizons of simulations.
  EXPECT_LE(stats.avg_steps_reached(), 30.0);
}

TEST(AutoCkt, DeployRecordsAreComplete) {
  auto prob = synth();
  auto outcome = core::train_agent(prob, small_config());
  util::Rng rng(10);
  const auto targets = env::sample_targets(*prob, 5, rng);
  const auto stats = core::deploy_agent(outcome.agent, prob, targets,
                                        small_config().env_config);
  for (const auto& r : stats.records) {
    EXPECT_EQ(r.target.size(), prob->specs.size());
    EXPECT_EQ(r.final_specs.size(), prob->specs.size());
    EXPECT_EQ(r.final_params.size(), prob->params.size());
    EXPECT_GE(r.steps, 1);
    if (r.reached) {
      EXPECT_TRUE(prob->goal_met(r.final_specs, r.target));
    }
  }
}

TEST(AutoCkt, StatsAggregation) {
  core::DeployStats stats;
  stats.records.push_back({{1}, {1}, 5, true, {0}});
  stats.records.push_back({{1}, {1}, 9, true, {0}});
  stats.records.push_back({{1}, {1}, 30, false, {0}});
  EXPECT_EQ(stats.total(), 3);
  EXPECT_EQ(stats.reached_count(), 2);
  EXPECT_NEAR(stats.reach_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.avg_steps_reached(), 7.0, 1e-12);
  EXPECT_EQ(stats.total_sim_steps(), 44);
}

TEST(AutoCkt, EmptyStatsAreSafe) {
  core::DeployStats stats;
  EXPECT_EQ(stats.total(), 0);
  EXPECT_EQ(stats.reached_count(), 0);
  EXPECT_EQ(stats.reach_fraction(), 0.0);
  EXPECT_EQ(stats.avg_steps_reached(), 0.0);
}

TEST(AutoCkt, TransferAcrossEnvironments) {
  // Train on the base problem, deploy on a "PEX-like" variant whose specs
  // are systematically degraded — the agent must still navigate.
  auto base = synth();
  auto outcome = core::train_agent(base, small_config());

  auto shifted = test_support::make_synthetic_problem(3, 21);
  const auto base_backend = shifted.backend;
  shifted.set_evaluator(
      [base_backend](const circuits::ParamVector& p)
          -> util::Expected<circuits::SpecVector> {
        auto specs = base_backend->evaluate(p);
        if (!specs.ok()) return specs;
        (*specs)[0] *= 0.97;  // GreaterEq spec degraded
        (*specs)[1] *= 1.02;  // LessEq spec degraded
        return specs;
      },
      "pexish");
  auto pexish = std::make_shared<const circuits::SizingProblem>(
      std::move(shifted));

  util::Rng rng(11);
  const auto targets = env::sample_targets(*pexish, 30, rng);
  const auto stats = core::deploy_agent(outcome.agent, pexish, targets,
                                        small_config().env_config);
  EXPECT_GT(stats.reach_fraction(), 0.5);  // knowledge transfers
}

TEST(AutoCkt, TraceTrajectoryContract) {
  auto prob = synth();
  auto outcome = core::train_agent(prob, small_config());
  util::Rng rng(12);
  const auto target = env::sample_target(*prob, rng);
  const auto trace = core::trace_trajectory(outcome.agent, prob, target,
                                            small_config().env_config);
  ASSERT_GE(trace.specs.size(), 2u);  // start plus at least one step
  EXPECT_EQ(trace.specs.size(), trace.params.size());
  EXPECT_EQ(trace.target, target);
  // First point is the grid centre.
  EXPECT_EQ(trace.params.front(), prob->center_params());
  if (trace.reached) {
    EXPECT_TRUE(prob->goal_met(trace.specs.back(), trace.target));
  }
}

TEST(AutoCkt, StochasticDeploymentAlsoWorks) {
  auto prob = synth();
  auto outcome = core::train_agent(prob, small_config());
  util::Rng rng(13);
  const auto targets = env::sample_targets(*prob, 20, rng);
  const auto stats =
      core::deploy_agent(outcome.agent, prob, targets,
                         small_config().env_config, /*stochastic=*/true);
  EXPECT_GT(stats.reach_fraction(), 0.5);
}

TEST(AutoCkt, TrainAgentProducesSuitesAndHoldoutProbe) {
  auto prob = synth();
  auto config = small_config();
  config.holdout_target_count = 10;
  config.holdout_interval = 3;
  auto outcome = core::train_agent(prob, config);

  EXPECT_EQ(outcome.train_suite.size(), outcome.train_targets.size());
  EXPECT_EQ(outcome.train_suite.targets(), outcome.train_targets);
  ASSERT_EQ(outcome.holdout_suite.size(), 10u);
  EXPECT_EQ(outcome.holdout_suite.name(), "synthetic/holdout");
  // The probe ran and landed in [0, 1].
  EXPECT_GE(outcome.history.final_holdout_goal_rate, 0.0);
  EXPECT_LE(outcome.history.final_holdout_goal_rate, 1.0);
  // A trained agent on this easy problem generalizes to the holdout.
  EXPECT_GT(outcome.history.final_holdout_goal_rate, 0.5);
}

TEST(AutoCkt, HoldoutSuiteIsInvariantUnderTrainingSeed) {
  auto prob = synth();
  auto config = small_config();
  config.ppo.max_iterations = 1;  // the suites are fixed before training
  config.holdout_target_count = 8;
  auto a = core::train_agent(prob, config);
  config.seed = config.seed + 1234;
  auto b = core::train_agent(prob, config);
  EXPECT_EQ(a.holdout_suite, b.holdout_suite);
  // ...while the training targets DO follow the training seed.
  EXPECT_NE(a.train_targets, b.train_targets);
}

TEST(AutoCkt, EvaluateGeneralizationReportsBothSuites) {
  auto prob = synth();
  auto config = small_config();
  config.holdout_target_count = 10;
  auto outcome = core::train_agent(prob, config);
  const auto report = core::evaluate_generalization(
      outcome.agent, prob, outcome.train_suite, outcome.holdout_suite,
      config.env_config);
  EXPECT_EQ(report.train.total(),
            static_cast<int>(outcome.train_suite.size()));
  EXPECT_EQ(report.holdout.total(), 10);
  EXPECT_EQ(report.train_suite_name, "synthetic/train");
  EXPECT_EQ(report.holdout_suite_name, "synthetic/holdout");
  EXPECT_GT(report.train_goal_rate(), 0.5);
  EXPECT_GT(report.holdout_goal_rate(), 0.5);
  EXPECT_NEAR(report.gap(),
              report.train_goal_rate() - report.holdout_goal_rate(), 1e-12);
}

TEST(AutoCkt, CurriculumTrainingReachesHoldoutTargets) {
  auto prob = synth();
  auto config = small_config();
  config.sampling = core::AutoCktConfig::Sampling::Curriculum;
  config.holdout_target_count = 10;
  auto outcome = core::train_agent(prob, config);
  EXPECT_TRUE(outcome.train_targets.empty());  // no fixed set under curriculum
  EXPECT_GE(outcome.history.final_holdout_goal_rate, 0.5);
}

TEST(Experiments, DeploySuiteIsSharedAcrossMethods) {
  auto prob = synth();
  const auto suite = core::make_deploy_suite(*prob, 12, 0xabc);
  EXPECT_EQ(suite.name(), "synthetic/deploy");
  ASSERT_EQ(suite.size(), 12u);
  // Same (problem, count, seed) -> byte-identical suite in any process.
  EXPECT_EQ(core::make_deploy_suite(*prob, 12, 0xabc), suite);

  // GA and the random agent consume the same suite the RL deployment uses.
  baselines::GaConfig ga;
  ga.max_evals = 1500;
  const auto ga_agg = core::run_ga_over_suite(*prob, suite.head(3), ga, {10});
  EXPECT_EQ(ga_agg.targets, 3);
  env::EnvConfig env_config;
  const auto rand_agg =
      core::run_random_over_suite(prob, suite, env_config, 3);
  EXPECT_EQ(rand_agg.targets, 12);
}

TEST(Experiments, PaperEquivalentHours) {
  EXPECT_NEAR(core::paper_equivalent_hours(3600.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(core::paper_equivalent_hours(40 * 23, 91.0), 23.26, 0.05);
}

TEST(Experiments, SpeedupString) {
  EXPECT_EQ(core::speedup_string(400.0, 10.0), "40.0x");
  EXPECT_EQ(core::speedup_string(0.0, 10.0), "n/a");
  EXPECT_EQ(core::speedup_string(10.0, 0.0), "n/a");
}

TEST(Experiments, GaOverTargetsAggregates) {
  const auto prob = test_support::make_synthetic_problem();
  util::Rng rng(14);
  const auto targets = env::sample_targets(prob, 4, rng);
  baselines::GaConfig config;
  config.max_evals = 2000;
  const auto agg = core::run_ga_over_targets(prob, targets, config, {10, 20});
  EXPECT_EQ(agg.targets, 4);
  EXPECT_GT(agg.reached, 0);
  EXPECT_GT(agg.avg_evals_to_reach, 0.0);
}

TEST(Experiments, RandomOverTargetsAggregates) {
  auto prob = synth();
  util::Rng rng(15);
  const auto targets = env::sample_targets(*prob, 10, rng);
  env::EnvConfig env_config;
  const auto agg =
      core::run_random_over_targets(prob, targets, env_config, 3);
  EXPECT_EQ(agg.targets, 10);
  EXPECT_GE(agg.reached, 0);
  EXPECT_LE(agg.reached, 10);
}

// ---- evaluation-backend telemetry ------------------------------------------

#include "eval/cached_backend.hpp"

namespace {

/// Synthetic problem behind a memo cache, as the real factories build it.
std::shared_ptr<const circuits::SizingProblem> synth_cached() {
  auto prob = test_support::make_synthetic_problem(3, 21);
  prob.backend = std::make_shared<eval::CachedBackend>(prob.backend, 8);
  return std::make_shared<const circuits::SizingProblem>(std::move(prob));
}

}  // namespace

TEST(AutoCkt, RepeatedDeploymentHitsCacheWithUnchangedOutcomes) {
  auto prob = synth_cached();
  // An untrained agent is fine: deployment behavior is deterministic for a
  // fixed seed, which is exactly what makes the second pass cacheable.
  rl::PpoConfig ppo;
  env::EnvConfig env_config;
  env_config.horizon = 10;
  env::SizingEnv probe(prob, env_config);
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), ppo);

  util::Rng rng(21);
  const auto targets = env::sample_targets(*prob, 8, rng);
  const auto first =
      core::deploy_agent(agent, prob, targets, env_config, false, 77);
  const auto second =
      core::deploy_agent(agent, prob, targets, env_config, false, 77);

  // Outcomes are unchanged...
  ASSERT_EQ(first.total(), second.total());
  for (int i = 0; i < first.total(); ++i) {
    EXPECT_EQ(first.records[i].reached, second.records[i].reached);
    EXPECT_EQ(first.records[i].steps, second.records[i].steps);
    EXPECT_EQ(first.records[i].final_params, second.records[i].final_params);
    EXPECT_EQ(first.records[i].final_specs, second.records[i].final_specs);
  }
  // ...but the second pass is answered from the cache.
  EXPECT_GT(second.eval_stats.cache_hits, 0);
  EXPECT_EQ(second.eval_stats.simulations, 0);
  EXPECT_GT(first.eval_stats.cache_misses, 0);
}

TEST(AutoCkt, TrainingSurfacesEvalStats) {
  auto prob = synth_cached();
  auto config = small_config();
  config.ppo.max_iterations = 2;
  auto outcome = core::train_agent(prob, config);
  const auto& history = outcome.history;
  EXPECT_GT(history.eval_stats.cache_lookups(), 0);
  // Every episode restarts from the grid centre, so training revisits at
  // least that point constantly.
  EXPECT_GT(history.eval_stats.cache_hits, 0);
  ASSERT_FALSE(history.iterations.empty());
  const auto& last = history.iterations.back();
  EXPECT_GT(last.cumulative_simulations + last.cumulative_cache_hits, 0);
  EXPECT_EQ(last.cumulative_cache_hits, history.eval_stats.cache_hits);
}
