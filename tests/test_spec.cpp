// Spec-scenario subsystem tests: SpecSpace validation and region geometry,
// the three samplers' determinism/coverage/bias contracts (including the
// bitwise-compatibility of UniformSampler with the historical
// env::sample_target stream), and SpecSuite generation, splitting and CSV
// round-tripping.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <vector>

#include "env/sizing_env.hpp"
#include "spec/spec_space.hpp"
#include "spec/spec_suite.hpp"
#include "spec/target_sampler.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using circuits::SpecDef;
using circuits::SpecSense;
using circuits::SpecVector;

namespace {

std::vector<SpecDef> good_specs() {
  return {
      {"gain", SpecSense::GreaterEq, 200.0, 400.0, 300.0, 0.0},
      {"noise", SpecSense::LessEq, 1e-4, 3e-4, 2e-4, 1.0},
      {"power", SpecSense::Minimize, 0.1, 0.5, 0.3, 1.0},
  };
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

// ---- SpecSpace validation (satellite: harden SpecDef) -----------------------

TEST(SpecSpace, AcceptsValidSpecs) {
  EXPECT_NO_THROW(spec::SpecSpace{good_specs()});
}

TEST(SpecSpace, RejectsInvertedSamplingRange) {
  auto specs = good_specs();
  specs[1].sample_lo = 5.0;
  specs[1].sample_hi = 1.0;
  try {
    spec::SpecSpace space(specs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the offending spec.
    EXPECT_NE(std::string(e.what()).find("noise"), std::string::npos);
  }
}

TEST(SpecSpace, RejectsNonPositiveNormConst) {
  auto specs = good_specs();
  specs[0].norm_const = 0.0;
  EXPECT_THROW(spec::SpecSpace{specs}, std::invalid_argument);
  specs[0].norm_const = -2.0;
  EXPECT_THROW(spec::SpecSpace{specs}, std::invalid_argument);
}

TEST(SpecSpace, RejectsNaNBounds) {
  auto specs = good_specs();
  specs[2].sample_lo = kNaN;
  EXPECT_THROW(spec::SpecSpace{specs}, std::invalid_argument);
  specs = good_specs();
  specs[2].sample_hi = kNaN;
  EXPECT_THROW(spec::SpecSpace{specs}, std::invalid_argument);
  specs = good_specs();
  specs[0].norm_const = kNaN;
  EXPECT_THROW(spec::SpecSpace{specs}, std::invalid_argument);
}

TEST(SpecSpace, RejectsEmpty) {
  EXPECT_THROW(spec::SpecSpace(std::vector<SpecDef>{}),
               std::invalid_argument);
}

TEST(SpecDef, ValidateNamesTheSpec) {
  SpecDef bad{"ugbw_hz", SpecSense::GreaterEq, 10.0, 5.0, 1.0, 0.0};
  try {
    bad.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ugbw_hz"), std::string::npos);
  }
}

TEST(SizingProblem, ValidateNamesProblemAndSpec) {
  auto prob = test_support::make_synthetic_problem();
  prob.specs[1].norm_const = -1.0;
  try {
    prob.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("synthetic"), std::string::npos);
    EXPECT_NE(what.find("diff"), std::string::npos);
  }
}

TEST(SizingEnv, ConstructionRejectsInvalidSpecs) {
  auto prob = test_support::make_synthetic_problem();
  prob.specs[0].sample_hi = prob.specs[0].sample_lo - 1.0;
  EXPECT_THROW(
      env::SizingEnv(
          std::make_shared<const circuits::SizingProblem>(std::move(prob)),
          env::EnvConfig{}),
      std::invalid_argument);
}

// ---- SpecSpace geometry -----------------------------------------------------

TEST(SpecSpace, MidpointAndContains) {
  spec::SpecSpace space(good_specs());
  const SpecVector mid = space.midpoint();
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_DOUBLE_EQ(mid[0], 300.0);
  EXPECT_DOUBLE_EQ(mid[1], 2e-4);
  EXPECT_TRUE(space.contains(mid));
  EXPECT_FALSE(space.contains({500.0, 2e-4, 0.3}));   // gain above range
  EXPECT_FALSE(space.contains({300.0, 2e-4}));        // arity
}

TEST(SpecSpace, RegionIndexingRoundTrips) {
  spec::SpecSpace space(good_specs());
  const int bins = 3;
  EXPECT_EQ(space.num_regions(bins), 27);
  std::set<int> seen;
  util::Rng rng(11);
  spec::UniformSampler sampler(space);
  for (int i = 0; i < 500; ++i) {
    const int r = space.region_of(sampler.sample(rng), bins);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 27);
    seen.insert(r);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), 27);  // uniform hits all cells
  // Region bounds contain what maps to them.
  for (int r = 0; r < 27; ++r) {
    SpecVector probe;
    for (std::size_t i = 0; i < space.size(); ++i) {
      const auto [lo, hi] = space.region_axis_bounds(r, i, bins);
      probe.push_back(0.5 * (lo + hi));
    }
    EXPECT_EQ(space.region_of(probe, bins), r);
  }
}

TEST(SpecSpace, DegenerateAxisCollapsesToOneBin) {
  auto specs = good_specs();
  specs[1].sample_lo = specs[1].sample_hi = 2e-4;  // pinned (PEX-style)
  spec::SpecSpace space(specs);
  EXPECT_EQ(space.axis_bins(1, 3), 1);
  EXPECT_EQ(space.num_regions(3), 9);
  const std::string name = space.region_name(0, 3);
  EXPECT_NE(name.find("noise[0/1]"), std::string::npos);
}

// ---- UniformSampler: bitwise-compatible with the historical stream ----------

TEST(UniformSampler, MatchesHistoricalSampleTargetBitwise) {
  const auto prob = test_support::make_synthetic_problem();
  spec::UniformSampler sampler{spec::SpecSpace(prob)};
  util::Rng a(97), b(97);
  for (int i = 0; i < 100; ++i) {
    // The historical stream: one rng.uniform(lo, hi) per spec, in order.
    SpecVector expected;
    for (const auto& s : prob.specs) {
      expected.push_back(b.uniform(s.sample_lo, s.sample_hi));
    }
    EXPECT_EQ(sampler.sample(a), expected);  // bitwise
  }
}

TEST(UniformSampler, MatchesEnvSampleTargetsBitwise) {
  const auto prob = test_support::make_synthetic_problem();
  util::Rng a(5), b(5);
  spec::UniformSampler sampler{spec::SpecSpace(prob)};
  const auto via_env = env::sample_targets(prob, 20, a);
  for (const auto& expected : via_env) {
    EXPECT_EQ(sampler.sample(b), expected);
  }
}

// ---- sampler determinism ----------------------------------------------------

TEST(TargetSamplers, DeterministicUnderSeedAllThree) {
  spec::SpecSpace space(good_specs());
  auto stream = [&](spec::TargetSampler& sampler, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<SpecVector> out;
    for (int i = 0; i < 60; ++i) out.push_back(sampler.sample(rng));
    return out;
  };
  spec::UniformSampler u1(space), u2(space);
  EXPECT_EQ(stream(u1, 3), stream(u2, 3));
  spec::StratifiedSampler s1(space, 8), s2(space, 8);
  EXPECT_EQ(stream(s1, 4), stream(s2, 4));
  spec::CurriculumSampler c1(space), c2(space);
  EXPECT_EQ(stream(c1, 5), stream(c2, 5));
  // Different seeds genuinely differ.
  spec::UniformSampler u3(space);
  EXPECT_NE(stream(u3, 6), stream(u1, 3));
}

TEST(CurriculumSampler, DeterministicReplayWithOutcomes) {
  spec::SpecSpace space(good_specs());
  auto run = [&] {
    spec::CurriculumSampler sampler(space);
    util::Rng rng(21);
    std::vector<SpecVector> drawn;
    for (int i = 0; i < 200; ++i) {
      auto t = sampler.sample(rng);
      // Deterministic synthetic outcome: "solve" the low-gain half.
      sampler.record_outcome(t, t[0] < 300.0);
      drawn.push_back(std::move(t));
    }
    return drawn;
  };
  EXPECT_EQ(run(), run());
}

// ---- StratifiedSampler coverage --------------------------------------------

TEST(StratifiedSampler, OneCycleCoversEveryStratumOfEveryAxis) {
  spec::SpecSpace space(good_specs());
  const int strata = 10;
  spec::StratifiedSampler sampler(space, strata);
  util::Rng rng(7);
  std::vector<std::set<int>> hit(space.size());
  for (int k = 0; k < strata; ++k) {
    const SpecVector t = sampler.sample(rng);
    for (std::size_t i = 0; i < space.size(); ++i) {
      const double frac = (t[i] - space.lo(i)) / space.width(i);
      hit[i].insert(static_cast<int>(frac * strata));
    }
  }
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(static_cast<int>(hit[i].size()), strata)
        << "axis " << i << " not fully covered";
  }
}

TEST(StratifiedSampler, HandlesDegenerateAxis) {
  auto specs = good_specs();
  specs[0].sample_lo = specs[0].sample_hi = 250.0;
  spec::StratifiedSampler sampler(spec::SpecSpace(specs), 4);
  util::Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(sampler.sample(rng)[0], 250.0);
  }
}

TEST(StratifiedSampler, IsDeclaredSequential) {
  spec::SpecSpace space(good_specs());
  spec::StratifiedSampler stratified(space, 4);
  spec::UniformSampler uniform(space);
  spec::CurriculumSampler curriculum(space);
  EXPECT_FALSE(stratified.concurrent_sampling_safe());
  EXPECT_TRUE(uniform.concurrent_sampling_safe());
  EXPECT_TRUE(curriculum.concurrent_sampling_safe());
}

// ---- CurriculumSampler bias -------------------------------------------------

TEST(CurriculumSampler, BiasesTowardTheFrontier) {
  spec::SpecSpace space(good_specs());
  spec::CurriculumConfig config;
  config.bins_per_axis = 2;  // 8 regions
  spec::CurriculumSampler sampler(space, config);

  // Region 0: mastered (all successes). Region 7: frontier (alternating).
  SpecVector in0, in7;
  for (std::size_t i = 0; i < space.size(); ++i) {
    in0.push_back(space.lo(i) + 0.1 * space.width(i));
    in7.push_back(space.lo(i) + 0.9 * space.width(i));
  }
  const int r0 = space.region_of(in0, 2);
  const int r7 = space.region_of(in7, 2);
  for (int i = 0; i < 50; ++i) {
    sampler.record_outcome(in0, true);
    sampler.record_outcome(in7, (i % 2) == 0);
  }
  EXPECT_GT(sampler.region_success(r0), 0.95);
  EXPECT_GT(sampler.region_weight(r7), 2.0 * sampler.region_weight(r0));

  // Empirically: frontier region drawn more often than the mastered one.
  util::Rng rng(31);
  int n0 = 0, n7 = 0;
  for (int i = 0; i < 4000; ++i) {
    const int r = space.region_of(sampler.sample(rng), 2);
    n0 += r == r0 ? 1 : 0;
    n7 += r == r7 ? 1 : 0;
  }
  EXPECT_GT(n7, 2 * n0);
}

TEST(CurriculumSampler, UnseenRegionsKeepThePrior) {
  spec::SpecSpace space(good_specs());
  spec::CurriculumSampler sampler(space, {});
  EXPECT_DOUBLE_EQ(sampler.region_success(0), 0.5);
  EXPECT_EQ(sampler.outcomes_recorded(), 0);
  // First outcome replaces the prior outright.
  SpecVector t = space.midpoint();
  sampler.record_outcome(t, false);
  EXPECT_DOUBLE_EQ(
      sampler.region_success(space.region_of(t, sampler.config().bins_per_axis)),
      0.0);
}

TEST(CurriculumSampler, SamplesStayInsideTheBox) {
  spec::SpecSpace space(good_specs());
  spec::CurriculumSampler sampler(space, {});
  util::Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(space.contains(sampler.sample(rng)));
  }
}

// ---- SuiteSampler -----------------------------------------------------------

TEST(SuiteSampler, MatchesHistoricalBoundedPickBitwise) {
  const auto prob = test_support::make_synthetic_problem();
  util::Rng seed_rng(3);
  const auto targets = env::sample_targets(prob, 12, seed_rng);
  spec::SuiteSampler sampler(targets);
  util::Rng a(8), b(8);
  for (int i = 0; i < 50; ++i) {
    // Historical stream in rl/ppo.cpp: targets[rng.bounded(size)].
    EXPECT_EQ(sampler.sample(a), targets[b.bounded(targets.size())]);
  }
}

TEST(SuiteSampler, RejectsEmpty) {
  EXPECT_THROW(spec::SuiteSampler(std::vector<SpecVector>{}),
               std::invalid_argument);
}

// ---- SpecSuite --------------------------------------------------------------

TEST(SpecSuite, GenerateIsDeterministicFromSuiteSeed) {
  spec::SpecSpace space(good_specs());
  spec::UniformSampler s1(space), s2(space);
  const auto a = spec::SpecSuite::generate(space, s1, 30, 0xa11ce, "suite");
  const auto b = spec::SpecSuite::generate(space, s2, 30, 0xa11ce, "suite");
  EXPECT_EQ(a, b);
  spec::UniformSampler s3(space);
  const auto c = spec::SpecSuite::generate(space, s3, 30, 0xa11cf, "suite");
  EXPECT_NE(a.targets(), c.targets());
}

TEST(SpecSuite, SplitIsDisjointStableAndDeterministic) {
  spec::SpecSpace space(good_specs());
  spec::UniformSampler sampler(space);
  const auto suite = spec::SpecSuite::generate(space, sampler, 40, 5, "s");
  const auto split1 = suite.split(0.25, 99);
  const auto split2 = suite.split(0.25, 99);
  EXPECT_EQ(split1.train, split2.train);
  EXPECT_EQ(split1.holdout, split2.holdout);
  EXPECT_EQ(split1.train.size(), 30u);
  EXPECT_EQ(split1.holdout.size(), 10u);
  // Disjoint, and together they are exactly the suite (order preserved).
  std::set<std::size_t> train_idx, holdout_idx;
  auto index_of = [&](const SpecVector& t) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      if (suite[i] == t) return i;
    }
    return suite.size();
  };
  for (const auto& t : split1.train.targets()) {
    train_idx.insert(index_of(t));
  }
  for (const auto& t : split1.holdout.targets()) {
    holdout_idx.insert(index_of(t));
  }
  EXPECT_EQ(train_idx.size() + holdout_idx.size(), suite.size());
  for (std::size_t i : holdout_idx) EXPECT_EQ(train_idx.count(i), 0u);
  // A different split seed cuts differently.
  const auto split3 = suite.split(0.25, 100);
  EXPECT_NE(split1.holdout.targets(), split3.holdout.targets());
}

TEST(SpecSuite, TrainHoldoutProtocolIndependentOfTrainingSeed) {
  spec::SpecSpace space(good_specs());
  // The whole point: holdout depends on the suite seed only; nothing about
  // a training run (its seed, its sampler draws) can perturb it.
  const auto a = spec::make_train_holdout_suites(space, 24, 8, 0xfeed, "p");
  const auto b = spec::make_train_holdout_suites(space, 24, 8, 0xfeed, "p");
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.holdout, b.holdout);
  EXPECT_EQ(a.train.size(), 24u);
  EXPECT_EQ(a.holdout.size(), 8u);
  const auto c = spec::make_train_holdout_suites(space, 24, 8, 0xbeef, "p");
  EXPECT_NE(a.holdout.targets(), c.holdout.targets());
}

TEST(SpecSuite, CsvRoundTripsBitwise) {
  spec::SpecSpace space(good_specs());
  spec::UniformSampler sampler(space);
  const auto suite =
      spec::SpecSuite::generate(space, sampler, 25, 0x5eed, "round_trip");
  const auto parsed = spec::SpecSuite::from_csv(suite.to_csv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, suite);  // name, spec names and values, bitwise
}

TEST(SpecSuite, SaveLoadRoundTrip) {
  spec::SpecSpace space(good_specs());
  spec::UniformSampler sampler(space);
  const auto suite =
      spec::SpecSuite::generate(space, sampler, 10, 3, "file_suite");
  const std::string path = ::testing::TempDir() + "autockt_suite_test.csv";
  ASSERT_TRUE(suite.save(path));
  const auto loaded = spec::SpecSuite::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, suite);
  std::remove(path.c_str());
}

TEST(SpecSuite, FromCsvRejectsMalformedInput) {
  EXPECT_FALSE(spec::SpecSuite::from_csv("").ok());
  EXPECT_FALSE(spec::SpecSuite::from_csv("# spec_suite,name=x\n").ok());
  // Row arity mismatch.
  EXPECT_FALSE(spec::SpecSuite::from_csv("a,b\n1.0\n").ok());
  // Non-numeric cell.
  EXPECT_FALSE(spec::SpecSuite::from_csv("a,b\n1.0,oops\n").ok());
  // Valid minimal suite.
  const auto ok = spec::SpecSuite::from_csv("a,b\n1.0,2.0\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);
  EXPECT_DOUBLE_EQ((*ok)[0][1], 2.0);
}

TEST(SpecSuite, HeadPrefix) {
  spec::SpecSpace space(good_specs());
  spec::UniformSampler sampler(space);
  const auto suite = spec::SpecSuite::generate(space, sampler, 10, 2, "s");
  const auto head = suite.head(4);
  ASSERT_EQ(head.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(head[i], suite[i]);
  EXPECT_EQ(suite.head(99).size(), 10u);
  EXPECT_EQ(suite.head(99).name(), "s");  // full prefix keeps the name
}

TEST(SpecSuite, ConstructorRejectsArityMismatch) {
  EXPECT_THROW(spec::SpecSuite("bad", {"a", "b"}, {{1.0}}),
               std::invalid_argument);
}
