#include <gtest/gtest.h>

#include <memory>

#include "env/sizing_env.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using namespace autockt::env;
using circuits::SpecVector;

namespace {
std::shared_ptr<const circuits::SizingProblem> synth(int n = 3, int grid = 21) {
  return std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(n, grid));
}
}  // namespace

TEST(SizingEnv, ObsLayoutAndSize) {
  SizingEnv env(synth(), EnvConfig{});
  EXPECT_EQ(env.obs_size(), 2 * 3 + 3);
  EXPECT_EQ(env.num_params(), 3);
  const auto obs = env.reset();
  ASSERT_EQ(obs.size(), static_cast<std::size_t>(env.obs_size()));
  // Parameter block: centred grid -> normalized position 0.
  EXPECT_NEAR(obs[6], 0.0, 1e-12);
  EXPECT_NEAR(obs[7], 0.0, 1e-12);
  EXPECT_NEAR(obs[8], 0.0, 1e-12);
  // All entries bounded.
  for (double v : obs) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SizingEnv, ResetStartsAtGridCenter) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  env.reset();
  EXPECT_EQ(env.params(), prob->center_params());
  EXPECT_EQ(env.steps_taken(), 0);
}

TEST(SizingEnv, StepMovesParamsByAction) {
  SizingEnv env(synth(), EnvConfig{});
  env.reset();
  auto before = env.params();
  env.step({0, 1, 2});  // -1, 0, +1
  EXPECT_EQ(env.params()[0], before[0] - 1);
  EXPECT_EQ(env.params()[1], before[1]);
  EXPECT_EQ(env.params()[2], before[2] + 1);
  EXPECT_EQ(env.steps_taken(), 1);
}

TEST(SizingEnv, ActionsClipAtGridBounds) {
  SizingEnv env(synth(2, 5), EnvConfig{});
  env.reset();
  for (int i = 0; i < 10; ++i) env.step({0, 2});
  EXPECT_EQ(env.params()[0], 0);
  EXPECT_EQ(env.params()[1], 4);
}

TEST(SizingEnv, RejectsWrongActionArity) {
  SizingEnv env(synth(3), EnvConfig{});
  env.reset();
  EXPECT_THROW(env.step({1, 1}), std::invalid_argument);
}

TEST(SizingEnv, RejectsWrongTargetArity) {
  SizingEnv env(synth(3), EnvConfig{});
  EXPECT_THROW(env.set_target({1.0}), std::invalid_argument);
}

TEST(SizingEnv, HorizonTerminatesEpisode) {
  EnvConfig config;
  config.horizon = 4;
  SizingEnv env(synth(), config);
  env.set_target({1e9, -1e9, -1e9});  // unreachable
  env.reset();
  SizingEnv::StepResult last;
  for (int i = 0; i < 4; ++i) last = env.step({1, 1, 1});
  EXPECT_TRUE(last.done);
  EXPECT_FALSE(last.goal_met);
}

TEST(SizingEnv, GoalTerminatesWithBonus) {
  SizingEnv env(synth(), EnvConfig{});
  // The centre already satisfies these lenient targets.
  env.set_target({9.0, 6.0, 1.6});
  env.reset();
  auto sr = env.step({1, 1, 1});
  EXPECT_TRUE(sr.done);
  EXPECT_TRUE(sr.goal_met);
  EXPECT_GT(sr.reward, 9.0);  // bonus-dominated
}

TEST(SizingEnv, RewardIsNonPositiveBeforeGoal) {
  SizingEnv env(synth(), EnvConfig{});
  env.set_target({11.5, 4.2, 1.1});
  env.reset();
  for (int i = 0; i < 5; ++i) {
    auto sr = env.step({2, 2, 2});
    if (sr.goal_met) break;
    EXPECT_LE(sr.reward, 0.0);
  }
}

TEST(SizingEnv, RewardImprovesWhenMovingTowardTarget) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  env.set_target({11.9, 4.2, 1.6});  // wants sum of params high
  env.reset();
  const double r0 = env.current_reward();
  env.step({2, 2, 2});
  const double r1 = env.current_reward();
  EXPECT_GT(r1, r0);
}

TEST(SizingEnv, SparseRewardAblation) {
  EnvConfig config;
  config.eq1_shaping = false;
  SizingEnv env(synth(), config);
  env.set_target({11.9, 4.2, 1.05});  // not met at the centre
  env.reset();
  auto sr = env.step({1, 1, 1});
  EXPECT_NEAR(sr.reward, -1.0 / config.horizon, 1e-12);
}

TEST(SizingEnv, SimulationCounting) {
  SizingEnv env(synth(), EnvConfig{});
  env.reset();
  EXPECT_EQ(env.simulations(), 1);  // reset evaluates once
  env.step({1, 1, 1});
  env.step({1, 1, 1});
  EXPECT_EQ(env.simulations(), 3);
}

TEST(SizingEnv, FailedEvaluationsFallBackToFailSpecs) {
  auto prob = test_support::make_synthetic_problem();
  prob.set_evaluator([](const circuits::ParamVector&)
                         -> util::Expected<circuits::SpecVector> {
    return util::Error{"synthetic failure"};
  });
  SizingEnv env(
      std::make_shared<const circuits::SizingProblem>(std::move(prob)),
      EnvConfig{});
  env.reset();
  EXPECT_TRUE(env.last_eval_failed());
  EXPECT_EQ(env.cur_specs(), env.problem().fail_specs());
  // The episode still runs with punished specs instead of crashing.
  auto sr = env.step({1, 1, 1});
  EXPECT_LT(sr.reward, 0.0);
}

TEST(SizingEnv, DefaultTargetIsRangeMidpoint) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  for (std::size_t i = 0; i < prob->specs.size(); ++i) {
    EXPECT_NEAR(env.target()[i],
                0.5 * (prob->specs[i].sample_lo + prob->specs[i].sample_hi),
                1e-12);
  }
}

TEST(TargetSampling, WithinRanges) {
  auto prob = synth();
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto t = sample_target(*prob, rng);
    for (std::size_t s = 0; s < prob->specs.size(); ++s) {
      EXPECT_GE(t[s], prob->specs[s].sample_lo);
      EXPECT_LE(t[s], prob->specs[s].sample_hi);
    }
  }
}

TEST(TargetSampling, FiftyTrainingTargetsAreDistinct) {
  auto prob = synth();
  util::Rng rng(4);
  const auto targets = sample_targets(*prob, 50, rng);
  ASSERT_EQ(targets.size(), 50u);
  int duplicates = 0;
  for (std::size_t i = 1; i < targets.size(); ++i) {
    if (targets[i] == targets[i - 1]) ++duplicates;
  }
  EXPECT_EQ(duplicates, 0);
}

TEST(TargetSampling, DeterministicUnderSeed) {
  auto prob = synth();
  util::Rng a(9), b(9);
  EXPECT_EQ(sample_targets(*prob, 10, a), sample_targets(*prob, 10, b));
}

TEST(SizingEnv, EpisodesAreReproducible) {
  auto prob = synth();
  auto run = [&] {
    SizingEnv env(prob, EnvConfig{});
    env.set_target({10.5, 4.5, 1.2});
    std::vector<double> rewards;
    env.reset();
    for (int i = 0; i < 6; ++i) rewards.push_back(env.step({2, 0, 2}).reward);
    return rewards;
  };
  EXPECT_EQ(run(), run());
}
