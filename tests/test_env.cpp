#include <gtest/gtest.h>

#include <memory>

#include "env/sizing_env.hpp"
#include "spec/spec_space.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using namespace autockt::env;
using circuits::SpecVector;

namespace {
std::shared_ptr<const circuits::SizingProblem> synth(int n = 3, int grid = 21) {
  return std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(n, grid));
}
}  // namespace

TEST(SizingEnv, ObsLayoutAndSize) {
  SizingEnv env(synth(), EnvConfig{});
  EXPECT_EQ(env.obs_size(), 2 * 3 + 3);
  EXPECT_EQ(env.num_params(), 3);
  const auto obs = env.reset();
  ASSERT_EQ(obs.size(), static_cast<std::size_t>(env.obs_size()));
  // Parameter block: centred grid -> normalized position 0.
  EXPECT_NEAR(obs[6], 0.0, 1e-12);
  EXPECT_NEAR(obs[7], 0.0, 1e-12);
  EXPECT_NEAR(obs[8], 0.0, 1e-12);
  // All entries bounded.
  for (double v : obs) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SizingEnv, ResetStartsAtGridCenter) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  env.reset();
  EXPECT_EQ(env.params(), prob->center_params());
  EXPECT_EQ(env.steps_taken(), 0);
}

TEST(SizingEnv, StepMovesParamsByAction) {
  SizingEnv env(synth(), EnvConfig{});
  env.reset();
  auto before = env.params();
  env.step({0, 1, 2});  // -1, 0, +1
  EXPECT_EQ(env.params()[0], before[0] - 1);
  EXPECT_EQ(env.params()[1], before[1]);
  EXPECT_EQ(env.params()[2], before[2] + 1);
  EXPECT_EQ(env.steps_taken(), 1);
}

TEST(SizingEnv, ActionsClipAtGridBounds) {
  SizingEnv env(synth(2, 5), EnvConfig{});
  env.reset();
  for (int i = 0; i < 10; ++i) env.step({0, 2});
  EXPECT_EQ(env.params()[0], 0);
  EXPECT_EQ(env.params()[1], 4);
}

TEST(SizingEnv, RejectsWrongActionArity) {
  SizingEnv env(synth(3), EnvConfig{});
  env.reset();
  EXPECT_THROW(env.step({1, 1}), std::invalid_argument);
}

TEST(SizingEnv, RejectsWrongTargetArity) {
  SizingEnv env(synth(3), EnvConfig{});
  EXPECT_THROW(env.set_target({1.0}), std::invalid_argument);
}

TEST(SizingEnv, HorizonTerminatesEpisode) {
  EnvConfig config;
  config.horizon = 4;
  SizingEnv env(synth(), config);
  env.set_target({1e9, -1e9, -1e9});  // unreachable
  env.reset();
  SizingEnv::StepResult last;
  for (int i = 0; i < 4; ++i) last = env.step({1, 1, 1});
  EXPECT_TRUE(last.done);
  EXPECT_FALSE(last.goal_met);
}

TEST(SizingEnv, GoalTerminatesWithBonus) {
  SizingEnv env(synth(), EnvConfig{});
  // The centre already satisfies these lenient targets.
  env.set_target({9.0, 6.0, 1.6});
  env.reset();
  auto sr = env.step({1, 1, 1});
  EXPECT_TRUE(sr.done);
  EXPECT_TRUE(sr.goal_met);
  EXPECT_GT(sr.reward, 9.0);  // bonus-dominated
}

TEST(SizingEnv, RewardIsNonPositiveBeforeGoal) {
  SizingEnv env(synth(), EnvConfig{});
  env.set_target({11.5, 4.2, 1.1});
  env.reset();
  for (int i = 0; i < 5; ++i) {
    auto sr = env.step({2, 2, 2});
    if (sr.goal_met) break;
    EXPECT_LE(sr.reward, 0.0);
  }
}

TEST(SizingEnv, RewardImprovesWhenMovingTowardTarget) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  env.set_target({11.9, 4.2, 1.6});  // wants sum of params high
  env.reset();
  const double r0 = env.current_reward();
  env.step({2, 2, 2});
  const double r1 = env.current_reward();
  EXPECT_GT(r1, r0);
}

// ---- reward paths (Eq. 1 shaping vs sparse ablation, goal_bonus plumbing) --

TEST(SizingEnv, SparseRewardAblation) {
  EnvConfig config;
  config.eq1_shaping = false;
  SizingEnv env(synth(), config);
  env.set_target({11.9, 4.2, 1.05});  // not met at the centre
  env.reset();
  auto sr = env.step({1, 1, 1});
  EXPECT_NEAR(sr.reward, -1.0 / config.horizon, 1e-12);
}

TEST(SizingEnv, SparseRewardPaysExactlyTheBonusOnGoal) {
  EnvConfig config;
  config.eq1_shaping = false;
  config.goal_bonus = 7.5;  // non-default: pins the plumbing
  SizingEnv env(synth(), config);
  env.set_target({9.0, 6.0, 1.6});  // the centre already satisfies these
  env.reset();
  auto sr = env.step({1, 1, 1});
  ASSERT_TRUE(sr.goal_met);
  // Sparse path: no Eq. 1 shaping term, the terminal reward IS the bonus.
  EXPECT_DOUBLE_EQ(sr.reward, 7.5);
}

TEST(SizingEnv, Eq1RewardIsBonusPlusEq1OnGoal) {
  auto prob = synth();
  EnvConfig config;
  config.goal_bonus = 3.25;  // non-default
  SizingEnv env(prob, config);
  const circuits::SpecVector target{9.0, 6.0, 1.6};
  env.set_target(target);
  env.reset();
  auto sr = env.step({1, 1, 1});
  ASSERT_TRUE(sr.goal_met);
  // Terminal reward is the paper's "bonus + r" with the full Eq. 1 value
  // (whose unclamped minimize term rewards finishing below budget).
  EXPECT_DOUBLE_EQ(sr.reward,
                   3.25 + prob->reward_eq1(env.cur_specs(), target));
}

TEST(SizingEnv, Eq1NonTerminalRewardIsClampedViolationSum) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  const circuits::SpecVector target{11.5, 4.2, 1.1};  // not met
  env.set_target(target);
  env.reset();
  auto sr = env.step({1, 1, 1});
  ASSERT_FALSE(sr.goal_met);
  EXPECT_DOUBLE_EQ(sr.reward, prob->hard_violation(env.cur_specs(), target));
}

TEST(SizingEnv, SparseAndEq1PathsDifferOnlyInShaping) {
  // Same trajectory, two reward configs: goal step pays bonus(+eq1) in
  // both; non-goal steps pay the clamped violation vs the step penalty.
  auto prob = synth();
  EnvConfig eq1;
  EnvConfig sparse;
  sparse.eq1_shaping = false;
  SizingEnv env_a(prob, eq1), env_b(prob, sparse);
  const circuits::SpecVector target{11.5, 4.2, 1.1};
  env_a.set_target(target);
  env_b.set_target(target);
  env_a.reset();
  env_b.reset();
  for (int i = 0; i < 4; ++i) {
    auto ra = env_a.step({2, 2, 2});
    auto rb = env_b.step({2, 2, 2});
    ASSERT_EQ(ra.goal_met, rb.goal_met);  // reward shaping never moves state
    if (ra.goal_met) break;
    EXPECT_LE(ra.reward, 0.0);
    EXPECT_DOUBLE_EQ(rb.reward, -1.0 / sparse.horizon);
  }
}

// ---- env-attached target samplers ------------------------------------------

TEST(SizingEnv, SamplerResamplesTargetEveryReset) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  auto sampler = std::make_shared<spec::UniformSampler>(
      spec::SpecSpace(*prob));
  env.set_target_sampler(sampler, /*seed=*/42);
  env.reset();
  const auto t1 = env.target();
  env.reset();
  const auto t2 = env.target();
  EXPECT_NE(t1, t2);
  // Reseeding the sampler stream reproduces the draw sequence.
  SizingEnv env2(prob, EnvConfig{});
  env2.set_target_sampler(sampler, /*seed=*/42);
  env2.reset();
  EXPECT_EQ(env2.target(), t1);
  env2.reset();
  EXPECT_EQ(env2.target(), t2);
}

TEST(SizingEnv, ReportsEpisodeOutcomesToSampler) {
  auto prob = synth();
  EnvConfig config;
  config.horizon = 3;
  SizingEnv env(prob, config);
  auto curriculum = std::make_shared<spec::CurriculumSampler>(
      spec::SpecSpace(*prob));
  env.set_target_sampler(curriculum, 7);
  env.reset();
  long episodes = 0;
  for (int i = 0; i < 12; ++i) {
    if (env.step({1, 1, 1}).done) {
      ++episodes;
      env.reset();
    }
  }
  EXPECT_EQ(curriculum->outcomes_recorded(), episodes);
}

TEST(SizingEnv, SimulationCounting) {
  SizingEnv env(synth(), EnvConfig{});
  env.reset();
  EXPECT_EQ(env.simulations(), 1);  // reset evaluates once
  env.step({1, 1, 1});
  env.step({1, 1, 1});
  EXPECT_EQ(env.simulations(), 3);
}

TEST(SizingEnv, FailedEvaluationsFallBackToFailSpecs) {
  auto prob = test_support::make_synthetic_problem();
  prob.set_evaluator([](const circuits::ParamVector&)
                         -> util::Expected<circuits::SpecVector> {
    return util::Error{"synthetic failure"};
  });
  SizingEnv env(
      std::make_shared<const circuits::SizingProblem>(std::move(prob)),
      EnvConfig{});
  env.reset();
  EXPECT_TRUE(env.last_eval_failed());
  EXPECT_EQ(env.cur_specs(), env.problem().fail_specs());
  // The episode still runs with punished specs instead of crashing.
  auto sr = env.step({1, 1, 1});
  EXPECT_LT(sr.reward, 0.0);
}

TEST(SizingEnv, DefaultTargetIsSpecSpaceMidpoint) {
  auto prob = synth();
  SizingEnv env(prob, EnvConfig{});
  // Derived from SpecSpace, not hand-rolled: bitwise equal by construction.
  EXPECT_EQ(env.target(), spec::SpecSpace(*prob).midpoint());
  for (std::size_t i = 0; i < prob->specs.size(); ++i) {
    EXPECT_NEAR(env.target()[i],
                0.5 * (prob->specs[i].sample_lo + prob->specs[i].sample_hi),
                1e-12);
  }
}

TEST(TargetSampling, WithinRanges) {
  auto prob = synth();
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto t = sample_target(*prob, rng);
    for (std::size_t s = 0; s < prob->specs.size(); ++s) {
      EXPECT_GE(t[s], prob->specs[s].sample_lo);
      EXPECT_LE(t[s], prob->specs[s].sample_hi);
    }
  }
}

TEST(TargetSampling, FiftyTrainingTargetsAreDistinct) {
  auto prob = synth();
  util::Rng rng(4);
  const auto targets = sample_targets(*prob, 50, rng);
  ASSERT_EQ(targets.size(), 50u);
  int duplicates = 0;
  for (std::size_t i = 1; i < targets.size(); ++i) {
    if (targets[i] == targets[i - 1]) ++duplicates;
  }
  EXPECT_EQ(duplicates, 0);
}

TEST(TargetSampling, DeterministicUnderSeed) {
  auto prob = synth();
  util::Rng a(9), b(9);
  EXPECT_EQ(sample_targets(*prob, 10, a), sample_targets(*prob, 10, b));
}

TEST(SizingEnv, EpisodesAreReproducible) {
  auto prob = synth();
  auto run = [&] {
    SizingEnv env(prob, EnvConfig{});
    env.set_target({10.5, 4.5, 1.2});
    std::vector<double> rewards;
    env.reset();
    for (int i = 0; i < 6; ++i) rewards.push_back(env.step({2, 0, 2}).reward);
    return rewards;
  };
  EXPECT_EQ(run(), run());
}
