#pragma once
// Shared helpers for the test suite. The cheap synthetic sizing problem
// lives in the library now (circuits/synthetic.hpp) so the CI smoke benches
// can drive the same problem; this header keeps the historical
// test_support:: spelling for the tests.

#include "circuits/sizing_problem.hpp"
#include "circuits/synthetic.hpp"

namespace autockt::test_support {

using circuits::make_synthetic_problem;

}  // namespace autockt::test_support
