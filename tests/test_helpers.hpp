#pragma once
// Shared helpers for the test suite: a cheap synthetic sizing problem (no
// circuit simulation) so that environment/RL/baseline logic can be tested in
// milliseconds, plus tolerance helpers.

#include <cmath>
#include <vector>

#include "circuits/sizing_problem.hpp"

namespace autockt::test_support {

/// Synthetic problem: params form a grid [0, K-1]^N; specs are smooth
/// monotone functions of the normalized parameters:
///   spec0 ("sum")  = 10 + sum of normalized params          (GreaterEq)
///   spec1 ("prod") = 5 - mean of normalized params          (LessEq)
///   spec2 ("power")= 1 + 0.5 * mean of |normalized params|  (Minimize)
/// All three are exactly reachable from the grid centre within a few steps,
/// which makes RL/GA convergence tests fast and deterministic.
inline circuits::SizingProblem make_synthetic_problem(int n_params = 3,
                                                      int grid = 21) {
  circuits::SizingProblem prob;
  prob.name = "synthetic";
  prob.description = "synthetic smooth sizing problem for tests";
  for (int i = 0; i < n_params; ++i) {
    prob.params.push_back({"p" + std::to_string(i), 0.0,
                           static_cast<double>(grid - 1), 1.0});
  }
  // Sampling ranges are chosen to be jointly feasible: "diff" <= t needs
  // sum(x) >= 3*(5 - t) and "power" <= t allows mean|x| <= 2*(t - 1); the
  // ranges below keep those bands overlapping for every target draw.
  prob.specs = {
      {"sum", circuits::SpecSense::GreaterEq, 9.5, 11.0, 10.0, 0.0},
      {"diff", circuits::SpecSense::LessEq, 4.6, 5.4, 5.0, 100.0},
      {"power", circuits::SpecSense::Minimize, 1.25, 1.5, 1.35, 100.0},
  };
  const auto params = prob.params;
  prob.set_evaluator(
      [params](const circuits::ParamVector& idx)
          -> util::Expected<circuits::SpecVector> {
        double sum = 0.0, mean_abs = 0.0;
        for (std::size_t i = 0; i < idx.size(); ++i) {
          const double hi = params[i].end;
          const double x =
              2.0 * static_cast<double>(idx[i]) / hi - 1.0;  // [-1,1]
          sum += x;
          mean_abs += std::fabs(x);
        }
        const double n = static_cast<double>(idx.size());
        return circuits::SpecVector{10.0 + sum, 5.0 - sum / n,
                                    1.0 + 0.5 * mean_abs / n};
      },
      "synthetic");
  prob.paper_sim_seconds = 0.001;
  return prob;
}

}  // namespace autockt::test_support
