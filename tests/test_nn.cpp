#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/categorical.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

using namespace autockt::nn;
using autockt::util::Rng;

namespace {

std::vector<double> random_vec(int n, Rng& rng, double scale = 1.0) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = scale * rng.uniform(-1.0, 1.0);
  return x;
}

/// Scalar loss used for gradient checking: L = sum_i w_i * y_i with fixed
/// per-output weights, so dL/dy = w.
double loss_of(const Mlp& mlp, const std::vector<double>& x,
               const std::vector<double>& w) {
  const auto y = mlp.forward(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) acc += w[i] * y[i];
  return acc;
}

}  // namespace

TEST(Mlp, OutputSizesAndDeterminism) {
  Mlp mlp({4, 16, 3}, Activation::Tanh, 7);
  Rng rng(1);
  const auto x = random_vec(4, rng);
  const auto y1 = mlp.forward(x);
  const auto y2 = mlp.forward(x);
  ASSERT_EQ(y1.size(), 3u);
  EXPECT_EQ(y1, y2);

  Mlp same({4, 16, 3}, Activation::Tanh, 7);
  EXPECT_EQ(same.forward(x), y1);  // seed-deterministic init
}

TEST(Mlp, FinalScaleShrinksOutputs) {
  Rng rng(1);
  const auto x = random_vec(4, rng);
  Mlp big({4, 16, 3}, Activation::Tanh, 7, 1.0);
  Mlp small({4, 16, 3}, Activation::Tanh, 7, 0.01);
  double norm_big = 0.0, norm_small = 0.0;
  for (double v : big.forward(x)) norm_big += v * v;
  for (double v : small.forward(x)) norm_small += v * v;
  EXPECT_LT(norm_small, norm_big * 1e-2);
}

TEST(Mlp, RejectsDegenerateArchitecture) {
  EXPECT_THROW(Mlp({4}, Activation::Tanh, 1), std::invalid_argument);
}

// The critical correctness test for the whole RL stack: analytic parameter
// gradients must match central finite differences for several shapes and
// both activations.
class MlpGradCheck
    : public ::testing::TestWithParam<
          std::tuple<std::vector<int>, Activation>> {};

TEST_P(MlpGradCheck, ParameterGradientsMatchFiniteDifferences) {
  const auto& [sizes, act] = GetParam();
  Mlp mlp(sizes, act, 99);
  Rng rng(5);
  const auto x = random_vec(sizes.front(), rng);
  const auto w = random_vec(sizes.back(), rng);

  mlp.zero_grad();
  const auto trace = mlp.forward_trace(x);
  mlp.backward(trace, w);
  const auto analytic = mlp.grads();

  const double h = 1e-6;
  // Probe a deterministic subset of parameters (checking all ~thousand is
  // slow and adds nothing).
  for (std::size_t i = 0; i < mlp.param_count();
       i += std::max<std::size_t>(1, mlp.param_count() / 97)) {
    const double saved = mlp.params()[i];
    mlp.params()[i] = saved + h;
    const double up = loss_of(mlp, x, w);
    mlp.params()[i] = saved - h;
    const double down = loss_of(mlp, x, w);
    mlp.params()[i] = saved;
    const double numeric = (up - down) / (2.0 * h);
    EXPECT_NEAR(analytic[i], numeric,
                1e-5 + 1e-4 * std::fabs(numeric))
        << "param " << i;
  }
}

TEST_P(MlpGradCheck, InputGradientsMatchFiniteDifferences) {
  const auto& [sizes, act] = GetParam();
  Mlp mlp(sizes, act, 123);
  Rng rng(6);
  auto x = random_vec(sizes.front(), rng);
  const auto w = random_vec(sizes.back(), rng);

  mlp.zero_grad();
  const auto trace = mlp.forward_trace(x);
  const auto d_input = mlp.backward(trace, w);

  const double h = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double saved = x[i];
    x[i] = saved + h;
    const double up = loss_of(mlp, x, w);
    x[i] = saved - h;
    const double down = loss_of(mlp, x, w);
    x[i] = saved;
    EXPECT_NEAR(d_input[i], (up - down) / (2.0 * h), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpGradCheck,
    ::testing::Values(
        std::make_tuple(std::vector<int>{3, 8, 2}, Activation::Tanh),
        std::make_tuple(std::vector<int>{5, 16, 16, 4}, Activation::Tanh),
        std::make_tuple(std::vector<int>{18, 50, 50, 50, 21}, Activation::Tanh),
        std::make_tuple(std::vector<int>{4, 12, 3}, Activation::Relu),
        std::make_tuple(std::vector<int>{6, 20, 20, 1}, Activation::Relu)));

TEST(Mlp, GradAccumulatesAcrossBackwardCalls) {
  Mlp mlp({2, 4, 1}, Activation::Tanh, 3);
  Rng rng(9);
  const auto x = random_vec(2, rng);
  mlp.zero_grad();
  auto trace = mlp.forward_trace(x);
  mlp.backward(trace, {1.0});
  const auto once = mlp.grads();
  mlp.backward(trace, {1.0});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(mlp.grads()[i], 2.0 * once[i], 1e-12);
  }
  mlp.zero_grad();
  for (double g : mlp.grads()) EXPECT_EQ(g, 0.0);
}

TEST(Mlp, SaveLoadRoundTrip) {
  Mlp mlp({3, 10, 2}, Activation::Tanh, 11);
  std::stringstream ss;
  mlp.save(ss);
  Mlp loaded = Mlp::load(ss);
  Rng rng(4);
  const auto x = random_vec(3, rng);
  EXPECT_EQ(mlp.forward(x), loaded.forward(x));
}

TEST(Mlp, LoadRejectsGarbage) {
  std::stringstream ss("not_a_model 3");
  EXPECT_THROW(Mlp::load(ss), std::runtime_error);
}

TEST(Adam, MinimizesQuadraticBowl) {
  // f(p) = sum (p_i - c_i)^2; Adam should converge near c.
  const std::vector<double> target{1.0, -2.0, 0.5};
  std::vector<double> p{0.0, 0.0, 0.0};
  Adam adam(p.size(), 0.05);
  std::vector<double> grads(p.size());
  for (int step = 0; step < 2000; ++step) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      grads[i] = 2.0 * (p[i] - target[i]);
    }
    adam.step(p, grads);
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], target[i], 1e-3);
  }
}

TEST(Adam, LrAccessors) {
  Adam adam(3, 1e-3);
  EXPECT_DOUBLE_EQ(adam.lr(), 1e-3);
  adam.set_lr(5e-4);
  EXPECT_DOUBLE_EQ(adam.lr(), 5e-4);
}

// ---------------------------------------------------------------- softmax

TEST(Categorical, SoftmaxSumsToOne) {
  const std::vector<double> logits{1.0, 2.0, 3.0, -10.0, 0.0, 10.0};
  const auto p1 = softmax_slice(logits, 0, 3);
  const auto p2 = softmax_slice(logits, 3, 3);
  double s1 = 0.0, s2 = 0.0;
  for (double p : p1) s1 += p;
  for (double p : p2) s2 += p;
  EXPECT_NEAR(s1, 1.0, 1e-12);
  EXPECT_NEAR(s2, 1.0, 1e-12);
  EXPECT_GT(p1[2], p1[0]);  // larger logit, larger probability
}

TEST(Categorical, SoftmaxStableForHugeLogits) {
  const std::vector<double> logits{1000.0, 999.0, 0.0};
  const auto p = softmax_slice(logits, 0, 3);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[0], p[1]);
}

TEST(Categorical, SamplingMatchesProbabilities) {
  Rng rng(17);
  const std::vector<double> probs{0.6, 0.3, 0.1};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(sample_categorical(probs, rng))];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.01);
}

TEST(Categorical, ArgmaxAndEntropyBounds) {
  EXPECT_EQ(argmax({0.2, 0.5, 0.3}), 1);
  EXPECT_NEAR(entropy({1.0, 0.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(entropy({1.0 / 3, 1.0 / 3, 1.0 / 3}), std::log(3.0), 1e-9);
}
