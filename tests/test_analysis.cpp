// Static-analysis subsystem: the diagnostic catalog contract, the deck and
// circuit analyzers over the checked-in bad-deck corpus (every stable id
// must fire on its regression deck), lint-disable suppression semantics,
// the JSON round-trip, and the gates in CircuitRegistry /
// make_netlist_problem that keep error-severity decks away from the
// simulator. Shipped example decks must lint clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/circuit_lint.hpp"
#include "analysis/deck_lint.hpp"
#include "analysis/diagnostic.hpp"
#include "circuits/netlist_problem.hpp"
#include "circuits/registry.hpp"
#include "spice/netlist_parser.hpp"

using namespace autockt;
using namespace autockt::analysis;

namespace {

std::string source_dir() { return std::string(AUTOCKT_SOURCE_DIR); }

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Sorted list of .cir files directly under `dir`.
std::vector<std::string> deck_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".cir") out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The "* expect: <ID>" header every bad-corpus deck carries.
std::string expected_id(const std::string& text) {
  const std::string tag = "* expect: ";
  const auto pos = text.find(tag);
  if (pos == std::string::npos) return "";
  auto end = pos + tag.size();
  std::string id;
  while (end < text.size() && text[end] != '\n' && text[end] != ' ') {
    id.push_back(text[end++]);
  }
  return id;
}

bool has_id(const std::vector<Diagnostic>& diags, const std::string& id) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.id == id; });
}

}  // namespace

TEST(DiagnosticCatalog, IdsAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const auto& def : diagnostic_catalog()) {
    const std::string id = def.id;
    EXPECT_TRUE(seen.insert(id).second) << "duplicate catalog id " << id;
    ASSERT_EQ(id.size(), 5u) << id;
    EXPECT_EQ(id.substr(0, 2), "AC") << id;
    EXPECT_NE(std::string(def.summary), "") << id;
    EXPECT_EQ(find_diagnostic_def(id), &def);
  }
  EXPECT_EQ(find_diagnostic_def("AC999"), nullptr);
  EXPECT_GE(seen.size(), 15u);
}

TEST(DiagnosticCatalog, SeverityNamesRoundTrip) {
  for (Severity s : {Severity::Note, Severity::Warning, Severity::Error}) {
    Severity back = Severity::Note;
    ASSERT_TRUE(severity_from_name(severity_name(s), &back));
    EXPECT_EQ(back, s);
  }
  Severity out;
  EXPECT_FALSE(severity_from_name("fatal", &out));
}

// Every deck in tests/decks/bad/ must report the diagnostic id named in its
// "* expect:" header, at the severity the catalog assigns — the regression
// corpus is what makes the ids a stable contract.
TEST(DeckLint, BadCorpusFiresExpectedIds) {
  const auto decks = deck_files(source_dir() + "/tests/decks/bad");
  ASSERT_GE(decks.size(), 18u);
  std::set<std::string> ids_covered;
  for (const auto& path : decks) {
    const std::string text = read_file(path);
    const std::string id = expected_id(text);
    ASSERT_NE(id, "") << path << " lacks an '* expect: <ID>' header";
    const auto diags = lint_deck_text(text);
    EXPECT_TRUE(has_id(diags, id))
        << path << " did not report " << id << ":\n"
        << render_diagnostics_text(diags, path);
    for (const auto& d : diags) {
      const DiagnosticDef* def = find_diagnostic_def(d.id);
      ASSERT_NE(def, nullptr) << d.id << " not in catalog (" << path << ")";
      EXPECT_EQ(d.severity, def->severity) << d.id << " in " << path;
    }
    ids_covered.insert(id);
  }
  // The acceptance bar: at least 10 distinct ids exercised by the corpus.
  EXPECT_GE(ids_covered.size(), 10u);
}

TEST(DeckLint, CleanDeckHasZeroDiagnostics) {
  const auto diags = lint_deck_text(
      ".param rr 1k 2k 4\n"
      ".spec gain_vv geq 0.3 0.7 0.5\n"
      ".measure gain_vv gain\n"
      "v1 in 0 dc 1 ac 1\n"
      "r1 in out {rr}\n"
      "r2 out 0 1k\n"
      ".ac out 1k 1g\n"
      ".end\n");
  EXPECT_TRUE(diags.empty()) << render_diagnostics_text(diags, "clean");
}

TEST(DeckLint, ShippedDecksLintClean) {
  for (const auto& path : deck_files(source_dir() + "/examples/decks")) {
    const auto diags = lint_deck_text(read_file(path));
    EXPECT_TRUE(diags.empty()) << render_diagnostics_text(diags, path);
  }
}

TEST(DeckLint, LintDisableSuppressesWarnings) {
  const std::string path = source_dir() + "/tests/decks/lint_disable_clean.cir";
  const std::string text = read_file(path);
  const auto diags = lint_deck_text(text);
  EXPECT_TRUE(diags.empty()) << render_diagnostics_text(diags, path);

  // The same deck without the suppression comment reports AC201.
  const std::string stripped = text.substr(text.find('\n') + 1);
  EXPECT_TRUE(has_id(lint_deck_text(stripped), "AC201"));
}

TEST(DeckLint, ErrorsAreNotSuppressible) {
  // AC101 (no ground) is error severity: the lint-disable must not hide it,
  // and the unknown-id path must flag a bogus suppression as AC003.
  const auto diags = lint_deck_text(
      "* lint-disable AC101 AC999\n"
      "v1 a b dc 1\n"
      "r1 a b 1k\n"
      ".end\n");
  EXPECT_TRUE(has_id(diags, "AC101"));
  EXPECT_TRUE(has_id(diags, "AC003"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(DeckLint, SyntaxErrorCarriesLocation) {
  const auto diags = lint_deck_text(
      "v1 in 0 dc 1\n"
      ".param w\n"
      ".end\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].id, "AC001");
  EXPECT_EQ(diags[0].severity, Severity::Error);
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(ParserErrors, CarryLineAndColumn) {
  const auto deck = spice::parse_deck(
      "v1 in 0 dc 1\n"
      "r1 in 0 sparkle\n"
      ".end\n");
  ASSERT_FALSE(deck.ok());
  EXPECT_EQ(deck.error().line, 2u);
  EXPECT_EQ(deck.error().col, 9u);  // 1-based offset of "sparkle"
  EXPECT_NE(deck.error().message.find("col 9"), std::string::npos);
}

TEST(Suppressions, FilterWarningsKeepErrors) {
  std::vector<Diagnostic> diags{
      {"AC201", Severity::Warning, 3, 1, "unused", ""},
      {"AC101", Severity::Error, 0, 0, "no ground", ""},
      {"AC202", Severity::Warning, 4, 1, "degenerate", ""},
  };
  const auto kept = apply_suppressions(std::move(diags), {"AC201", "AC101"});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].id, "AC101");  // errors survive their own suppression
  EXPECT_EQ(kept[1].id, "AC202");
}

TEST(DiagnosticJson, RoundTripsExactly) {
  std::vector<Diagnostic> diags{
      {"AC102", Severity::Error, 7, 4,
       "node 'x' has no DC path to ground", "add a resistive path"},
      {"AC201", Severity::Warning, 2, 1,
       ".param 'w \"quoted\"' is never referenced", ""},
  };
  const std::string json = render_diagnostics_json(diags, "some/deck.cir");
  std::string source;
  const auto parsed = parse_diagnostics_json(json, &source);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(source, "some/deck.cir");
  EXPECT_EQ(*parsed, diags);
}

TEST(DiagnosticJson, RejectsMalformedInput) {
  EXPECT_FALSE(parse_diagnostics_json("not json").ok());
  EXPECT_FALSE(parse_diagnostics_json("{\"diagnostics\": 3}").ok());
}

// Circuit-level analyzers run on decks through lint_deck: each structural
// error id names the offending element's deck line.
TEST(CircuitLint, TopologyFindingsCarryDeckLines) {
  const auto diags = lint_deck_text(
      "v1 a 0 dc 1\n"
      "v2 a 0 dc 2\n"
      ".end\n");
  ASSERT_TRUE(has_id(diags, "AC103"));
  for (const auto& d : diags) {
    if (d.id == "AC103") EXPECT_GT(d.line, 0u);
  }
}

TEST(Registry, RejectsErrorDecksBeforeSimulation) {
  // A complete sizing scenario (parses, has .param/.spec) whose only
  // defect is structural: the registry's lint gate must reject it.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "autockt_lint_bad").string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/singular.cir");
    out << ".param rr 1k 2k 4\n"
           ".spec gain_vv geq 0.3 0.7 0.5\n"
           ".measure gain_vv gain\n"
           "v1 vdd 0 dc 1 ac 1\n"
           "r1 vdd out {rr}\n"
           "b1 out s 0.6\n"
           ".ac out 1k 1g\n"
           ".end\n";
  }
  circuits::CircuitRegistry reg;
  const auto added = reg.add_deck_file(dir + "/singular.cir");
  ASSERT_FALSE(added.ok());
  EXPECT_NE(added.error().message.find("AC108"), std::string::npos);
  EXPECT_FALSE(reg.has("singular"));
  std::filesystem::remove_all(dir);
}

TEST(Registry, CollectsWarningReportsForRegisteredDecks) {
  // A deck with a warning-only finding registers fine and surfaces the
  // finding through lint_reports().
  const std::string dir =
      (std::filesystem::temp_directory_path() / "autockt_lint_warn").string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/warny.cir");
    out << ".param rr 1k 2k 4\n"
           ".param unused 1 2 3\n"
           ".spec gain_vv geq 0.3 0.7 0.5\n"
           ".measure gain_vv gain\n"
           "v1 in 0 dc 1 ac 1\n"
           "r1 in out {rr}\n"
           "r2 out 0 1k\n"
           ".ac out 1k 1g\n"
           ".end\n";
  }
  circuits::CircuitRegistry reg;
  const auto added = reg.add_deck_file(dir + "/warny.cir");
  ASSERT_TRUE(added.ok()) << added.error().message;
  ASSERT_EQ(reg.lint_reports().count("warny"), 1u);
  EXPECT_TRUE(has_id(reg.lint_reports().at("warny"), "AC201"));
  std::filesystem::remove_all(dir);
}

TEST(Registry, AddDeckDirIsDeterministic) {
  const std::string dir = source_dir() + "/examples/decks";
  circuits::CircuitRegistry a;
  circuits::CircuitRegistry b;
  const auto names_a = a.add_deck_dir(dir);
  const auto names_b = b.add_deck_dir(dir);
  ASSERT_TRUE(names_a.ok());
  ASSERT_TRUE(names_b.ok());
  EXPECT_EQ(*names_a, *names_b);
  EXPECT_TRUE(std::is_sorted(names_a->begin(), names_a->end()));
  EXPECT_EQ(names_a->size(), deck_files(dir).size());
}

TEST(NetlistProblem, PreflightRejectsErrorDecks) {
  // Structurally singular but otherwise a complete sizing scenario: the
  // bias probe's sense node s has an empty MNA row (AC108), so the
  // preflight must refuse before any Newton iteration.
  const auto problem = circuits::make_netlist_problem_from_text(
      ".param rr 1k 2k 4\n"
      ".spec gain_vv geq 0.3 0.7 0.5\n"
      ".measure gain_vv gain\n"
      "v1 vdd 0 dc 1 ac 1\n"
      "r1 vdd out {rr}\n"
      "b1 out s 0.6\n"
      ".ac out 1k 1g\n"
      ".end\n",
      "bad");
  ASSERT_FALSE(problem.ok());
  EXPECT_NE(problem.error().message.find("AC108"), std::string::npos);
}
