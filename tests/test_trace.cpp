// Tests for the span/trace layer (src/trace/): nesting and parent links,
// the runtime enable switch, fixed-seed record-count determinism through
// the full request path (characterization and PPO training), merge
// determinism under the threaded batch backend, the JSONL export schema,
// and the OBSERVABILITY.md glossary cross-check against the name registry
// and EvalStats::fields(). Every determinism assertion is on per-name
// record COUNTS — durations, thread ordinals and interleavings are
// explicitly outside the contract (see trace.hpp).
//
// When the layer is compiled out (-DAUTOCKT_TRACE=OFF) the recording tests
// skip and CompiledOutModeIsInert checks the empty-inline API instead; the
// file must compile in both configurations.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "autockt/autockt.hpp"
#include "circuits/problems.hpp"
#include "circuits/synthetic.hpp"
#include "eval/function_backend.hpp"
#include "eval/thread_pool.hpp"
#include "eval/threaded_backend.hpp"
#include "trace/names.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"

using namespace autockt;
using trace::RecordKind;
using trace::TraceRecord;

namespace {

/// RAII guard: every test leaves the process-wide recorder disabled and
/// empty, whatever path it exits through.
struct RecorderGuard {
  RecorderGuard() {
    trace::recorder().set_enabled(false);
    trace::recorder().reset();
  }
  ~RecorderGuard() {
    trace::recorder().set_enabled(false);
    trace::recorder().reset();
  }
};

bool compiled_in_or_skip() { return trace::compiled_in(); }

circuits::ProblemOptions serial_options() {
  circuits::ProblemOptions options;
  options.cache = false;
  options.parallel_batch = false;
  options.parallel_corners = false;
  return options;
}

/// Fixed-seed 2-iteration synthetic training run with inline collection
/// (num_workers=1), traced end to end; returns the per-name record counts.
std::map<std::string, long> traced_training_counts() {
  auto problem = std::make_shared<const circuits::SizingProblem>(
      circuits::make_synthetic_problem(3, 21));
  core::AutoCktConfig config;
  config.seed = 3;
  config.env_config.horizon = 10;
  config.train_target_count = 6;
  config.ppo.max_iterations = 2;
  config.ppo.steps_per_iteration = 200;
  config.ppo.num_workers = 1;
  config.holdout_target_count = 4;
  config.holdout_interval = 1;
  auto& rec = trace::recorder();
  rec.reset();
  rec.set_enabled(true);
  core::train_agent(problem, config);
  rec.set_enabled(false);
  return rec.counts_by_name();
}

}  // namespace

TEST(Trace, CompiledOutModeIsInert) {
  if (trace::compiled_in()) {
    GTEST_SKIP() << "trace layer compiled in; covered by the other tests";
  }
  RecorderGuard guard;
  auto& rec = trace::recorder();
  rec.set_enabled(true);
  {
    trace::TraceSpan span(trace::names::kEnvTick);
    trace::counter(trace::names::kEvalCacheHit, 2);
  }
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_TRUE(rec.counts_by_name().empty());
}

TEST(Trace, DisabledRecorderProducesNoRecords) {
  if (!compiled_in_or_skip()) GTEST_SKIP() << "trace layer compiled out";
  RecorderGuard guard;
  {
    trace::TraceSpan span(trace::names::kEnvTick);
    trace::counter(trace::names::kEvalCacheHit);
  }
  EXPECT_TRUE(trace::recorder().snapshot().empty());
}

TEST(Trace, NestedSpansRecordParentsAndDepths) {
  if (!compiled_in_or_skip()) GTEST_SKIP() << "trace layer compiled out";
  RecorderGuard guard;
  auto& rec = trace::recorder();
  rec.set_enabled(true);
  {
    trace::TraceSpan outer(trace::names::kRlIteration);
    trace::counter(trace::names::kEvalCacheHit, 3);
    {
      trace::TraceSpan inner(trace::names::kRlCollect);
      trace::counter(trace::names::kEvalCacheMiss);
    }
  }
  rec.set_enabled(false);

  const std::vector<TraceRecord> records = rec.snapshot();
  ASSERT_EQ(records.size(), 4u);  // single thread: already in seq order

  const TraceRecord& outer = records[0];
  EXPECT_STREQ(outer.name, trace::names::kRlIteration);
  EXPECT_EQ(outer.kind, RecordKind::Span);
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0u);

  const TraceRecord& hit = records[1];
  EXPECT_STREQ(hit.name, trace::names::kEvalCacheHit);
  EXPECT_EQ(hit.kind, RecordKind::Counter);
  EXPECT_EQ(hit.value, 3);
  EXPECT_EQ(hit.parent, static_cast<std::int64_t>(outer.seq));
  EXPECT_EQ(hit.depth, 1u);

  const TraceRecord& inner = records[2];
  EXPECT_STREQ(inner.name, trace::names::kRlCollect);
  EXPECT_EQ(inner.parent, static_cast<std::int64_t>(outer.seq));
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_LE(inner.duration_ns, outer.duration_ns);

  const TraceRecord& miss = records[3];
  EXPECT_EQ(miss.parent, static_cast<std::int64_t>(inner.seq));
  EXPECT_EQ(miss.depth, 2u);
}

TEST(Trace, CharacterizationCountsAreDeterministic) {
  if (!compiled_in_or_skip()) GTEST_SKIP() << "trace layer compiled out";
  RecorderGuard guard;
  const auto prob = circuits::make_tia_problem(serial_options());
  const auto center = prob.center_params();
  // Warm the thread-local workspace (and its one-off symbolic
  // factorization) outside the traced window: workspace construction
  // happens once per (thread, topology), so tracing it would make run A
  // and run B disagree by design, not by bug.
  ASSERT_TRUE(prob.evaluate(center).ok());

  auto& rec = trace::recorder();
  const auto run = [&] {
    rec.reset();
    rec.set_enabled(true);
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(prob.evaluate(center).ok());
    rec.set_enabled(false);
    return rec.counts_by_name();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  ASSERT_TRUE(first.count(trace::names::kEvalSimulate));
  EXPECT_EQ(first.at(trace::names::kEvalSimulate), 3);
  EXPECT_GT(first.at(trace::names::kSimNewtonIterations), 0);
  EXPECT_GT(first.at(trace::names::kSimSolveComplex), 0);
}

TEST(Trace, TrainingCountsAreDeterministic) {
  if (!compiled_in_or_skip()) GTEST_SKIP() << "trace layer compiled out";
  RecorderGuard guard;
  const auto first = traced_training_counts();
  const auto second = traced_training_counts();
  EXPECT_EQ(first, second);
  ASSERT_TRUE(first.count(trace::names::kRlIteration));
  EXPECT_EQ(first.at(trace::names::kRlIteration), 2);
  EXPECT_EQ(first.at(trace::names::kRlCollect), 2);
  EXPECT_EQ(first.at(trace::names::kRlUpdate), 2);
  EXPECT_GT(first.at(trace::names::kEnvTick), 0);
}

TEST(Trace, ThreadedBackendMergeIsDeterministic) {
  if (!compiled_in_or_skip()) GTEST_SKIP() << "trace layer compiled out";
  RecorderGuard guard;
  auto leaf = std::make_shared<eval::FunctionBackend>(
      [](const eval::ParamVector& p) -> eval::EvalResult {
        return eval::SpecVector{static_cast<double>(p[0] + p[1])};
      });
  auto pool = std::make_shared<eval::ThreadPool>(4);
  eval::ThreadPoolBackend backend(leaf, pool);

  std::vector<eval::ParamVector> points;
  for (int i = 0; i < 12; ++i) points.push_back({i, i + 1});

  auto& rec = trace::recorder();
  const auto run = [&] {
    rec.reset();
    rec.set_enabled(true);
    auto results = backend.evaluate_batch(points);
    rec.set_enabled(false);
    EXPECT_EQ(results.size(), points.size());
    return rec.counts_by_name();
  };
  const auto first = run();
  const auto second = run();
  // Which pool thread evaluates which point varies run to run; the merged
  // per-name counts must not.
  EXPECT_EQ(first, second);
  ASSERT_TRUE(first.count(trace::names::kEvalSimulate));
  EXPECT_EQ(first.at(trace::names::kEvalSimulate), 12);
  EXPECT_EQ(first.at(trace::names::kEvalEvaluateBatch), 1);
}

TEST(Trace, JsonlExportRoundTrips) {
  if (!compiled_in_or_skip()) GTEST_SKIP() << "trace layer compiled out";
  RecorderGuard guard;
  auto& rec = trace::recorder();
  rec.set_enabled(true);
  {
    trace::TraceSpan outer(trace::names::kDeployRun);
    trace::counter(trace::names::kEvalBatchPoints, 7);
    trace::TraceSpan inner(trace::names::kEnvReset);
  }
  rec.set_enabled(false);

  std::ostringstream out;
  rec.write_jsonl(out);
  std::istringstream in(out.str());
  std::string line;

  ASSERT_TRUE(std::getline(in, line));
  auto header = util::JsonValue::parse(line);
  ASSERT_TRUE(header.ok()) << header.error().message;
  EXPECT_EQ(header->find("type")->as_string(), "header");
  EXPECT_EQ(header->find("schema")->as_string(), "autockt-trace-v1");
  ASSERT_NE(header->find("record_count"), nullptr);
  const long expected =
      static_cast<long>(header->find("record_count")->as_number());
  EXPECT_EQ(expected, 3);
  ASSERT_NE(header->find("thread_count"), nullptr);

  long seen = 0;
  long counters = 0;
  while (std::getline(in, line)) {
    auto record = util::JsonValue::parse(line);
    ASSERT_TRUE(record.ok()) << record.error().message;
    const std::string type = record->find("type")->as_string();
    ASSERT_TRUE(type == "span" || type == "counter");
    for (const char* key : {"name", "thread", "seq", "parent", "depth",
                            "start_ns"}) {
      EXPECT_NE(record->find(key), nullptr) << key;
    }
    if (type == "span") {
      EXPECT_NE(record->find("dur_ns"), nullptr);
    } else {
      ++counters;
      EXPECT_EQ(record->find("value")->as_number(), 7.0);
    }
    ++seen;
  }
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(counters, 1);
}

TEST(Trace, WriteJsonlFileCreatesParseableFile) {
  if (!compiled_in_or_skip()) GTEST_SKIP() << "trace layer compiled out";
  RecorderGuard guard;
  auto& rec = trace::recorder();
  rec.set_enabled(true);
  { trace::TraceSpan span(trace::names::kEnvTick); }
  rec.set_enabled(false);

  const std::string path = ::testing::TempDir() + "trace_roundtrip.jsonl";
  ASSERT_TRUE(rec.write_jsonl_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto header = util::JsonValue::parse(line);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->find("record_count")->as_number(), 1.0);
}

// ---- documentation cross-checks -------------------------------------------

namespace {

std::string read_doc(const std::string& relative) {
  std::ifstream in(std::string(AUTOCKT_SOURCE_DIR) + "/" + relative);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

/// OBSERVABILITY.md's glossary must document every exported span/counter
/// name (as `name` in backticks) — the registry is the source of truth, so
/// adding a name without documenting it fails here.
TEST(Trace, ObservabilityGlossaryCoversNameRegistry) {
  const std::string doc = read_doc("docs/OBSERVABILITY.md");
  ASSERT_FALSE(doc.empty()) << "docs/OBSERVABILITY.md missing or unreadable";
  EXPECT_FALSE(trace::names::registry().empty());
  for (const auto& info : trace::names::registry()) {
    EXPECT_NE(doc.find("`" + std::string(info.name) + "`"), std::string::npos)
        << "OBSERVABILITY.md glossary is missing " << info.kind << " `"
        << info.name << "`";
  }
}

/// ... and every EvalStats field, since the same document explains the
/// counters that bench snapshots and stat dumps print.
TEST(Trace, ObservabilityGlossaryCoversEvalStatsFields) {
  const std::string doc = read_doc("docs/OBSERVABILITY.md");
  ASSERT_FALSE(doc.empty()) << "docs/OBSERVABILITY.md missing or unreadable";
  const eval::EvalStats stats;
  EXPECT_FALSE(stats.fields().empty());
  for (const auto& [name, value] : stats.fields()) {
    (void)value;
    EXPECT_NE(doc.find("`" + std::string(name) + "`"), std::string::npos)
        << "OBSERVABILITY.md glossary is missing EvalStats field `" << name
        << "`";
  }
}
