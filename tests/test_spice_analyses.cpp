#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "spice/units.hpp"

using namespace autockt::spice;

namespace {

/// RC low-pass: V source (1 V AC) -> R -> node out -> C -> gnd.
Circuit make_rc(double r, double c) {
  Circuit ckt;
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::constant(1.0),
                         /*ac_mag=*/1.0);
  ckt.add<Resistor>("r1", in, out, r);
  ckt.add<Capacitor>("c1", out, kGround, c);
  return ckt;
}

}  // namespace

// ---------------------------------------------------------------- DC

TEST(DcAnalysis, LadderNetwork) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  const NodeId b = ckt.add_node("b");
  const NodeId c = ckt.add_node("c");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(3.0));
  ckt.add<Resistor>("r1", a, b, 1e3);
  ckt.add<Resistor>("r2", b, c, 1e3);
  ckt.add<Resistor>("r3", c, kGround, 1e3);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(b), 2.0, 1e-9);
  EXPECT_NEAR(op->voltage(c), 1.0, 1e-9);
}

TEST(DcAnalysis, FloatingNodeReportsError) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  ckt.add_node("floating");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(1.0));
  ckt.add<Resistor>("r1", a, kGround, 1e3);
  auto op = solve_op(ckt);
  EXPECT_FALSE(op.ok());  // singular matrix surfaced, not a NaN solution
}

TEST(DcAnalysis, InitialGuessIsOptional) {
  Circuit ckt = make_rc(1e3, 1e-12);
  DcOptions opt;
  opt.initial_node_v = {0.0, 0.7, 0.2};
  auto op = solve_op(ckt, opt);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(ckt.node("out")), 1.0, 1e-6);
}

// ---------------------------------------------------------------- AC

TEST(AcAnalysis, RcPoleMagnitudeAndPhase) {
  const double r = 1e3, c = 1e-9;
  const double f_pole = 1.0 / (2.0 * kPi * r * c);
  Circuit ckt = make_rc(r, c);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());

  auto x = ac_solve_at(ckt, *op, f_pole);
  ASSERT_TRUE(x.ok());
  const std::complex<double> h = (*x)[ckt.node("out") - 1];
  EXPECT_NEAR(std::abs(h), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::arg(h) * 180.0 / kPi, -45.0, 1e-3);
}

TEST(AcAnalysis, SweepIsLogSpacedAndMonotone) {
  Circuit ckt = make_rc(1e3, 1e-9);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  AcOptions opt;
  opt.f_start = 1e3;
  opt.f_stop = 1e9;
  opt.points_per_decade = 5;
  auto sweep = ac_sweep(ckt, *op, ckt.node("out"), kGround, opt);
  ASSERT_TRUE(sweep.ok());
  ASSERT_GE(sweep->size(), 10u);
  EXPECT_NEAR(sweep->front().freq, 1e3, 1.0);
  EXPECT_NEAR(sweep->back().freq, 1e9, 1e3);
  for (std::size_t i = 1; i < sweep->size(); ++i) {
    EXPECT_GT((*sweep)[i].freq, (*sweep)[i - 1].freq);
    EXPECT_LE(std::abs((*sweep)[i].value),
              std::abs((*sweep)[i - 1].value) + 1e-12);
  }
}

TEST(AcAnalysis, MeasureExtractsF3db) {
  const double r = 1e3, c = 1e-9;
  const double f_pole = 1.0 / (2.0 * kPi * r * c);
  Circuit ckt = make_rc(r, c);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  AcOptions opt;
  opt.f_start = 1e3;
  opt.f_stop = 1e9;
  auto sweep = ac_sweep(ckt, *op, ckt.node("out"), kGround, opt);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_NEAR(m.f3db, f_pole, f_pole * 0.02);
  EXPECT_NEAR(m.dc_gain, 1.0, 1e-4);
  EXPECT_FALSE(m.ugbw_found);  // gain never exceeds 1
}

TEST(AcAnalysis, MeasureUgbwAndPhaseMarginOfIntegratorLikeStage) {
  // VCCS + load cap: H(s) = gm/(sC) -> |H|=1 at gm/(2 pi C), PM = 90 deg.
  Circuit ckt;
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::constant(0.0), 1.0);
  ckt.add<Vccs>("g1", out, kGround, in, kGround, -1e-3);  // non-inverting
  ckt.add<Resistor>("ro", out, kGround, 1e7);             // finite DC gain
  ckt.add<Capacitor>("cl", out, kGround, 1e-12);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  AcOptions opt;
  opt.f_start = 1e2;
  opt.f_stop = 1e11;
  auto sweep = ac_sweep(ckt, *op, out, kGround, opt);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  ASSERT_TRUE(m.ugbw_found);
  EXPECT_NEAR(m.ugbw, 1e-3 / (2.0 * kPi * 1e-12), m.ugbw * 0.02);
  EXPECT_NEAR(m.phase_margin_deg, 90.0, 1.5);
}

// ---------------------------------------------------------------- Transient

TEST(Transient, RcStepMatchesAnalytic) {
  const double r = 1e3, c = 1e-9;  // tau = 1 us
  Circuit ckt;
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add<VoltageSource>("v1", in, kGround,
                         Waveform::step(0.0, 1.0, 0.0, 1e-9));
  ckt.add<Resistor>("r1", in, out, r);
  ckt.add<Capacitor>("c1", out, kGround, c);

  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  TranOptions opt;
  opt.t_stop = 5e-6;
  opt.dt = 5e-9;
  auto tran = transient(ckt, *op, {out}, opt);
  ASSERT_TRUE(tran.ok());

  const double tau = r * c;
  for (std::size_t k = 0; k < tran->time.size(); k += 50) {
    const double t = tran->time[k];
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(tran->waveforms[0][k], expected, 0.01) << "t=" << t;
  }
  // Window is 5 tau: analytic endpoint is 1 - e^-5.
  EXPECT_NEAR(tran->waveforms[0].back(), 1.0 - std::exp(-5.0), 1e-3);
}

TEST(Transient, EnergyConservationRcDivider) {
  // Two capacitors in series across a source settle to the capacitive
  // divider value.
  Circuit ckt;
  const NodeId in = ckt.add_node("in");
  const NodeId mid = ckt.add_node("mid");
  ckt.add<VoltageSource>("v1", in, kGround,
                         Waveform::step(0.0, 1.0, 0.0, 1e-9));
  ckt.add<Resistor>("r", in, mid, 1e2);  // makes the problem well-posed
  ckt.add<Capacitor>("c1", mid, kGround, 2e-12);
  ckt.add<Resistor>("rb", mid, kGround, 1e9);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  TranOptions opt;
  opt.t_stop = 1e-8;
  opt.dt = 1e-11;
  auto tran = transient(ckt, *op, {mid}, opt);
  ASSERT_TRUE(tran.ok());
  EXPECT_NEAR(tran->waveforms[0].back(), 1.0, 0.01);
}

TEST(Transient, SettlingTimeOfFirstOrderStep) {
  // Analytic: settles to 2% band at t = -tau*ln(0.02) ~ 3.912 tau.
  const double tau = 1e-6;
  std::vector<double> time, wave;
  for (int i = 0; i <= 2000; ++i) {
    const double t = 10e-6 * i / 2000.0;
    time.push_back(t);
    wave.push_back(1.0 - std::exp(-t / tau));
  }
  const double ts = settling_time(time, wave, 0.02);
  EXPECT_NEAR(ts, 3.912e-6, 0.05e-6);
}

TEST(Transient, SettlingTimeHandlesFlatWave) {
  std::vector<double> time{0.0, 1.0, 2.0};
  std::vector<double> wave{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(settling_time(time, wave, 0.02), 0.0);
}

// ---------------------------------------------------------------- Noise

TEST(Noise, ResistorDividerMatchesJohnsonFormula) {
  // Output noise of R1 || R2 divider across band: Sv = 4kT*(R1||R2).
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  const NodeId out = ckt.add_node("out");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(1.0));
  ckt.add<Resistor>("r1", a, out, 2e3);
  ckt.add<Resistor>("r2", out, kGround, 2e3);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  NoiseOptions opt;
  opt.f_start = 1e3;
  opt.f_stop = 1e6;
  auto noise = noise_sweep(ckt, *op, out, kGround, opt);
  ASSERT_TRUE(noise.ok());
  const double expected_psd = 4.0 * kBoltzmann * 300.0 * 1e3;  // R1||R2 = 1k
  for (double psd : noise->out_psd) {
    EXPECT_NEAR(psd, expected_psd, expected_psd * 1e-6);
  }
  // Integrated power ~ PSD * bandwidth.
  EXPECT_NEAR(noise->total_output_v2, expected_psd * (1e6 - 1e3),
              expected_psd * 1e6 * 0.01);
  EXPECT_NEAR(noise->total_output_vrms(),
              std::sqrt(noise->total_output_v2), 1e-15);
}

TEST(Noise, RcFilterShapesResistorNoise) {
  // With a capacitor, total integrated output noise approaches kT/C.
  const double c = 1e-12;
  Circuit ckt = make_rc(1e3, c);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  NoiseOptions opt;
  opt.f_start = 1e2;
  opt.f_stop = 1e12;  // well past the pole
  opt.points_per_decade = 10;
  auto noise = noise_sweep(ckt, *op, ckt.node("out"), kGround, opt);
  ASSERT_TRUE(noise.ok());
  const double kt_over_c = kBoltzmann * 300.0 / c;
  EXPECT_NEAR(noise->total_output_v2, kt_over_c, kt_over_c * 0.05);
}

TEST(Noise, PsdDecreasesAbovePole) {
  Circuit ckt = make_rc(1e3, 1e-9);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  NoiseOptions opt;
  opt.f_start = 1e3;
  opt.f_stop = 1e9;
  auto noise = noise_sweep(ckt, *op, ckt.node("out"), kGround, opt);
  ASSERT_TRUE(noise.ok());
  EXPECT_GT(noise->out_psd.front(), 10.0 * noise->out_psd.back());
}
