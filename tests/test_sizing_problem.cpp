#include <gtest/gtest.h>

#include <cmath>

#include "circuits/problems.hpp"
#include "circuits/sizing_problem.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

using namespace autockt::circuits;

TEST(ParamDef, GridSizeAndValues) {
  ParamDef def{"w", 2.0, 10.0, 2.0};
  EXPECT_EQ(def.grid_size(), 5);
  EXPECT_DOUBLE_EQ(def.value(0), 2.0);
  EXPECT_DOUBLE_EQ(def.value(4), 10.0);
}

TEST(ParamDef, FractionalStep) {
  ParamDef def{"cc", 0.1, 10.0, 0.1};
  EXPECT_EQ(def.grid_size(), 100);
  EXPECT_NEAR(def.value(99), 10.0, 1e-9);
}

TEST(SpecDef, GreaterEqRelSign) {
  SpecDef spec{"gain", SpecSense::GreaterEq, 0, 1, 1, 0};
  EXPECT_GT(spec.rel(400.0, 300.0), 0.0);
  EXPECT_LT(spec.rel(200.0, 300.0), 0.0);
  EXPECT_NEAR(spec.rel(300.0, 300.0), 0.0, 1e-12);
  EXPECT_TRUE(spec.satisfied(301.0, 300.0));
  EXPECT_FALSE(spec.satisfied(290.0, 300.0));
}

TEST(SpecDef, LessEqRelSign) {
  SpecDef spec{"noise", SpecSense::LessEq, 0, 1, 1, 0};
  EXPECT_GT(spec.rel(1e-4, 2e-4), 0.0);
  EXPECT_LT(spec.rel(3e-4, 2e-4), 0.0);
  EXPECT_TRUE(spec.satisfied(2e-4, 2e-4));
}

TEST(SpecDef, RelMatchesPaperFormula) {
  // (o - t)/(o + t) for GreaterEq.
  SpecDef spec{"gain", SpecSense::GreaterEq, 0, 1, 1, 0};
  EXPECT_NEAR(spec.rel(400.0, 200.0), 200.0 / 600.0, 1e-9);
}

TEST(SpecDef, ToleranceInSatisfied) {
  SpecDef spec{"gain", SpecSense::GreaterEq, 0, 1, 1, 0};
  EXPECT_FALSE(spec.satisfied(297.0, 300.0));
  EXPECT_TRUE(spec.satisfied(297.0, 300.0, 0.01));
}

TEST(LookupNorm, MapsPositiveAxisToMinusOneOne) {
  EXPECT_NEAR(lookup_norm(1.0, 1.0), 0.0, 1e-12);
  EXPECT_GT(lookup_norm(10.0, 1.0), 0.0);
  EXPECT_LT(lookup_norm(0.1, 1.0), 0.0);
  EXPECT_LT(std::fabs(lookup_norm(1e12, 1.0)), 1.0 + 1e-12);
  EXPECT_LT(std::fabs(lookup_norm(0.0, 1.0)), 1.0 + 1e-12);
}

TEST(SizingProblem, CenterAndValidity) {
  const auto prob = autockt::test_support::make_synthetic_problem(3, 21);
  const auto center = prob.center_params();
  ASSERT_EQ(center.size(), 3u);
  EXPECT_EQ(center[0], 10);
  EXPECT_TRUE(prob.valid_params(center));
  EXPECT_FALSE(prob.valid_params({0, 0}));        // wrong arity
  EXPECT_FALSE(prob.valid_params({0, 0, 21}));    // out of grid
  EXPECT_FALSE(prob.valid_params({-1, 0, 0}));
}

TEST(SizingProblem, ActionSpaceLog10) {
  const auto prob = autockt::test_support::make_synthetic_problem(3, 10);
  EXPECT_NEAR(prob.action_space_log10(), 3.0, 1e-9);
}

TEST(SizingProblem, FailSpecsMatchDefs) {
  const auto prob = autockt::test_support::make_synthetic_problem();
  const auto fail = prob.fail_specs();
  ASSERT_EQ(fail.size(), prob.specs.size());
  EXPECT_DOUBLE_EQ(fail[0], 0.0);
  EXPECT_DOUBLE_EQ(fail[1], 100.0);
}

TEST(SizingProblem, RewardEq1SignStructure) {
  const auto prob = autockt::test_support::make_synthetic_problem();
  // All met with margin: hard terms clamp to 0, minimize term positive.
  SpecVector good{12.0, 3.0, 1.0};
  SpecVector target{10.0, 5.0, 1.4};
  EXPECT_GT(prob.reward_eq1(good, target), 0.0);
  EXPECT_TRUE(prob.goal_met(good, target));

  // Violating the GreaterEq spec makes the reward negative.
  SpecVector bad{5.0, 3.0, 1.0};
  EXPECT_LT(prob.reward_eq1(bad, target), 0.0);
  EXPECT_FALSE(prob.goal_met(bad, target));
}

TEST(SizingProblem, HardViolationIsNonPositive) {
  const auto prob = autockt::test_support::make_synthetic_problem();
  autockt::util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    SpecVector o{rng.uniform(5, 15), rng.uniform(2, 8), rng.uniform(1, 2)};
    SpecVector t{rng.uniform(5, 15), rng.uniform(2, 8), rng.uniform(1, 2)};
    EXPECT_LE(prob.hard_violation(o, t), 1e-12);
  }
}

TEST(SizingProblem, GoalTolIsOnePercent) {
  const auto prob = autockt::test_support::make_synthetic_problem();
  SpecVector target{10.0, 5.0, 1.2};
  // Just inside 1% relative tolerance on the first spec: rel uses the
  // symmetric denominator |o| + |t|, so a 1.95% shortfall is rel ~ -0.0098.
  SpecVector nearly{10.0 * (1.0 - 0.0195), 4.0, 1.0};
  EXPECT_TRUE(prob.goal_met(nearly, target));
  SpecVector outside{10.0 * (1.0 - 0.03), 4.0, 1.0};
  EXPECT_FALSE(prob.goal_met(outside, target));
}

TEST(WorstCaseFold, PicksWorstPerSense) {
  std::vector<SpecDef> specs = {
      {"gain", SpecSense::GreaterEq, 0, 1, 1, 0},
      {"noise", SpecSense::LessEq, 0, 1, 1, 0},
      {"power", SpecSense::Minimize, 0, 1, 1, 0},
  };
  std::vector<SpecVector> corners = {
      {100.0, 2e-4, 1e-3},
      {80.0, 5e-4, 2e-3},
      {120.0, 1e-4, 0.5e-3},
  };
  const auto worst = worst_case_fold(specs, corners);
  EXPECT_DOUBLE_EQ(worst[0], 80.0);    // min gain
  EXPECT_DOUBLE_EQ(worst[1], 5e-4);    // max noise
  EXPECT_DOUBLE_EQ(worst[2], 2e-3);    // max power
}

TEST(WorstCaseFold, SingleCornerIsIdentity) {
  std::vector<SpecDef> specs = {{"gain", SpecSense::GreaterEq, 0, 1, 1, 0}};
  const auto worst = worst_case_fold(specs, {{42.0}});
  EXPECT_DOUBLE_EQ(worst[0], 42.0);
}

TEST(SizingProblem, ParamValuesMapGrid) {
  const auto prob = autockt::test_support::make_synthetic_problem(2, 11);
  const auto vals = prob.param_values({0, 10});
  EXPECT_DOUBLE_EQ(vals[0], 0.0);
  EXPECT_DOUBLE_EQ(vals[1], 10.0);
}

// Paper-facing checks: the shipped problems advertise the paper's shapes.
// (Construction is cheap; no simulation happens here.)

TEST(PaperProblems, TwoStageActionSpaceIs1e14) {
  const auto prob = make_two_stage_problem();
  EXPECT_EQ(prob.params.size(), 7u);  // six widths + Cc
  EXPECT_NEAR(prob.action_space_log10(), 14.0, 0.3);
  EXPECT_EQ(prob.specs.size(), 4u);   // gain, ugbw, pm, ibias
  EXPECT_EQ(prob.specs[3].sense, SpecSense::Minimize);
}

TEST(PaperProblems, NgmActionSpaceIsOrder1e11) {
  const auto prob = make_ngm_problem();
  EXPECT_EQ(prob.params.size(), 7u);
  EXPECT_GT(prob.action_space_log10(), 10.0);
  EXPECT_LT(prob.action_space_log10(), 12.5);
  EXPECT_EQ(prob.specs.size(), 3u);
  // PM target sampled in a range (transfer-learning aid, Section III-C).
  EXPECT_LT(prob.specs[2].sample_lo, prob.specs[2].sample_hi);
}

TEST(PaperProblems, TiaActionSpaceMatchesPaperGrids) {
  const auto prob = make_tia_problem();
  ASSERT_EQ(prob.params.size(), 6u);
  EXPECT_EQ(prob.params[0].grid_size(), 5);   // width [2,10,2]
  EXPECT_EQ(prob.params[1].grid_size(), 16);  // mult [2,32,2]
  EXPECT_EQ(prob.params[4].grid_size(), 10);  // series [2,20,2]
  EXPECT_EQ(prob.params[5].grid_size(), 20);  // parallel [1,20,1]
}

TEST(PaperProblems, PexVariantFixesPmLowerBound) {
  const auto pex = make_ngm_pex_problem();
  EXPECT_DOUBLE_EQ(pex.specs[2].sample_lo, pex.specs[2].sample_hi);
  EXPECT_DOUBLE_EQ(pex.specs[2].sample_lo, 60.0);
  EXPECT_GT(pex.paper_sim_seconds, make_ngm_problem().paper_sim_seconds);
}

// ---- degenerate parameter definitions --------------------------------------

TEST(ParamDef, DegenerateStepCollapsesToSinglePoint) {
  ParamDef zero_step{"bad", 1.0, 10.0, 0.0};
  EXPECT_EQ(zero_step.grid_size(), 1);
  ParamDef negative_step{"bad", 1.0, 10.0, -2.0};
  EXPECT_EQ(negative_step.grid_size(), 1);
  // value(0) is still the start of the range.
  EXPECT_DOUBLE_EQ(zero_step.value(0), 1.0);
}

TEST(ParamDef, ReversedRangeCollapsesToSinglePoint) {
  ParamDef reversed{"bad", 10.0, 2.0, 1.0};
  EXPECT_EQ(reversed.grid_size(), 1);
  EXPECT_DOUBLE_EQ(reversed.value(0), 10.0);
}

TEST(ParamDef, DegenerateDefsKeepProblemHelpersSafe) {
  SizingProblem prob;
  prob.params = {{"ok", 0.0, 4.0, 1.0}, {"bad", 3.0, 3.0, 0.0}};
  // A 1-point axis contributes log10(1) = 0 and centres at index 0.
  EXPECT_NEAR(prob.action_space_log10(), std::log10(5.0), 1e-12);
  EXPECT_EQ(prob.center_params(), (ParamVector{2, 0}));
  EXPECT_TRUE(prob.valid_params({0, 0}));
  EXPECT_FALSE(prob.valid_params({0, 1}));
}
