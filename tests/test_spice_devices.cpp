#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/units.hpp"
#include "spice/waveform.hpp"

using namespace autockt::spice;

// ---------------------------------------------------------------- Waveform

TEST(Waveform, ConstantIsFlat) {
  const auto w = Waveform::constant(1.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.5);
  EXPECT_DOUBLE_EQ(w.value(1.0), 1.5);
  EXPECT_DOUBLE_EQ(w.dc(), 1.5);
}

TEST(Waveform, StepRampsLinearly) {
  const auto w = Waveform::step(0.0, 1.0, 1e-9, 2e-10);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1e-9), 0.0);
  EXPECT_NEAR(w.value(1.1e-9), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(w.value(2e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.dc(), 0.0);
}

TEST(Waveform, PulseReturnsToBase) {
  const auto w = Waveform::pulse(0.0, 2.0, 1e-9, 5e-9, 1e-12);
  EXPECT_NEAR(w.value(3e-9), 2.0, 1e-9);
  EXPECT_NEAR(w.value(10e-9), 0.0, 1e-9);
}

// ------------------------------------------------------------ DC stamping

TEST(Devices, ResistorDividerHalvesVoltage) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  const NodeId b = ckt.add_node("b");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(2.0));
  ckt.add<Resistor>("r1", a, b, 1e3);
  ckt.add<Resistor>("r2", b, kGround, 1e3);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(b), 1.0, 1e-9);
}

TEST(Devices, VoltageSourceBranchCurrentSign) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(1.0));
  ckt.add<Resistor>("r1", a, kGround, 1e3);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  // 1 mA drawn from the source: branch current (plus->minus through the
  // source) is -1 mA by SPICE convention.
  EXPECT_NEAR(op->branch_i[0], -1e-3, 1e-9);
}

TEST(Devices, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  ckt.add<CurrentSource>("i1", kGround, a, Waveform::constant(2e-3));
  ckt.add<Resistor>("r1", a, kGround, 500.0);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(a), 1.0, 1e-9);
}

TEST(Devices, CapacitorIsOpenAtDc) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  const NodeId b = ckt.add_node("b");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(1.0));
  ckt.add<Resistor>("r1", a, b, 1e3);
  ckt.add<Capacitor>("c1", b, kGround, 1e-12);
  ckt.add<Resistor>("rleak", b, kGround, 1e9);  // define node b at DC
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(b), 1.0, 1e-3);  // no DC current through cap
}

TEST(Devices, VccsInjectsProportionalCurrent) {
  Circuit ckt;
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::constant(0.5));
  ckt.add<Vccs>("g1", out, kGround, in, kGround, 1e-3);  // i = 0.5 mA out
  ckt.add<Resistor>("rl", out, kGround, 1e3);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  // Current leaves `out` through the VCCS: v(out) = -gm*v(in)*R = -0.5.
  EXPECT_NEAR(op->voltage(out), -0.5, 1e-9);
}

TEST(Devices, BiasProbeForcesSenseNode) {
  // Inverting amplifier made of a VCCS; the probe must drive `bias` so that
  // out sits exactly at 0.4.
  Circuit ckt;
  const NodeId bias = ckt.add_node("bias");
  const NodeId out = ckt.add_node("out");
  ckt.add<Vccs>("g1", out, kGround, bias, kGround, 1e-3);
  ckt.add<Resistor>("rl", out, kGround, 10e3);
  ckt.add<Resistor>("rb", bias, kGround, 1e9);  // weak definition
  ckt.add<BiasProbe>("servo", bias, out, 0.4);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(out), 0.4, 1e-6);
  // v(out) = -gm*R*v(bias) => v(bias) = -0.04
  EXPECT_NEAR(op->voltage(bias), -0.04, 1e-6);
}

TEST(Devices, BiasProbeAcGroundsBiasNode) {
  Circuit ckt;
  const NodeId bias = ckt.add_node("bias");
  const NodeId out = ckt.add_node("out");
  ckt.add<Vccs>("g1", out, kGround, bias, kGround, 1e-3);
  ckt.add<Resistor>("rl", out, kGround, 10e3);
  ckt.add<Resistor>("rb", bias, kGround, 1e9);
  ckt.add<BiasProbe>("servo", bias, out, 0.4);
  auto op = solve_op(ckt);
  ASSERT_TRUE(op.ok());
  auto x = ac_solve_at(ckt, *op, 1e6);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(std::abs((*x)[bias - 1]), 0.0, 1e-12);
}

TEST(Devices, ResistorThermalNoisePsd) {
  Resistor r("r", 1, 0, 1e3);
  std::vector<NoiseSource> sources;
  r.collect_noise({}, 1e6, 300.0, sources);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_NEAR(sources[0].psd, 4.0 * kBoltzmann * 300.0 / 1e3, 1e-25);
}

TEST(Devices, SourceScaleScalesSources) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(2.0));
  ckt.add<Resistor>("r1", a, kGround, 1e3);

  const std::size_t n = ckt.num_unknowns();
  autockt::linalg::RealMatrix mat(n, n);
  std::vector<double> rhs(n, 0.0);
  std::vector<double> volts(ckt.num_nodes(), 0.0);
  RealStamp ctx{mat, rhs, volts};
  ctx.num_nodes = ckt.num_nodes();
  ctx.source_scale = 0.5;
  ckt.stamp_real(ctx);
  EXPECT_DOUBLE_EQ(rhs[ctx.row_of_branch(0)], 1.0);  // 2.0 * 0.5
}

// ---------------------------------------------------------------- Circuit

TEST(Circuit, NodeLookupAndGroundAliases) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  EXPECT_EQ(ckt.node("a"), a);
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_THROW(ckt.node("missing"), std::out_of_range);
  EXPECT_THROW(ckt.add_node("a"), std::invalid_argument);
}

TEST(Circuit, BranchAccounting) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  const NodeId b = ckt.add_node("b");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::constant(1.0));
  ckt.add<VoltageSource>("v2", b, kGround, Waveform::constant(1.0));
  ckt.add<Resistor>("r", a, b, 1.0);
  EXPECT_EQ(ckt.num_branches(), 2u);
  EXPECT_EQ(ckt.num_unknowns(), 4u);  // 2 nodes + 2 branches
}

TEST(Circuit, FindByName) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  ckt.add<Resistor>("r1", a, kGround, 1.0);
  EXPECT_NE(ckt.find("r1"), nullptr);
  EXPECT_EQ(ckt.find("zz"), nullptr);
}
