// Deck-compiled sizing problems and the circuit registry: a .cir deck with
// .param/.spec/.measure declarations must round-trip into a SizingProblem
// equivalent to a hand-built one, resolve through the registry by name or
// path, and train deterministically through the standard pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autockt/autockt.hpp"
#include "circuits/netlist_problem.hpp"
#include "circuits/registry.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/units.hpp"

using namespace autockt;
using namespace autockt::circuits;

namespace {

// RC low-pass with a parameterized resistor and capacitor: cheap enough to
// evaluate exhaustively, simple enough to hand-build for the equivalence
// check.
constexpr const char* kRcDeck = R"(
.title parameterized rc low-pass
.param rr 1 5 5
.param cc 1 4 4
vs inp 0 dc 1 ac 1
r1 inp out {rr}k
c1 out 0 {cc}p
.ac out 1k 10g
.spec gain_vv geq 0.5 1 0.8
.spec f3db_hz geq 1e7 1e8 3e7
.measure gain_vv gain
.measure f3db_hz f3db
)";

std::string decks_dir() {
  return std::string(AUTOCKT_SOURCE_DIR) + "/examples/decks";
}

}  // namespace

TEST(NetlistProblem, CompilesParamAndSpecDefs) {
  auto prob = make_netlist_problem_from_text(kRcDeck, "rc");
  ASSERT_TRUE(prob.ok()) << prob.error().message;
  EXPECT_EQ(prob->name, "rc");
  EXPECT_EQ(prob->description, "parameterized rc low-pass");

  ASSERT_EQ(prob->params.size(), 2u);
  EXPECT_EQ(prob->params[0].name, "rr");
  EXPECT_EQ(prob->params[0].grid_size(), 5);
  EXPECT_DOUBLE_EQ(prob->params[0].value(0), 1.0);
  EXPECT_DOUBLE_EQ(prob->params[0].value(4), 5.0);
  EXPECT_EQ(prob->params[1].grid_size(), 4);

  ASSERT_EQ(prob->specs.size(), 2u);
  EXPECT_EQ(prob->specs[0].name, "gain_vv");
  EXPECT_EQ(prob->specs[0].sense, SpecSense::GreaterEq);
  EXPECT_DOUBLE_EQ(prob->specs[1].sample_lo, 1e7);
  EXPECT_DOUBLE_EQ(prob->specs[1].norm_const, 3e7);
}

TEST(NetlistProblem, EvaluationMatchesHandBuiltCircuit) {
  auto prob = make_netlist_problem_from_text(kRcDeck, "rc");
  ASSERT_TRUE(prob.ok());

  // Every grid point must reproduce the measurement of the identical
  // builder-API circuit run through the same analyses.
  for (int ri = 0; ri < 5; ++ri) {
    for (int ci = 0; ci < 4; ++ci) {
      auto specs = prob->evaluate({ri, ci});
      ASSERT_TRUE(specs.ok()) << specs.error().message;

      const double r_ohm = (1.0 + ri) * 1e3;
      const double c_f = (1.0 + ci) * 1e-12;
      using namespace spice;
      Circuit ckt;
      const NodeId inp = ckt.add_node("inp");
      const NodeId out = ckt.add_node("out");
      ckt.add<VoltageSource>("vs", inp, kGround, Waveform::constant(1.0),
                             1.0);
      ckt.add<Resistor>("r1", inp, out, r_ohm);
      ckt.add<Capacitor>("c1", out, kGround, c_f);
      auto op = solve_op(ckt);
      ASSERT_TRUE(op.ok());
      AcOptions ac;
      ac.f_start = 1e3;
      ac.f_stop = 10e9;
      auto sweep = ac_sweep(ckt, *op, out, kGround, ac);
      ASSERT_TRUE(sweep.ok());
      const auto m = measure_ac(*sweep);

      EXPECT_NEAR((*specs)[0], m.dc_gain, 1e-12 * std::abs(m.dc_gain));
      ASSERT_TRUE(m.f3db_found);
      EXPECT_NEAR((*specs)[1], m.f3db, 1e-9 * m.f3db);
      // And the physics: f3db ~ 1/(2 pi R C).
      EXPECT_NEAR((*specs)[1], 1.0 / (2.0 * kPi * r_ohm * c_f),
                  0.02 / (2.0 * kPi * r_ohm * c_f));
    }
  }
}

TEST(NetlistProblem, RejectsDecksWithoutSizing) {
  auto no_params = make_netlist_problem_from_text(
      "v1 a 0 dc 1\nr1 a 0 1k\n", "bare");
  ASSERT_FALSE(no_params.ok());
  EXPECT_NE(no_params.error().message.find(".param"), std::string::npos);
}

TEST(NetlistProblem, FromFileNamesProblemAfterStem) {
  const std::string path = decks_dir() + "/five_t_ota.cir";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  auto prob = make_netlist_problem_from_file(path);
  ASSERT_TRUE(prob.ok()) << prob.error().message;
  EXPECT_EQ(prob->name, "five_t_ota");
  EXPECT_EQ(prob->params.size(), 4u);
  EXPECT_EQ(prob->specs.size(), 3u);
}

TEST(NetlistProblem, ShippedDecksCharacterize) {
  // Every checked-in example deck must compile and evaluate its grid centre
  // to finite spec values — the same invariant the CI smoke job enforces.
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(decks_dir())) {
    if (entry.path().extension() != ".cir") continue;
    ++seen;
    auto prob = make_netlist_problem_from_file(entry.path().string());
    ASSERT_TRUE(prob.ok()) << entry.path() << ": " << prob.error().message;
    auto specs = prob->evaluate(prob->center_params());
    ASSERT_TRUE(specs.ok()) << entry.path() << ": " << specs.error().message;
    for (double v : *specs) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GE(seen, 3);
}

// ------------------------------------------------------------- registry

TEST(CircuitRegistry, BuiltinsResolveByName) {
  const auto reg = CircuitRegistry::with_builtins();
  EXPECT_TRUE(reg.has("tia"));
  EXPECT_TRUE(reg.has("two_stage_opamp"));
  EXPECT_TRUE(reg.has("ngm_ota"));
  EXPECT_TRUE(reg.has("ngm_ota_pex"));

  ProblemOptions options;
  options.parallel_batch = false;  // keep the test single-threaded
  auto prob = reg.make("tia", options);
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->name, "tia");
  EXPECT_EQ(prob->params.size(), 6u);
}

TEST(CircuitRegistry, UnknownNameListsScenarios) {
  const auto reg = CircuitRegistry::with_builtins();
  auto e = reg.make("not_a_circuit");
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error().message.find("not_a_circuit"), std::string::npos);
  EXPECT_NE(e.error().message.find("tia"), std::string::npos);
}

TEST(CircuitRegistry, DeckDirAndPathResolution) {
  auto reg = CircuitRegistry::with_builtins();
  auto registered = reg.add_deck_dir(decks_dir());
  ASSERT_TRUE(registered.ok()) << registered.error().message;
  EXPECT_GE(registered->size(), 3u);
  EXPECT_TRUE(reg.has("common_source"));
  EXPECT_TRUE(reg.has("five_t_ota"));
  EXPECT_TRUE(reg.has("rc_buffer"));

  // A path argument bypasses registration entirely.
  auto by_path = reg.make(decks_dir() + "/rc_buffer.cir");
  ASSERT_TRUE(by_path.ok()) << by_path.error().message;
  EXPECT_EQ(by_path->name, "rc_buffer");

  // Registered deck and path-resolved deck agree at the grid centre.
  auto by_name = reg.make("rc_buffer");
  ASSERT_TRUE(by_name.ok());
  auto s1 = by_name->evaluate(by_name->center_params());
  auto s2 = by_path->evaluate(by_path->center_params());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(CircuitRegistry, RejectsDeckStemShadowingRegisteredScenario) {
  // A deck named tia.cir must not silently replace the builtin TIA.
  namespace fs = std::filesystem;
  const fs::path tmp = fs::temp_directory_path() / "tia.cir";
  fs::copy_file(decks_dir() + "/rc_buffer.cir", tmp,
                fs::copy_options::overwrite_existing);
  auto reg = CircuitRegistry::with_builtins();
  auto e = reg.add_deck_file(tmp.string());
  fs::remove(tmp);
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error().message.find("already registered"), std::string::npos);
  // The builtin survives.
  auto prob = reg.make("tia");
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->params.size(), 6u);
}

TEST(CircuitRegistry, RejectsDeckWithoutSizingDeclarations) {
  namespace fs = std::filesystem;
  const fs::path tmp = fs::temp_directory_path() / "autockt_bare_deck.cir";
  {
    std::ofstream out(tmp);
    out << "v1 a 0 dc 1\nr1 a 0 1k\n";
  }
  auto reg = CircuitRegistry::with_builtins();
  auto e = reg.add_deck_file(tmp.string());
  fs::remove(tmp);
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error().message.find("sizing"), std::string::npos);
}

// ------------------------------------------------- deterministic training

TEST(NetlistProblem, DeckProblemTrainsDeterministically) {
  auto run = [](std::uint64_t seed) {
    auto problem = std::make_shared<const SizingProblem>(
        *make_netlist_problem_from_text(kRcDeck, "rc"));
    core::AutoCktConfig config;
    config.seed = seed;
    config.env_config.horizon = 10;
    config.ppo.max_iterations = 2;
    config.ppo.steps_per_iteration = 120;
    config.ppo.num_workers = 2;
    config.ppo.envs_per_worker = 2;
    config.train_target_count = 8;
    config.holdout_target_count = 5;
    config.holdout_interval = 1;
    return core::train_agent(problem, config);
  };
  const auto a = run(11);
  const auto b = run(11);
  const auto c = run(12);

  ASSERT_EQ(a.history.iterations.size(), b.history.iterations.size());
  for (std::size_t i = 0; i < a.history.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history.iterations[i].mean_episode_reward,
                     b.history.iterations[i].mean_episode_reward);
    EXPECT_DOUBLE_EQ(a.history.iterations[i].goal_rate,
                     b.history.iterations[i].goal_rate);
  }
  EXPECT_EQ(a.train_suite.targets(), b.train_suite.targets());
  // The holdout suite derives from the suite seed alone, so it is shared
  // even across different training seeds.
  EXPECT_EQ(a.holdout_suite, c.holdout_suite);
}

TEST(NetlistProblem, RegistryScenarioTrainsThroughAutocktApi) {
  // The registry-driven train_agent overload: resolve a deck scenario by
  // name and train through the same API the examples use.
  auto reg = CircuitRegistry::with_builtins();
  ASSERT_TRUE(reg.add_deck_dir(decks_dir()).ok());

  core::AutoCktConfig config;
  config.seed = 3;
  config.env_config.horizon = 10;
  config.ppo.max_iterations = 1;
  config.ppo.steps_per_iteration = 80;
  config.train_target_count = 5;
  config.holdout_target_count = 4;

  auto outcome = core::train_agent(reg, "common_source", {}, config);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome->problem->name, "common_source");
  EXPECT_EQ(outcome->outcome.train_suite.size(), 5u);

  // Deployment and the generalization scorecard run against the resolved
  // problem unchanged.
  const auto report = core::evaluate_generalization(
      outcome->outcome.agent, outcome->problem,
      outcome->outcome.train_suite, outcome->outcome.holdout_suite,
      config.env_config, 5);
  EXPECT_EQ(report.train.total(), 5);
  EXPECT_EQ(report.holdout.total(), 4);

  auto bad = core::train_agent(reg, "no_such_scenario", {}, config);
  EXPECT_FALSE(bad.ok());
}
