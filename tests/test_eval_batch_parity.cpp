// Batch-vs-scalar parity: the batched numeric kernel and everything built
// on it (lockstep DC Newton, batched AC/noise sweeps, batched problem
// evaluators, the VectorSizingEnv path) must return results identical to
// the scalar path — batching changes wall-clock, never values. These tests
// pin the serial-exact contract at every layer, including ragged batch
// sizes and lanes that fail the per-lane pivot check.

#include <gtest/gtest.h>

#include <complex>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "circuits/netlist_problem.hpp"
#include "circuits/ngm_ota.hpp"
#include "circuits/problems.hpp"
#include "circuits/tia.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "env/vector_env.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"
#include "util/rng.hpp"

using namespace autockt;
using autockt::util::Rng;

namespace {

// ---- linalg-level helpers (mirrors test_linalg.cpp's generator) -----------

struct SparseSystem {
  linalg::SparsePattern pattern;
  std::vector<std::pair<int, int>> coords;  // by slot
};

SparseSystem make_sparse_system(int n, double density, Rng& rng) {
  linalg::PatternBuilder b(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    b.add(static_cast<std::size_t>(r), static_cast<std::size_t>(r));
    for (int c = 0; c < n; ++c) {
      if (c != r && rng.uniform(0.0, 1.0) < density) {
        b.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      }
    }
  }
  SparseSystem sys{linalg::SparsePattern(std::move(b)), {}};
  sys.coords.resize(sys.pattern.nnz());
  for (std::size_t s = 0; s < sys.pattern.nnz(); ++s) {
    sys.coords[s] = {sys.pattern.row_of_slot(s), sys.pattern.col_of_slot(s)};
  }
  return sys;
}

template <typename T>
std::vector<T> random_values(const SparseSystem& sys, int n, Rng& rng) {
  std::vector<T> vals(sys.pattern.nnz());
  for (std::size_t s = 0; s < sys.pattern.nnz(); ++s) {
    const auto [r, c] = sys.coords[s];
    double v = rng.uniform(-1.0, 1.0);
    if (r == c) v += static_cast<double>(n);
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      vals[s] = {v, rng.uniform(-1.0, 1.0)};
    } else {
      vals[s] = v;
    }
  }
  return vals;
}

}  // namespace

// ---- SparseLuNumericBatch vs SparseLuNumeric: bitwise -----------------------

class BatchLuParity : public ::testing::TestWithParam<int> {};

TEST_P(BatchLuParity, RefactorAndSolvesMatchScalarBitwise) {
  const int K = GetParam();  // ragged lane counts, incl. non-powers-of-2
  const int n = 17;
  Rng rng(9000 + static_cast<std::uint64_t>(K));
  SparseSystem sys = make_sparse_system(n, 0.3, rng);
  linalg::SparseLuSymbolic symbolic(sys.pattern, sys.pattern.weak());
  ASSERT_TRUE(symbolic.ok());

  const std::size_t nnz = sys.pattern.nnz();
  const std::size_t N = static_cast<std::size_t>(n);
  const std::size_t lanes = static_cast<std::size_t>(K);

  // Per-lane value sets, interleaved into the SoA layout the batch expects.
  std::vector<std::vector<double>> lane_vals;
  std::vector<double> soa_vals(nnz * lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    lane_vals.push_back(random_values<double>(sys, n, rng));
    for (std::size_t s = 0; s < nnz; ++s) {
      soa_vals[s * lanes + l] = lane_vals[l][s];
    }
  }
  std::vector<double> rhs(N), soa_rhs(N * lanes);
  for (std::size_t i = 0; i < N; ++i) {
    rhs[i] = rng.uniform(-2.0, 2.0);
    for (std::size_t l = 0; l < lanes; ++l) soa_rhs[i * lanes + l] = rhs[i];
  }

  linalg::SparseLuNumericBatch<double> batch(symbolic, lanes);
  std::vector<unsigned char> lane_ok(lanes, 0);
  batch.refactor(soa_vals.data(), lane_ok.data());

  linalg::SparseLuNumeric<double> scalar(symbolic);
  std::vector<double> x(N), xt(N), bx(N * lanes), bxt(N * lanes);
  batch.solve(soa_rhs.data(), bx.data());
  batch.solve_transposed(soa_rhs.data(), bxt.data());
  for (std::size_t l = 0; l < lanes; ++l) {
    ASSERT_TRUE(scalar.refactor(lane_vals[l].data())) << "lane " << l;
    EXPECT_EQ(lane_ok[l], 1) << "lane " << l;
    scalar.solve(rhs.data(), x.data());
    scalar.solve_transposed(rhs.data(), xt.data());
    for (std::size_t i = 0; i < N; ++i) {
      // Bitwise: the batch replays the same elimination program with the
      // same per-lane operand order the scalar kernel uses.
      EXPECT_EQ(bx[i * lanes + l], x[i]) << "lane " << l << " row " << i;
      EXPECT_EQ(bxt[i * lanes + l], xt[i]) << "lane " << l << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, BatchLuParity,
                         ::testing::Values(1, 3, 7, 16));

TEST(BatchLuParity, ComplexLanesMatchScalarBitwise) {
  using C = std::complex<double>;
  const int n = 11;
  const std::size_t lanes = 5;
  Rng rng(9100);
  SparseSystem sys = make_sparse_system(n, 0.35, rng);
  linalg::SparseLuSymbolic symbolic(sys.pattern, sys.pattern.weak());
  ASSERT_TRUE(symbolic.ok());
  const std::size_t nnz = sys.pattern.nnz();
  const std::size_t N = static_cast<std::size_t>(n);

  std::vector<std::vector<C>> lane_vals;
  std::vector<C> soa_vals(nnz * lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    lane_vals.push_back(random_values<C>(sys, n, rng));
    for (std::size_t s = 0; s < nnz; ++s) {
      soa_vals[s * lanes + l] = lane_vals[l][s];
    }
  }
  std::vector<C> rhs(N), soa_rhs(N * lanes);
  for (std::size_t i = 0; i < N; ++i) {
    rhs[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    for (std::size_t l = 0; l < lanes; ++l) soa_rhs[i * lanes + l] = rhs[i];
  }

  linalg::SparseLuNumericBatch<C> batch(symbolic, lanes);
  std::vector<unsigned char> lane_ok(lanes, 0);
  batch.refactor(soa_vals.data(), lane_ok.data());
  std::vector<C> bx(N * lanes), bxt(N * lanes);
  batch.solve(soa_rhs.data(), bx.data());
  batch.solve_transposed(soa_rhs.data(), bxt.data());

  linalg::SparseLuNumeric<C> scalar(symbolic);
  std::vector<C> x(N), xt(N);
  for (std::size_t l = 0; l < lanes; ++l) {
    ASSERT_TRUE(scalar.refactor(lane_vals[l].data()));
    EXPECT_EQ(lane_ok[l], 1);
    scalar.solve(rhs.data(), x.data());
    scalar.solve_transposed(rhs.data(), xt.data());
    for (std::size_t i = 0; i < N; ++i) {
      EXPECT_EQ(bx[i * lanes + l], x[i]);
      EXPECT_EQ(bxt[i * lanes + l], xt[i]);
    }
  }
}

TEST(BatchLuParity, SingularLaneFailsAloneAndLeavesOthersBitwise) {
  // Lane 1 of 3 carries a numerically rank-1 matrix: its pivot check must
  // fail exactly as the scalar kernel's does, without perturbing the
  // healthy lanes (the mixed-lane guarded update path).
  const int n = 6;
  const std::size_t lanes = 3;
  Rng rng(9200);
  SparseSystem sys = make_sparse_system(n, 0.4, rng);
  linalg::SparseLuSymbolic symbolic(sys.pattern, sys.pattern.weak());
  ASSERT_TRUE(symbolic.ok());
  const std::size_t nnz = sys.pattern.nnz();
  const std::size_t N = static_cast<std::size_t>(n);

  std::vector<std::vector<double>> lane_vals(lanes);
  lane_vals[0] = random_values<double>(sys, n, rng);
  lane_vals[1].assign(nnz, 0.0);  // all-zero matrix: structurally fine,
                                  // numerically singular in every pivot
  lane_vals[2] = random_values<double>(sys, n, rng);
  std::vector<double> soa_vals(nnz * lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t s = 0; s < nnz; ++s) {
      soa_vals[s * lanes + l] = lane_vals[l][s];
    }
  }
  std::vector<double> rhs(N), soa_rhs(N * lanes);
  for (std::size_t i = 0; i < N; ++i) {
    rhs[i] = rng.uniform(-2.0, 2.0);
    for (std::size_t l = 0; l < lanes; ++l) soa_rhs[i * lanes + l] = rhs[i];
  }

  linalg::SparseLuNumericBatch<double> batch(symbolic, lanes);
  std::vector<unsigned char> lane_ok(lanes, 2);
  batch.refactor(soa_vals.data(), lane_ok.data());
  EXPECT_EQ(lane_ok[0], 1);
  EXPECT_EQ(lane_ok[1], 0);
  EXPECT_EQ(lane_ok[2], 1);

  std::vector<double> bx(N * lanes);
  batch.solve(soa_rhs.data(), bx.data());
  linalg::SparseLuNumeric<double> scalar(symbolic);
  std::vector<double> x(N);
  for (const std::size_t l : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(scalar.refactor(lane_vals[l].data()));
    scalar.solve(rhs.data(), x.data());
    for (std::size_t i = 0; i < N; ++i) {
      EXPECT_EQ(bx[i * lanes + l], x[i]) << "lane " << l << " row " << i;
    }
  }
  EXPECT_FALSE(scalar.refactor(lane_vals[1].data()));
}

// ---- circuit-level: simulate_*_batch vs the scalar simulators ---------------

namespace {

template <typename Result>
void expect_same_outcome(const util::Expected<Result>& batch,
                         const util::Expected<Result>& scalar,
                         const std::string& what) {
  ASSERT_EQ(batch.ok(), scalar.ok()) << what;
  if (!batch.ok()) {
    EXPECT_EQ(batch.error().message, scalar.error().message) << what;
  }
}

}  // namespace

TEST(BatchSimParity, TwoStageMatchesScalarBitwiseAcrossRaggedK) {
  const spice::TechCard card = spice::TechCard::ptm45();
  for (const int K : {1, 3, 16}) {
    std::vector<circuits::TwoStageParams> params;
    for (int l = 0; l < K; ++l) {
      circuits::TwoStageParams p;  // perturb around the defaults
      p.w12 = (10.0 + static_cast<double>(l % 5)) * 1e-6;
      p.w6 = (30.0 + 2.0 * static_cast<double>(l % 7)) * 1e-6;
      p.cc = (0.6 + 0.05 * static_cast<double>(l % 4)) * 1e-12;
      params.push_back(p);
    }
    const auto batch = circuits::simulate_two_stage_batch(params, card);
    ASSERT_EQ(batch.size(), static_cast<std::size_t>(K));
    for (int l = 0; l < K; ++l) {
      const auto scalar = circuits::simulate_two_stage(params[l], card);
      expect_same_outcome(batch[l], scalar,
                          "two_stage K=" + std::to_string(K) + " lane " +
                              std::to_string(l));
      if (!scalar.ok()) continue;
      EXPECT_EQ(batch[l]->gain, scalar->gain);
      EXPECT_EQ(batch[l]->ugbw, scalar->ugbw);
      EXPECT_EQ(batch[l]->phase_margin, scalar->phase_margin);
      EXPECT_EQ(batch[l]->bias_current, scalar->bias_current);
      EXPECT_EQ(batch[l]->ugbw_found, scalar->ugbw_found);
    }
  }
}

TEST(BatchSimParity, NgmOtaMatchesScalarBitwise) {
  const spice::TechCard card = spice::TechCard::finfet16();
  const int K = 6;
  std::vector<circuits::NgmParams> params;
  for (int l = 0; l < K; ++l) {
    circuits::NgmParams p;
    p.nf_in = 20 + 4 * (l % 3);
    p.nf_cross = 6 + 2 * (l % 2);
    p.cc = (0.4 + 0.1 * static_cast<double>(l % 4)) * 1e-12;
    params.push_back(p);
  }
  const auto batch = circuits::simulate_ngm_ota_batch(params, card);
  for (int l = 0; l < K; ++l) {
    const auto scalar = circuits::simulate_ngm_ota(params[l], card);
    expect_same_outcome(batch[static_cast<std::size_t>(l)], scalar,
                        "ngm lane " + std::to_string(l));
    if (!scalar.ok()) continue;
    const auto& b = *batch[static_cast<std::size_t>(l)];
    EXPECT_EQ(b.gain, scalar->gain);
    EXPECT_EQ(b.ugbw, scalar->ugbw);
    EXPECT_EQ(b.phase_margin, scalar->phase_margin);
    EXPECT_EQ(b.bias_current, scalar->bias_current);
  }
}

TEST(BatchSimParity, TiaMatchesScalarBitwise) {
  const spice::TechCard card = spice::TechCard::ptm45();
  const int K = 5;
  std::vector<circuits::TiaParams> params;
  for (int l = 0; l < K; ++l) {
    circuits::TiaParams p;
    p.wn = (4.0 + 2.0 * static_cast<double>(l % 3)) * 1e-6;
    p.n_series = 4 + 2 * (l % 4);
    p.n_parallel = 1 + (l % 3);
    params.push_back(p);
  }
  const auto batch = circuits::simulate_tia_batch(params, card);
  for (int l = 0; l < K; ++l) {
    const auto scalar = circuits::simulate_tia(params[l], card);
    expect_same_outcome(batch[static_cast<std::size_t>(l)], scalar,
                        "tia lane " + std::to_string(l));
    if (!scalar.ok()) continue;
    const auto& b = *batch[static_cast<std::size_t>(l)];
    EXPECT_EQ(b.settling_time, scalar->settling_time);
    EXPECT_EQ(b.cutoff_freq, scalar->cutoff_freq);
    EXPECT_EQ(b.input_noise, scalar->input_noise);
    EXPECT_EQ(b.supply_current, scalar->supply_current);
  }
}

// ---- problem-level: evaluate_batch with batch_kernel on vs off --------------

namespace {

/// Raw serial stacks (no cache, no pool) so each evaluate_batch reaches the
/// leaf directly; `batch_kernel` is the only variable.
circuits::ProblemOptions lean_options(bool batch_kernel) {
  circuits::ProblemOptions o;
  o.cache = false;
  o.parallel_batch = false;
  o.parallel_corners = false;
  o.batch_kernel = batch_kernel;
  return o;
}

std::vector<eval::ParamVector> center_batch(
    const circuits::SizingProblem& prob, int K) {
  std::vector<eval::ParamVector> points;
  for (int l = 0; l < K; ++l) {
    eval::ParamVector idx;
    for (std::size_t p = 0; p < prob.params.size(); ++p) {
      const int g = prob.params[p].grid_size();
      int v = g / 2 + (l % 3) - 1 + static_cast<int>(p) * (l % 2);
      if (v < 0) v = 0;
      if (v >= g) v = g - 1;
      idx.push_back(v);
    }
    points.push_back(std::move(idx));
  }
  return points;
}

void expect_problem_batch_parity(circuits::SizingProblem batched,
                                 circuits::SizingProblem scalar, int K,
                                 const std::string& what) {
  const auto points = center_batch(batched, K);
  const auto via_batch = batched.backend->evaluate_batch(points);
  const auto via_scalar = scalar.backend->evaluate_batch(points);
  ASSERT_EQ(via_batch.size(), via_scalar.size()) << what;
  for (int l = 0; l < K; ++l) {
    const auto& b = via_batch[static_cast<std::size_t>(l)];
    const auto& s = via_scalar[static_cast<std::size_t>(l)];
    ASSERT_EQ(b.ok(), s.ok()) << what << " lane " << l;
    if (!b.ok()) {
      EXPECT_EQ(b.error().message, s.error().message) << what;
      continue;
    }
    ASSERT_EQ(b->size(), s->size()) << what;
    for (std::size_t i = 0; i < s->size(); ++i) {
      EXPECT_EQ((*b)[i], (*s)[i])
          << what << " lane " << l << " spec " << i;
    }
  }
}

}  // namespace

TEST(BatchProblemParity, BuiltinProblems) {
  expect_problem_batch_parity(
      circuits::make_tia_problem(lean_options(true)),
      circuits::make_tia_problem(lean_options(false)), 5, "tia");
  expect_problem_batch_parity(
      circuits::make_two_stage_problem(lean_options(true)),
      circuits::make_two_stage_problem(lean_options(false)), 5, "two_stage");
  expect_problem_batch_parity(
      circuits::make_ngm_problem(lean_options(true)),
      circuits::make_ngm_problem(lean_options(false)), 5, "ngm_ota");
  // The PEX problem's leaf is the corner fan-out; batch_kernel is a no-op
  // there, but the contract (same values either way) must still hold.
  expect_problem_batch_parity(
      circuits::make_ngm_pex_problem(lean_options(true)),
      circuits::make_ngm_pex_problem(lean_options(false)), 2, "ngm_ota_pex");
}

TEST(BatchProblemParity, ShippedDecks) {
  const std::string dir = std::string(AUTOCKT_SOURCE_DIR) + "/examples/decks";
  for (const char* deck :
       {"rc_buffer.cir", "common_source.cir", "five_t_ota.cir"}) {
    const std::string path = dir + "/" + deck;
    auto batched = circuits::make_netlist_problem_from_file(
        path, lean_options(true));
    ASSERT_TRUE(batched.ok()) << deck << ": " << batched.error().message;
    auto scalar = circuits::make_netlist_problem_from_file(
        path, lean_options(false));
    ASSERT_TRUE(scalar.ok()) << deck;
    expect_problem_batch_parity(std::move(*batched), std::move(*scalar), 6,
                                deck);
  }
}

// ---- env-level: VectorSizingEnv lockstep equivalence ------------------------

TEST(BatchEnvParity, VectorEnvTicksMatchScalarBackendBitwise) {
  // Same seeds, same targets, same scripted actions: an env over the
  // batch-kernel problem must emit bitwise-identical trajectories to one
  // over the scalar-kernel problem.
  auto batched = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem(lean_options(true)));
  auto scalar = std::make_shared<const circuits::SizingProblem>(
      circuits::make_two_stage_problem(lean_options(false)));

  env::EnvConfig config;
  config.horizon = 4;
  const int lanes = 4;
  env::VectorSizingEnv venv_b(batched, config, lanes);
  env::VectorSizingEnv venv_s(scalar, config, lanes);
  venv_b.seed_lanes(424242);
  venv_s.seed_lanes(424242);

  const auto obs_b = venv_b.reset_all();
  const auto obs_s = venv_s.reset_all();
  ASSERT_EQ(obs_b.size(), obs_s.size());
  for (std::size_t i = 0; i < obs_b.size(); ++i) {
    EXPECT_EQ(obs_b[i], obs_s[i]) << "reset lane " << i;
  }

  Rng action_rng(31);
  for (int tick = 0; tick < config.horizon; ++tick) {
    std::vector<std::vector<int>> actions(static_cast<std::size_t>(lanes));
    for (auto& a : actions) {
      a.assign(static_cast<std::size_t>(venv_b.num_params()), 0);
      for (int& v : a) v = static_cast<int>(action_rng.bounded(3));
    }
    const auto rb = venv_b.step_all(actions, [](int) { return false; });
    const auto rs = venv_s.step_all(actions, [](int) { return false; });
    for (int i = 0; i < lanes; ++i) {
      const auto& lb = rb[static_cast<std::size_t>(i)];
      const auto& ls = rs[static_cast<std::size_t>(i)];
      EXPECT_EQ(lb.obs, ls.obs) << "tick " << tick << " lane " << i;
      EXPECT_EQ(lb.reward, ls.reward);
      EXPECT_EQ(lb.done, ls.done);
      EXPECT_EQ(lb.goal_met, ls.goal_met);
    }
  }
}
