// Additional property and edge-case coverage for measurement extraction and
// environment observation normalization — the places where subtle sign or
// unwrapping bugs would silently corrupt every experiment downstream.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>

#include "circuits/problems.hpp"
#include "env/sizing_env.hpp"
#include "spice/measure.hpp"
#include "spice/units.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using namespace autockt::spice;

namespace {

/// Synthesize a log-spaced sweep of an n-pole low-pass with DC gain a0 and
/// identical poles at f_p, optionally with a 180-degree DC inversion.
std::vector<AcPoint> synth_sweep(double a0, double f_pole, int n_poles,
                                 bool inverting, double f_start = 1e2,
                                 double f_stop = 1e11, int ppd = 20) {
  std::vector<AcPoint> sweep;
  const double decades = std::log10(f_stop / f_start);
  const int total = static_cast<int>(decades * ppd) + 1;
  for (int i = 0; i < total; ++i) {
    const double f = f_start * std::pow(10.0, decades * i / (total - 1));
    std::complex<double> h(a0, 0.0);
    if (inverting) h = -h;
    for (int p = 0; p < n_poles; ++p) {
      h /= std::complex<double>(1.0, f / f_pole);
    }
    sweep.push_back({f, h});
  }
  return sweep;
}

}  // namespace

TEST(MeasureExtra, SinglePoleUgbwEqualsGbw) {
  // One-pole: UGBW = a0 * f_pole, PM = 90 + atan-ish correction.
  const auto sweep = synth_sweep(100.0, 1e6, 1, false);
  const auto m = measure_ac(sweep);
  ASSERT_TRUE(m.ugbw_found);
  EXPECT_NEAR(m.ugbw, 100.0 * 1e6, 0.02 * 100.0 * 1e6);
  EXPECT_NEAR(m.phase_margin_deg, 90.0, 2.0);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_NEAR(m.f3db, 1e6, 0.02e6);
}

TEST(MeasureExtra, InvertingAmpMeasuresSamePhaseMargin) {
  // The 180-degree DC phase of an inverting amplifier must not corrupt the
  // phase-margin reference.
  const auto pos = measure_ac(synth_sweep(100.0, 1e6, 1, false));
  const auto neg = measure_ac(synth_sweep(100.0, 1e6, 1, true));
  ASSERT_TRUE(pos.ugbw_found);
  ASSERT_TRUE(neg.ugbw_found);
  EXPECT_NEAR(pos.phase_margin_deg, neg.phase_margin_deg, 0.5);
  EXPECT_NEAR(pos.ugbw, neg.ugbw, pos.ugbw * 1e-6);
}

TEST(MeasureExtra, TwoPoleLowersPhaseMargin) {
  // Two coincident poles at UGBW/10: phase margin collapses toward zero.
  const auto one = measure_ac(synth_sweep(100.0, 1e6, 1, false));
  const auto two = measure_ac(synth_sweep(100.0, 1e6, 2, false));
  ASSERT_TRUE(one.ugbw_found);
  ASSERT_TRUE(two.ugbw_found);
  EXPECT_LT(two.phase_margin_deg, one.phase_margin_deg - 30.0);
  EXPECT_LT(two.ugbw, one.ugbw);  // second pole pulls the crossing in
}

TEST(MeasureExtra, ThreePoleCanGoNegativePm) {
  const auto m = measure_ac(synth_sweep(1000.0, 1e5, 3, false));
  ASSERT_TRUE(m.ugbw_found);
  EXPECT_LT(m.phase_margin_deg, 0.0);  // unstable if the loop were closed
}

TEST(MeasureExtra, UnityGainAmpHasNoCrossing) {
  const auto m = measure_ac(synth_sweep(0.99, 1e6, 1, false));
  EXPECT_FALSE(m.ugbw_found);
  EXPECT_NEAR(m.dc_gain, 0.99, 1e-6);
}

TEST(MeasureExtra, EmptyAndTinySweepsAreSafe) {
  EXPECT_FALSE(measure_ac({}).ugbw_found);
  std::vector<AcPoint> one{{1e3, {2.0, 0.0}}};
  const auto m = measure_ac(one);
  EXPECT_FALSE(m.ugbw_found);
  EXPECT_FALSE(m.f3db_found);
}

TEST(MeasureExtra, SettlingDetectsOvershootReentry) {
  // A waveform that enters the band, leaves, and re-enters must report the
  // final entry time.
  std::vector<double> time, wave;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i / 1000.0;
    double v = 1.0;
    if (t < 0.2) {
      v = t / 0.2;  // ramp
    } else if (t > 0.5 && t < 0.55) {
      v = 1.1;  // late excursion outside the 2% band
    }
    time.push_back(t);
    wave.push_back(v);
  }
  const double ts = settling_time(time, wave, 0.02);
  EXPECT_GT(ts, 0.5);
  EXPECT_LT(ts, 0.6);
}

// ---- environment observation normalization ------------------------------

TEST(ObsNormalization, MatchesLookupFormula) {
  auto prob = std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(2, 11));
  env::SizingEnv sizing_env(prob, env::EnvConfig{});
  sizing_env.set_target({10.5, 4.8, 1.4});
  const auto obs = sizing_env.reset();

  const auto& specs = prob->specs;
  const auto cur = sizing_env.cur_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_NEAR(obs[i], circuits::lookup_norm(cur[i], specs[i].norm_const),
                1e-12);
    EXPECT_NEAR(obs[specs.size() + i],
                circuits::lookup_norm(sizing_env.target()[i],
                                      specs[i].norm_const),
                1e-12);
  }
}

TEST(ObsNormalization, ParamBlockSpansMinusOneToOne) {
  auto prob = std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(2, 11));
  env::SizingEnv sizing_env(prob, env::EnvConfig{});
  sizing_env.reset();
  // Drive both params to the bottom, then the top.
  for (int i = 0; i < 12; ++i) sizing_env.step({0, 0});
  auto obs = sizing_env.step({1, 1}).obs;
  EXPECT_NEAR(obs[obs.size() - 2], -1.0, 1e-12);
  EXPECT_NEAR(obs[obs.size() - 1], -1.0, 1e-12);
}

// ---- boundary robustness of the real problems ---------------------------

TEST(BoundaryRobustness, TiaGridCornersEvaluate) {
  const auto prob = circuits::make_tia_problem();
  circuits::ParamVector lo, hi;
  for (const auto& def : prob.params) {
    lo.push_back(0);
    hi.push_back(def.grid_size() - 1);
  }
  EXPECT_TRUE(prob.evaluate(lo).ok());
  EXPECT_TRUE(prob.evaluate(hi).ok());
}

TEST(BoundaryRobustness, TwoStageGridCornersEvaluate) {
  const auto prob = circuits::make_two_stage_problem();
  circuits::ParamVector lo, hi;
  for (const auto& def : prob.params) {
    lo.push_back(0);
    hi.push_back(def.grid_size() - 1);
  }
  // Corner designs may be terrible circuits, but evaluation must either
  // succeed or fail explicitly — never crash or hang.
  auto a = prob.evaluate(lo);
  auto b = prob.evaluate(hi);
  if (a.ok()) {
    for (double v : *a) EXPECT_TRUE(std::isfinite(v));
  }
  if (b.ok()) {
    for (double v : *b) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(BoundaryRobustness, NgmGridCornersEvaluate) {
  const auto prob = circuits::make_ngm_problem();
  circuits::ParamVector lo, hi;
  for (const auto& def : prob.params) {
    lo.push_back(0);
    hi.push_back(def.grid_size() - 1);
  }
  auto a = prob.evaluate(lo);
  auto b = prob.evaluate(hi);
  if (a.ok()) {
    for (double v : *a) EXPECT_TRUE(std::isfinite(v));
  }
  if (b.ok()) {
    for (double v : *b) EXPECT_TRUE(std::isfinite(v));
  }
}
