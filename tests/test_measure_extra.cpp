// Additional property and edge-case coverage for measurement extraction and
// environment observation normalization — the places where subtle sign or
// unwrapping bugs would silently corrupt every experiment downstream.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>

#include "circuits/problems.hpp"
#include "env/sizing_env.hpp"
#include "spice/measure.hpp"
#include "spice/units.hpp"
#include "test_helpers.hpp"

using namespace autockt;
using namespace autockt::spice;

namespace {

/// Synthesize a log-spaced sweep of an n-pole low-pass with DC gain a0 and
/// identical poles at f_p, optionally with a 180-degree DC inversion.
std::vector<AcPoint> synth_sweep(double a0, double f_pole, int n_poles,
                                 bool inverting, double f_start = 1e2,
                                 double f_stop = 1e11, int ppd = 20) {
  std::vector<AcPoint> sweep;
  const double decades = std::log10(f_stop / f_start);
  const int total = static_cast<int>(decades * ppd) + 1;
  for (int i = 0; i < total; ++i) {
    const double f = f_start * std::pow(10.0, decades * i / (total - 1));
    std::complex<double> h(a0, 0.0);
    if (inverting) h = -h;
    for (int p = 0; p < n_poles; ++p) {
      h /= std::complex<double>(1.0, f / f_pole);
    }
    sweep.push_back({f, h});
  }
  return sweep;
}

}  // namespace

TEST(MeasureExtra, SinglePoleUgbwEqualsGbw) {
  // One-pole: UGBW = a0 * f_pole, PM = 90 + atan-ish correction.
  const auto sweep = synth_sweep(100.0, 1e6, 1, false);
  const auto m = measure_ac(sweep);
  ASSERT_TRUE(m.ugbw_found);
  EXPECT_NEAR(m.ugbw, 100.0 * 1e6, 0.02 * 100.0 * 1e6);
  EXPECT_NEAR(m.phase_margin_deg, 90.0, 2.0);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_NEAR(m.f3db, 1e6, 0.02e6);
}

TEST(MeasureExtra, InvertingAmpMeasuresSamePhaseMargin) {
  // The 180-degree DC phase of an inverting amplifier must not corrupt the
  // phase-margin reference.
  const auto pos = measure_ac(synth_sweep(100.0, 1e6, 1, false));
  const auto neg = measure_ac(synth_sweep(100.0, 1e6, 1, true));
  ASSERT_TRUE(pos.ugbw_found);
  ASSERT_TRUE(neg.ugbw_found);
  EXPECT_NEAR(pos.phase_margin_deg, neg.phase_margin_deg, 0.5);
  EXPECT_NEAR(pos.ugbw, neg.ugbw, pos.ugbw * 1e-6);
}

TEST(MeasureExtra, TwoPoleLowersPhaseMargin) {
  // Two coincident poles at UGBW/10: phase margin collapses toward zero.
  const auto one = measure_ac(synth_sweep(100.0, 1e6, 1, false));
  const auto two = measure_ac(synth_sweep(100.0, 1e6, 2, false));
  ASSERT_TRUE(one.ugbw_found);
  ASSERT_TRUE(two.ugbw_found);
  EXPECT_LT(two.phase_margin_deg, one.phase_margin_deg - 30.0);
  EXPECT_LT(two.ugbw, one.ugbw);  // second pole pulls the crossing in
}

TEST(MeasureExtra, ThreePoleCanGoNegativePm) {
  const auto m = measure_ac(synth_sweep(1000.0, 1e5, 3, false));
  ASSERT_TRUE(m.ugbw_found);
  EXPECT_LT(m.phase_margin_deg, 0.0);  // unstable if the loop were closed
}

TEST(MeasureExtra, UnityGainAmpHasNoCrossing) {
  const auto m = measure_ac(synth_sweep(0.99, 1e6, 1, false));
  EXPECT_FALSE(m.ugbw_found);
  EXPECT_NEAR(m.dc_gain, 0.99, 1e-6);
}

TEST(MeasureExtra, EmptyAndTinySweepsAreSafe) {
  EXPECT_FALSE(measure_ac({}).ugbw_found);
  std::vector<AcPoint> one{{1e3, {2.0, 0.0}}};
  const auto m = measure_ac(one);
  EXPECT_FALSE(m.ugbw_found);
  EXPECT_FALSE(m.f3db_found);
}

TEST(MeasureExtra, SettlingDetectsOvershootReentry) {
  // A waveform that enters the band, leaves, and re-enters must report the
  // final entry time.
  std::vector<double> time, wave;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i / 1000.0;
    double v = 1.0;
    if (t < 0.2) {
      v = t / 0.2;  // ramp
    } else if (t > 0.5 && t < 0.55) {
      v = 1.1;  // late excursion outside the 2% band
    }
    time.push_back(t);
    wave.push_back(v);
  }
  const double ts = settling_time(time, wave, 0.02);
  EXPECT_GT(ts, 0.5);
  EXPECT_LT(ts, 0.6);
}

// ---- settling trust flag (never-settled vs settled-at-the-end) ----------

TEST(MeasureExtra, SettlingFlagsTruncatedWindowAsUnsettled) {
  // A waveform still slewing at the window end: the legacy scalar reported a
  // "settling time" near the window length (or shorter — the band is drawn
  // around the truncated final sample), crediting a design that never
  // settled. The flag must be false.
  std::vector<double> time, wave;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i / 1000.0;
    time.push_back(t);
    wave.push_back(t);  // pure ramp: never reaches a final value
  }
  const auto r = measure_settling(time, wave, 0.02);
  EXPECT_FALSE(r.settled);
}

TEST(MeasureExtra, SettlingFlagsLateRingingAsUnsettled) {
  // Rings until (almost) the end: exits the 2% band in the final 2% of the
  // window, so no dwell is demonstrated.
  std::vector<double> time, wave;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i / 1000.0;
    time.push_back(t);
    wave.push_back(1.0 + 0.2 * std::cos(2.0 * kPi * 25.5 * t));
  }
  const auto r = measure_settling(time, wave, 0.02);
  EXPECT_FALSE(r.settled);
}

TEST(MeasureExtra, SettlingAcceptsEarlySettleWithDwell) {
  // Settles at 20% of the window and stays: flag true, instant preserved,
  // and the legacy scalar agrees with the struct's time.
  std::vector<double> time, wave;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i / 1000.0;
    time.push_back(t);
    wave.push_back(t < 0.2 ? t / 0.2 : 1.0);
  }
  const auto r = measure_settling(time, wave, 0.02);
  EXPECT_TRUE(r.settled);
  EXPECT_NEAR(r.time, 0.196, 0.005);
  EXPECT_DOUBLE_EQ(settling_time(time, wave, 0.02), r.time);
}

TEST(MeasureExtra, FlatWaveIsTriviallySettled) {
  std::vector<double> time{0.0, 1.0, 2.0};
  std::vector<double> wave{1.0, 1.0, 1.0};
  const auto r = measure_settling(time, wave, 0.02);
  EXPECT_TRUE(r.settled);
  EXPECT_DOUBLE_EQ(r.time, 0.0);
}

// ---- peak-referenced -3 dB and degenerate crossing interpolation --------

namespace {

/// Two-pole band-pass-ish response: |H| rises from a0 at DC to a resonant
/// peak near f_res, then falls. Reproduces the "peak > DC gain" shape the
/// DC-referenced -3 dB search mismeasured.
std::vector<AcPoint> synth_peaked_sweep(double a0, double f_res, double q,
                                        double f_start = 1e3,
                                        double f_stop = 1e11, int ppd = 40) {
  std::vector<AcPoint> sweep;
  const double decades = std::log10(f_stop / f_start);
  const int total = static_cast<int>(decades * ppd) + 1;
  for (int i = 0; i < total; ++i) {
    const double f = f_start * std::pow(10.0, decades * i / (total - 1));
    const double s = f / f_res;  // normalized jw
    // H = a0 / (1 + jw/(Q w0) - w^2/w0^2): classic resonant low-pass.
    const std::complex<double> den(1.0 - s * s, s / q);
    sweep.push_back({f, a0 / den});
  }
  return sweep;
}

}  // namespace

TEST(MeasureExtra, PeakedResponseReferencesCutoffToPeak) {
  // Q = 5 resonance: peak ~ 5x the DC gain. The -3 dB level must derive
  // from the peak, and the crossing must sit just above the resonance —
  // for Q >> 1 the peak band is narrow, f3db ~ f_res * (1 + 1/(2Q)).
  const double a0 = 10.0, f_res = 1e7, q = 5.0;
  const auto sweep = synth_peaked_sweep(a0, f_res, q);
  const auto m = measure_ac(sweep);
  EXPECT_NEAR(m.peak_gain, a0 * q, 0.05 * a0 * q);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_GT(m.f3db, f_res);
  EXPECT_LT(m.f3db, 1.3 * f_res);
  // Regression: the DC-referenced level a0/sqrt(2) sits below the DC gain
  // itself, so the old search reported the far roll-off skirt (several
  // times f_res) as the "bandwidth".
  EXPECT_LT(m.f3db, 2.0 * f_res);
}

TEST(MeasureExtra, MonotoneResponseUnchangedByPeakReference) {
  // For a monotone-from-DC low-pass the peak IS the DC point, so the
  // peak-referenced search must reproduce the classic result.
  const auto sweep = synth_sweep(100.0, 1e6, 1, false);
  const auto m = measure_ac(sweep);
  EXPECT_DOUBLE_EQ(m.peak_gain, m.dc_gain);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_NEAR(m.f3db, 1e6, 0.02e6);
}

TEST(MeasureExtra, NonMonotonicDipBeforePeakIgnored) {
  // A dip below the -3 dB level BEFORE the peak is not the bandwidth edge;
  // the search starts at the peak.
  std::vector<AcPoint> sweep;
  const double freqs[] = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8};
  const double mags[] = {8.0, 2.0, 9.0, 10.0, 9.0, 0.5};
  for (int i = 0; i < 6; ++i) {
    sweep.push_back({freqs[i], std::complex<double>(mags[i], 0.0)});
  }
  const auto m = measure_ac(sweep);
  ASSERT_TRUE(m.f3db_found);
  // Peak 10 at 1e6; level 7.07; crossing between 1e7 (9.0) and 1e8 (0.5),
  // NOT at the early 8.0 -> 2.0 dip.
  EXPECT_GT(m.f3db, 1e7);
  EXPECT_LT(m.f3db, 1e8);
}

TEST(MeasureExtra, CrossingInterpolatesFlatInLogSegments) {
  // Exactly flat segment at the level: no unique crossing exists; the
  // geometric midpoint is the unbiased answer (the old code snapped to the
  // left endpoint).
  std::vector<AcPoint> flat{{1e6, {1.0, 0.0}}, {1e8, {1.0, 0.0}}};
  EXPECT_DOUBLE_EQ(ac_crossing_freq(flat, 0, 1.0), 1e7);

  // Magnitudes indistinguishable after the log clamp (both under 1e-30):
  // linear-in-magnitude interpolation must still land between the samples
  // according to the level, not at the left endpoint.
  std::vector<AcPoint> tiny{{1e6, {8e-31, 0.0}}, {1e8, {2e-31, 0.0}}};
  const double f = ac_crossing_freq(tiny, 0, 5e-31);
  EXPECT_GT(f, 1e6);
  EXPECT_LT(f, 1e8);
  EXPECT_NEAR(std::log10(f), 7.0, 1.0);
}

// ---- environment observation normalization ------------------------------

TEST(ObsNormalization, MatchesLookupFormula) {
  auto prob = std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(2, 11));
  env::SizingEnv sizing_env(prob, env::EnvConfig{});
  sizing_env.set_target({10.5, 4.8, 1.4});
  const auto obs = sizing_env.reset();

  const auto& specs = prob->specs;
  const auto cur = sizing_env.cur_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_NEAR(obs[i], circuits::lookup_norm(cur[i], specs[i].norm_const),
                1e-12);
    EXPECT_NEAR(obs[specs.size() + i],
                circuits::lookup_norm(sizing_env.target()[i],
                                      specs[i].norm_const),
                1e-12);
  }
}

TEST(ObsNormalization, ParamBlockSpansMinusOneToOne) {
  auto prob = std::make_shared<const circuits::SizingProblem>(
      test_support::make_synthetic_problem(2, 11));
  env::SizingEnv sizing_env(prob, env::EnvConfig{});
  sizing_env.reset();
  // Drive both params to the bottom, then the top.
  for (int i = 0; i < 12; ++i) sizing_env.step({0, 0});
  auto obs = sizing_env.step({1, 1}).obs;
  EXPECT_NEAR(obs[obs.size() - 2], -1.0, 1e-12);
  EXPECT_NEAR(obs[obs.size() - 1], -1.0, 1e-12);
}

// ---- boundary robustness of the real problems ---------------------------

TEST(BoundaryRobustness, TiaGridCornersEvaluate) {
  const auto prob = circuits::make_tia_problem();
  circuits::ParamVector lo, hi;
  for (const auto& def : prob.params) {
    lo.push_back(0);
    hi.push_back(def.grid_size() - 1);
  }
  EXPECT_TRUE(prob.evaluate(lo).ok());
  EXPECT_TRUE(prob.evaluate(hi).ok());
}

TEST(BoundaryRobustness, TwoStageGridCornersEvaluate) {
  const auto prob = circuits::make_two_stage_problem();
  circuits::ParamVector lo, hi;
  for (const auto& def : prob.params) {
    lo.push_back(0);
    hi.push_back(def.grid_size() - 1);
  }
  // Corner designs may be terrible circuits, but evaluation must either
  // succeed or fail explicitly — never crash or hang.
  auto a = prob.evaluate(lo);
  auto b = prob.evaluate(hi);
  if (a.ok()) {
    for (double v : *a) EXPECT_TRUE(std::isfinite(v));
  }
  if (b.ok()) {
    for (double v : *b) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(BoundaryRobustness, NgmGridCornersEvaluate) {
  const auto prob = circuits::make_ngm_problem();
  circuits::ParamVector lo, hi;
  for (const auto& def : prob.params) {
    lo.push_back(0);
    hi.push_back(def.grid_size() - 1);
  }
  auto a = prob.evaluate(lo);
  auto b = prob.evaluate(hi);
  if (a.ok()) {
    for (double v : *a) EXPECT_TRUE(std::isfinite(v));
  }
  if (b.ok()) {
    for (double v : *b) EXPECT_TRUE(std::isfinite(v));
  }
}
