#include <gtest/gtest.h>

#include <thread>

#include "circuits/problems.hpp"
#include "spice/characterize.hpp"

using namespace autockt;
using namespace autockt::spice;

namespace {
MosGeom default_geom(const TechCard& card) {
  MosGeom geom;
  geom.width = card.quantized_width ? 20.0 * card.fin_width : 10e-6;
  geom.length = 2.0 * card.l_min;
  return geom;
}
}  // namespace

TEST(Characterize, IdVgsIsMonotone) {
  const auto card = TechCard::ptm45();
  const auto curve =
      id_vgs_curve(card, MosType::Nmos, default_geom(card), card.vdd / 2.0);
  ASSERT_GT(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].id, curve[i - 1].id);
  }
}

TEST(Characterize, PmosCurveMirrorsShape) {
  const auto card = TechCard::ptm45();
  const auto n = id_vgs_curve(card, MosType::Nmos, default_geom(card), 0.6);
  const auto p = id_vgs_curve(card, MosType::Pmos, default_geom(card), 0.6);
  ASSERT_EQ(n.size(), p.size());
  // Both monotone increasing in |Vgs| with positive currents.
  EXPECT_GT(p.back().id, p.front().id);
  EXPECT_GE(p.front().id, 0.0);
}

TEST(Characterize, IdVdsSaturates) {
  const auto card = TechCard::ptm45();
  const auto curve = id_vds_curve(card, MosType::Nmos, default_geom(card),
                                  card.vth_n + 0.2);
  // Slope (gds) in deep saturation is much smaller than in triode.
  const auto& triode = curve[3];
  const auto& sat = curve[curve.size() - 2];
  EXPECT_GT(triode.gds, 5.0 * sat.gds);
}

TEST(Characterize, GmPeaksAboveThreshold) {
  const auto card = TechCard::ptm45();
  const auto curve =
      id_vgs_curve(card, MosType::Nmos, default_geom(card), card.vdd / 2.0);
  double gm_below = 0.0, gm_above = 0.0;
  for (const auto& p : curve) {
    if (p.x < card.vth_n - 0.1) gm_below = std::max(gm_below, p.gm);
    if (p.x > card.vth_n + 0.2) gm_above = std::max(gm_above, p.gm);
  }
  EXPECT_GT(gm_above, 10.0 * gm_below);
}

TEST(Characterize, InverterTripNearMidRail) {
  const auto card = TechCard::ptm45();
  const double trip = inverter_trip_voltage(card, 2e-6, 4e-6, 90e-9);
  EXPECT_GT(trip, 0.3 * card.vdd);
  EXPECT_LT(trip, 0.7 * card.vdd);
}

TEST(Characterize, TripMovesWithPullupStrength) {
  const auto card = TechCard::ptm45();
  const double weak_p = inverter_trip_voltage(card, 4e-6, 1e-6, 90e-9);
  const double strong_p = inverter_trip_voltage(card, 1e-6, 8e-6, 90e-9);
  EXPECT_GT(strong_p, weak_p);  // stronger PMOS pulls the trip point up
}

// Concurrency: the paper's training runs parallel rollout workers, each
// evaluating circuits. Problem evaluation must be thread-safe and
// deterministic under concurrency.
TEST(Concurrency, ParallelEvaluationsAreDeterministic) {
  const auto prob = circuits::make_ngm_problem();
  const auto center = prob.center_params();
  const auto reference = prob.evaluate(center);
  ASSERT_TRUE(reference.ok());

  constexpr int kThreads = 4;
  constexpr int kRepsPerThread = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kRepsPerThread; ++rep) {
        auto specs = prob.evaluate(center);
        if (!specs.ok() || *specs != *reference) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int m : mismatches) EXPECT_EQ(m, 0);
}

TEST(Concurrency, DistinctProblemsEvaluateConcurrently) {
  const auto tia = circuits::make_tia_problem();
  const auto opamp = circuits::make_two_stage_problem();
  bool tia_ok = false, opamp_ok = false;
  std::thread a([&] { tia_ok = tia.evaluate(tia.center_params()).ok(); });
  std::thread b([&] { opamp_ok = opamp.evaluate(opamp.center_params()).ok(); });
  a.join();
  b.join();
  EXPECT_TRUE(tia_ok);
  EXPECT_TRUE(opamp_ok);
}
