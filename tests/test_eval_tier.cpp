// Tests for the distributed, persistent evaluation tier: the MemoStore
// seam, the crash-safe on-disk DiskLogStore (bitwise persistence, torn-tail
// repair, fingerprint guard, warm-cache zero-resim runs), and the
// ProcessPoolBackend (bitwise parity with the serial path on synthetic
// functions, built-in problems and shipped decks; worker-crash isolation
// and retry; stats/hint transport over the wire).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "circuits/netlist_problem.hpp"
#include "circuits/problems.hpp"
#include "circuits/sizing_problem.hpp"
#include "eval/cached_backend.hpp"
#include "eval/disk_log_store.hpp"
#include "eval/function_backend.hpp"
#include "eval/memo_store.hpp"
#include "eval/process_pool_backend.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

using namespace autockt;
using eval::EvalResult;
using eval::ParamVector;
using eval::SpecVector;

namespace fs = std::filesystem;

namespace {

/// A fresh, empty temp directory for one test.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Bitwise result comparison: ok results must carry identical double BITS
/// (NaN payloads, -0.0 and denormals included — EXPECT_EQ on doubles gets
/// all of those wrong); errors must carry the same message and code.
void expect_same_result(const EvalResult& a, const EvalResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.ok(), b.ok()) << context;
  if (!a.ok()) {
    EXPECT_EQ(a.error().message, b.error().message) << context;
    EXPECT_EQ(a.error().code, b.error().code) << context;
    return;
  }
  ASSERT_EQ(a.value().size(), b.value().size()) << context;
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(util::double_to_bits(a.value()[i]),
              util::double_to_bits(b.value()[i]))
        << context << " spec " << i;
  }
}

/// Deterministic leaf with irrational spec values, so any reordering or
/// precision loss in transport shows up as a bit mismatch.
EvalResult math_eval(const ParamVector& p) {
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += std::sin(static_cast<double>(p[i]) * 1.7 +
                    static_cast<double>(i) * 0.3);
  }
  return SpecVector{sum, std::sqrt(std::fabs(sum) + 0.5), sum * 1e-300};
}

ParamVector key(std::initializer_list<int> v) { return ParamVector(v); }

std::vector<ParamVector> sample_points(const circuits::SizingProblem& prob,
                                       int count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ParamVector> points;
  for (int n = 0; n < count; ++n) {
    ParamVector p(prob.params.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = static_cast<int>(rng.bounded(
          static_cast<std::uint64_t>(prob.params[i].grid_size())));
    }
    points.push_back(std::move(p));
  }
  return points;
}

/// Same points through both problems, batched AND one-by-one, bitwise.
void expect_problem_parity(const circuits::SizingProblem& pooled,
                           const circuits::SizingProblem& serial, int count,
                           const std::string& label) {
  auto points = sample_points(serial, count, 0xace0 + count);
  points.push_back(serial.center_params());
  const auto rp = pooled.evaluate_batch(points);
  const auto rs = serial.evaluate_batch(points);
  ASSERT_EQ(rp.size(), rs.size()) << label;
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_same_result(rp[i], rs[i],
                       label + " batch point " + std::to_string(i));
  }
  expect_same_result(pooled.evaluate(points[0]), rs[0],
                     label + " scalar point");
}

}  // namespace

// ---------------------------------------------------------------- MemoStore

TEST(MemoStore, InMemoryInsertLookupCountsAndClear) {
  eval::InMemoryStore store(4);
  EXPECT_FALSE(store.persistent());
  EXPECT_EQ(store.describe(), "memory");
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.approx_size(), 0u);

  EXPECT_TRUE(store.insert(key({1, 2}), EvalResult(SpecVector{3.0})));
  // Second insert for the same key loses the race; first value wins.
  EXPECT_FALSE(store.insert(key({1, 2}), EvalResult(SpecVector{99.0})));
  EXPECT_TRUE(store.insert(key({666}), EvalResult(util::Error{"nope", 7})));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.approx_size(), 2u);

  EvalResult out = SpecVector{};
  bool replayed = true;
  ASSERT_TRUE(store.lookup(key({1, 2}), &out, &replayed));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), SpecVector{3.0});
  EXPECT_FALSE(replayed);  // inserted this run, not replayed from disk

  ASSERT_TRUE(store.lookup(key({666}), &out));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, 7);
  EXPECT_FALSE(store.lookup(key({9, 9}), &out));

  // insert_replayed marks the entry as a disk hit for later lookups.
  EXPECT_TRUE(store.insert_replayed(key({5}), EvalResult(SpecVector{1.0})));
  ASSERT_TRUE(store.lookup(key({5}), &out, &replayed));
  EXPECT_TRUE(replayed);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.approx_size(), 0u);
  EXPECT_FALSE(store.lookup(key({1, 2}), &out));
}

TEST(MemoStore, Fingerprint64IsStable) {
  // Pin the exact hash values: fingerprints are persisted in cache file
  // headers, so the function (including its house seed constant, which
  // predates this layer and is NOT the textbook FNV offset basis) must
  // never drift — a drift would orphan every existing cache directory.
  EXPECT_EQ(eval::fingerprint64(""), 1469598103934665603ULL);
  EXPECT_EQ(eval::fingerprint64("abc"), 16242233503745875709ULL);
  EXPECT_NE(eval::fingerprint64("abc"), eval::fingerprint64("abd"));
  // Seeded chaining composes: fp(a+b) == fp(b, fp(a)).
  EXPECT_EQ(eval::fingerprint64("abc"),
            eval::fingerprint64("bc", eval::fingerprint64("a")));
}

// ---------------------------------------------------------------- DiskLogStore

TEST(DiskLogStore, PersistsBitwiseAcrossReopen) {
  const std::string dir = fresh_dir("autockt_disklog_roundtrip");
  const std::uint64_t fp = 0x1234abcdULL;

  // Spec values chosen to break any text round trip that is not bit-exact.
  const EvalResult awkward(SpecVector{
      -0.0, std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::infinity(),
      util::bits_to_double(0x7ff8deadbeef1234ULL),  // NaN with payload
      1.0 / 3.0});
  const EvalResult failure(util::Error{"DC failed to converge", 42});
  const EvalResult empty_msg(util::Error{"", 3});

  {
    auto store = eval::DiskLogStore::open(dir, fp);
    ASSERT_TRUE(store.ok()) << store.error().message;
    EXPECT_TRUE((*store)->persistent());
    EXPECT_EQ((*store)->replayed_entries(), 0u);
    EXPECT_TRUE((*store)->insert(key({0, 1}), awkward));
    EXPECT_TRUE((*store)->insert(key({2}), failure));
    EXPECT_TRUE((*store)->insert(key({3}), empty_msg));
    EXPECT_FALSE((*store)->insert(key({2}), awkward));  // first value wins
    EXPECT_EQ((*store)->size(), 3u);
  }

  auto store = eval::DiskLogStore::open(dir, fp);
  ASSERT_TRUE(store.ok()) << store.error().message;
  EXPECT_EQ((*store)->replayed_entries(), 3u);
  EXPECT_EQ((*store)->size(), 3u);

  EvalResult out = SpecVector{};
  bool replayed = false;
  ASSERT_TRUE((*store)->lookup(key({0, 1}), &out, &replayed));
  EXPECT_TRUE(replayed);
  expect_same_result(out, awkward, "awkward specs");
  ASSERT_TRUE((*store)->lookup(key({2}), &out));
  expect_same_result(out, failure, "memoized failure");
  ASSERT_TRUE((*store)->lookup(key({3}), &out));
  expect_same_result(out, empty_msg, "empty error message");

  // An insert made after reopen is NOT a replayed entry.
  EXPECT_TRUE((*store)->insert(key({7}), EvalResult(SpecVector{7.0})));
  ASSERT_TRUE((*store)->lookup(key({7}), &out, &replayed));
  EXPECT_FALSE(replayed);
}

TEST(DiskLogStore, RefusesForeignFingerprint) {
  const std::string dir = fresh_dir("autockt_disklog_guard");
  {
    auto store = eval::DiskLogStore::open(dir, 0xAAAA);
    ASSERT_TRUE(store.ok());
    (*store)->insert(key({1}), EvalResult(SpecVector{1.0}));
  }
  // Different problem definition: refuse rather than serve wrong results.
  auto wrong = eval::DiskLogStore::open(dir, 0xBBBB);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.error().message.find("fingerprint"), std::string::npos)
      << wrong.error().message;
  // The right fingerprint still opens and still has the data.
  auto right = eval::DiskLogStore::open(dir, 0xAAAA);
  ASSERT_TRUE(right.ok()) << right.error().message;
  EXPECT_EQ((*right)->replayed_entries(), 1u);
}

TEST(DiskLogStore, TornTailIsTruncatedToLastGoodRecord) {
  const std::string dir = fresh_dir("autockt_disklog_torn");
  eval::DiskLogStore::Options opts;
  opts.file_shards = 1;  // everything in memo-0.log so the test can cut it
  opts.fsync_every = 1;
  {
    auto store = eval::DiskLogStore::open(dir, 0xF00D, opts);
    ASSERT_TRUE(store.ok());
    (*store)->insert(key({1}), EvalResult(SpecVector{1.5}));
    (*store)->insert(key({2}), EvalResult(SpecVector{2.5}));
    (*store)->insert(key({3}), EvalResult(SpecVector{3.5}));
  }

  // Simulate a crash mid-append: cut the last record mid-byte.
  const fs::path log = fs::path(dir) / "memo-0.log";
  const auto full_size = fs::file_size(log);
  fs::resize_file(log, full_size - 5);

  {
    auto store = eval::DiskLogStore::open(dir, 0xF00D, opts);
    ASSERT_TRUE(store.ok()) << store.error().message;
    EXPECT_EQ((*store)->replayed_entries(), 2u);
    EvalResult out = SpecVector{};
    EXPECT_TRUE((*store)->lookup(key({1}), &out));
    EXPECT_TRUE((*store)->lookup(key({2}), &out));
    EXPECT_FALSE((*store)->lookup(key({3}), &out));  // the torn one
    // The file was repaired in place: the torn bytes are gone, and the next
    // append lands on a clean boundary.
    EXPECT_LT(fs::file_size(log), full_size - 5);
    EXPECT_TRUE((*store)->insert(key({3}), EvalResult(SpecVector{3.5})));
  }

  auto store = eval::DiskLogStore::open(dir, 0xF00D, opts);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->replayed_entries(), 3u);
}

TEST(DiskLogStore, CorruptRecordDropsItAndTheTail) {
  const std::string dir = fresh_dir("autockt_disklog_corrupt");
  eval::DiskLogStore::Options opts;
  opts.file_shards = 1;
  {
    auto store = eval::DiskLogStore::open(dir, 0xBEEF, opts);
    ASSERT_TRUE(store.ok());
    (*store)->insert(key({1}), EvalResult(SpecVector{1.0}));
    (*store)->insert(key({2}), EvalResult(SpecVector{2.0}));
    (*store)->insert(key({3}), EvalResult(SpecVector{3.0}));
  }

  // Flip one hex digit inside the SECOND record's spec payload: its
  // checksum no longer matches, so replay must stop before it.
  const fs::path log = fs::path(dir) / "memo-0.log";
  std::string text;
  {
    std::ifstream in(log, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  const std::size_t second = text.find("\nR ", text.find("\nR ") + 1) + 1;
  ASSERT_NE(second, std::string::npos);
  const std::size_t payload = text.find(" S ", second) + 3;
  text[payload + 4] = text[payload + 4] == '0' ? '1' : '0';
  {
    std::ofstream out(log, std::ios::binary | std::ios::trunc);
    out << text;
  }

  auto store = eval::DiskLogStore::open(dir, 0xBEEF, opts);
  ASSERT_TRUE(store.ok()) << store.error().message;
  // Only the record BEFORE the corruption survives; the checksum failure
  // truncates everything from the bad record on (append-only log, so
  // nothing after a bad record can be trusted to start on a boundary).
  EXPECT_EQ((*store)->replayed_entries(), 1u);
  EvalResult out = SpecVector{};
  EXPECT_TRUE((*store)->lookup(key({1}), &out));
  EXPECT_FALSE((*store)->lookup(key({2}), &out));
  EXPECT_FALSE((*store)->lookup(key({3}), &out));
}

// The satellite crash-safety scenario end to end: run, crash mid-append,
// reopen, re-run. The second run re-simulates ONLY the torn-off point; a
// third run costs zero simulator invocations.
TEST(DiskLogStore, WarmCacheRunsCostZeroSimulationsAfterTornTailRepair) {
  const std::string dir = fresh_dir("autockt_disklog_zero_resim");
  eval::DiskLogStore::Options opts;
  opts.file_shards = 1;
  const std::uint64_t fp = 0x5EED;

  auto calls = std::make_shared<std::atomic<long>>(0);
  auto make_leaf = [calls]() {
    return std::make_shared<eval::FunctionBackend>(
        [calls](const ParamVector& p) -> EvalResult {
          calls->fetch_add(1);
          return math_eval(p);
        },
        "counting");
  };
  // The same fixed-seed workload every run.
  std::vector<ParamVector> points;
  util::Rng rng(1234);
  for (int n = 0; n < 8; ++n) {
    points.push_back(
        {static_cast<int>(rng.bounded(50)), static_cast<int>(rng.bounded(50)),
         static_cast<int>(rng.bounded(50))});
  }

  std::vector<EvalResult> first;
  {
    auto store = eval::DiskLogStore::open(dir, fp, opts);
    ASSERT_TRUE(store.ok());
    eval::CachedBackend cached(make_leaf(), *store);
    first = cached.evaluate_batch(points);
    EXPECT_EQ(calls->load(), 8);
    EXPECT_EQ(cached.stats().disk_appends, 8);
    EXPECT_EQ(cached.stats().disk_hits, 0);
  }

  // Crash: the tail record is torn mid-byte.
  const fs::path log = fs::path(dir) / "memo-0.log";
  fs::resize_file(log, fs::file_size(log) - 3);

  calls->store(0);
  {
    auto store = eval::DiskLogStore::open(dir, fp, opts);
    ASSERT_TRUE(store.ok()) << store.error().message;
    EXPECT_EQ((*store)->replayed_entries(), 7u);
    eval::CachedBackend cached(make_leaf(), *store);
    const auto second = cached.evaluate_batch(points);
    // Exactly the torn-off point was re-simulated; everything replayed is
    // bitwise what the first run produced.
    EXPECT_EQ(calls->load(), 1);
    EXPECT_EQ(cached.stats().disk_hits, 7);
    for (std::size_t i = 0; i < points.size(); ++i) {
      expect_same_result(second[i], first[i],
                         "post-repair point " + std::to_string(i));
    }
  }

  calls->store(0);
  {
    auto store = eval::DiskLogStore::open(dir, fp, opts);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->replayed_entries(), 8u);
    eval::CachedBackend cached(make_leaf(), *store);
    const auto third = cached.evaluate_batch(points);
    EXPECT_EQ(calls->load(), 0) << "warm cache must cost zero simulations";
    EXPECT_EQ(cached.stats().simulations, 0);
    EXPECT_EQ(cached.stats().disk_hits, 8);
    for (std::size_t i = 0; i < points.size(); ++i) {
      expect_same_result(third[i], first[i],
                         "warm point " + std::to_string(i));
    }
  }
}

// ---------------------------------------------------------------- ProcessPool

TEST(ProcessPool, MatchesSerialBitwiseInInputOrder) {
  eval::ProcessPoolBackend::Options opts;
  opts.workers = 4;
  eval::ProcessPoolBackend pool(
      []() {
        return std::make_shared<eval::FunctionBackend>(math_eval, "math");
      },
      opts);
  EXPECT_EQ(pool.num_workers(), 4u);
  EXPECT_EQ(pool.name(), "procpool[4](worker)");

  eval::FunctionBackend serial(math_eval, "math");

  // 23 points: deliberately not divisible by 4, so shard boundaries and
  // reassembly order are both exercised.
  std::vector<ParamVector> points;
  for (int n = 0; n < 23; ++n) points.push_back({n, n * 3 + 1, 7 - n});
  const auto rp = pool.evaluate_batch(points);
  const auto rs = serial.evaluate_batch(points);
  ASSERT_EQ(rp.size(), 23u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_same_result(rp[i], rs[i], "point " + std::to_string(i));
  }
  expect_same_result(pool.evaluate({5, 16, 2}), serial.evaluate({5, 16, 2}),
                     "scalar evaluate");

  // Work done in children is visible in the parent's stats (the reply
  // carries an EvalStats delta): 23 batched + 1 scalar simulations.
  const auto stats = pool.stats();
  EXPECT_EQ(stats.simulations, 24);
  EXPECT_GE(stats.worker_dispatches, 4);
  EXPECT_EQ(stats.worker_restarts, 0);
  EXPECT_EQ(stats.worker_retries, 0);
}

TEST(ProcessPool, ErrorsAndHintsTravelTheWire) {
  eval::ProcessPoolBackend::Options opts;
  opts.workers = 2;
  eval::ProcessPoolBackend pool(
      []() {
        return std::make_shared<eval::FunctionBackend>(
            [](const ParamVector& p, eval::OpHint* hint) -> EvalResult {
              if (!p.empty() && p[0] == 666) {
                return util::Error{"injected failure", 7};
              }
              if (hint != nullptr) {
                hint->valid = true;
                hint->node_v = {0.25, -0.0,
                                static_cast<double>(p.empty() ? 0 : p[0])};
                hint->branch_i = {1e-9};
              }
              return math_eval(p);
            },
            "hinted");
      },
      opts);

  // Error results come back with message and code intact.
  const auto bad = pool.evaluate({666});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "injected failure");
  EXPECT_EQ(bad.error().code, 7);

  // A mixed batch: failures and successes keep their slots.
  const auto mixed = pool.evaluate_batch({{1, 2}, {666}, {3, 4}});
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_TRUE(mixed[0].ok());
  EXPECT_FALSE(mixed[1].ok());
  EXPECT_TRUE(mixed[2].ok());
  expect_same_result(mixed[0], math_eval({1, 2}), "mixed slot 0");

  // The child's hint write-back is copied into the caller's SimHint.
  eval::SimHint hint;
  const auto r = pool.evaluate({9, 9}, &hint);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(hint.ops.size(), 1u);
  EXPECT_TRUE(hint.ops[0].valid);
  ASSERT_EQ(hint.ops[0].node_v.size(), 3u);
  EXPECT_EQ(util::double_to_bits(hint.ops[0].node_v[1]),
            util::double_to_bits(-0.0));
  EXPECT_EQ(hint.ops[0].node_v[2], 9.0);
  EXPECT_EQ(hint.ops[0].branch_i, std::vector<double>{1e-9});
}

TEST(ProcessPool, CrashedWorkerIsReplacedAndPoisonPointIsolated) {
  eval::ProcessPoolBackend::Options opts;
  opts.workers = 2;
  eval::ProcessPoolBackend pool(
      []() {
        return std::make_shared<eval::FunctionBackend>(
            [](const ParamVector& p) -> EvalResult {
              // A poison point that reliably kills its worker process —
              // _exit, not an exception, so no error path can save it.
              if (!p.empty() && p[0] == -1) _exit(9);
              return math_eval(p);
            },
            "poisoned");
      },
      opts);

  // One poison point among innocents: the chunk retry isolates it to one
  // error result; every other point still evaluates.
  const auto results = pool.evaluate_batch({{1}, {-1}, {2}, {3}});
  ASSERT_EQ(results.size(), 4u);
  expect_same_result(results[0], math_eval({1}), "innocent 0");
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error().code, 70);
  expect_same_result(results[2], math_eval({2}), "innocent 2");
  expect_same_result(results[3], math_eval({3}), "innocent 3");

  const auto stats = pool.stats();
  EXPECT_GE(stats.worker_restarts, 1);
  EXPECT_GE(stats.worker_retries, 1);

  // The pool healed: the replacement worker serves the next request.
  expect_same_result(pool.evaluate({42}), math_eval({42}), "after crash");
}

TEST(ProcessPool, TransportErrorsAreNeverMemoized) {
  // A worker crash/timeout produces a kTransportErrorCode result. That is a
  // statement about the infrastructure, not the design point — memoizing it
  // (worse: durably, via a DiskLogStore) would replay the spurious error on
  // every revisit instead of re-simulating.
  auto calls = std::make_shared<std::atomic<int>>(0);
  auto flaky = std::make_shared<eval::FunctionBackend>(
      [calls](const ParamVector& p) -> EvalResult {
        if (!p.empty() && p[0] == 666) {
          return util::Error{"did not converge", 7};  // a simulator verdict
        }
        if (calls->fetch_add(1) == 0) {
          // First evaluation: what run_on_worker synthesizes after a failed
          // retry.
          return util::Error{"process pool: worker crashed or timed out",
                             eval::kTransportErrorCode};
        }
        return math_eval(p);
      },
      "flaky");

  const std::string dir = fresh_dir("transport-error-cache");
  auto opened = eval::DiskLogStore::open(dir, /*fingerprint=*/0xfeed);
  ASSERT_TRUE(opened.ok());
  eval::CachedBackend cached(flaky, opened.value());

  const auto first = cached.evaluate({4, 2});
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, eval::kTransportErrorCode);
  EXPECT_EQ(cached.size(), 0u) << "transport failure must not be cached";
  EXPECT_EQ(cached.stats().disk_appends, 0);

  // The revisit re-simulates (and the healthy result IS memoized).
  const auto second = cached.evaluate({4, 2});
  ASSERT_TRUE(second.ok());
  expect_same_result(second, math_eval({4, 2}), "healed revisit");
  EXPECT_EQ(calls->load(), 2);
  EXPECT_EQ(cached.size(), 1u);

  // Simulator verdicts, by contrast, stay memoized — including on disk.
  const auto verdict = cached.evaluate({666});
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.error().code, 7);
  EXPECT_EQ(cached.size(), 2u);
  cached.flush();
  auto reopened = eval::DiskLogStore::open(dir, /*fingerprint=*/0xfeed);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->replayed_entries(), 2u)
      << "only the success and the simulator verdict may persist";
}

// ---------------------------------------------------------- problem parity

namespace {

circuits::ProblemOptions serial_options() {
  circuits::ProblemOptions o;
  o.cache = false;
  o.parallel_batch = false;
  o.parallel_corners = false;
  return o;
}

circuits::ProblemOptions pooled_options(std::size_t workers) {
  circuits::ProblemOptions o = serial_options();
  o.eval_workers = workers;
  return o;
}

}  // namespace

TEST(ProcessPoolProblemParity, BuiltinProblems) {
  expect_problem_parity(circuits::make_tia_problem(pooled_options(4)),
                        circuits::make_tia_problem(serial_options()), 5,
                        "tia");
  expect_problem_parity(circuits::make_two_stage_problem(pooled_options(4)),
                        circuits::make_two_stage_problem(serial_options()), 5,
                        "two_stage");
  expect_problem_parity(circuits::make_ngm_problem(pooled_options(4)),
                        circuits::make_ngm_problem(serial_options()), 5,
                        "ngm_ota");
  // PEX: each worker rebuilds the corner fan-out (fresh in-child thread
  // pool); the folded worst-case must still match the serial corner loop.
  expect_problem_parity(circuits::make_ngm_pex_problem(pooled_options(4)),
                        circuits::make_ngm_pex_problem(serial_options()), 2,
                        "ngm_ota_pex");
}

TEST(ProcessPoolProblemParity, ShippedDecks) {
  const std::string dir = std::string(AUTOCKT_SOURCE_DIR) + "/examples/decks";
  for (const char* deck :
       {"rc_buffer.cir", "common_source.cir", "five_t_ota.cir"}) {
    const std::string path = dir + "/" + deck;
    auto pooled =
        circuits::make_netlist_problem_from_file(path, pooled_options(4));
    ASSERT_TRUE(pooled.ok()) << deck << ": " << pooled.error().message;
    auto serial =
        circuits::make_netlist_problem_from_file(path, serial_options());
    ASSERT_TRUE(serial.ok()) << deck;
    expect_problem_parity(*pooled, *serial, 4, deck);
  }
}

// ------------------------------------------------------- problem-level cache

TEST(ProblemDiskCache, WarmRunCostsZeroSimulations) {
  const std::string dir = fresh_dir("autockt_problem_cache");
  circuits::ProblemOptions options = serial_options();
  options.cache = true;
  options.cache_path = dir;

  const auto points = [&] {
    auto prob = circuits::make_tia_problem(options);
    auto pts = sample_points(prob, 4, 99);
    pts.push_back(prob.center_params());
    const auto cold = prob.evaluate_batch(pts);
    for (const auto& r : cold) EXPECT_TRUE(r.ok());
    EXPECT_GT(prob.backend->stats().simulations, 0);
    EXPECT_EQ(prob.backend->stats().disk_appends,
              static_cast<long>(pts.size()));
    return pts;
  }();

  // A brand-new problem over the same directory: every point replays from
  // disk, the leaf simulator is never invoked.
  auto warm = circuits::make_tia_problem(options);
  const auto results = warm.evaluate_batch(points);
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  const auto stats = warm.backend->stats();
  EXPECT_EQ(stats.simulations, 0) << "warm cache must cost zero simulations";
  EXPECT_EQ(stats.disk_hits, static_cast<long>(points.size()));
  EXPECT_EQ(stats.cache_hits, static_cast<long>(points.size()));
}

TEST(ProblemDiskCache, RefusesCacheOfDifferentProblem) {
  const std::string dir = fresh_dir("autockt_problem_cache_guard");
  circuits::ProblemOptions options = serial_options();
  options.cache = true;
  options.cache_path = dir;
  { auto prob = circuits::make_tia_problem(options); }
  // Same directory, different problem definition: construction must fail
  // loudly instead of replaying the TIA's memo into the op-amp.
  EXPECT_THROW(circuits::make_two_stage_problem(options), std::runtime_error);
  // Deck problems surface the same refusal as an Error, not a throw.
  const std::string deck_path =
      std::string(AUTOCKT_SOURCE_DIR) + "/examples/decks/rc_buffer.cir";
  auto deck = circuits::make_netlist_problem_from_file(deck_path, options);
  ASSERT_FALSE(deck.ok());
  EXPECT_NE(deck.error().message.find("fingerprint"), std::string::npos)
      << deck.error().message;
}
