#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/units.hpp"

using namespace autockt::spice;

// ---------------------------------------------------------------- numbers

TEST(SpiceNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse_spice_number("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*parse_spice_number("1e-12"), 1e-12);
  EXPECT_DOUBLE_EQ(*parse_spice_number("2.5E6"), 2.5e6);
}

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("5.6k"), 5.6e3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("10meg"), 10e6);
  EXPECT_DOUBLE_EQ(*parse_spice_number("2g"), 2e9);
  EXPECT_DOUBLE_EQ(*parse_spice_number("1t"), 1e12);
  EXPECT_DOUBLE_EQ(*parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(*parse_spice_number("50n"), 50e-9);
  EXPECT_DOUBLE_EQ(*parse_spice_number("2p"), 2e-12);
  EXPECT_DOUBLE_EQ(*parse_spice_number("100f"), 100e-15);
}

TEST(SpiceNumber, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("5.6K"), 5.6e3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("10MEG"), 10e6);
}

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_FALSE(parse_spice_number("abc").ok());
  EXPECT_FALSE(parse_spice_number("").ok());
  EXPECT_FALSE(parse_spice_number("1.5x").ok());
  EXPECT_FALSE(parse_spice_number("2kk").ok());
}

// ---------------------------------------------------------------- decks

TEST(NetlistParser, ResistorDividerSolves) {
  const auto parsed = parse_netlist(R"(
* a comment line
.title divider
v1 a 0 dc 2.0
r1 a b 1k
r2 b 0 1k
.op
.end
)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->title, "divider");
  EXPECT_TRUE(parsed->want_op);
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(parsed->circuit.node("b")), 1.0, 1e-9);
}

TEST(NetlistParser, BareDcValueShorthand) {
  const auto parsed = parse_netlist("v1 a 0 1.5\nr1 a 0 1k\n");
  ASSERT_TRUE(parsed.ok());
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(parsed->circuit.node("a")), 1.5, 1e-9);
}

TEST(NetlistParser, RcDeckAcAnalysisMatchesBuilder) {
  const auto parsed = parse_netlist(R"(
v1 in 0 dc 1 ac 1
r1 in out 1k
c1 out 0 1n
.ac out 1k 1g 10
.end
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->ac.size(), 1u);
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  auto sweep = ac_sweep(parsed->circuit, *op,
                        parsed->circuit.node(parsed->ac[0].probe), kGround,
                        parsed->ac[0].options);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_NEAR(m.f3db, 1.0 / (2.0 * kPi * 1e3 * 1e-9), m.f3db * 0.03);
}

TEST(NetlistParser, MosfetInverterBiasesUp) {
  const auto parsed = parse_netlist(R"(
.card ptm45
vdd vdd 0 dc 1.2
vin in 0 dc 0.55
mn out in 0 0 nmos w=2u l=90n
mp out in vdd vdd pmos w=4u l=90n
.end
)");
  ASSERT_TRUE(parsed.ok());
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  const double vout = op->voltage(parsed->circuit.node("out"));
  EXPECT_GT(vout, 0.0);
  EXPECT_LT(vout, 1.2);
}

TEST(NetlistParser, MosfetMultAndCardOverride) {
  const auto parsed = parse_netlist(
      "vdd d 0 dc 0.8\n"
      "m1 d g 0 0 nmos w=0.5u l=32n mult=4 card=finfet16\n"
      "vg g 0 dc 0.6\n");
  ASSERT_TRUE(parsed.ok());
  const auto* dev = parsed->circuit.find("m1");
  ASSERT_NE(dev, nullptr);
  const auto* mos = dynamic_cast<const Mosfet*>(dev);
  ASSERT_NE(mos, nullptr);
  EXPECT_EQ(mos->geom().mult, 4);
  EXPECT_NEAR(mos->geom().width, 0.5e-6, 1e-12);
}

TEST(NetlistParser, StepSourceAndTranRequest) {
  const auto parsed = parse_netlist(R"(
v1 in 0 dc 0 step 0 1 1n 0.1n
r1 in out 1k
c1 out 0 1p
.tran out 10n 10p
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->tran.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->tran[0].options.t_stop, 10e-9);
  EXPECT_DOUBLE_EQ(parsed->tran[0].options.dt, 10e-12);
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  auto tran = transient(parsed->circuit, *op,
                        {parsed->circuit.node("out")},
                        parsed->tran[0].options);
  ASSERT_TRUE(tran.ok());
  EXPECT_NEAR(tran->waveforms[0].back(), 1.0, 0.01);
}

TEST(NetlistParser, VccsAndBiasProbe) {
  const auto parsed = parse_netlist(R"(
g1 out 0 bias 0 1m
rl out 0 10k
rb bias 0 1g
b1 bias out 0.4
)");
  ASSERT_TRUE(parsed.ok());
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(parsed->circuit.node("out")), 0.4, 1e-6);
}

TEST(NetlistParser, NoiseRequest) {
  const auto parsed = parse_netlist(
      "v1 a 0 dc 1\nr1 a out 2k\nr2 out 0 2k\n.noise out 1k 1meg\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->noise.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->noise[0].options.f_stop, 1e6);
}

// ---------------------------------------------------------------- errors

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  const auto parsed = parse_netlist("v1 a 0 dc 1\nr1 a 0 bogus\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("line 2"), std::string::npos);
}

TEST(NetlistParser, RejectsUnknownElement) {
  const auto parsed = parse_netlist("q1 a b c 1k\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("unknown element"),
            std::string::npos);
}

TEST(NetlistParser, RejectsUnknownDirective) {
  EXPECT_FALSE(parse_netlist(".frobnicate\n").ok());
}

TEST(NetlistParser, RejectsNegativeResistance) {
  EXPECT_FALSE(parse_netlist("r1 a 0 -5\n").ok());
}

TEST(NetlistParser, RejectsMosfetWithoutWidth) {
  EXPECT_FALSE(parse_netlist("m1 d g 0 0 nmos l=90n\n").ok());
}

TEST(NetlistParser, RejectsBadMosType) {
  EXPECT_FALSE(parse_netlist("m1 d g 0 0 cmos w=1u\n").ok());
}

TEST(NetlistParser, RejectsUnknownCard) {
  EXPECT_FALSE(parse_netlist(".card tsmc7\n").ok());
}

TEST(NetlistParser, RejectsProbeOnUnknownNode) {
  const auto parsed = parse_netlist("v1 a 0 dc 1\nr1 a 0 1k\n.ac zz 1k 1meg\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("probe"), std::string::npos);
}

TEST(NetlistParser, StopsAtEndDirective) {
  const auto parsed = parse_netlist(
      "v1 a 0 dc 1\nr1 a 0 1k\n.end\nthis is not a netlist line\n");
  EXPECT_TRUE(parsed.ok());
}

TEST(NetlistParser, GroundAliases) {
  const auto parsed = parse_netlist("v1 a gnd dc 1\nr1 a 0 1k\n");
  ASSERT_TRUE(parsed.ok());
  // Only one non-ground node was created.
  EXPECT_EQ(parsed->circuit.num_nodes(), 2u);
}
