#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/units.hpp"

using namespace autockt::spice;

// ---------------------------------------------------------------- numbers

TEST(SpiceNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse_spice_number("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*parse_spice_number("1e-12"), 1e-12);
  EXPECT_DOUBLE_EQ(*parse_spice_number("2.5E6"), 2.5e6);
}

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("5.6k"), 5.6e3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("10meg"), 10e6);
  EXPECT_DOUBLE_EQ(*parse_spice_number("2g"), 2e9);
  EXPECT_DOUBLE_EQ(*parse_spice_number("1t"), 1e12);
  EXPECT_DOUBLE_EQ(*parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(*parse_spice_number("50n"), 50e-9);
  EXPECT_DOUBLE_EQ(*parse_spice_number("2p"), 2e-12);
  EXPECT_DOUBLE_EQ(*parse_spice_number("100f"), 100e-15);
}

TEST(SpiceNumber, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(*parse_spice_number("5.6K"), 5.6e3);
  EXPECT_DOUBLE_EQ(*parse_spice_number("10MEG"), 10e6);
}

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_FALSE(parse_spice_number("abc").ok());
  EXPECT_FALSE(parse_spice_number("").ok());
  EXPECT_FALSE(parse_spice_number("1.5x").ok());
  EXPECT_FALSE(parse_spice_number("2kk").ok());
}

// ---------------------------------------------------------------- decks

TEST(NetlistParser, ResistorDividerSolves) {
  const auto parsed = parse_netlist(R"(
* a comment line
.title divider
v1 a 0 dc 2.0
r1 a b 1k
r2 b 0 1k
.op
.end
)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->title, "divider");
  EXPECT_TRUE(parsed->want_op);
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(parsed->circuit.node("b")), 1.0, 1e-9);
}

TEST(NetlistParser, BareDcValueShorthand) {
  const auto parsed = parse_netlist("v1 a 0 1.5\nr1 a 0 1k\n");
  ASSERT_TRUE(parsed.ok());
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(parsed->circuit.node("a")), 1.5, 1e-9);
}

TEST(NetlistParser, RcDeckAcAnalysisMatchesBuilder) {
  const auto parsed = parse_netlist(R"(
v1 in 0 dc 1 ac 1
r1 in out 1k
c1 out 0 1n
.ac out 1k 1g 10
.end
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->ac.size(), 1u);
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  auto sweep = ac_sweep(parsed->circuit, *op,
                        parsed->circuit.node(parsed->ac[0].probe), kGround,
                        parsed->ac[0].options);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_NEAR(m.f3db, 1.0 / (2.0 * kPi * 1e3 * 1e-9), m.f3db * 0.03);
}

TEST(NetlistParser, MosfetInverterBiasesUp) {
  const auto parsed = parse_netlist(R"(
.card ptm45
vdd vdd 0 dc 1.2
vin in 0 dc 0.55
mn out in 0 0 nmos w=2u l=90n
mp out in vdd vdd pmos w=4u l=90n
.end
)");
  ASSERT_TRUE(parsed.ok());
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  const double vout = op->voltage(parsed->circuit.node("out"));
  EXPECT_GT(vout, 0.0);
  EXPECT_LT(vout, 1.2);
}

TEST(NetlistParser, MosfetMultAndCardOverride) {
  const auto parsed = parse_netlist(
      "vdd d 0 dc 0.8\n"
      "m1 d g 0 0 nmos w=0.5u l=32n mult=4 card=finfet16\n"
      "vg g 0 dc 0.6\n");
  ASSERT_TRUE(parsed.ok());
  const auto* dev = parsed->circuit.find("m1");
  ASSERT_NE(dev, nullptr);
  const auto* mos = dynamic_cast<const Mosfet*>(dev);
  ASSERT_NE(mos, nullptr);
  EXPECT_EQ(mos->geom().mult, 4);
  EXPECT_NEAR(mos->geom().width, 0.5e-6, 1e-12);
}

TEST(NetlistParser, StepSourceAndTranRequest) {
  const auto parsed = parse_netlist(R"(
v1 in 0 dc 0 step 0 1 1n 0.1n
r1 in out 1k
c1 out 0 1p
.tran out 10n 10p
)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->tran.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->tran[0].options.t_stop, 10e-9);
  EXPECT_DOUBLE_EQ(parsed->tran[0].options.dt, 10e-12);
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  auto tran = transient(parsed->circuit, *op,
                        {parsed->circuit.node("out")},
                        parsed->tran[0].options);
  ASSERT_TRUE(tran.ok());
  EXPECT_NEAR(tran->waveforms[0].back(), 1.0, 0.01);
}

TEST(NetlistParser, VccsAndBiasProbe) {
  const auto parsed = parse_netlist(R"(
g1 out 0 bias 0 1m
rl out 0 10k
rb bias 0 1g
b1 bias out 0.4
)");
  ASSERT_TRUE(parsed.ok());
  auto op = solve_op(parsed->circuit);
  ASSERT_TRUE(op.ok());
  EXPECT_NEAR(op->voltage(parsed->circuit.node("out")), 0.4, 1e-6);
}

TEST(NetlistParser, NoiseRequest) {
  const auto parsed = parse_netlist(
      "v1 a 0 dc 1\nr1 a out 2k\nr2 out 0 2k\n.noise out 1k 1meg\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->noise.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->noise[0].options.f_stop, 1e6);
}

// ---------------------------------------------------------------- errors

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  const auto parsed = parse_netlist("v1 a 0 dc 1\nr1 a 0 bogus\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("line 2"), std::string::npos);
}

TEST(NetlistParser, RejectsUnknownElement) {
  const auto parsed = parse_netlist("q1 a b c 1k\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("unknown element"),
            std::string::npos);
}

TEST(NetlistParser, RejectsUnknownDirective) {
  EXPECT_FALSE(parse_netlist(".frobnicate\n").ok());
}

TEST(NetlistParser, RejectsNegativeResistance) {
  EXPECT_FALSE(parse_netlist("r1 a 0 -5\n").ok());
}

TEST(NetlistParser, RejectsMosfetWithoutWidth) {
  EXPECT_FALSE(parse_netlist("m1 d g 0 0 nmos l=90n\n").ok());
}

TEST(NetlistParser, RejectsBadMosType) {
  EXPECT_FALSE(parse_netlist("m1 d g 0 0 cmos w=1u\n").ok());
}

TEST(NetlistParser, RejectsUnknownCard) {
  EXPECT_FALSE(parse_netlist(".card tsmc7\n").ok());
}

TEST(NetlistParser, RejectsProbeOnUnknownNode) {
  const auto parsed = parse_netlist("v1 a 0 dc 1\nr1 a 0 1k\n.ac zz 1k 1meg\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("probe"), std::string::npos);
}

TEST(NetlistParser, StopsAtEndDirective) {
  const auto parsed = parse_netlist(
      "v1 a 0 dc 1\nr1 a 0 1k\n.end\nthis is not a netlist line\n");
  EXPECT_TRUE(parsed.ok());
}

TEST(NetlistParser, GroundAliases) {
  const auto parsed = parse_netlist("v1 a gnd dc 1\nr1 a 0 1k\n");
  ASSERT_TRUE(parsed.ok());
  // Only one non-ground node was created.
  EXPECT_EQ(parsed->circuit.num_nodes(), 2u);
}

// ---------------------------------------------------- sizing dialect

namespace {

constexpr const char* kSizingDeck = R"(
.title param rc
.param rr 1 5 5
.param cc 1 10 4 log
vs inp 0 dc 1 ac 1
r1 inp out {rr}k
c1 out 0 {cc}p
.ac out 1k 1g
.spec gain_vv geq 0.5 1 0.8
.spec f3db_hz geq 1e6 1e8 1e7 fail=1e3
.measure gain_vv gain
.measure f3db_hz f3db
)";

}  // namespace

TEST(DeckDialect, ParamSpecMeasureRoundTrip) {
  const auto deck = parse_deck(kSizingDeck);
  ASSERT_TRUE(deck.ok()) << deck.error().message;
  ASSERT_EQ(deck->params.size(), 2u);
  EXPECT_EQ(deck->params[0].name, "rr");
  EXPECT_DOUBLE_EQ(deck->params[0].lo, 1.0);
  EXPECT_DOUBLE_EQ(deck->params[0].hi, 5.0);
  EXPECT_EQ(deck->params[0].steps, 5);
  EXPECT_FALSE(deck->params[0].log_scale);
  EXPECT_TRUE(deck->params[1].log_scale);

  ASSERT_EQ(deck->specs.size(), 2u);
  EXPECT_EQ(deck->specs[0].name, "gain_vv");
  EXPECT_EQ(deck->specs[0].sense, DeckSpec::Sense::GreaterEq);
  EXPECT_DOUBLE_EQ(deck->specs[0].sample_lo, 0.5);
  EXPECT_DOUBLE_EQ(deck->specs[0].sample_hi, 1.0);
  EXPECT_DOUBLE_EQ(deck->specs[0].norm, 0.8);
  EXPECT_TRUE(deck->specs[1].has_fail);
  EXPECT_DOUBLE_EQ(deck->specs[1].fail_value, 1e3);

  ASSERT_EQ(deck->measures.size(), 2u);
  EXPECT_EQ(deck->measures[0].kind, DeckMeasure::Kind::Gain);
  EXPECT_EQ(deck->measures[1].kind, DeckMeasure::Kind::F3db);
}

TEST(DeckDialect, LinearAndLogGridValues) {
  const auto deck = parse_deck(kSizingDeck);
  ASSERT_TRUE(deck.ok());
  // Linear: 1..5 over 5 steps.
  EXPECT_DOUBLE_EQ(deck->params[0].value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(deck->params[0].value_at(2), 3.0);
  EXPECT_DOUBLE_EQ(deck->params[0].value_at(4), 5.0);
  // Log: 1..10 over 4 steps, geometric.
  EXPECT_DOUBLE_EQ(deck->params[1].value_at(0), 1.0);
  EXPECT_NEAR(deck->params[1].value_at(1), std::pow(10.0, 1.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(deck->params[1].value_at(3), 10.0);
}

TEST(DeckDialect, SubstitutionScalesLikeLiterals) {
  // {rr}k must behave exactly like the literal "3k" at the grid point where
  // rr = 3 — including through the engineering-suffix path.
  const auto deck = parse_deck(kSizingDeck);
  ASSERT_TRUE(deck.ok());
  auto inst = deck->instantiate({3.0, 2.0});
  ASSERT_TRUE(inst.ok()) << inst.error().message;
  const auto* r = inst->circuit.find("r1");
  ASSERT_NE(r, nullptr);
  // Indirect check through the physics: f3db of the RC = 1/(2 pi R C).
  auto op = solve_op(inst->circuit);
  ASSERT_TRUE(op.ok());
  auto sweep = ac_sweep(inst->circuit, *op, inst->circuit.node("out"),
                        kGround, inst->ac[0].options);
  ASSERT_TRUE(sweep.ok());
  const auto m = measure_ac(*sweep);
  ASSERT_TRUE(m.f3db_found);
  EXPECT_NEAR(m.f3db, 1.0 / (2.0 * kPi * 3e3 * 2e-12), 0.02 * m.f3db);
}

TEST(DeckDialect, DefaultInstantiationUsesGridCentre) {
  const auto deck = parse_deck(kSizingDeck);
  ASSERT_TRUE(deck.ok());
  // rr default = value_at(5/2=2) = 3; cc default = value_at(4/2=2).
  EXPECT_DOUBLE_EQ(deck->params[0].default_value(), 3.0);
  EXPECT_NEAR(deck->params[1].default_value(), std::pow(10.0, 2.0 / 3.0),
              1e-12);
}

TEST(DeckDialect, SenseDefaultFailValues) {
  // leq/min specs without fail= get a decisively-failing default; geq gets 0.
  const auto deck = parse_deck(R"(
vs a 0 dc 1 ac 1
r1 a out 1k
c1 out 0 1p
.ac out 1k 1g
.spec hi_spec geq 1 2 1.5
.spec lo_spec leq 1e-3 2e-3 1.5e-3
.measure hi_spec gain
.measure lo_spec f3db
)");
  ASSERT_TRUE(deck.ok()) << deck.error().message;
  EXPECT_DOUBLE_EQ(deck->specs[0].fail_value, 0.0);
  EXPECT_GT(deck->specs[1].fail_value, deck->specs[1].sample_hi * 100);
}

TEST(DeckDialect, ErrorsNameLineAndToken) {
  // Truncated .param (line 2).
  auto e1 = parse_deck("* c\n.param w 1\n");
  ASSERT_FALSE(e1.ok());
  EXPECT_NE(e1.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(e1.error().message.find(".param"), std::string::npos);

  // Bad sense keyword, naming the token.
  auto e2 = parse_deck("r1 a 0 1k\n.spec g above 1 2 1\n.measure g gain\n");
  ASSERT_FALSE(e2.ok());
  EXPECT_NE(e2.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(e2.error().message.find("above"), std::string::npos);

  // Unknown design variable in an element value.
  auto e3 = parse_deck("v1 a 0 dc 1\nr1 a 0 {nope}k\n");
  ASSERT_FALSE(e3.ok());
  EXPECT_NE(e3.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(e3.error().message.find("{nope}"), std::string::npos);

  // Unknown measure kind.
  auto e4 = parse_deck(
      "r1 a 0 1k\n.spec g geq 1 2 1\n.measure g sparkle\n");
  ASSERT_FALSE(e4.ok());
  EXPECT_NE(e4.error().message.find("line 3"), std::string::npos);
  EXPECT_NE(e4.error().message.find("sparkle"), std::string::npos);

  // Duplicate param.
  auto e5 = parse_deck(".param w 1 2 3\n.param w 1 2 3\nr1 a 0 1k\n");
  ASSERT_FALSE(e5.ok());
  EXPECT_NE(e5.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(e5.error().message.find("duplicate"), std::string::npos);
}

TEST(DeckDialect, CrossValidatesSpecMeasureBindings) {
  // Spec without measure.
  auto e1 = parse_deck("r1 a 0 1k\nv1 a 0 ac 1\n.ac a 1k 1g\n"
                       ".spec g geq 1 2 1\n");
  ASSERT_FALSE(e1.ok());
  EXPECT_NE(e1.error().message.find("no .measure"), std::string::npos);

  // Measure referencing an undeclared spec.
  auto e2 = parse_deck("r1 a 0 1k\nv1 a 0 ac 1\n.ac a 1k 1g\n"
                       ".measure ghost gain\n");
  ASSERT_FALSE(e2.ok());
  EXPECT_NE(e2.error().message.find("ghost"), std::string::npos);

  // Measure whose analysis is missing from the deck.
  auto e3 = parse_deck("r1 a 0 1k\nv1 a 0 ac 1\n"
                       ".spec ts leq 1n 2n 1n\n.measure ts settling\n");
  ASSERT_FALSE(e3.ok());
  EXPECT_NE(e3.error().message.find(".tran"), std::string::npos);

  // supply_current naming a device with no branch current.
  auto e4 = parse_deck("r1 a 0 1k\nv1 a 0 dc 1\n"
                       ".spec ib min 1u 2u 1u\n"
                       ".measure ib supply_current r1\n");
  ASSERT_FALSE(e4.ok());
  EXPECT_NE(e4.error().message.find("r1"), std::string::npos);
}

TEST(DeckDialect, RejectsFractionalStepCounts) {
  auto e = parse_deck(".param wn 1 8 15.7\nr1 a 0 1k\n");
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error().message.find("line 1"), std::string::npos);
  EXPECT_NE(e.error().message.find("15.7"), std::string::npos);
}

TEST(DeckDialect, LogParamRequiresPositiveLo) {
  auto e = parse_deck(".param w 0 2 3 log\nr1 a 0 1k\n");
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error().message.find("log"), std::string::npos);
}

TEST(DeckDialect, PlainDecksStillParse) {
  // A deck with no sizing declarations round-trips through parse_deck with
  // empty decl lists and instantiates with zero values.
  const auto deck = parse_deck("v1 a 0 dc 1\nr1 a 0 1k\n");
  ASSERT_TRUE(deck.ok());
  EXPECT_FALSE(deck->has_sizing());
  auto inst = deck->instantiate({});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->circuit.num_nodes(), 2u);
}
