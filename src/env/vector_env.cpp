#include "env/vector_env.hpp"

#include <stdexcept>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::env {

using circuits::ParamVector;

VectorSizingEnv::VectorSizingEnv(
    std::shared_ptr<const circuits::SizingProblem> problem, EnvConfig config,
    int num_lanes)
    : problem_(std::move(problem)) {
  if (!problem_) throw std::invalid_argument("VectorSizingEnv: null problem");
  if (num_lanes <= 0) {
    throw std::invalid_argument("VectorSizingEnv: num_lanes must be >= 1");
  }
  lanes_.reserve(static_cast<std::size_t>(num_lanes));
  for (int i = 0; i < num_lanes; ++i) lanes_.emplace_back(problem_, config);
  rngs_.resize(static_cast<std::size_t>(num_lanes));
  running_.assign(static_cast<std::size_t>(num_lanes), 0);
  seed_lanes(0xa0c0c0de2020ULL);
}

std::size_t VectorSizingEnv::check_lane(int lane) const {
  if (lane < 0 || lane >= num_lanes()) {
    throw std::out_of_range("VectorSizingEnv: lane index out of range");
  }
  return static_cast<std::size_t>(lane);
}

void VectorSizingEnv::seed_lanes(std::uint64_t base_seed) {
  // Per-lane seeds are a function of (base_seed, lane) only, so a lane's
  // stream never depends on how many lanes exist.
  for (int i = 0; i < num_lanes(); ++i) {
    seed_lane(i, util::stream_seed(base_seed, static_cast<std::uint64_t>(i)));
  }
}

void VectorSizingEnv::seed_lane(int lane, std::uint64_t seed) {
  rngs_[check_lane(lane)].reseed(seed);
}

void VectorSizingEnv::set_target_sampler(TargetSampler sampler) {
  target_sampler_ = std::move(sampler);
  spec_sampler_.reset();
  report_outcomes_ = false;
}

void VectorSizingEnv::set_target_sampler(
    std::shared_ptr<spec::TargetSampler> sampler, bool report_outcomes) {
  if (!sampler) {
    clear_target_sampler();
    return;
  }
  spec_sampler_ = std::move(sampler);
  report_outcomes_ = report_outcomes;
  target_sampler_ = [s = spec_sampler_](int /*lane*/, util::Rng& rng) {
    return s->sample(rng);
  };
}

void VectorSizingEnv::clear_target_sampler() {
  target_sampler_ = nullptr;
  spec_sampler_.reset();
  report_outcomes_ = false;
}

void VectorSizingEnv::set_target(int lane, circuits::SpecVector target) {
  lanes_[check_lane(lane)].set_target(std::move(target));
}

int VectorSizingEnv::running_count() const {
  int n = 0;
  for (char r : running_) n += r ? 1 : 0;
  return n;
}

std::vector<std::vector<double>> VectorSizingEnv::reset_all() {
  std::vector<int> all(static_cast<std::size_t>(num_lanes()));
  for (int i = 0; i < num_lanes(); ++i) all[static_cast<std::size_t>(i)] = i;
  return do_reset(all);
}

std::vector<std::vector<double>> VectorSizingEnv::reset_lanes(
    const std::vector<int>& lanes) {
  return do_reset(lanes);
}

std::vector<std::vector<double>> VectorSizingEnv::do_reset(
    const std::vector<int>& lanes) {
  trace::TraceSpan span(trace::names::kEnvReset);
  std::vector<ParamVector> points;
  std::vector<eval::SimHint*> hints;
  points.reserve(lanes.size());
  hints.reserve(lanes.size());
  for (int i : lanes) {
    const std::size_t li = check_lane(i);
    if (target_sampler_) {
      lanes_[li].set_target(target_sampler_(i, rngs_[li]));
    }
    points.push_back(lanes_[li].begin_reset());
    hints.push_back(lanes_[li].pending_hint());
  }
  auto results = problem_->evaluate_batch(points, hints);
  std::vector<std::vector<double>> obs;
  obs.reserve(lanes.size());
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    const std::size_t li = static_cast<std::size_t>(lanes[k]);
    obs.push_back(lanes_[li].finish_reset(std::move(results[k])));
    running_[li] = 1;
  }
  return obs;
}

std::vector<VectorSizingEnv::LaneStep> VectorSizingEnv::step_all(
    const std::vector<std::vector<int>>& actions,
    const std::function<bool(int lane)>& continue_lane) {
  if (actions.size() != static_cast<std::size_t>(num_lanes())) {
    throw std::invalid_argument("VectorSizingEnv: actions size mismatch");
  }
  // Covers all three phases, so phase-3 auto-resets appear as nested
  // env/reset spans under the tick.
  trace::TraceSpan span(trace::names::kEnvTick);
  // Phase 1: apply actions on running lanes and gather pending points
  // (and each lane's warm-start slot — distinct objects, so a fan-out
  // backend may write them concurrently).
  std::vector<int> stepped;
  std::vector<ParamVector> points;
  std::vector<eval::SimHint*> hints;
  stepped.reserve(lanes_.size());
  points.reserve(lanes_.size());
  hints.reserve(lanes_.size());
  for (int i = 0; i < num_lanes(); ++i) {
    const std::size_t li = static_cast<std::size_t>(i);
    if (!running_[li]) continue;
    points.push_back(lanes_[li].begin_step(actions[li]));
    hints.push_back(lanes_[li].pending_hint());
    stepped.push_back(i);
  }

  // Phase 2: one batched evaluation for every stepped lane.
  auto results = problem_->evaluate_batch(points, hints);

  std::vector<LaneStep> out(lanes_.size());
  std::vector<int> to_reset;
  for (std::size_t k = 0; k < stepped.size(); ++k) {
    const int i = stepped[k];
    const std::size_t li = static_cast<std::size_t>(i);
    SizingEnv::StepResult sr = lanes_[li].finish_step(std::move(results[k]));
    if (sr.done && report_outcomes_) {
      // The lane's target is still the finished episode's target here (the
      // auto-reset that may replace it happens in phase 3 below).
      spec_sampler_->record_outcome(lanes_[li].target(), sr.goal_met);
    }
    LaneStep& ls = out[li];
    ls.stepped = true;
    ls.reward = sr.reward;
    ls.done = sr.done;
    ls.goal_met = sr.goal_met;
    if (sr.done) {
      ls.final_obs = sr.obs;
      if (!continue_lane || continue_lane(i)) {
        to_reset.push_back(i);
      } else {
        running_[li] = 0;
        ls.obs = std::move(sr.obs);
      }
    } else {
      ls.obs = std::move(sr.obs);
    }
  }

  // Phase 3: batched auto-reset of every lane whose episode just ended.
  if (!to_reset.empty()) {
    auto fresh = do_reset(to_reset);
    for (std::size_t k = 0; k < to_reset.size(); ++k) {
      out[static_cast<std::size_t>(to_reset[k])].obs = std::move(fresh[k]);
    }
  }
  return out;
}

}  // namespace autockt::env
