#pragma once
// VectorSizingEnv: N sizing environments stepped in lockstep, with all N
// pending circuit points dispatched as ONE evaluate_batch() call through the
// problem's shared EvalBackend. This is what puts the PR-1 evaluation layer
// (thread-pool fan-out, sharded memo cache, corner parallelism) on the PPO
// rollout and deployment hot paths.
//
// Contract: each lane is a full SizingEnv driven through its split-phase
// API, so a VectorSizingEnv over a FunctionBackend produces results
// bitwise-identical to N independent serial envs — batching changes
// wall-clock, never values (asserted in tests/test_vector_env.cpp).
//
// Lane model:
//  * Every lane owns an RNG stream derived from (base_seed, lane index)
//    only, so trajectories do not depend on how lanes are packed into
//    workers or on thread scheduling.
//  * On episode end, step_all() auto-resets the lane (resampling its target
//    through the optional target sampler, from the lane's own stream) unless
//    a continue_lane predicate vetoes it, in which case the lane halts and
//    is skipped by subsequent ticks. Reset evaluations of all freshly done
//    lanes batch into a second evaluate_batch() on the same tick.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "env/sizing_env.hpp"
#include "util/rng.hpp"

namespace autockt::env {

class VectorSizingEnv {
 public:
  VectorSizingEnv(std::shared_ptr<const circuits::SizingProblem> problem,
                  EnvConfig config, int num_lanes);

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int obs_size() const { return lanes_.front().obs_size(); }
  int num_params() const { return lanes_.front().num_params(); }

  // ---- per-lane RNG streams ----------------------------------------------
  /// Seed every lane from (base_seed, lane index); lane streams are
  /// independent of lane count, so lane i behaves identically whether it
  /// runs beside 0 or 63 siblings.
  void seed_lanes(std::uint64_t base_seed);
  void seed_lane(int lane, std::uint64_t seed);
  util::Rng& lane_rng(int lane) { return rngs_[check_lane(lane)]; }

  // ---- targets ------------------------------------------------------------
  /// Sampler invoked (with the lane's own RNG) on reset_all() and on every
  /// auto-reset. Without one, lanes keep their current targets.
  using TargetSampler =
      std::function<circuits::SpecVector(int lane, util::Rng& rng)>;
  void set_target_sampler(TargetSampler sampler);

  /// First-class spec-subsystem sampler: resets draw sampler->sample(rng)
  /// from each lane's own stream; with `report_outcomes` every finished
  /// episode additionally feeds (target, goal_met) back through
  /// record_outcome — the serial curriculum loop. Leave reporting off when
  /// a trainer wants to replay outcomes itself in a deterministic order
  /// across many vector envs (rl/ppo.cpp does). Replaces any previously
  /// set sampler of either kind; clear_target_sampler() detaches.
  void set_target_sampler(std::shared_ptr<spec::TargetSampler> sampler,
                          bool report_outcomes = false);
  /// Detach any sampler (of either kind); lanes keep their current targets.
  void clear_target_sampler();
  void set_target(int lane, circuits::SpecVector target);
  const circuits::SpecVector& target(int lane) const {
    return lanes_[check_lane(lane)].target();
  }

  // ---- lockstep episode control -------------------------------------------
  /// Restart every lane from the grid centre (one batched evaluation);
  /// returns the initial observation per lane. All lanes become RUNNING.
  std::vector<std::vector<double>> reset_all();

  /// Restart the given lanes (one batched evaluation); returns their
  /// initial observations in argument order. The lanes become RUNNING.
  std::vector<std::vector<double>> reset_lanes(const std::vector<int>& lanes);

  struct LaneStep {
    /// Observation to act on next: the new episode's first observation when
    /// the lane auto-reset, otherwise the post-step observation.
    std::vector<double> obs;
    /// Terminal observation of the episode that just ended (empty unless
    /// done) — what a bootstrap value should be computed from.
    std::vector<double> final_obs;
    double reward = 0.0;
    bool done = false;
    bool goal_met = false;
    /// False for lanes that were halted and therefore did not step.
    bool stepped = false;
  };

  /// Step every RUNNING lane with actions[lane] (entries for halted lanes
  /// are ignored). All pending points evaluate in one evaluate_batch();
  /// lanes whose episode ended either auto-reset (default, batched
  /// together) or halt when continue_lane(lane) returns false.
  std::vector<LaneStep> step_all(
      const std::vector<std::vector<int>>& actions,
      const std::function<bool(int lane)>& continue_lane = {});

  // ---- lane state ---------------------------------------------------------
  bool lane_running(int lane) const { return running_[check_lane(lane)]; }
  int running_count() const;
  void halt_lane(int lane) { running_[check_lane(lane)] = false; }

  const SizingEnv& lane(int i) const { return lanes_[check_lane(i)]; }
  SizingEnv& lane(int i) { return lanes_[check_lane(i)]; }

  const circuits::SizingProblem& problem() const {
    return lanes_.front().problem();
  }

 private:
  std::size_t check_lane(int lane) const;
  /// Begin a reset on each lane, batch-evaluate, finish; lanes RUNNING.
  std::vector<std::vector<double>> do_reset(const std::vector<int>& lanes);

  std::shared_ptr<const circuits::SizingProblem> problem_;
  std::vector<SizingEnv> lanes_;
  std::vector<util::Rng> rngs_;
  std::vector<char> running_;  // char, not bool: lanes mutate independently
  TargetSampler target_sampler_;
  std::shared_ptr<spec::TargetSampler> spec_sampler_;
  bool report_outcomes_ = false;
};

}  // namespace autockt::env
