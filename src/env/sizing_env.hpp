#pragma once
// Gym-style RL environment for analog sizing (paper Section II).
//
//  * On reset, parameters start at the grid centre K/2 and the circuit is
//    simulated once to produce the initial observation.
//  * Observation: [lookup(cur_spec_i, g_i)..., lookup(target_i, g_i)...,
//    normalized parameter positions...] — the paper's fixed-range
//    normalization against per-spec reference constants.
//  * Action: one ternary choice per parameter: decrement / hold / increment,
//    clipped at the grid boundary (the paper's "circuit specific rules or
//    boundary limitations").
//  * Reward: Eq. 1, with a +10 bonus when every hard constraint is met to
//    1% relative tolerance; the episode then terminates (or after H steps).

#include <memory>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "eval/types.hpp"
#include "spec/target_sampler.hpp"
#include "util/rng.hpp"

namespace autockt::env {

struct EnvConfig {
  int horizon = 30;          // paper: 30 simulation steps for the op-amps
  double goal_bonus = 10.0;  // paper Eq. "R = 10 + r"
  bool eq1_shaping = true;   // false: sparse goal-only reward (ablation)
  /// Thread the lane's last converged operating point into each evaluation
  /// so the simulator warm-starts Newton on the next +-1-grid-step design.
  /// Hints are invalidated on reset (episodes always cold-start), and the
  /// simulator falls back to its cold-start homotopy chain when a warm
  /// attempt fails, so trajectories stay deterministic for a fixed seed.
  bool warm_start = true;
};

class SizingEnv {
 public:
  SizingEnv(std::shared_ptr<const circuits::SizingProblem> problem,
            EnvConfig config);

  // ---- spaces -----------------------------------------------------------
  int obs_size() const;
  int num_params() const;
  static constexpr int kActionsPerParam = 3;  // -1 / 0 / +1

  // ---- episode control ---------------------------------------------------
  void set_target(circuits::SpecVector target);
  const circuits::SpecVector& target() const { return target_; }

  /// Attach a target sampler: every reset draws a fresh target from it
  /// (through an env-owned stream seeded by `seed`), and every episode end
  /// reports (target, goal_met) back via record_outcome — the feedback loop
  /// CurriculumSampler learns from. The seed is explicit on purpose: give
  /// every env its own stream (util::stream_seed) or several envs will
  /// train on perfectly correlated target sequences. Passing a null
  /// sampler detaches; set_target still overrides the target of the next
  /// episode until the following reset. Lanes inside a VectorSizingEnv are
  /// driven by the vector env's own sampler plumbing instead (per-lane
  /// streams).
  void set_target_sampler(std::shared_ptr<spec::TargetSampler> sampler,
                          std::uint64_t seed);
  const std::shared_ptr<spec::TargetSampler>& target_sampler() const {
    return sampler_;
  }

  /// Start an episode from the grid centre; returns the first observation.
  std::vector<double> reset();

  struct StepResult {
    std::vector<double> obs;
    double reward = 0.0;
    bool done = false;
    bool goal_met = false;
  };
  /// action[i] in {0, 1, 2} mapping to parameter deltas {-1, 0, +1}.
  StepResult step(const std::vector<int>& action);

  // ---- split-phase stepping ----------------------------------------------
  // The vectorization seam: VectorSizingEnv drives many lanes by calling
  // begin_*() on each, gathering the pending grid points into ONE
  // evaluate_batch() on the shared backend, and feeding results back through
  // finish_*(). Because evaluate_batch(points)[i] is exactly what
  // evaluate(points[i]) would return, finish(begin(...)) with a batched
  // result is bitwise-identical to the plain reset()/step() path.

  /// Position at the grid centre; returns the point awaiting evaluation.
  const circuits::ParamVector& begin_reset();
  /// Complete a reset with the evaluation of the pending point.
  std::vector<double> finish_reset(eval::EvalResult result);
  /// Apply the action (clipped at grid bounds) and advance the step
  /// counter; returns the point awaiting evaluation.
  const circuits::ParamVector& begin_step(const std::vector<int>& action);
  /// Complete a step with the evaluation of the pending point.
  StepResult finish_step(eval::EvalResult result);
  /// Warm-start state to pass alongside the pending point (null when
  /// warm starting is disabled). The vector env forwards one per lane.
  eval::SimHint* pending_hint() {
    return config_.warm_start ? &hint_ : nullptr;
  }

  // ---- inspection --------------------------------------------------------
  const circuits::ParamVector& params() const { return params_; }
  const circuits::SpecVector& cur_specs() const { return cur_specs_; }
  int steps_taken() const { return steps_; }
  long simulations() const { return sims_; }
  bool last_eval_failed() const { return last_eval_failed_; }
  const circuits::SizingProblem& problem() const { return *problem_; }
  const std::shared_ptr<const circuits::SizingProblem>& problem_ptr() const {
    return problem_;
  }
  const EnvConfig& config() const { return config_; }

  /// Reward for the current state (Eq. 1 / sparse, per config).
  double current_reward() const;
  bool current_goal_met() const;

 private:
  std::vector<double> observe() const;
  void apply_eval(eval::EvalResult result);

  std::shared_ptr<const circuits::SizingProblem> problem_;
  EnvConfig config_;
  std::shared_ptr<spec::TargetSampler> sampler_;  // optional
  util::Rng sampler_rng_;
  circuits::SpecVector target_;
  circuits::ParamVector params_;
  circuits::SpecVector cur_specs_;
  eval::SimHint hint_;  // last converged op point(s), refreshed per eval
  int steps_ = 0;
  long sims_ = 0;
  bool last_eval_failed_ = false;
};

/// Uniformly sample one deployment/training target within the per-spec
/// sampling ranges. Thin wrapper over spec::UniformSampler (same stream
/// bitwise); prefer building a sampler/suite via src/spec/ for anything
/// beyond a one-off draw.
circuits::SpecVector sample_target(const circuits::SizingProblem& problem,
                                   util::Rng& rng);

/// The paper trains against 50 randomly sampled target specifications.
std::vector<circuits::SpecVector> sample_targets(
    const circuits::SizingProblem& problem, std::size_t count,
    util::Rng& rng);

}  // namespace autockt::env
