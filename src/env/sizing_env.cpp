#include "env/sizing_env.hpp"

#include <algorithm>
#include <stdexcept>

namespace autockt::env {

using circuits::ParamVector;
using circuits::SpecVector;

SizingEnv::SizingEnv(std::shared_ptr<const circuits::SizingProblem> problem,
                     EnvConfig config)
    : problem_(std::move(problem)), config_(config) {
  if (!problem_) throw std::invalid_argument("SizingEnv: null problem");
  // The default target is the spec-space midpoint — derived from the same
  // SpecSpace the samplers use, so the two can never drift (and invalid
  // spec definitions are rejected here, at construction).
  target_ = spec::SpecSpace(*problem_).midpoint();
}

void SizingEnv::set_target_sampler(
    std::shared_ptr<spec::TargetSampler> sampler, std::uint64_t seed) {
  sampler_ = std::move(sampler);
  sampler_rng_.reseed(seed);
}

int SizingEnv::obs_size() const {
  return static_cast<int>(2 * problem_->specs.size() +
                          problem_->params.size());
}

int SizingEnv::num_params() const {
  return static_cast<int>(problem_->params.size());
}

void SizingEnv::set_target(SpecVector target) {
  if (target.size() != problem_->specs.size()) {
    throw std::invalid_argument("SizingEnv: target size mismatch");
  }
  target_ = std::move(target);
}

std::vector<double> SizingEnv::reset() {
  return finish_reset(problem_->evaluate(begin_reset(), pending_hint()));
}

const ParamVector& SizingEnv::begin_reset() {
  if (sampler_) target_ = sampler_->sample(sampler_rng_);
  params_ = problem_->center_params();
  steps_ = 0;
  // Episodes cold-start: warm hints never leak across episode boundaries,
  // so a trajectory's simulations depend only on its own history.
  hint_.invalidate();
  return params_;
}

std::vector<double> SizingEnv::finish_reset(eval::EvalResult result) {
  apply_eval(std::move(result));
  return observe();
}

void SizingEnv::apply_eval(eval::EvalResult result) {
  ++sims_;
  if (result.ok()) {
    cur_specs_ = std::move(result).value();
    last_eval_failed_ = false;
  } else {
    cur_specs_ = problem_->fail_specs();
    last_eval_failed_ = true;
  }
}

double SizingEnv::current_reward() const {
  const bool goal = problem_->goal_met(cur_specs_, target_);
  if (config_.eq1_shaping) {
    // Non-terminal steps: the clamped violation sum (<= 0), so there is no
    // incentive to linger in an episode. The terminal bonus is the paper's
    // "10 + r" with the full Eq. 1 value, whose unclamped minimize term
    // rewards finishing *below* the power budget.
    if (goal) {
      return config_.goal_bonus + problem_->reward_eq1(cur_specs_, target_);
    }
    return problem_->hard_violation(cur_specs_, target_);
  }
  // Sparse ablation: +bonus on goal, small per-step penalty otherwise.
  return goal ? config_.goal_bonus : -1.0 / std::max(config_.horizon, 1);
}

bool SizingEnv::current_goal_met() const {
  return problem_->goal_met(cur_specs_, target_);
}

SizingEnv::StepResult SizingEnv::step(const std::vector<int>& action) {
  return finish_step(problem_->evaluate(begin_step(action), pending_hint()));
}

const ParamVector& SizingEnv::begin_step(const std::vector<int>& action) {
  if (action.size() != problem_->params.size()) {
    throw std::invalid_argument("SizingEnv: action size mismatch");
  }
  for (std::size_t i = 0; i < action.size(); ++i) {
    const int delta = action[i] - 1;  // {0,1,2} -> {-1,0,+1}
    const int hi = problem_->params[i].grid_size() - 1;
    params_[i] = std::clamp(params_[i] + delta, 0, hi);
  }
  ++steps_;
  return params_;
}

SizingEnv::StepResult SizingEnv::finish_step(eval::EvalResult result) {
  apply_eval(std::move(result));
  StepResult out;
  out.goal_met = current_goal_met();
  out.reward = current_reward();
  out.done = out.goal_met || steps_ >= config_.horizon;
  out.obs = observe();
  // Close the curriculum feedback loop: the episode's outcome flows back to
  // the sampler that chose its target.
  if (out.done && sampler_) sampler_->record_outcome(target_, out.goal_met);
  return out;
}

std::vector<double> SizingEnv::observe() const {
  std::vector<double> obs;
  obs.reserve(static_cast<std::size_t>(obs_size()));
  for (std::size_t i = 0; i < problem_->specs.size(); ++i) {
    obs.push_back(
        circuits::lookup_norm(cur_specs_[i], problem_->specs[i].norm_const));
  }
  for (std::size_t i = 0; i < problem_->specs.size(); ++i) {
    obs.push_back(
        circuits::lookup_norm(target_[i], problem_->specs[i].norm_const));
  }
  for (std::size_t i = 0; i < problem_->params.size(); ++i) {
    const int hi = problem_->params[i].grid_size() - 1;
    obs.push_back(hi == 0 ? 0.0
                          : 2.0 * static_cast<double>(params_[i]) /
                                    static_cast<double>(hi) -
                                1.0);
  }
  return obs;
}

SpecVector sample_target(const circuits::SizingProblem& problem,
                         util::Rng& rng) {
  return spec::UniformSampler(spec::SpecSpace(problem)).sample(rng);
}

std::vector<SpecVector> sample_targets(const circuits::SizingProblem& problem,
                                       std::size_t count, util::Rng& rng) {
  spec::UniformSampler sampler{spec::SpecSpace(problem)};
  std::vector<SpecVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(sampler.sample(rng));
  return out;
}

}  // namespace autockt::env
