#include "autockt/autockt.hpp"

namespace autockt::core {

using circuits::SpecVector;

TrainOutcome train_agent(
    std::shared_ptr<const circuits::SizingProblem> problem,
    const AutoCktConfig& config,
    const std::function<void(const rl::IterationStats&)>& on_iteration) {
  util::Rng rng(config.seed);
  std::vector<SpecVector> targets =
      env::sample_targets(*problem, config.train_target_count, rng);

  env::SizingEnv probe(problem, config.env_config);
  rl::PpoConfig ppo = config.ppo;
  ppo.seed = config.seed * 6364136223846793005ULL + 1442695040888963407ULL;
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), ppo);

  auto factory = [problem, env_config = config.env_config]() {
    return env::SizingEnv(problem, env_config);
  };
  rl::TrainHistory history = agent.train(factory, targets, on_iteration);
  return TrainOutcome{std::move(agent), std::move(history),
                      std::move(targets)};
}

int DeployStats::reached_count() const {
  int n = 0;
  for (const auto& r : records) n += r.reached ? 1 : 0;
  return n;
}

double DeployStats::reach_fraction() const {
  return records.empty()
             ? 0.0
             : static_cast<double>(reached_count()) /
                   static_cast<double>(records.size());
}

double DeployStats::avg_steps_reached() const {
  long steps = 0;
  int n = 0;
  for (const auto& r : records) {
    if (r.reached) {
      steps += r.steps;
      ++n;
    }
  }
  return n == 0 ? 0.0
                : static_cast<double>(steps) / static_cast<double>(n);
}

long DeployStats::total_sim_steps() const {
  long steps = 0;
  for (const auto& r : records) steps += r.steps;
  return steps;
}

namespace {

/// One episode against the environment's current target; returns goal flag
/// and adds the steps consumed to `steps`.
bool run_episode(const rl::PpoAgent& agent, env::SizingEnv& sizing_env,
                 bool sample, util::Rng& rng, int& steps) {
  std::vector<double> obs = sizing_env.reset();
  for (;;) {
    const auto prev_params = sizing_env.params();
    const std::vector<int> action =
        sample ? agent.act_sample(obs, rng) : agent.act_greedy(obs);
    auto sr = sizing_env.step(action);
    ++steps;
    obs = sr.obs;
    if (sr.done) return sr.goal_met;
    // A greedy policy at an unchanged state is a fixed point: the target
    // will never be reached, so stop burning simulations.
    if (!sample && sizing_env.params() == prev_params) return false;
  }
}

}  // namespace

DeployStats deploy_agent(const rl::PpoAgent& agent,
                         std::shared_ptr<const circuits::SizingProblem> problem,
                         const std::vector<SpecVector>& targets,
                         const env::EnvConfig& env_config, bool stochastic,
                         std::uint64_t seed, int stochastic_retries) {
  DeployStats stats;
  util::Rng rng(seed);
  env::SizingEnv sizing_env(problem, env_config);
  const eval::EvalStats eval_baseline = problem->eval_stats();

  for (const SpecVector& target : targets) {
    DeployRecord record;
    record.target = target;
    sizing_env.set_target(target);

    record.reached =
        run_episode(agent, sizing_env, stochastic, rng, record.steps);
    for (int retry = 0; !record.reached && retry < stochastic_retries;
         ++retry) {
      record.reached =
          run_episode(agent, sizing_env, /*sample=*/true, rng, record.steps);
    }
    record.final_specs = sizing_env.cur_specs();
    record.final_params = sizing_env.params();
    stats.records.push_back(std::move(record));
  }
  stats.eval_stats = problem->eval_stats().since(eval_baseline);
  return stats;
}

TrajectoryTrace trace_trajectory(const rl::PpoAgent& agent,
                                 std::shared_ptr<const circuits::SizingProblem> problem,
                                 const SpecVector& target,
                                 const env::EnvConfig& env_config) {
  TrajectoryTrace trace;
  trace.target = target;
  env::SizingEnv sizing_env(problem, env_config);
  sizing_env.set_target(target);
  std::vector<double> obs = sizing_env.reset();
  trace.specs.push_back(sizing_env.cur_specs());
  trace.params.push_back(sizing_env.params());

  for (;;) {
    const auto prev_params = sizing_env.params();
    auto sr = sizing_env.step(agent.act_greedy(obs));
    obs = sr.obs;
    trace.specs.push_back(sizing_env.cur_specs());
    trace.params.push_back(sizing_env.params());
    if (sr.done) {
      trace.reached = sr.goal_met;
      break;
    }
    if (sizing_env.params() == prev_params) break;
  }
  return trace;
}

}  // namespace autockt::core
