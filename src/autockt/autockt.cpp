#include "autockt/autockt.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::core {

using circuits::SpecVector;

TrainOutcome train_agent(
    std::shared_ptr<const circuits::SizingProblem> problem,
    const AutoCktConfig& config,
    const std::function<void(const rl::IterationStats&)>& on_iteration) {
  const spec::SpecSpace space(*problem);

  // Training targets. FixedSuite keeps the historical stream: one uniform
  // draw per spec from Rng(config.seed), bitwise-identical to the pre-suite
  // code path, so existing seeds retrain to identical agents.
  rl::TrainOptions options;
  std::vector<SpecVector> targets;
  spec::SpecSuite train_suite;
  if (config.sampling == AutoCktConfig::Sampling::FixedSuite) {
    util::Rng rng(config.seed);
    targets = env::sample_targets(*problem, config.train_target_count, rng);
    train_suite = spec::SpecSuite(problem->name + "/train", space.names(),
                                  targets);
    options.sampler = std::make_shared<spec::SuiteSampler>(targets);
  } else {
    train_suite =
        spec::SpecSuite(problem->name + "/train(curriculum)", space.names(),
                        {});
    options.sampler =
        std::make_shared<spec::CurriculumSampler>(space, config.curriculum);
  }

  // The holdout suite derives from suite_seed alone: retrain with any
  // training seed and the agent is scored on the same unseen targets.
  spec::SpecSuite holdout_suite;
  if (config.holdout_target_count > 0) {
    spec::StratifiedSampler stratified(
        space, static_cast<int>(config.holdout_target_count));
    holdout_suite = spec::SpecSuite::generate(
        space, stratified, config.holdout_target_count, config.suite_seed,
        problem->name + "/holdout");
    options.holdout = holdout_suite;
    options.holdout_interval = config.holdout_interval;
  }

  env::SizingEnv probe(problem, config.env_config);
  rl::PpoConfig ppo = config.ppo;
  ppo.seed = config.seed * 6364136223846793005ULL + 1442695040888963407ULL;
  rl::PpoAgent agent(probe.obs_size(), probe.num_params(), ppo);

  auto factory = [problem, env_config = config.env_config]() {
    return env::SizingEnv(problem, env_config);
  };
  rl::TrainHistory history = agent.train(factory, options, on_iteration);
  return TrainOutcome{std::move(agent), std::move(history),
                      std::move(targets), std::move(train_suite),
                      std::move(holdout_suite)};
}

util::Expected<ScenarioTrainOutcome> train_agent(
    const circuits::CircuitRegistry& registry, const std::string& scenario,
    const circuits::ProblemOptions& problem_options,
    const AutoCktConfig& config,
    const std::function<void(const rl::IterationStats&)>& on_iteration) {
  auto problem = registry.make_shared(scenario, problem_options);
  if (!problem.ok()) return problem.error();
  TrainOutcome outcome = train_agent(*problem, config, on_iteration);
  return ScenarioTrainOutcome{std::move(*problem), std::move(outcome)};
}

int DeployStats::reached_count() const {
  int n = 0;
  for (const auto& r : records) n += r.reached ? 1 : 0;
  return n;
}

double DeployStats::reach_fraction() const {
  return records.empty()
             ? 0.0
             : static_cast<double>(reached_count()) /
                   static_cast<double>(records.size());
}

double DeployStats::avg_steps_reached() const {
  long steps = 0;
  int n = 0;
  for (const auto& r : records) {
    if (r.reached) {
      steps += r.steps;
      ++n;
    }
  }
  return n == 0 ? 0.0
                : static_cast<double>(steps) / static_cast<double>(n);
}

long DeployStats::total_sim_steps() const {
  long steps = 0;
  for (const auto& r : records) steps += r.steps;
  return steps;
}

namespace {

/// Per-lane deployment state while its target rolls out.
struct DeployLane {
  int target_idx = -1;    // index into the target list; -1 when idle
  int attempts_left = 0;  // sampled retries remaining after this attempt
  bool sample = false;    // this attempt samples instead of acting greedily
  circuits::ParamVector prev_params;  // greedy fixed-point detection
};

}  // namespace

DeployStats deploy_agent(const rl::PpoAgent& agent,
                         std::shared_ptr<const circuits::SizingProblem> problem,
                         const std::vector<SpecVector>& targets,
                         const env::EnvConfig& env_config, bool stochastic,
                         std::uint64_t seed, int stochastic_retries,
                         int lanes) {
  trace::TraceSpan span(trace::names::kDeployRun);
  DeployStats stats;
  stats.records.resize(targets.size());
  const eval::EvalStats eval_baseline = problem->eval_stats();
  if (targets.empty()) return stats;

  const int L = std::max(
      1, std::min(lanes, static_cast<int>(targets.size())));
  env::VectorSizingEnv venv(problem, env_config, L);
  std::vector<DeployLane> lane_state(static_cast<std::size_t>(L));
  std::vector<std::vector<double>> obs(static_cast<std::size_t>(L));

  std::size_t next_target = 0;
  // Hand the next queued target to lane i; false when the queue is dry
  // (the lane then stays halted and is skipped by every later tick).
  auto assign = [&](int i) {
    if (next_target >= targets.size()) {
      lane_state[static_cast<std::size_t>(i)].target_idx = -1;
      return false;
    }
    const std::size_t t = next_target++;
    lane_state[static_cast<std::size_t>(i)] =
        DeployLane{static_cast<int>(t), stochastic_retries, stochastic, {}};
    venv.set_target(i, targets[t]);
    // Per-target stream: a function of (seed, target index) only, so
    // deployment records do not depend on the lane count.
    venv.seed_lane(i, util::stream_seed(seed, t));
    stats.records[t].target = targets[t];
    return true;
  };

  std::vector<int> to_reset;
  for (int i = 0; i < L; ++i) {
    if (assign(i)) to_reset.push_back(i);
  }
  {
    auto fresh = venv.reset_lanes(to_reset);
    for (std::size_t k = 0; k < to_reset.size(); ++k) {
      obs[static_cast<std::size_t>(to_reset[k])] = std::move(fresh[k]);
    }
  }

  // Lockstep rollout: each tick batches the greedy lanes into one policy
  // forward, the sampled lanes into another, and every pending circuit
  // point into one evaluate_batch(). Finished lanes pull the next target
  // (or a sampled retry of the same one); their resets batch too.
  std::vector<std::vector<int>> actions(static_cast<std::size_t>(L));
  std::vector<int> greedy_lanes, sample_lanes;
  std::vector<double> greedy_rows, sample_rows;
  std::vector<util::Rng*> sample_rngs;
  const int num_params = venv.num_params();

  while (venv.running_count() > 0) {
    greedy_lanes.clear();
    sample_lanes.clear();
    greedy_rows.clear();
    sample_rows.clear();
    sample_rngs.clear();
    for (int i = 0; i < L; ++i) {
      if (!venv.lane_running(i)) continue;
      DeployLane& st = lane_state[static_cast<std::size_t>(i)];
      st.prev_params = venv.lane(i).params();
      const auto& o = obs[static_cast<std::size_t>(i)];
      if (st.sample) {
        sample_lanes.push_back(i);
        sample_rows.insert(sample_rows.end(), o.begin(), o.end());
        sample_rngs.push_back(&venv.lane_rng(i));
      } else {
        greedy_lanes.push_back(i);
        greedy_rows.insert(greedy_rows.end(), o.begin(), o.end());
      }
    }
    auto scatter = [&](const std::vector<int>& lanes_in,
                       const std::vector<int>& acts) {
      for (std::size_t k = 0; k < lanes_in.size(); ++k) {
        actions[static_cast<std::size_t>(lanes_in[k])].assign(
            acts.begin() + static_cast<std::size_t>(k) *
                               static_cast<std::size_t>(num_params),
            acts.begin() + static_cast<std::size_t>(k + 1) *
                               static_cast<std::size_t>(num_params));
      }
    };
    if (!greedy_lanes.empty()) {
      scatter(greedy_lanes,
              agent.act_greedy_batch(greedy_rows,
                                     static_cast<int>(greedy_lanes.size())));
    }
    if (!sample_lanes.empty()) {
      scatter(sample_lanes,
              agent.act_sample_batch(sample_rows,
                                     static_cast<int>(sample_lanes.size()),
                                     sample_rngs));
    }

    const auto results =
        venv.step_all(actions, [](int) { return false; });

    to_reset.clear();
    for (int i = 0; i < L; ++i) {
      const auto& ls = results[static_cast<std::size_t>(i)];
      if (!ls.stepped) continue;
      DeployLane& st = lane_state[static_cast<std::size_t>(i)];
      DeployRecord& record =
          stats.records[static_cast<std::size_t>(st.target_idx)];
      ++record.steps;

      bool episode_over = ls.done;
      if (!ls.done && !st.sample &&
          venv.lane(i).params() == st.prev_params) {
        // A greedy policy at an unchanged state is a fixed point: the
        // target will never be reached, so stop burning simulations.
        episode_over = true;
        venv.halt_lane(i);
      }
      if (!episode_over) {
        obs[static_cast<std::size_t>(i)] = ls.obs;
        continue;
      }

      if (!ls.goal_met && st.attempts_left > 0) {
        // Failed attempt with retries left: re-run the same target with a
        // sampled policy (the paper's RLlib rollouts sample by default).
        --st.attempts_left;
        st.sample = true;
        to_reset.push_back(i);
        continue;
      }
      record.reached = ls.goal_met;
      record.final_specs = venv.lane(i).cur_specs();
      record.final_params = venv.lane(i).params();
      if (assign(i)) to_reset.push_back(i);
    }
    if (!to_reset.empty()) {
      auto fresh = venv.reset_lanes(to_reset);
      for (std::size_t k = 0; k < to_reset.size(); ++k) {
        obs[static_cast<std::size_t>(to_reset[k])] = std::move(fresh[k]);
      }
    }
  }
  stats.eval_stats = problem->eval_stats().since(eval_baseline);
  return stats;
}

DeployStats deploy_agent(const rl::PpoAgent& agent,
                         std::shared_ptr<const circuits::SizingProblem> problem,
                         const spec::SpecSuite& suite,
                         const env::EnvConfig& env_config, bool stochastic,
                         std::uint64_t seed, int stochastic_retries,
                         int lanes) {
  return deploy_agent(agent, std::move(problem), suite.targets(), env_config,
                      stochastic, seed, stochastic_retries, lanes);
}

GeneralizationReport evaluate_generalization(
    const rl::PpoAgent& agent,
    std::shared_ptr<const circuits::SizingProblem> problem,
    const spec::SpecSuite& train_suite, const spec::SpecSuite& holdout_suite,
    const env::EnvConfig& env_config, std::uint64_t seed) {
  GeneralizationReport report;
  report.train_suite_name = train_suite.name();
  report.holdout_suite_name = holdout_suite.name();
  report.train =
      deploy_agent(agent, problem, train_suite, env_config, false, seed);
  // Distinct deployment stream per suite (records stay target-indexed and
  // deterministic either way; this just keeps the two rollouts decoupled).
  report.holdout = deploy_agent(agent, problem, holdout_suite, env_config,
                                false, seed + 1);
  return report;
}

TrajectoryTrace trace_trajectory(
    const rl::PpoAgent& agent,
    std::shared_ptr<const circuits::SizingProblem> problem,
    const SpecVector& target, const env::EnvConfig& env_config) {
  TrajectoryTrace trace;
  trace.target = target;
  env::SizingEnv sizing_env(problem, env_config);
  sizing_env.set_target(target);
  std::vector<double> obs = sizing_env.reset();
  trace.specs.push_back(sizing_env.cur_specs());
  trace.params.push_back(sizing_env.params());

  for (;;) {
    const auto prev_params = sizing_env.params();
    auto sr = sizing_env.step(agent.act_greedy(obs));
    obs = sr.obs;
    trace.specs.push_back(sizing_env.cur_specs());
    trace.params.push_back(sizing_env.params());
    if (sr.done) {
      trace.reached = sr.goal_met;
      break;
    }
    if (sizing_env.params() == prev_params) break;
  }
  return trace;
}

}  // namespace autockt::core
