#pragma once
// Shared experiment scaffolding for the bench binaries: GA baseline
// aggregation over many targets, the paper-cost sim-time model, and uniform
// paper-vs-measured reporting.

#include <string>
#include <vector>

#include "autockt/autockt.hpp"
#include "baselines/genetic.hpp"
#include "circuits/sizing_problem.hpp"

namespace autockt::core {

/// Aggregate GA performance over a set of targets, using the paper's
/// protocol of sweeping population sizes per target and keeping the best.
struct GaAggregate {
  int targets = 0;
  int reached = 0;
  double avg_evals_to_reach = 0.0;  // over reached targets
};
GaAggregate run_ga_over_targets(
    const circuits::SizingProblem& problem,
    const std::vector<circuits::SpecVector>& targets,
    const baselines::GaConfig& base, const std::vector<int>& population_sizes);

/// Random-walk agent aggregate (Tables II-III "Random RL Agent" row).
struct RandomAggregate {
  int targets = 0;
  int reached = 0;
};
RandomAggregate run_random_over_targets(
    std::shared_ptr<const circuits::SizingProblem> problem,
    const std::vector<circuits::SpecVector>& targets,
    const env::EnvConfig& env_config, std::uint64_t seed);

/// Sim-count -> wall-clock conversion using the per-simulation costs the
/// paper reports for its own infrastructure (25 ms schematic PTM, 2.4 s
/// Spectre, 91 s BAG PEX). Lets us compare "hours" claims without owning
/// the authors' testbed.
double paper_equivalent_hours(double simulations, double seconds_per_sim);

/// Uniform experiment banner.
void print_experiment_header(const std::string& id, const std::string& title,
                             const circuits::SizingProblem& problem);

/// Ratio formatted as "N.Nx" with n/a handling.
std::string speedup_string(double baseline, double ours);

}  // namespace autockt::core
