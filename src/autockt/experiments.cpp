#include "autockt/experiments.hpp"

#include <cmath>
#include <cstdio>

#include "baselines/random_agent.hpp"

namespace autockt::core {

GaAggregate run_ga_over_targets(
    const circuits::SizingProblem& problem,
    const std::vector<circuits::SpecVector>& targets,
    const baselines::GaConfig& base,
    const std::vector<int>& population_sizes) {
  // Paper protocol: "GA efficiency was determined by the best result
  // obtained when sweeping initial population sizes and several target
  // specifications" — i.e. the population size is tuned once, globally,
  // and the tuned configuration is then scored across the target set.
  GaAggregate best;
  bool first = true;
  for (std::size_t p = 0; p < population_sizes.size(); ++p) {
    GaAggregate agg;
    double evals = 0.0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      baselines::GaConfig config = base;
      config.population = population_sizes[p];
      config.seed = base.seed + 7919 * (i + 1) + 104729 * (p + 1);
      const baselines::GaResult r =
          baselines::run_ga(problem, targets[i], config);
      ++agg.targets;
      if (r.reached) {
        ++agg.reached;
        evals += static_cast<double>(r.evals_to_reach);
      }
    }
    agg.avg_evals_to_reach = agg.reached == 0 ? 0.0 : evals / agg.reached;
    const bool better =
        agg.reached > best.reached ||
        (agg.reached == best.reached &&
         agg.avg_evals_to_reach < best.avg_evals_to_reach);
    if (first || better) {
      best = agg;
      first = false;
    }
  }
  return best;
}

RandomAggregate run_random_over_targets(
    std::shared_ptr<const circuits::SizingProblem> problem,
    const std::vector<circuits::SpecVector>& targets,
    const env::EnvConfig& env_config, std::uint64_t seed) {
  RandomAggregate agg;
  util::Rng rng(seed);
  env::SizingEnv sizing_env(problem, env_config);
  for (const auto& target : targets) {
    sizing_env.set_target(target);
    const auto r = baselines::run_random_episode(sizing_env, rng);
    ++agg.targets;
    agg.reached += r.reached ? 1 : 0;
  }
  return agg;
}

GaAggregate run_ga_over_suite(const circuits::SizingProblem& problem,
                              const spec::SpecSuite& suite,
                              const baselines::GaConfig& base,
                              const std::vector<int>& population_sizes) {
  return run_ga_over_targets(problem, suite.targets(), base,
                             population_sizes);
}

RandomAggregate run_random_over_suite(
    std::shared_ptr<const circuits::SizingProblem> problem,
    const spec::SpecSuite& suite, const env::EnvConfig& env_config,
    std::uint64_t seed) {
  return run_random_over_targets(std::move(problem), suite.targets(),
                                 env_config, seed);
}

spec::SpecSuite make_deploy_suite(const circuits::SizingProblem& problem,
                                  std::size_t count,
                                  std::uint64_t suite_seed) {
  const spec::SpecSpace space(problem);
  spec::UniformSampler sampler(space);
  return spec::SpecSuite::generate(space, sampler, count, suite_seed,
                                   problem.name + "/deploy");
}

double paper_equivalent_hours(double simulations, double seconds_per_sim) {
  return simulations * seconds_per_sim / 3600.0;
}

void print_experiment_header(const std::string& id, const std::string& title,
                             const circuits::SizingProblem& problem) {
  std::printf(
      "==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("problem: %s (%zu params, 10^%.1f combinations, %zu specs)\n",
              problem.name.c_str(), problem.params.size(),
              problem.action_space_log10(), problem.specs.size());
  std::printf(
      "==============================================================\n");
}

std::string speedup_string(double baseline, double ours) {
  if (baseline <= 0.0 || ours <= 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", baseline / ours);
  return buf;
}

}  // namespace autockt::core
