#pragma once
// AutoCkt top-level API (the paper's contribution): train a PPO sizing agent
// over a sparse subsample of target specifications, then deploy the frozen
// agent on unseen targets — possibly in a *different* (e.g. post-layout)
// simulation environment, which is the paper's transfer-learning flow.

#include <cstdint>
#include <memory>
#include <vector>

#include "circuits/registry.hpp"
#include "circuits/sizing_problem.hpp"
#include "env/sizing_env.hpp"
#include "env/vector_env.hpp"
#include "eval/stats.hpp"
#include "rl/ppo.hpp"
#include "spec/spec_suite.hpp"
#include "spec/target_sampler.hpp"

namespace autockt::core {

struct AutoCktConfig {
  rl::PpoConfig ppo;
  env::EnvConfig env_config;
  /// Paper: "50 target specifications are randomly sampled" for training.
  std::size_t train_target_count = 50;
  std::uint64_t seed = 7;

  // ---- spec-scenario protocol ---------------------------------------------
  /// How episode targets are drawn during training:
  ///  * FixedSuite — the paper's protocol: sample train_target_count
  ///    targets once (from `seed`), then pick uniformly per episode.
  ///  * Curriculum — frontier-biased region sampling over the whole spec
  ///    space (spec::CurriculumSampler); train_targets stays empty.
  enum class Sampling { FixedSuite, Curriculum };
  Sampling sampling = Sampling::FixedSuite;
  spec::CurriculumConfig curriculum;  // used when sampling == Curriculum

  /// Held-out generalization suite: stratified over the spec space from
  /// `suite_seed` ALONE (never the training seed), frozen before training,
  /// never trained on, probed every holdout_interval iterations. 0 targets
  /// disables the probe.
  std::size_t holdout_target_count = 20;
  std::uint64_t suite_seed = 0xa11ce;
  int holdout_interval = 5;
};

struct TrainOutcome {
  rl::PpoAgent agent;
  rl::TrainHistory history;
  std::vector<circuits::SpecVector> train_targets;
  /// The training targets as a named, serializable suite (empty target
  /// list under curriculum sampling — targets are drawn fresh per episode).
  spec::SpecSuite train_suite;
  /// The frozen holdout suite the agent never saw (empty when disabled).
  spec::SpecSuite holdout_suite;
};

/// Train an agent on the given problem (paper Fig. 3, training half).
TrainOutcome train_agent(
    std::shared_ptr<const circuits::SizingProblem> problem,
    const AutoCktConfig& config,
    const std::function<void(const rl::IterationStats&)>& on_iteration = {});

/// Registry-driven form: resolve `scenario` — a registered circuit name or
/// a path to a .cir deck — through the registry, build its backend stack
/// from `problem_options`, and train. The resolved problem is returned in
/// the outcome so deployment/generalization run against the same backend
/// (and cache) the trainer used.
struct ScenarioTrainOutcome {
  std::shared_ptr<const circuits::SizingProblem> problem;
  TrainOutcome outcome;
};
util::Expected<ScenarioTrainOutcome> train_agent(
    const circuits::CircuitRegistry& registry, const std::string& scenario,
    const circuits::ProblemOptions& problem_options,
    const AutoCktConfig& config,
    const std::function<void(const rl::IterationStats&)>& on_iteration = {});

struct DeployRecord {
  circuits::SpecVector target;
  circuits::SpecVector final_specs;
  int steps = 0;        // simulation steps consumed (paper's SE metric)
  bool reached = false;
  circuits::ParamVector final_params;
};

struct DeployStats {
  std::vector<DeployRecord> records;
  /// Evaluation-backend activity during this deployment (delta over the
  /// deploy call): real simulations vs cache hits, batch shapes, sim wall
  /// time. A repeated deployment on the same targets is mostly cache hits.
  eval::EvalStats eval_stats;

  int total() const { return static_cast<int>(records.size()); }
  int reached_count() const;
  /// Fraction of targets reached; 0 when no targets were deployed.
  double reach_fraction() const;
  /// Mean steps over reached targets — the paper's sample efficiency.
  /// 0 when no target was reached (there is no meaningful mean).
  double avg_steps_reached() const;
  long total_sim_steps() const;
};

/// Deploy the frozen agent on a list of targets (paper Fig. 3, deployment
/// half). The environment may wrap a different evaluation backend than the
/// one trained on (transfer learning to PEX, Fig. 13). With `stochastic`
/// false the first attempt is greedy (stopping early at policy fixed
/// points); if it fails, up to `stochastic_retries` sampled-policy episodes
/// follow — the paper's RLlib rollouts sample by default. ALL simulation
/// steps across attempts are charged to the target's step count, so sample
/// efficiency stays honestly accounted.
///
/// Targets roll out through a VectorSizingEnv of up to `lanes` lockstep
/// lanes: one batched policy forward and one evaluate_batch() per tick,
/// with finished lanes refilled from the target queue. Per-target RNG
/// streams are derived from (seed, target index) only, so records are
/// identical for any lane count — lanes change wall-clock, never results.
DeployStats deploy_agent(const rl::PpoAgent& agent,
                         std::shared_ptr<const circuits::SizingProblem> problem,
                         const std::vector<circuits::SpecVector>& targets,
                         const env::EnvConfig& env_config,
                         bool stochastic = false, std::uint64_t seed = 99,
                         int stochastic_retries = 1, int lanes = 16);

/// Suite form of deploy_agent (identical semantics, suite.targets() order).
DeployStats deploy_agent(const rl::PpoAgent& agent,
                         std::shared_ptr<const circuits::SizingProblem> problem,
                         const spec::SpecSuite& suite,
                         const env::EnvConfig& env_config,
                         bool stochastic = false, std::uint64_t seed = 99,
                         int stochastic_retries = 1, int lanes = 16);

/// Train-vs-holdout generalization scorecard: deploy the frozen agent on
/// both suites under identical settings and report the two goal-met rates
/// side by side (paper Figs. 8/12 are exactly this comparison).
struct GeneralizationReport {
  DeployStats train;
  DeployStats holdout;
  std::string train_suite_name;
  std::string holdout_suite_name;
  double train_goal_rate() const { return train.reach_fraction(); }
  double holdout_goal_rate() const { return holdout.reach_fraction(); }
  /// Train minus holdout reach — the generalization gap (>= 0 typically).
  double gap() const { return train_goal_rate() - holdout_goal_rate(); }
};
GeneralizationReport evaluate_generalization(
    const rl::PpoAgent& agent,
    std::shared_ptr<const circuits::SizingProblem> problem,
    const spec::SpecSuite& train_suite, const spec::SpecSuite& holdout_suite,
    const env::EnvConfig& env_config, std::uint64_t seed = 99);

/// Single-trajectory trace for Fig. 14-style plots.
struct TrajectoryTrace {
  std::vector<circuits::SpecVector> specs;   // per step (incl. start)
  std::vector<circuits::ParamVector> params;
  circuits::SpecVector target;
  bool reached = false;
};
TrajectoryTrace trace_trajectory(
    const rl::PpoAgent& agent,
    std::shared_ptr<const circuits::SizingProblem> problem,
    const circuits::SpecVector& target, const env::EnvConfig& env_config);

}  // namespace autockt::core
