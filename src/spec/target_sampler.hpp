#pragma once
// Target samplers: pluggable strategies for drawing training/deployment
// target specifications from a SpecSpace.
//
// The paper samples targets uniformly; related work shows the sampling
// strategy itself matters — Cao et al. (2202.13185) order targets by
// difficulty, Wang et al. (1812.02734) re-sample per episode to force
// robustness. This interface makes the strategy a first-class, swappable
// component:
//
//  * UniformSampler     — independent uniform per axis; bitwise-compatible
//    with the historical env::sample_target() stream for a fixed seed.
//  * StratifiedSampler  — Latin-hypercube-style coverage: every cycle of
//    `strata` consecutive samples visits every stratum of every axis exactly
//    once, so N = strata draws provably cover all spec axes. Stateful
//    (cycle cursor + per-axis permutations): drive it sequentially — it is
//    the suite *generator*, not a concurrent training sampler.
//  * CurriculumSampler  — maintains a success-rate EMA per SpecSpace region
//    (fed by record_outcome) and biases sampling toward the frontier:
//    regions that are neither reliably solved nor hopeless. Sampling reads
//    a frozen weight table, so concurrent sample() calls are safe as long
//    as record_outcome() is not concurrent with them (the PPO trainer
//    replays buffered outcomes between iterations, in deterministic lane
//    order — see rl/ppo.cpp).
//  * SuiteSampler       — uniform over a fixed target list (the paper's "50
//    sampled target specifications" training protocol).
//
// Determinism contract (asserted in tests/test_spec.cpp): sample() consumes
// only the caller's Rng, and record_outcome() is a deterministic state
// update, so any sampler driven by a fixed-seed Rng with a fixed outcome
// sequence reproduces its target stream bitwise.

#include <memory>
#include <string>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "spec/spec_space.hpp"
#include "util/rng.hpp"

namespace autockt::spec {

class TargetSampler {
 public:
  virtual ~TargetSampler() = default;

  /// Draw one target using the caller's RNG stream.
  virtual circuits::SpecVector sample(util::Rng& rng) = 0;

  /// Episode feedback: `target` was attempted, the goal was (not) met.
  /// Default no-op; CurriculumSampler updates its region statistics. Never
  /// call concurrently with sample() (see header comment).
  virtual void record_outcome(const circuits::SpecVector& target,
                              bool goal_met);

  /// True when concurrent sample() calls (no concurrent record_outcome)
  /// are safe AND produce per-stream-deterministic draws — required for
  /// multi-worker PPO collection. Stateful generators return false.
  virtual bool concurrent_sampling_safe() const { return true; }

  virtual std::string name() const = 0;
};

/// Independent uniform draw per spec axis. For a fixed seed this reproduces
/// the historical env::sample_target() stream bitwise (one rng.uniform(lo,
/// hi) per spec, in spec order).
class UniformSampler : public TargetSampler {
 public:
  explicit UniformSampler(SpecSpace space);
  circuits::SpecVector sample(util::Rng& rng) override;
  std::string name() const override { return "uniform"; }
  const SpecSpace& space() const { return space_; }

 private:
  SpecSpace space_;
};

/// Latin-hypercube-style stratified sampling: each axis is split into
/// `strata` equal sub-intervals; every cycle of `strata` consecutive draws
/// visits each sub-interval of each axis exactly once (independent random
/// permutation per axis per cycle, jittered uniformly within the stratum).
/// Degenerate axes (lo == hi) always return their pinned value.
class StratifiedSampler : public TargetSampler {
 public:
  StratifiedSampler(SpecSpace space, int strata);
  circuits::SpecVector sample(util::Rng& rng) override;
  bool concurrent_sampling_safe() const override { return false; }
  std::string name() const override { return "stratified"; }
  int strata() const { return strata_; }

 private:
  SpecSpace space_;
  int strata_;
  int cursor_;                                // position within the cycle
  std::vector<std::vector<int>> perms_;       // per-axis stratum order
};

struct CurriculumConfig {
  int bins_per_axis = 3;    // SpecSpace region granularity
  double ema_decay = 0.9;   // success-rate EMA per region
  /// Sampling weight floor: every region keeps at least this weight so no
  /// cell is starved (coverage never collapses onto the frontier alone).
  double min_weight = 0.1;
  /// Regions with no recorded outcome yet use this prior success rate
  /// (0.5 = maximal frontier weight, encouraging initial coverage).
  double prior_success = 0.5;
};

/// Frontier-biased curriculum: per-region success EMAs (from episode
/// outcomes) shape a categorical distribution over regions with weight
///   w_r = min_weight + 4 * ema_r * (1 - ema_r),
/// peaking where the agent succeeds about half the time — the learning
/// frontier — and decaying for both mastered and hopeless regions. A draw
/// picks a region from the frozen weights, then samples uniformly inside
/// its cell. Both steps consume only the caller's Rng, so the decision
/// stream replays deterministically for a fixed seed and outcome sequence.
class CurriculumSampler : public TargetSampler {
 public:
  explicit CurriculumSampler(SpecSpace space, CurriculumConfig config = {});
  circuits::SpecVector sample(util::Rng& rng) override;
  void record_outcome(const circuits::SpecVector& target,
                      bool goal_met) override;
  std::string name() const override { return "curriculum"; }

  int num_regions() const { return static_cast<int>(ema_.size()); }
  /// Success-rate EMA for one region (prior_success until first outcome).
  double region_success(int region) const;
  /// Current sampling weight of one region.
  double region_weight(int region) const;
  long outcomes_recorded() const { return outcomes_; }
  const SpecSpace& space() const { return space_; }
  const CurriculumConfig& config() const { return config_; }

 private:
  SpecSpace space_;
  CurriculumConfig config_;
  std::vector<double> ema_;        // per-region success EMA
  std::vector<char> seen_;         // region has at least one outcome
  long outcomes_ = 0;
};

/// Uniform choice from a fixed target list — the paper's training protocol
/// (sample 50 targets once, then pick uniformly per episode). For a fixed
/// seed the index stream is rng.bounded(size()), matching the historical
/// inline lambda in rl/ppo.cpp bitwise.
class SuiteSampler : public TargetSampler {
 public:
  explicit SuiteSampler(std::vector<circuits::SpecVector> targets);
  circuits::SpecVector sample(util::Rng& rng) override;
  std::string name() const override { return "suite"; }
  std::size_t size() const { return targets_.size(); }

 private:
  std::vector<circuits::SpecVector> targets_;
};

}  // namespace autockt::spec
