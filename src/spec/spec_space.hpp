#pragma once
// SpecSpace: the target-specification space as a first-class object.
//
// AutoCkt's central claim is generalization over *specifications*: the agent
// trains on a sparse subsample of the spec space and is then deployed on
// unseen targets (paper Figs. 8/12, Tables II-IV). This class owns the
// per-spec sampling ranges that used to live implicitly inside SpecDef
// consumers, validates them once at construction, and gives the sampling
// layer (spec/target_sampler.hpp) and the suite layer (spec/spec_suite.hpp)
// a shared geometric vocabulary:
//
//  * axis bounds  — the [sample_lo, sample_hi] interval per spec,
//  * the midpoint — the canonical "default target" (SizingEnv starts here),
//  * membership   — is a target inside the sampled box,
//  * regions      — a uniform bins-per-axis partition of the box into named
//    cells, used by CurriculumSampler to track per-region success rates and
//    by coverage accounting. Axes with a degenerate range (lo == hi, e.g.
//    the PEX phase-margin pin) collapse to a single bin.

#include <cstddef>
#include <string>
#include <vector>

#include "circuits/sizing_problem.hpp"

namespace autockt::spec {

class SpecSpace {
 public:
  /// Validates every SpecDef (rejects sample_hi < sample_lo, non-positive
  /// norm_const, NaN bounds) with an error naming the offending spec.
  explicit SpecSpace(std::vector<circuits::SpecDef> specs);
  explicit SpecSpace(const circuits::SizingProblem& problem)
      : SpecSpace(problem.specs) {}

  std::size_t size() const { return specs_.size(); }
  const circuits::SpecDef& def(std::size_t i) const { return specs_[i]; }
  const std::vector<circuits::SpecDef>& defs() const { return specs_; }
  std::vector<std::string> names() const;

  double lo(std::size_t i) const { return specs_[i].sample_lo; }
  double hi(std::size_t i) const { return specs_[i].sample_hi; }
  double width(std::size_t i) const {
    return specs_[i].sample_hi - specs_[i].sample_lo;
  }

  /// Midpoint of every sampling range — the canonical default target
  /// (SizingEnv uses this until a sampler or set_target overrides it).
  circuits::SpecVector midpoint() const;

  /// Every component within its sampling range (closed box).
  bool contains(const circuits::SpecVector& target) const;

  // ---- regions -------------------------------------------------------------
  // A region is one cell of the uniform bins-per-axis grid over the box.
  // Degenerate axes contribute one bin, so region counts stay meaningful
  // when some specs are pinned (PEX fixes phase margin at 60).

  /// Bins on axis i for a nominal per-axis bin count (1 when degenerate).
  int axis_bins(std::size_t i, int bins_per_axis) const;

  /// Total region count: product of axis_bins over all axes.
  int num_regions(int bins_per_axis) const;

  /// Flat region index (mixed-radix over axes) of a target. Out-of-range
  /// components clamp to the nearest bin, so slightly-outside targets
  /// (e.g. hand-written ones) still map to a region.
  int region_of(const circuits::SpecVector& target, int bins_per_axis) const;

  /// Human-readable region label, e.g. "gain_vv[1/3] ugbw_hz[0/3]".
  std::string region_name(int region, int bins_per_axis) const;

  /// Bounds of `region` on axis i as a [lo, hi) sub-interval of the axis.
  std::pair<double, double> region_axis_bounds(int region, std::size_t i,
                                               int bins_per_axis) const;

 private:
  std::vector<circuits::SpecDef> specs_;
};

}  // namespace autockt::spec
