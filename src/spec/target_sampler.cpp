#include "spec/target_sampler.hpp"

#include <stdexcept>
#include <utility>

namespace autockt::spec {

void TargetSampler::record_outcome(const circuits::SpecVector& /*target*/,
                                   bool /*goal_met*/) {}

// ---- UniformSampler ---------------------------------------------------------

UniformSampler::UniformSampler(SpecSpace space) : space_(std::move(space)) {}

circuits::SpecVector UniformSampler::sample(util::Rng& rng) {
  circuits::SpecVector target;
  target.reserve(space_.size());
  for (std::size_t i = 0; i < space_.size(); ++i) {
    target.push_back(rng.uniform(space_.lo(i), space_.hi(i)));
  }
  return target;
}

// ---- StratifiedSampler ------------------------------------------------------

StratifiedSampler::StratifiedSampler(SpecSpace space, int strata)
    : space_(std::move(space)), strata_(strata), cursor_(strata) {
  if (strata_ < 1) {
    throw std::invalid_argument("StratifiedSampler: strata must be >= 1");
  }
  perms_.assign(space_.size(), std::vector<int>(strata_, 0));
}

circuits::SpecVector StratifiedSampler::sample(util::Rng& rng) {
  if (cursor_ >= strata_) {
    // New cycle: an independent Fisher-Yates permutation of the strata per
    // axis, drawn from the caller's stream (so the whole schedule replays
    // deterministically for a fixed seed).
    for (auto& perm : perms_) {
      for (int s = 0; s < strata_; ++s) perm[static_cast<std::size_t>(s)] = s;
      for (std::size_t i = perm.size(); i-- > 1;) {
        std::swap(perm[i], perm[rng.bounded(i + 1)]);
      }
    }
    cursor_ = 0;
  }
  circuits::SpecVector target;
  target.reserve(space_.size());
  for (std::size_t i = 0; i < space_.size(); ++i) {
    const double w = space_.width(i);
    if (w <= 0.0) {
      target.push_back(space_.lo(i));
      continue;
    }
    const int stratum = perms_[i][static_cast<std::size_t>(cursor_)];
    const double step = w / static_cast<double>(strata_);
    target.push_back(space_.lo(i) + (stratum + rng.uniform()) * step);
  }
  ++cursor_;
  return target;
}

// ---- CurriculumSampler ------------------------------------------------------

CurriculumSampler::CurriculumSampler(SpecSpace space, CurriculumConfig config)
    : space_(std::move(space)), config_(config) {
  if (config_.bins_per_axis < 1) {
    throw std::invalid_argument(
        "CurriculumSampler: bins_per_axis must be >= 1");
  }
  if (config_.ema_decay <= 0.0 || config_.ema_decay >= 1.0) {
    throw std::invalid_argument(
        "CurriculumSampler: ema_decay must be in (0, 1)");
  }
  const int n = space_.num_regions(config_.bins_per_axis);
  ema_.assign(static_cast<std::size_t>(n), config_.prior_success);
  seen_.assign(static_cast<std::size_t>(n), 0);
}

double CurriculumSampler::region_success(int region) const {
  return ema_.at(static_cast<std::size_t>(region));
}

double CurriculumSampler::region_weight(int region) const {
  const double p = ema_.at(static_cast<std::size_t>(region));
  return config_.min_weight + 4.0 * p * (1.0 - p);
}

circuits::SpecVector CurriculumSampler::sample(util::Rng& rng) {
  // Categorical draw over region weights (frozen during sampling).
  double total = 0.0;
  for (int r = 0; r < num_regions(); ++r) total += region_weight(r);
  double u = rng.uniform() * total;
  int region = num_regions() - 1;
  for (int r = 0; r < num_regions(); ++r) {
    u -= region_weight(r);
    if (u < 0.0) {
      region = r;
      break;
    }
  }
  // Uniform within the region's cell.
  circuits::SpecVector target;
  target.reserve(space_.size());
  for (std::size_t i = 0; i < space_.size(); ++i) {
    const auto [lo, hi] =
        space_.region_axis_bounds(region, i, config_.bins_per_axis);
    target.push_back(hi > lo ? rng.uniform(lo, hi) : lo);
  }
  return target;
}

void CurriculumSampler::record_outcome(const circuits::SpecVector& target,
                                       bool goal_met) {
  const std::size_t r = static_cast<std::size_t>(
      space_.region_of(target, config_.bins_per_axis));
  const double x = goal_met ? 1.0 : 0.0;
  if (!seen_[r]) {
    // First outcome replaces the prior instead of averaging against it, so
    // a region's EMA reflects data as soon as data exists.
    ema_[r] = x;
    seen_[r] = 1;
  } else {
    ema_[r] = config_.ema_decay * ema_[r] + (1.0 - config_.ema_decay) * x;
  }
  ++outcomes_;
}

// ---- SuiteSampler -----------------------------------------------------------

SuiteSampler::SuiteSampler(std::vector<circuits::SpecVector> targets)
    : targets_(std::move(targets)) {
  if (targets_.empty()) {
    throw std::invalid_argument("SuiteSampler: no targets");
  }
}

circuits::SpecVector SuiteSampler::sample(util::Rng& rng) {
  return targets_[rng.bounded(targets_.size())];
}

}  // namespace autockt::spec
