#include "spec/spec_suite.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace autockt::spec {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

SpecSuite::SpecSuite(std::string name, std::vector<std::string> spec_names,
                     std::vector<circuits::SpecVector> targets)
    : name_(std::move(name)),
      spec_names_(std::move(spec_names)),
      targets_(std::move(targets)) {
  for (const auto& t : targets_) {
    if (t.size() != spec_names_.size()) {
      throw std::invalid_argument("SpecSuite '" + name_ +
                                  "': target arity mismatch");
    }
  }
}

SpecSuite SpecSuite::generate(const SpecSpace& space, TargetSampler& sampler,
                              std::size_t count, std::uint64_t suite_seed,
                              std::string name) {
  util::Rng rng(suite_seed);
  std::vector<circuits::SpecVector> targets;
  targets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) targets.push_back(sampler.sample(rng));
  return SpecSuite(std::move(name), space.names(), std::move(targets));
}

SuiteSplit SpecSuite::split(double holdout_fraction,
                                  std::uint64_t split_seed) const {
  if (holdout_fraction < 0.0 || holdout_fraction > 1.0) {
    throw std::invalid_argument("SpecSuite::split: fraction out of [0, 1]");
  }
  const std::size_t n = targets_.size();
  const std::size_t holdout_count = static_cast<std::size_t>(
      std::lround(holdout_fraction * static_cast<double>(n)));

  // Shuffle indices with the split seed, mark the first holdout_count as
  // held out, then emit both halves in original order (stable split).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  util::Rng rng(split_seed);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(order[i], order[rng.bounded(i + 1)]);
  }
  std::vector<char> held(n, 0);
  for (std::size_t k = 0; k < holdout_count; ++k) held[order[k]] = 1;

  std::vector<circuits::SpecVector> train, holdout;
  train.reserve(n - holdout_count);
  holdout.reserve(holdout_count);
  for (std::size_t i = 0; i < n; ++i) {
    (held[i] ? holdout : train).push_back(targets_[i]);
  }
  return SuiteSplit{SpecSuite(name_ + "/train", spec_names_, std::move(train)),
               SpecSuite(name_ + "/holdout", spec_names_,
                         std::move(holdout))};
}

SpecSuite SpecSuite::head(std::size_t n) const {
  if (n >= targets_.size()) return *this;
  return SpecSuite(
      name_ + "[0:" + std::to_string(n) + ")", spec_names_,
      std::vector<circuits::SpecVector>(targets_.begin(),
                                        targets_.begin() +
                                            static_cast<std::ptrdiff_t>(n)));
}

std::string SpecSuite::to_csv() const {
  std::string out = "# spec_suite,name=" + name_ + "\n";
  for (std::size_t i = 0; i < spec_names_.size(); ++i) {
    if (i > 0) out += ',';
    out += spec_names_[i];
  }
  out += '\n';
  for (const auto& t : targets_) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ',';
      out += util::format_g17(t[i]);
    }
    out += '\n';
  }
  return out;
}

util::Expected<SpecSuite> SpecSuite::from_csv(const std::string& csv) {
  std::stringstream ss(csv);
  std::string line;
  std::string name = "unnamed";
  std::vector<std::string> spec_names;
  std::vector<circuits::SpecVector> targets;
  bool have_header = false;

  while (std::getline(ss, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string key = "name=";
      const auto pos = line.find(key);
      if (pos != std::string::npos) name = line.substr(pos + key.size());
      continue;
    }
    if (!have_header) {
      spec_names = split_csv_line(line);
      if (spec_names.empty()) {
        return util::Error{"SpecSuite: empty header row"};
      }
      have_header = true;
      continue;
    }
    const auto cells = split_csv_line(line);
    if (cells.size() != spec_names.size()) {
      return util::Error{"SpecSuite '" + name + "': row with " +
                         std::to_string(cells.size()) + " cells, expected " +
                         std::to_string(spec_names.size())};
    }
    circuits::SpecVector t;
    t.reserve(cells.size());
    for (const std::string& cell : cells) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return util::Error{"SpecSuite '" + name + "': bad number '" + cell +
                           "'"};
      }
      t.push_back(v);
    }
    targets.push_back(std::move(t));
  }
  if (!have_header) {
    return util::Error{"SpecSuite: no header row"};
  }
  return SpecSuite(std::move(name), std::move(spec_names),
                   std::move(targets));
}

bool SpecSuite::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

util::Expected<SpecSuite> SpecSuite::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Error{"SpecSuite: cannot open '" + path + "'"};
  std::stringstream ss;
  ss << in.rdbuf();
  return from_csv(ss.str());
}

SuiteSplit make_train_holdout_suites(const SpecSpace& space,
                                           std::size_t train_count,
                                           std::size_t holdout_count,
                                           std::uint64_t suite_seed,
                                           const std::string& name_prefix) {
  const std::size_t total = train_count + holdout_count;
  if (total == 0) {
    throw std::invalid_argument("make_train_holdout_suites: empty suite");
  }
  // One stratification cycle spans the whole suite, so together the train
  // and holdout targets visit every stratum of every axis exactly once.
  StratifiedSampler sampler(space, static_cast<int>(total));
  SpecSuite all = SpecSuite::generate(space, sampler, total, suite_seed,
                                      name_prefix);
  const double fraction =
      static_cast<double>(holdout_count) / static_cast<double>(total);
  // Derive the split stream from the suite seed so the whole protocol hangs
  // off one number.
  return all.split(fraction, util::stream_seed(suite_seed, 1));
}

}  // namespace autockt::spec
