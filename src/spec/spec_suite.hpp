#pragma once
// SpecSuite: a named, serializable set of target specifications.
//
// The paper's experiments all revolve around fixed target sets ("50
// randomly sampled target specifications" for training, "1000 unseen
// targets" for generalization). A SpecSuite makes such a set a value: it
// can be generated from a SpecSpace through any TargetSampler, split
// deterministically into train/holdout halves, written to / read from CSV
// (so RL, GA and GA+ML runs — possibly in different processes — score
// against byte-identical targets), and handed to the trainer, deploy_agent
// and the baseline harnesses.
//
// Determinism contract: generation and splitting consume only the suite
// seed, never the training seed, so the holdout set an agent is scored on
// is invariant under everything about how the agent was trained.
//
// CSV format (docs/DESIGN.md section 8):
//   # spec_suite,name=<suite name>
//   <spec name>,<spec name>,...
//   <value>,<value>,...            (one row per target, %.17g round-trip)

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "spec/spec_space.hpp"
#include "spec/target_sampler.hpp"
#include "util/expected.hpp"

namespace autockt::spec {

class SpecSuite;

/// A disjoint train/holdout pair cut from one generated suite.
struct SuiteSplit;

class SpecSuite {
 public:
  SpecSuite() = default;
  /// Throws when any target's arity disagrees with spec_names.
  SpecSuite(std::string name, std::vector<std::string> spec_names,
            std::vector<circuits::SpecVector> targets);

  /// Draw `count` targets from `sampler` using a stream derived from
  /// `suite_seed` only.
  static SpecSuite generate(const SpecSpace& space, TargetSampler& sampler,
                            std::size_t count, std::uint64_t suite_seed,
                            std::string name);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& spec_names() const { return spec_names_; }
  const std::vector<circuits::SpecVector>& targets() const {
    return targets_;
  }
  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }
  const circuits::SpecVector& operator[](std::size_t i) const {
    return targets_[i];
  }

  /// Deterministic disjoint split: a Fisher-Yates shuffle seeded by
  /// `split_seed` picks round(holdout_fraction * size) holdout targets; both
  /// halves keep their original relative order. Depends only on
  /// (split_seed, holdout_fraction, size) — never on a training seed.
  SuiteSplit split(double holdout_fraction, std::uint64_t split_seed) const;

  /// The first min(n, size()) targets as a sub-suite — lets an expensive
  /// baseline (GA at thousands of sims per target) score on a prefix of
  /// the exact suite a cheap method covered in full.
  SpecSuite head(std::size_t n) const;

  // ---- CSV -----------------------------------------------------------------
  std::string to_csv() const;
  static util::Expected<SpecSuite> from_csv(const std::string& csv);
  bool save(const std::string& path) const;
  static util::Expected<SpecSuite> load(const std::string& path);

  bool operator==(const SpecSuite& other) const {
    return name_ == other.name_ && spec_names_ == other.spec_names_ &&
           targets_ == other.targets_;
  }

 private:
  std::string name_;
  std::vector<std::string> spec_names_;
  std::vector<circuits::SpecVector> targets_;
};

struct SuiteSplit {
  SpecSuite train;
  SpecSuite holdout;
};

/// One-call train/holdout protocol: generate (train_count + holdout_count)
/// targets by Latin-hypercube stratification over `space` (strata = total
/// count, so the combined suite provably covers every axis), then split off
/// the holdout. Everything derives from `suite_seed` alone.
SuiteSplit make_train_holdout_suites(const SpecSpace& space,
                                           std::size_t train_count,
                                           std::size_t holdout_count,
                                           std::uint64_t suite_seed,
                                           const std::string& name_prefix);

}  // namespace autockt::spec
