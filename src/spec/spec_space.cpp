#include "spec/spec_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autockt::spec {

SpecSpace::SpecSpace(std::vector<circuits::SpecDef> specs)
    : specs_(std::move(specs)) {
  if (specs_.empty()) {
    throw std::invalid_argument("SpecSpace: no specs");
  }
  for (const circuits::SpecDef& s : specs_) s.validate();
}

std::vector<std::string> SpecSpace::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.name);
  return out;
}

circuits::SpecVector SpecSpace::midpoint() const {
  circuits::SpecVector out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) {
    out.push_back(0.5 * (s.sample_lo + s.sample_hi));
  }
  return out;
}

bool SpecSpace::contains(const circuits::SpecVector& target) const {
  if (target.size() != specs_.size()) return false;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (target[i] < specs_[i].sample_lo || target[i] > specs_[i].sample_hi) {
      return false;
    }
  }
  return true;
}

int SpecSpace::axis_bins(std::size_t i, int bins_per_axis) const {
  if (bins_per_axis < 1) {
    throw std::invalid_argument("SpecSpace: bins_per_axis must be >= 1");
  }
  return width(i) > 0.0 ? bins_per_axis : 1;
}

int SpecSpace::num_regions(int bins_per_axis) const {
  int n = 1;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    n *= axis_bins(i, bins_per_axis);
  }
  return n;
}

int SpecSpace::region_of(const circuits::SpecVector& target,
                         int bins_per_axis) const {
  if (target.size() != specs_.size()) {
    throw std::invalid_argument("SpecSpace::region_of: target size mismatch");
  }
  int region = 0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const int bins = axis_bins(i, bins_per_axis);
    int bin = 0;
    if (bins > 1) {
      const double frac = (target[i] - lo(i)) / width(i);
      bin = std::clamp(static_cast<int>(frac * bins), 0, bins - 1);
    }
    region = region * bins + bin;
  }
  return region;
}

std::string SpecSpace::region_name(int region, int bins_per_axis) const {
  // Decode the mixed-radix index back into per-axis bins (last axis is the
  // least-significant digit, matching region_of).
  std::vector<int> bin(specs_.size(), 0);
  int rest = region;
  for (std::size_t i = specs_.size(); i-- > 0;) {
    const int bins = axis_bins(i, bins_per_axis);
    bin[i] = rest % bins;
    rest /= bins;
  }
  std::string out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) out += ' ';
    out += specs_[i].name + "[" + std::to_string(bin[i]) + "/" +
           std::to_string(axis_bins(i, bins_per_axis)) + "]";
  }
  return out;
}

std::pair<double, double> SpecSpace::region_axis_bounds(
    int region, std::size_t i, int bins_per_axis) const {
  int rest = region;
  int my_bin = 0;
  for (std::size_t a = specs_.size(); a-- > 0;) {
    const int bins = axis_bins(a, bins_per_axis);
    if (a == i) my_bin = rest % bins;
    rest /= bins;
  }
  const int bins = axis_bins(i, bins_per_axis);
  const double step = width(i) / static_cast<double>(bins);
  return {lo(i) + my_bin * step, lo(i) + (my_bin + 1) * step};
}

}  // namespace autockt::spec
