#pragma once
// A small persistent worker pool for the evaluation layer. Two properties
// matter here and drove the design:
//
//  * The calling thread participates: parallel_for never parks the caller
//    while work remains, so a pool of size 1 (or an exhausted pool) still
//    makes progress.
//  * Nesting is safe: a body that itself calls parallel_for (a batched PEX
//    evaluation fanning out corners per point) runs the inner loop inline
//    on the worker instead of deadlocking on the queue.
//
// Bodies must not throw — backend adapters convert simulator exceptions to
// Error results before they reach the pool.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace autockt::eval {

class ThreadPool {
 public:
  /// `threads` == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run body(0) .. body(n-1), potentially concurrently; returns when all
  /// have completed. Safe to call from inside a pool worker (runs inline).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Lazily-created process-wide pool shared by backends that are not
  /// handed a dedicated one.
  static std::shared_ptr<ThreadPool> shared();

 private:
  struct Job;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Job>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace autockt::eval
