#pragma once
// Instrumentation for the evaluation layer. Every backend keeps a
// StatsCollector (lock-free atomic counters, safe under the PPO rollout
// workers and the batch thread pool) and exposes an EvalStats snapshot;
// decorator stacks merge snapshots so the top of the stack reports the
// whole pipeline: real simulations run, cache hits/misses, batch shapes and
// simulator wall time.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace autockt::eval {

/// Plain-value snapshot of evaluation activity. Field ownership is
/// per-layer so that merging never double counts:
///  * simulations / sim_seconds — leaf backends (Function, Corner)
///  * cache_hits / cache_misses — CachedBackend
///  * batch_* — the outermost backend that received an evaluate_batch call
struct EvalStats {
  long simulations = 0;   // real simulator invocations (PEX: one per corner)
  long cache_hits = 0;    // evaluations answered from the memo cache
  long cache_misses = 0;  // evaluations that had to reach the simulator
  long batch_calls = 0;   // evaluate_batch() invocations
  long batch_points = 0;  // points submitted through evaluate_batch()
  long max_batch = 0;     // largest single batch seen
  /// Gauge: evaluate_batch() calls in flight when the snapshot was taken.
  /// Nonzero only when sampled concurrently with rollout workers (e.g. a
  /// monitoring thread watching lockstep collection); quiescent stacks
  /// report 0.
  long pending_batches = 0;
  double sim_seconds = 0.0;  // wall time spent inside simulator calls

  // ---- simulation-kernel counters ---------------------------------------
  // Filled by SizingProblem::eval_stats() from the spice workspace's
  // process-wide counters (the eval layer itself never touches the
  // simulator): Newton work, the symbolic/numeric factorization split of
  // the sparse kernel, and warm-start effectiveness.
  long newton_iterations = 0;
  long symbolic_factorizations = 0;
  long numeric_factorizations = 0;
  long dense_fallbacks = 0;       // scale-aware pivot check bailouts
  long warm_start_attempts = 0;
  long warm_start_hits = 0;
  // Batched numeric kernel (SparseLuNumericBatch): each batched
  // refactorization factors `batch_lanes / batch_refactorizations` value
  // lanes over one shared elimination program; lane fallbacks count lanes
  // that failed the per-lane pivot check and retired to the dense LU
  // (every lane fallback also counts in dense_fallbacks).
  long batch_refactorizations = 0;
  long batch_lanes = 0;
  long batch_lane_fallbacks = 0;

  // ---- persistent / distributed tier -------------------------------------
  // Filled by CachedBackend (disk_*) and ProcessPoolBackend (worker_*).
  long disk_hits = 0;     // cache hits served by entries replayed from disk
  long disk_appends = 0;  // memo entries appended to the on-disk log
  long worker_dispatches = 0;  // request round trips to pool workers
  long worker_retries = 0;     // requests retried after a crash/timeout
  long worker_restarts = 0;    // workers replaced by a fresh fork

  EvalStats& operator+=(const EvalStats& other);
  EvalStats operator+(const EvalStats& other) const;
  /// Activity since `before` was snapshotted (counter-wise difference).
  EvalStats since(const EvalStats& before) const;

  /// Evaluations that passed through a cache layer (hits + misses). Zero
  /// for cache-less stacks even when simulations ran — use `simulations`
  /// for raw simulator traffic.
  long cache_lookups() const { return cache_hits + cache_misses; }
  /// Hits over lookups; 0 when no cache layer saw any traffic.
  double cache_hit_rate() const;
  double mean_batch_size() const;
  /// Warm-start hits over attempts; 0 when warm starting never ran.
  double warm_start_hit_rate() const;

  /// Every public field as a (canonical name, value) row, in declaration
  /// order. The single source of truth for dumps: summary() renders it,
  /// bench_snapshot emits it, and the OBSERVABILITY.md glossary test
  /// cross-checks it — adding a field here keeps all three in sync.
  std::vector<std::pair<const char*, double>> fields() const;

  /// One-line human-readable summary for logs and example binaries. Names
  /// every public field (pinned by tests/test_eval.cpp) plus the derived
  /// cache_hit_rate / warm_start_hit_rate percentages.
  std::string summary() const;
};

/// Thread-safe accumulator backing EvalStats. Backends mutate it from
/// const-qualified evaluation paths, hence the mutable use sites.
class StatsCollector {
 public:
  void add_simulations(long n, double seconds) {
    simulations_.fetch_add(n, std::memory_order_relaxed);
    sim_nanos_.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
  }
  void add_cache_hit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void add_cache_hits(long n) {
    cache_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_cache_miss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_batch(long points) {
    batch_calls_.fetch_add(1, std::memory_order_relaxed);
    batch_points_.fetch_add(points, std::memory_order_relaxed);
    long prev = max_batch_.load(std::memory_order_relaxed);
    while (prev < points &&
           !max_batch_.compare_exchange_weak(prev, points,
                                             std::memory_order_relaxed)) {
    }
  }
  void begin_pending_batch() {
    pending_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  void end_pending_batch() {
    pending_batches_.fetch_sub(1, std::memory_order_relaxed);
  }
  void add_disk_hit() { disk_hits_.fetch_add(1, std::memory_order_relaxed); }
  void add_disk_append() {
    disk_appends_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_worker_dispatch() {
    worker_dispatches_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_worker_retry() {
    worker_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_worker_restart() {
    worker_restarts_.fetch_add(1, std::memory_order_relaxed);
  }

  EvalStats snapshot() const;
  void reset();

 private:
  std::atomic<long> simulations_{0};
  std::atomic<long> cache_hits_{0};
  std::atomic<long> cache_misses_{0};
  std::atomic<long> batch_calls_{0};
  std::atomic<long> batch_points_{0};
  std::atomic<long> max_batch_{0};
  std::atomic<long> pending_batches_{0};
  std::atomic<std::int64_t> sim_nanos_{0};
  std::atomic<long> disk_hits_{0};
  std::atomic<long> disk_appends_{0};
  std::atomic<long> worker_dispatches_{0};
  std::atomic<long> worker_retries_{0};
  std::atomic<long> worker_restarts_{0};
};

}  // namespace autockt::eval
