#pragma once
// ProcessPoolBackend: fans evaluate() / evaluate_batch() out over forked
// worker processes — the distribution half of ROADMAP item 4. Where
// ThreadPoolBackend shares one address space (and therefore one crash
// domain and one set of process-wide kernel counters), a process pool gives
// each worker its own: a simulator bug that corrupts or kills a worker
// costs one retry, never the trainer.
//
// Protocol: each worker owns one AF_UNIX stream socketpair and speaks a
// strict request/reply alternation of length-prefixed binary frames
// (u32 little-endian payload length + payload). A request carries a slice
// of design points plus each caller's warm-start SimHint; the reply carries
// the bit-exact EvalResults (doubles as raw IEEE bit patterns — see
// util/fmt.hpp), the updated hints, and an EvalStats delta so the parent's
// stats() reflect work done in children (including the spice kernel
// counters, via Options::leaf_stats).
//
// Determinism contract: results are reassembled by input index and each
// point is evaluated by the same pure evaluator the serial path runs, so
// evaluate_batch() output is bitwise-equal to the serial backend —
// distribution is a throughput optimization, never a semantic one.
//
// Failure model: a worker that crashes, closes its socket, or misses the
// per-request deadline (on send OR receive — a child that stops reading is
// as dead as one that stops writing) is SIGKILLed, reaped and replaced by
// a fresh fork (worker_restarts). The failed request is retried ONCE, per
// point — so a single poison point that reliably kills a worker turns into
// one error result (worker_retries, code kTransportErrorCode — which memo
// layers refuse to cache), while its innocent chunk-mates still evaluate.
//
// Fork hygiene: forking from a multithreaded parent is a minefield — a
// concurrent thread can hold the allocator lock at fork time, deadlocking
// any child that mallocs. So the pool forks ONE single-threaded helper (the
// "zygote") at construction, while the parent is still quiescent; every
// worker — initial and respawned — is then forked BY the zygote and its
// socket passed back over SCM_RIGHTS. Workers are therefore always forks
// of a single-threaded process, inherit no sibling descriptors, and may
// freely allocate while building the inner stack via the injected factory
// (which also guarantees it never contains threads that died in a fork —
// a pre-fork ThreadPool would hang its child copy; CornerBackend-style
// stacks should create any pools lazily in the factory). If the zygote is
// ever lost, spawning falls back to a direct fork that closes a
// mutex-guarded snapshot of the pool's open descriptors — a degraded mode
// that accepts the multithreaded-fork risk rather than going dark.

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/backend.hpp"

namespace autockt::eval {

class ProcessPoolBackend : public EvalBackend {
 public:
  /// Builds the evaluation stack a worker runs — called once per worker,
  /// in the CHILD, immediately after fork.
  using InnerFactory = std::function<std::shared_ptr<EvalBackend>()>;

  struct Options {
    std::size_t workers = 4;
    /// Deadline for one request round trip; a worker that misses it is
    /// killed and the request retried once. Generous by default — a slow
    /// simulation is not a crash.
    long request_timeout_ms = 120000;
    /// Extra per-process stats a child folds into its reply delta (e.g.
    /// the spice layer's process-wide kernel counters, which the eval
    /// layer cannot see). May be null.
    std::function<EvalStats()> leaf_stats;
    /// Display label for the (child-side) inner stack in name().
    std::string inner_name = "worker";
  };

  ProcessPoolBackend(InnerFactory inner_factory, const Options& options);
  ProcessPoolBackend(InnerFactory inner_factory)
      : ProcessPoolBackend(std::move(inner_factory), Options()) {}
  ~ProcessPoolBackend() override;
  ProcessPoolBackend(const ProcessPoolBackend&) = delete;
  ProcessPoolBackend& operator=(const ProcessPoolBackend&) = delete;

  std::string name() const override {
    return "procpool[" + std::to_string(workers_.size()) + "](" +
           options_.inner_name + ")";
  }
  bool prefers_batch() const override { return true; }

  std::size_t num_workers() const { return workers_.size(); }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override;
  std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints) override;
  EvalStats inner_stats() const override;
  void reset_inner_stats() override;

 private:
  struct Worker {
    std::mutex mutex;    // serializes the request/reply round trip
    int fd = -1;         // parent end of the socketpair
    pid_t pid = -1;
    bool direct = false;  // true: our own child (fallback fork), reap it;
                          // false: the zygote's child (kernel-reaped)
  };

  void spawn_worker_locked(Worker& worker);
  void kill_worker_locked(Worker& worker);
  [[noreturn]] void child_main(int fd);

  // -- zygote spawner (see "Fork hygiene" above) --
  void start_zygote();
  void shutdown_zygote();
  [[noreturn]] void zygote_main(int control_fd);
  /// Ask the zygote for a fresh worker. Returns true with *fd/*pid filled
  /// on success; false when the zygote is unavailable or its fork failed.
  bool spawn_via_zygote(int* fd, pid_t* pid);
  /// Fallback direct fork (multithreaded-parent risk accepted); closes a
  /// snapshot of parent_fds_ in the child. Leaves *fd at -1 on failure.
  void spawn_direct(int* fd, pid_t* pid);

  /// Registry of this pool's open parent-side fds (worker sockets + zygote
  /// control): the snapshot a fallback direct fork closes in its child so
  /// a worker never holds a sibling's socket open past its EOF shutdown.
  void register_parent_fd(int fd);
  void unregister_parent_fd(int fd);

  /// One request/reply round trip on `worker` (mutex must NOT be held).
  /// Returns false on crash/timeout, after replacing the worker.
  bool round_trip(Worker& worker, const std::string& request,
                  std::string* reply);

  /// Evaluate `points` on one worker with crash retry; writes results
  /// aligned with `points` and copies updated hints back into `hints`.
  void run_on_worker(Worker& worker, const std::vector<ParamVector>& points,
                     const std::vector<SimHint*>& hints,
                     std::vector<EvalResult>* out);

  Worker& pick_worker();

  InnerFactory inner_factory_;
  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_worker_{0};

  std::mutex zygote_mutex_;  // serializes spawn requests on the control fd
  int zygote_fd_ = -1;       // parent end of the zygote control socket
  pid_t zygote_pid_ = -1;

  std::mutex parent_fds_mutex_;
  std::vector<int> parent_fds_;

  mutable std::mutex child_stats_mutex_;
  EvalStats child_stats_;  // accumulated reply deltas
};

}  // namespace autockt::eval
