#pragma once
// ProcessPoolBackend: fans evaluate() / evaluate_batch() out over forked
// worker processes — the distribution half of ROADMAP item 4. Where
// ThreadPoolBackend shares one address space (and therefore one crash
// domain and one set of process-wide kernel counters), a process pool gives
// each worker its own: a simulator bug that corrupts or kills a worker
// costs one retry, never the trainer.
//
// Protocol: each worker owns one AF_UNIX stream socketpair and speaks a
// strict request/reply alternation of length-prefixed binary frames
// (u32 little-endian payload length + payload). A request carries a slice
// of design points plus each caller's warm-start SimHint; the reply carries
// the bit-exact EvalResults (doubles as raw IEEE bit patterns — see
// util/fmt.hpp), the updated hints, and an EvalStats delta so the parent's
// stats() reflect work done in children (including the spice kernel
// counters, via Options::leaf_stats).
//
// Determinism contract: results are reassembled by input index and each
// point is evaluated by the same pure evaluator the serial path runs, so
// evaluate_batch() output is bitwise-equal to the serial backend —
// distribution is a throughput optimization, never a semantic one.
//
// Failure model: a worker that crashes, closes its socket, or misses the
// per-request deadline is SIGKILLed, reaped and replaced by a fresh fork
// (worker_restarts). The failed request is retried ONCE, per point — so a
// single poison point that reliably kills a worker turns into one error
// result (worker_retries), while its innocent chunk-mates still evaluate.
//
// Fork hygiene: workers are forked at construction, before the trainer
// spawns rollout threads. The inner backend is built INSIDE each child via
// the injected factory, so it never contains threads that died in the fork
// (a pre-fork ThreadPool would hang its child copy); CornerBackend-style
// stacks should create any pools lazily in the factory.

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/backend.hpp"

namespace autockt::eval {

class ProcessPoolBackend : public EvalBackend {
 public:
  /// Builds the evaluation stack a worker runs — called once per worker,
  /// in the CHILD, immediately after fork.
  using InnerFactory = std::function<std::shared_ptr<EvalBackend>()>;

  struct Options {
    std::size_t workers = 4;
    /// Deadline for one request round trip; a worker that misses it is
    /// killed and the request retried once. Generous by default — a slow
    /// simulation is not a crash.
    long request_timeout_ms = 120000;
    /// Extra per-process stats a child folds into its reply delta (e.g.
    /// the spice layer's process-wide kernel counters, which the eval
    /// layer cannot see). May be null.
    std::function<EvalStats()> leaf_stats;
    /// Display label for the (child-side) inner stack in name().
    std::string inner_name = "worker";
  };

  ProcessPoolBackend(InnerFactory inner_factory, const Options& options);
  ProcessPoolBackend(InnerFactory inner_factory)
      : ProcessPoolBackend(std::move(inner_factory), Options()) {}
  ~ProcessPoolBackend() override;
  ProcessPoolBackend(const ProcessPoolBackend&) = delete;
  ProcessPoolBackend& operator=(const ProcessPoolBackend&) = delete;

  std::string name() const override {
    return "procpool[" + std::to_string(workers_.size()) + "](" +
           options_.inner_name + ")";
  }
  bool prefers_batch() const override { return true; }

  std::size_t num_workers() const { return workers_.size(); }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override;
  std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints) override;
  EvalStats inner_stats() const override;
  void reset_inner_stats() override;

 private:
  struct Worker {
    std::mutex mutex;  // serializes the request/reply round trip
    int fd = -1;       // parent end of the socketpair
    pid_t pid = -1;
  };

  void spawn_worker_locked(Worker& worker);
  void kill_worker_locked(Worker& worker);
  [[noreturn]] void child_main(int fd);

  /// One request/reply round trip on `worker` (mutex must NOT be held).
  /// Returns false on crash/timeout, after replacing the worker.
  bool round_trip(Worker& worker, const std::string& request,
                  std::string* reply);

  /// Evaluate `points` on one worker with crash retry; writes results
  /// aligned with `points` and copies updated hints back into `hints`.
  void run_on_worker(Worker& worker, const std::vector<ParamVector>& points,
                     const std::vector<SimHint*>& hints,
                     std::vector<EvalResult>* out);

  Worker& pick_worker();

  InnerFactory inner_factory_;
  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> next_worker_{0};

  mutable std::mutex child_stats_mutex_;
  EvalStats child_stats_;  // accumulated reply deltas
};

}  // namespace autockt::eval
