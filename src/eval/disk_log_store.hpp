#pragma once
// DiskLogStore: a crash-safe, append-only on-disk MemoStore. Memo entries
// survive the process, so a warm cache makes a repeated fixed-seed training
// or characterization run cost ZERO leaf simulator calls — the persistence
// half of ROADMAP item 4 (the paper's economy of never paying for the same
// simulation twice, extended across restarts).
//
// Layout: a directory of `memo-<i>.log` shard files. Each file starts with
// a header line
//
//     autockt-evalcache-v1 fp=<16 hex> shard=<i>/<n>
//
// where fp is the owning problem's 64-bit fingerprint (name + parameter
// grid + spec table + deck text, see circuits/problems.cpp) — the guard
// that makes replaying a cache against a DIFFERENT problem definition a
// hard open() error instead of silent garbage. After the header, one text
// record per memo entry:
//
//     R <nk> <keys...> S <nv> <16-hex bit patterns...> C <16 hex>      (ok)
//     R <nk> <keys...> F <code> <line> <col> <hex msg|-> C <16 hex>  (error)
//
// Doubles are serialized as their raw IEEE bit pattern (util/fmt.hpp
// format_hex_bits), so replayed EvalResults are bitwise-identical to the
// originals — NaN payloads, -0.0 and denormals included. The trailing C
// token is an FNV-1a checksum of the record text before it.
//
// Crash safety: records are appended with fsync batching (Options::
// fsync_every). A crash can only lose or tear the tail of a shard file;
// open() replays each shard until the first record that is incomplete or
// fails its checksum, truncates the file back to the last good record, and
// continues — a torn tail costs re-simulating a few points, never a corrupt
// cache. Entries are never rewritten in place, so the prefix is always
// consistent.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/memo_store.hpp"
#include "util/expected.hpp"

namespace autockt::eval {

class DiskLogStore : public MemoStore {
 public:
  struct Options {
    /// Log files to stripe entries over (by the shared ParamVectorHash).
    /// Only consulted when creating a fresh cache; reopening infers the
    /// count from the directory.
    std::size_t file_shards = 4;
    /// fsync a shard file after this many appended records (1 = every
    /// record). Batching amortizes the sync cost; at most `fsync_every - 1`
    /// records per shard are at risk on power loss.
    std::size_t fsync_every = 32;
    /// In-memory index stripes (same role as InMemoryStore's shards).
    std::size_t index_shards = 16;
  };

  /// Open (or create) the cache directory. Fails — rather than silently
  /// serving wrong results — when the directory holds a cache written for a
  /// different problem fingerprint, or when the shard files are not this
  /// format. Torn tails are repaired here, not reported as errors.
  static util::Expected<std::shared_ptr<DiskLogStore>> open(
      const std::string& dir, std::uint64_t fingerprint,
      const Options& options);
  static util::Expected<std::shared_ptr<DiskLogStore>> open(
      const std::string& dir, std::uint64_t fingerprint) {
    return open(dir, fingerprint, Options());
  }

  ~DiskLogStore() override;
  DiskLogStore(const DiskLogStore&) = delete;
  DiskLogStore& operator=(const DiskLogStore&) = delete;

  bool lookup(const ParamVector& key, EvalResult* out,
              bool* replayed = nullptr) override;
  bool insert(const ParamVector& key, const EvalResult& value) override;
  std::size_t size() const override { return index_.size(); }
  std::size_t approx_size() const override { return index_.approx_size(); }
  /// Drops the in-memory index only; the log files are append-only and are
  /// never rewritten (delete the directory to discard a cache).
  void clear() override { index_.clear(); }
  void flush() override;
  bool persistent() const override { return true; }
  std::string describe() const override;

  const std::string& directory() const { return dir_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// Entries loaded from disk at open() (after torn-tail repair).
  std::size_t replayed_entries() const { return replayed_entries_; }
  /// Shard write/fsync failures (ENOSPC/EIO...). Each failure freezes its
  /// shard read-only: the in-memory index keeps serving, but entries routed
  /// to that shard stop persisting — appending past a torn record would
  /// make the next open() truncate every good record after it.
  std::size_t write_errors() const {
    return write_errors_.load(std::memory_order_relaxed);
  }

  /// Serialize one record body (everything before the checksum token);
  /// exposed for the crash-safety tests that forge torn/corrupt tails.
  static std::string encode_record(const ParamVector& key,
                                   const EvalResult& value);

 private:
  struct File {
    std::mutex mutex;
    int fd = -1;
    std::size_t unsynced = 0;  // appends since the last fsync
    bool failed = false;       // a write/fsync failed: shard is read-only
  };

  DiskLogStore(std::string dir, std::uint64_t fingerprint, Options options);

  File& file_for(const ParamVector& key);
  /// Append one record; false when the shard is (or just became) frozen
  /// after a write/fsync failure.
  bool append(File& file, const std::string& record);
  void freeze_failed_locked(File& file, const char* what);

  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  Options options_;
  InMemoryStore index_;
  std::vector<std::unique_ptr<File>> files_;
  std::size_t replayed_entries_ = 0;
  std::atomic<std::size_t> write_errors_{0};
};

}  // namespace autockt::eval
