#pragma once
// Foundational types of the evaluation-backend layer. The eval subsystem is
// the lowest layer that knows about "a point on the sizing grid" and "a
// vector of measured specifications"; the circuits layer aliases these so
// that both speak the same vocabulary without a circular dependency.

#include <functional>
#include <vector>

#include "util/expected.hpp"

namespace autockt::eval {

/// A design point expressed as discrete grid indices (the paper's
/// {x : 0 <= x_i < K} action space).
using ParamVector = std::vector<int>;

/// Observed specification values, aligned with the owning problem's specs.
using SpecVector = std::vector<double>;

/// One evaluation outcome: measured specs, or the simulator's error (e.g.
/// DC non-convergence) which callers map to per-spec fail values.
using EvalResult = util::Expected<SpecVector>;

/// The raw simulator callable adapted by FunctionBackend.
using EvalFn = std::function<EvalResult(const ParamVector&)>;

}  // namespace autockt::eval
