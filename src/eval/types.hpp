#pragma once
// Foundational types of the evaluation-backend layer. The eval subsystem is
// the lowest layer that knows about "a point on the sizing grid" and "a
// vector of measured specifications"; the circuits layer aliases these so
// that both speak the same vocabulary without a circular dependency.

#include <functional>
#include <vector>

#include "util/expected.hpp"

namespace autockt::eval {

/// A design point expressed as discrete grid indices (the paper's
/// {x : 0 <= x_i < K} action space).
using ParamVector = std::vector<int>;

/// Observed specification values, aligned with the owning problem's specs.
using SpecVector = std::vector<double>;

/// One evaluation outcome: measured specs, or the simulator's error (e.g.
/// DC non-convergence) which callers map to per-spec fail values.
using EvalResult = util::Expected<SpecVector>;

/// Error code distinguishing evaluation-TRANSPORT failures (a pool worker
/// crashed, timed out, or returned a garbled reply) from simulator verdicts
/// (non-convergence etc.). Transport failures are transient properties of
/// the infrastructure, not of the design point: memo layers must never
/// cache a result carrying this code — a persistent store would otherwise
/// replay the spurious error forever instead of re-simulating.
inline constexpr int kTransportErrorCode = 70;

inline bool is_transport_error(const EvalResult& result) {
  return !result.ok() && result.error().code == kTransportErrorCode;
}

/// Warm-start state for ONE sub-simulation (one DC operating point): plain
/// vectors so the eval layer stays independent of the spice layer. The
/// simulator reads it as the Newton stage-0 guess and overwrites it with
/// the converged solution; `valid` gates the read.
struct OpHint {
  bool valid = false;
  std::vector<double> node_v;    // indexed by node id, [0] is ground
  std::vector<double> branch_i;  // indexed by branch number
};

/// Per-caller (RL env lane) warm-start state threaded through a backend
/// stack: one OpHint per sub-simulation of a logical evaluation (schematic
/// problems use slot 0; the PEX flow uses one slot per PVT corner). Hints
/// are an optimization channel, never a correctness one — a cache hit
/// leaves them untouched, and a null hint simply cold-starts.
struct SimHint {
  std::vector<OpHint> ops;

  /// Grow-on-demand slot access. NOT safe during concurrent slot writes;
  /// fan-out backends size the vector up front (see CornerBackend).
  OpHint& slot(std::size_t i) {
    if (ops.size() <= i) ops.resize(i + 1);
    return ops[i];
  }

  void invalidate() {
    for (OpHint& o : ops) o.valid = false;
  }
};

/// The raw simulator callable adapted by FunctionBackend. The hint may be
/// null (cold start); the callable may ignore it entirely.
using EvalFn = std::function<EvalResult(const ParamVector&)>;
using HintedEvalFn = std::function<EvalResult(const ParamVector&, OpHint*)>;

/// Batched simulator callable: evaluates K design points as lanes of one
/// batched kernel invocation (lockstep DC Newton, batched AC/noise sweeps).
/// `hints` is either empty or aligned with `points` (entries may be null).
/// Contract: result[i] is exactly what the scalar callable would return for
/// points[i] — batching is a throughput optimization, never a semantic one.
using BatchEvalFn = std::function<std::vector<EvalResult>(
    const std::vector<ParamVector>&, const std::vector<OpHint*>&)>;

}  // namespace autockt::eval
