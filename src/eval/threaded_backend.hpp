#pragma once
// ThreadPoolBackend: fans evaluate_batch() out over a persistent worker
// pool. Single-point evaluate() forwards untouched — there is nothing to
// parallelize — so stacking this decorator never changes values, only
// wall-clock. GA populations and GA+ML candidate rankings are the natural
// customers.

#include <memory>
#include <string>

#include "eval/backend.hpp"
#include "eval/thread_pool.hpp"

namespace autockt::eval {

class ThreadPoolBackend : public EvalBackend {
 public:
  /// A null pool falls back to the process-wide shared pool.
  explicit ThreadPoolBackend(std::shared_ptr<EvalBackend> inner,
                             std::shared_ptr<ThreadPool> pool = nullptr);

  std::string name() const override {
    return "threaded(" + inner_->name() + ")";
  }

  const std::shared_ptr<EvalBackend>& inner() const { return inner_; }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override {
    return inner_->evaluate(params, hint);
  }
  std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints) override;
  EvalStats inner_stats() const override { return inner_->stats(); }
  void reset_inner_stats() override { inner_->reset_stats(); }

 private:
  std::shared_ptr<EvalBackend> inner_;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace autockt::eval
