#include "eval/backend.hpp"

namespace autockt::eval {

std::vector<EvalResult> EvalBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<SimHint*>& hints) {
  std::vector<EvalResult> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.push_back(do_evaluate(points[i], hint_at(hints, i)));
  }
  return out;
}

}  // namespace autockt::eval
