#include "eval/backend.hpp"

namespace autockt::eval {

std::vector<EvalResult> EvalBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points) {
  std::vector<EvalResult> out;
  out.reserve(points.size());
  for (const ParamVector& p : points) out.push_back(do_evaluate(p));
  return out;
}

}  // namespace autockt::eval
