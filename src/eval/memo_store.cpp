#include "eval/memo_store.hpp"

#include <algorithm>

namespace autockt::eval {

std::uint64_t fingerprint64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

InMemoryStore::InMemoryStore(std::size_t shards) {
  const std::size_t n = std::max<std::size_t>(1, shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

InMemoryStore::Shard& InMemoryStore::shard_for(const ParamVector& key) const {
  return *shards_[ParamVectorHash{}(key) % shards_.size()];
}

bool InMemoryStore::lookup(const ParamVector& key, EvalResult* out,
                           bool* replayed) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *out = it->second.result;
  if (replayed != nullptr) *replayed = it->second.replayed;
  return true;
}

bool InMemoryStore::insert_internal(const ParamVector& key,
                                    const EvalResult& value, bool replayed) {
  Shard& shard = shard_for(key);
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    inserted = shard.map.emplace(key, Entry{value, replayed}).second;
  }
  if (inserted) approx_count_.fetch_add(1, std::memory_order_relaxed);
  return inserted;
}

bool InMemoryStore::insert(const ParamVector& key, const EvalResult& value) {
  return insert_internal(key, value, /*replayed=*/false);
}

bool InMemoryStore::insert_replayed(const ParamVector& key,
                                    const EvalResult& value) {
  return insert_internal(key, value, /*replayed=*/true);
}

std::size_t InMemoryStore::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->map.size();
  }
  return n;
}

void InMemoryStore::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
  }
  approx_count_.store(0, std::memory_order_relaxed);
}

}  // namespace autockt::eval
