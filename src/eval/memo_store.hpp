#pragma once
// MemoStore: the storage seam of the memo-cache layer. CachedBackend owns
// the *policy* (when to look up, when to insert, hit/miss accounting); a
// MemoStore owns the *mechanism* (where entries live). Two implementations:
//
//   InMemoryStore — the original sharded, mutex-striped unordered_map;
//                   dies with the process.
//   DiskLogStore  — an append-only, crash-safe on-disk log replayed into an
//                   in-memory index at open (eval/disk_log_store.hpp), so
//                   repeated training/serving runs never re-simulate a seen
//                   point.
//
// Entries are full EvalResults: simulator failures are memoized exactly
// like successes (a non-converging design point must not be re-simulated
// either). Transport failures never reach a store — CachedBackend::memoize
// filters them (see kTransportErrorCode in eval/types.hpp).
// Stores must be thread-safe — PPO rollout workers hit them concurrently.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "eval/types.hpp"

namespace autockt::eval {

/// FNV-1a over the index words; grid indices are small so byte mixing is
/// plenty to spread shards and buckets. Shared by every consumer that
/// buckets ParamVectors (memo stores, batch dedup maps, file sharding) so
/// a key always lands in the same stripe everywhere.
struct ParamVectorHash {
  std::size_t operator()(const ParamVector& v) const {
    std::size_t h = 1469598103934665603ULL;
    for (int x : v) {
      h ^= static_cast<std::size_t>(static_cast<unsigned>(x));
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// FNV-1a 64-bit over arbitrary bytes. Used to fingerprint problem
/// definitions (the DiskLogStore replay guard) and to checksum log records.
std::uint64_t fingerprint64(std::string_view bytes,
                            std::uint64_t seed = 1469598103934665603ULL);

class MemoStore {
 public:
  virtual ~MemoStore() = default;

  /// Serve `key` from the store. On a hit, *out receives the memoized
  /// result and *replayed (when non-null) reports whether the entry came
  /// from persistent storage at open time (a "disk hit") rather than an
  /// insert() this run.
  virtual bool lookup(const ParamVector& key, EvalResult* out,
                      bool* replayed = nullptr) = 0;

  /// Memoize `value` under `key`. Returns true when the key was newly
  /// inserted; false when another thread (or a replayed entry) won the
  /// race — the store keeps the first value, which is equal anyway because
  /// the evaluator is a pure function.
  virtual bool insert(const ParamVector& key, const EvalResult& value) = 0;

  /// Entries currently memoized — exact, takes every stripe lock. Tests
  /// and teardown paths use this; hot logging paths use approx_size().
  virtual std::size_t size() const = 0;

  /// Relaxed approximate entry count: one atomic load, no locks, may lag
  /// concurrent inserts by a few entries. The hot-path-safe variant.
  virtual std::size_t approx_size() const = 0;

  virtual void clear() = 0;

  /// Persist any buffered state (fsync batching); no-op for memory stores.
  virtual void flush() {}

  /// True when entries survive the process (lookups may report replayed
  /// hits and inserts reach durable storage).
  virtual bool persistent() const { return false; }

  /// Short human-readable description for backend name()s and logs.
  virtual std::string describe() const = 0;
};

/// The original CachedBackend storage, extracted verbatim: N mutex-striped
/// unordered_map shards keyed by ParamVectorHash, plus a relaxed counter so
/// approx_size() never touches a lock.
class InMemoryStore : public MemoStore {
 public:
  explicit InMemoryStore(std::size_t shards = 16);

  bool lookup(const ParamVector& key, EvalResult* out,
              bool* replayed = nullptr) override;
  bool insert(const ParamVector& key, const EvalResult& value) override;
  std::size_t size() const override;
  std::size_t approx_size() const override {
    return approx_count_.load(std::memory_order_relaxed);
  }
  void clear() override;
  std::string describe() const override { return "memory"; }

  /// Insert an entry flagged as replayed-from-disk: DiskLogStore uses this
  /// while rebuilding its index so later lookups can report disk hits.
  bool insert_replayed(const ParamVector& key, const EvalResult& value);

 private:
  struct Entry {
    EvalResult result;
    bool replayed = false;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<ParamVector, Entry, ParamVectorHash> map;
  };

  bool insert_internal(const ParamVector& key, const EvalResult& value,
                       bool replayed);
  Shard& shard_for(const ParamVector& key) const;

  mutable std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> approx_count_{0};
};

}  // namespace autockt::eval
