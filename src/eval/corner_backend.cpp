#include "eval/corner_backend.hpp"

#include <chrono>
#include <exception>
#include <optional>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::eval {

CornerBackend::CornerBackend(std::size_t num_corners, CornerFn corner_eval,
                             FoldFn fold, std::shared_ptr<ThreadPool> pool,
                             std::string name)
    : num_corners_(num_corners),
      corner_eval_(std::move(corner_eval)),
      fold_(std::move(fold)),
      pool_(std::move(pool)),
      name_(std::move(name)) {}

void CornerBackend::for_each(
    std::size_t n, const std::function<void(std::size_t)>& body) const {
  if (pool_) {
    pool_->parallel_for(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

EvalResult CornerBackend::run_one(const ParamVector& params,
                                  std::size_t corner, OpHint* hint) const {
  trace::TraceSpan span(trace::names::kEvalCorner);
  const auto t0 = std::chrono::steady_clock::now();
  EvalResult result = [&]() -> EvalResult {
    try {
      return corner_eval_(corner, params, hint);
    } catch (const std::exception& e) {
      return util::Error{std::string("corner evaluator threw: ") + e.what(),
                         -1};
    } catch (...) {
      return util::Error{"corner evaluator threw a non-std exception", -1};
    }
  }();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  counters_.add_simulations(1, dt.count());
  return result;
}

EvalResult CornerBackend::fold_point(
    std::vector<EvalResult>& corner_results) const {
  // Serial-loop parity: surface the error of the first failing corner.
  for (EvalResult& r : corner_results) {
    if (!r.ok()) return r.error();
  }
  std::vector<SpecVector> specs;
  specs.reserve(corner_results.size());
  for (EvalResult& r : corner_results) specs.push_back(std::move(r.value()));
  return fold_(specs);
}

EvalResult CornerBackend::do_evaluate(const ParamVector& params,
                                      SimHint* hint) {
  if (num_corners_ == 0) {
    return util::Error{"CornerBackend: no corners configured", -1};
  }
  // Pre-size the hint's per-corner slots before fanning out, so concurrent
  // corner evaluations write disjoint, stable OpHint objects.
  if (hint != nullptr) hint->slot(num_corners_ - 1);
  std::vector<std::optional<EvalResult>> scratch(num_corners_);
  for_each(num_corners_, [&](std::size_t c) {
    scratch[c].emplace(
        run_one(params, c, hint != nullptr ? &hint->ops[c] : nullptr));
  });
  std::vector<EvalResult> ordered;
  ordered.reserve(num_corners_);
  for (auto& slot : scratch) ordered.push_back(std::move(*slot));
  return fold_point(ordered);
}

std::vector<EvalResult> CornerBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<SimHint*>& hints) {
  if (num_corners_ == 0 || points.empty()) {
    return std::vector<EvalResult>(
        points.size(),
        EvalResult(util::Error{"CornerBackend: no corners configured", -1}));
  }
  for (std::size_t p = 0; p < points.size(); ++p) {
    SimHint* h = hint_at(hints, p);
    if (h != nullptr) h->slot(num_corners_ - 1);  // pre-size before fan-out
  }
  // Flatten (point, corner) pairs so small populations on many-corner
  // problems still fill the pool.
  std::vector<std::optional<EvalResult>> scratch(points.size() *
                                                 num_corners_);
  for_each(scratch.size(), [&](std::size_t flat) {
    const std::size_t point = flat / num_corners_;
    const std::size_t corner = flat % num_corners_;
    SimHint* h = hint_at(hints, point);
    scratch[flat].emplace(run_one(
        points[point], corner, h != nullptr ? &h->ops[corner] : nullptr));
  });

  std::vector<EvalResult> out;
  out.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<EvalResult> ordered;
    ordered.reserve(num_corners_);
    for (std::size_t c = 0; c < num_corners_; ++c) {
      ordered.push_back(std::move(*scratch[p * num_corners_ + c]));
    }
    out.push_back(fold_point(ordered));
  }
  return out;
}

}  // namespace autockt::eval
