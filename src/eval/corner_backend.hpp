#pragma once
// CornerBackend: parallel PVT-corner fan-out for the PEX flow. One logical
// evaluation of a design point runs `num_corners` independent simulations
// (the paper's BAG flow simulates every candidate across process / voltage /
// temperature corners) and folds them into the per-spec worst case.
//
// Parity with the serial reference loop is part of the contract:
//  * fold input is ordered by corner index regardless of completion order,
//  * on failure the error returned is the one of the LOWEST-indexed failing
//    corner — exactly what a serial for-loop over corners would surface.
// The only observable difference to the serial loop is that all corners are
// simulated even when an early corner fails (the price of fan-out), which
// shows up in EvalStats::simulations, never in results.
//
// The fold is injected as a callable so this layer does not depend on the
// circuits layer (which owns SpecDef senses and worst_case_fold).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "eval/backend.hpp"
#include "eval/thread_pool.hpp"

namespace autockt::eval {

class CornerBackend : public EvalBackend {
 public:
  /// Simulate `params` under corner `corner_index` in [0, num_corners).
  /// The hint (null on cold starts) is the caller's per-corner warm-start
  /// slot; distinct corners always receive distinct slots.
  using CornerFn = std::function<EvalResult(
      std::size_t corner_index, const ParamVector&, OpHint*)>;
  /// Fold per-corner spec vectors (ordered by corner index) into one.
  using FoldFn = std::function<SpecVector(const std::vector<SpecVector>&)>;

  /// A null pool runs corners serially inline (the reference path the
  /// parity tests compare against).
  CornerBackend(std::size_t num_corners, CornerFn corner_eval, FoldFn fold,
                std::shared_ptr<ThreadPool> pool = ThreadPool::shared(),
                std::string name = "corners");

  std::string name() const override { return name_; }
  std::size_t num_corners() const { return num_corners_; }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override;
  /// Batch fan-out flattens (point, corner) pairs across the pool so a GA
  /// population over the PEX problem saturates the workers.
  std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints) override;

 private:
  EvalResult run_one(const ParamVector& params, std::size_t corner,
                     OpHint* hint) const;
  EvalResult fold_point(std::vector<EvalResult>& corner_results) const;
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& body) const;

  std::size_t num_corners_;
  CornerFn corner_eval_;
  FoldFn fold_;
  std::shared_ptr<ThreadPool> pool_;
  std::string name_;
};

}  // namespace autockt::eval
