#include "eval/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace autockt::eval {

namespace {
thread_local bool t_inside_pool_worker = false;
}

struct ThreadPool::Job {
  Job(std::size_t n, const std::function<void(std::size_t)>& body)
      : n(n), body(body) {}

  const std::size_t n;
  const std::function<void(std::size_t)>& body;  // outlives the job: the
                                                 // submitting thread waits
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex m;
  std::condition_variable done_cv;

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= n;
  }

  /// Claim and run indices until none remain. Returns true if this call
  /// completed the final index.
  bool run_until_empty() {
    bool finished_last = false;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      body(i);
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        finished_last = true;
      }
    }
    if (finished_last) {
      std::lock_guard<std::mutex> lock(m);
      done_cv.notify_all();
    }
    return finished_last;
  }

  void wait_done() {
    std::unique_lock<std::mutex> lock(m);
    done_cv.wait(lock, [&] {
      return completed.load(std::memory_order_acquire) >= n;
    });
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
      if (stopping_) return;
      job = jobs_.front();
      if (job->exhausted()) {
        jobs_.pop_front();
        continue;
      }
    }
    job->run_until_empty();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Inline when parallelism cannot help or when called from a worker
  // (nested fan-out): grabbing the queue from inside a job risks deadlock.
  if (n == 1 || workers_.empty() || t_inside_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto job = std::make_shared<Job>(n, body);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  job->run_until_empty();  // the caller helps instead of blocking
  job->wait_done();
  {
    // Drop the job from the queue if a worker has not already done so.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
}

std::shared_ptr<ThreadPool> ThreadPool::shared() {
  static std::shared_ptr<ThreadPool> pool = std::make_shared<ThreadPool>();
  return pool;
}

}  // namespace autockt::eval
