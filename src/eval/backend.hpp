#pragma once
// EvalBackend: the pluggable circuit-evaluation service every consumer of a
// SizingProblem talks to. AutoCkt's whole cost model is the number of
// circuit simulations (the paper's sample-efficiency metric), so the seam
// between "I need specs for this grid point" and "run the simulator" is a
// first-class, composable interface:
//
//   FunctionBackend    — adapts a plain simulator callable (the leaf)
//   CachedBackend      — sharded memo cache over the discrete grid
//   ThreadPoolBackend  — fans evaluate_batch() out over persistent workers
//   CornerBackend      — parallel PVT-corner fan-out + worst-case fold
//
// Decorators compose: Cached(ThreadPool(Function(...))) gives a batched,
// cached schematic problem; Cached(Corner(...)) the PEX flow. All backends
// must be thread-safe: PPO rollout workers evaluate concurrently.
//
// Batch semantics: evaluate_batch(points)[i] is exactly what evaluate
// (points[i]) would return — backends may parallelize, deduplicate and
// cache, but never change values or their order.

#include <memory>
#include <string>
#include <vector>

#include "eval/stats.hpp"
#include "eval/types.hpp"
#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::eval {

class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  virtual std::string name() const = 0;

  /// Evaluate one design point. Thread-safe. The optional hint carries the
  /// caller's warm-start state (see eval/types.hpp); backends thread it
  /// down to the simulator leaf and may ignore it (cache hits do).
  EvalResult evaluate(const ParamVector& params, SimHint* hint = nullptr) {
    // One span per decorator layer: a Cached(ThreadPool(Function)) stack
    // nests three eval/evaluate spans, so a trace shows where each lookup
    // stopped descending.
    trace::TraceSpan span(trace::names::kEvalEvaluate);
    return do_evaluate(params, hint);
  }

  /// Evaluate many design points; result i corresponds to points[i].
  /// `hints` is either empty or aligned with `points` (entries may be
  /// null); distinct points must reference distinct SimHint objects so
  /// fan-out backends can write them concurrently.
  /// Batch-shape accounting happens here (once, at the outermost layer the
  /// caller holds), so decorators forward internally via dispatch_batch().
  /// The pending_batches gauge covers the call's whole lifetime, so a
  /// concurrent stats() observer sees how many lockstep ticks are in
  /// flight right now.
  std::vector<EvalResult> evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints = {}) {
    // Decorators forward via dispatch_batch(), so exactly one span and one
    // batch_points counter per caller-visible batch.
    trace::TraceSpan span(trace::names::kEvalEvaluateBatch);
    trace::counter(trace::names::kEvalBatchPoints,
                   static_cast<std::int64_t>(points.size()));
    counters_.record_batch(static_cast<long>(points.size()));
    counters_.begin_pending_batch();
    struct PendingGuard {
      StatsCollector& counters;
      ~PendingGuard() { counters.end_pending_batch(); }
    } guard{counters_};
    return do_evaluate_batch(points, hints);
  }

  /// Snapshot of this backend's activity merged with everything below it.
  EvalStats stats() const { return counters_.snapshot() + inner_stats(); }

  void reset_stats() {
    counters_.reset();
    reset_inner_stats();
  }

  /// True when this backend (or its leaf) turns evaluate_batch() into one
  /// batched-kernel invocation rather than a loop over evaluate(). Fan-out
  /// decorators consult this to forward whole batches instead of splitting
  /// them into per-point tasks.
  virtual bool prefers_batch() const { return false; }

 protected:
  virtual EvalResult do_evaluate(const ParamVector& params, SimHint* hint) = 0;

  /// Default batch execution: a serial loop. Leaves inherit this;
  /// ThreadPoolBackend and CornerBackend override it with real fan-out.
  virtual std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints);

  /// hints[i] when provided, else null.
  static SimHint* hint_at(const std::vector<SimHint*>& hints, std::size_t i) {
    return i < hints.size() ? hints[i] : nullptr;
  }

  /// Decorators override these to chain the backend below them.
  virtual EvalStats inner_stats() const { return {}; }
  virtual void reset_inner_stats() {}

  /// Forward a batch to another backend without re-recording batch stats
  /// (protected cross-instance access must go through the base class).
  static std::vector<EvalResult> dispatch_batch(
      EvalBackend& backend, const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints = {}) {
    return backend.do_evaluate_batch(points, hints);
  }

  mutable StatsCollector counters_;
};

}  // namespace autockt::eval
