#pragma once
// CachedBackend: the memo-cache decorator, keyed on grid indices. The
// action space is discrete, every episode restarts from the grid centre,
// and PPO revisits neighbourhoods constantly — so repeat visits are the
// common case and become near-free. Simulator failures are memoized too: a
// design point the simulator could not converge on is not re-simulated.
// The one exception is transport failures (kTransportErrorCode — a pool
// worker crashed or timed out): those say nothing about the design point
// and are never memoized, so the next visit re-simulates.
//
// Storage is pluggable (eval/memo_store.hpp): the default InMemoryStore
// reproduces the original sharded map; a DiskLogStore makes the memo
// survive restarts, in which case hits on replayed entries are additionally
// counted as disk_hits and fresh inserts as disk_appends.
//
// Batch calls deduplicate: within one evaluate_batch, identical points cost
// one simulation (first occurrence counts as the miss, duplicates as hits)
// and the misses are forwarded below as a single smaller batch so a
// ThreadPoolBackend / CornerBackend underneath still fans out.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/backend.hpp"
#include "eval/memo_store.hpp"

namespace autockt::eval {

class CachedBackend : public EvalBackend {
 public:
  /// Original form: backs the memo with an InMemoryStore of `shards`
  /// stripes (behavior-identical to the pre-MemoStore implementation).
  explicit CachedBackend(std::shared_ptr<EvalBackend> inner,
                         std::size_t shards = 16);

  /// Pluggable-store form (e.g. a DiskLogStore for a persistent cache).
  CachedBackend(std::shared_ptr<EvalBackend> inner,
                std::shared_ptr<MemoStore> store);

  std::string name() const override {
    return "cached[" + store_->describe() + "](" + inner_->name() + ")";
  }

  /// Entries currently memoized — exact, takes every store stripe lock.
  /// Hot logging paths should prefer approx_size().
  std::size_t size() const { return store_->size(); }
  /// Lock-free approximate entry count (one relaxed atomic load); may lag
  /// concurrent inserts by a few entries but never touches a stripe lock.
  std::size_t approx_size() const { return store_->approx_size(); }
  void clear() { store_->clear(); }
  /// Persist buffered store state (fsync batching); no-op for memory
  /// stores.
  void flush() { store_->flush(); }

  const std::shared_ptr<EvalBackend>& inner() const { return inner_; }
  const std::shared_ptr<MemoStore>& store() const { return store_; }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override;
  std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints) override;
  EvalStats inner_stats() const override { return inner_->stats(); }
  void reset_inner_stats() override { inner_->reset_stats(); }

 private:
  void count_hit(bool replayed);
  void memoize(const ParamVector& params, const EvalResult& result);

  std::shared_ptr<EvalBackend> inner_;
  std::shared_ptr<MemoStore> store_;
};

}  // namespace autockt::eval
