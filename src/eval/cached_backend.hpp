#pragma once
// CachedBackend: a sharded, mutex-striped memo cache keyed on grid indices.
// The action space is discrete, every episode restarts from the grid
// centre, and PPO revisits neighbourhoods constantly — so repeat visits are
// the common case and become near-free. Failures are memoized too: a design
// point the simulator could not converge on is not re-simulated.
//
// Batch calls deduplicate: within one evaluate_batch, identical points cost
// one simulation (first occurrence counts as the miss, duplicates as hits)
// and the misses are forwarded below as a single smaller batch so a
// ThreadPoolBackend / CornerBackend underneath still fans out.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "eval/backend.hpp"

namespace autockt::eval {

class CachedBackend : public EvalBackend {
 public:
  explicit CachedBackend(std::shared_ptr<EvalBackend> inner,
                         std::size_t shards = 16);

  std::string name() const override { return "cached(" + inner_->name() + ")"; }

  /// Entries currently memoized (sums shard sizes; takes every stripe lock).
  std::size_t size() const;
  void clear();

  const std::shared_ptr<EvalBackend>& inner() const { return inner_; }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override;
  std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints) override;
  EvalStats inner_stats() const override { return inner_->stats(); }
  void reset_inner_stats() override { inner_->reset_stats(); }

 private:
  struct VectorHash {
    std::size_t operator()(const ParamVector& v) const;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<ParamVector, EvalResult, VectorHash> map;
  };

  Shard& shard_for(const ParamVector& params) const;

  std::shared_ptr<EvalBackend> inner_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace autockt::eval
