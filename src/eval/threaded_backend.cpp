#include "eval/threaded_backend.hpp"

#include <optional>
#include <utility>

namespace autockt::eval {

ThreadPoolBackend::ThreadPoolBackend(std::shared_ptr<EvalBackend> inner,
                                     std::shared_ptr<ThreadPool> pool)
    : inner_(std::move(inner)),
      pool_(pool ? std::move(pool) : ThreadPool::shared()) {}

std::vector<EvalResult> ThreadPoolBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<SimHint*>& hints) {
  if (inner_->prefers_batch()) {
    // The leaf runs the whole batch as lanes of one batched-kernel
    // invocation; splitting it into per-point pool tasks would forfeit the
    // SoA vectorization that batching exists to buy.
    return dispatch_batch(*inner_, points, hints);
  }
  std::vector<std::optional<EvalResult>> scratch(points.size());
  pool_->parallel_for(points.size(), [&](std::size_t i) {
    scratch[i].emplace(inner_->evaluate(points[i], hint_at(hints, i)));
  });
  std::vector<EvalResult> out;
  out.reserve(points.size());
  for (auto& slot : scratch) out.push_back(std::move(*slot));
  return out;
}

}  // namespace autockt::eval
