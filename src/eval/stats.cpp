#include "eval/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace autockt::eval {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  simulations += other.simulations;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  batch_calls += other.batch_calls;
  batch_points += other.batch_points;
  max_batch = std::max(max_batch, other.max_batch);
  pending_batches += other.pending_batches;
  sim_seconds += other.sim_seconds;
  newton_iterations += other.newton_iterations;
  symbolic_factorizations += other.symbolic_factorizations;
  numeric_factorizations += other.numeric_factorizations;
  dense_fallbacks += other.dense_fallbacks;
  warm_start_attempts += other.warm_start_attempts;
  warm_start_hits += other.warm_start_hits;
  return *this;
}

EvalStats EvalStats::operator+(const EvalStats& other) const {
  EvalStats out = *this;
  out += other;
  return out;
}

EvalStats EvalStats::since(const EvalStats& before) const {
  EvalStats out;
  out.simulations = simulations - before.simulations;
  out.cache_hits = cache_hits - before.cache_hits;
  out.cache_misses = cache_misses - before.cache_misses;
  out.batch_calls = batch_calls - before.batch_calls;
  out.batch_points = batch_points - before.batch_points;
  out.max_batch = max_batch;            // a high-water mark does not subtract
  out.pending_batches = pending_batches;  // a gauge does not subtract either
  out.sim_seconds = sim_seconds - before.sim_seconds;
  out.newton_iterations = newton_iterations - before.newton_iterations;
  out.symbolic_factorizations =
      symbolic_factorizations - before.symbolic_factorizations;
  out.numeric_factorizations =
      numeric_factorizations - before.numeric_factorizations;
  out.dense_fallbacks = dense_fallbacks - before.dense_fallbacks;
  out.warm_start_attempts = warm_start_attempts - before.warm_start_attempts;
  out.warm_start_hits = warm_start_hits - before.warm_start_hits;
  return out;
}

double EvalStats::cache_hit_rate() const {
  const long total = cache_lookups();
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits) /
                          static_cast<double>(total);
}

double EvalStats::mean_batch_size() const {
  return batch_calls == 0 ? 0.0
                          : static_cast<double>(batch_points) /
                                static_cast<double>(batch_calls);
}

double EvalStats::warm_start_hit_rate() const {
  return warm_start_attempts == 0
             ? 0.0
             : static_cast<double>(warm_start_hits) /
                   static_cast<double>(warm_start_attempts);
}

std::string EvalStats::summary() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "sims=%ld cache_hits=%ld cache_misses=%ld hit_rate=%.1f%% "
                "batches=%ld mean_batch=%.1f max_batch=%ld sim_time=%.3fs "
                "newton=%ld factor_sym=%ld factor_num=%ld dense_fb=%ld "
                "warm=%ld/%ld (%.1f%%)",
                simulations, cache_hits, cache_misses,
                100.0 * cache_hit_rate(), batch_calls, mean_batch_size(),
                max_batch, sim_seconds, newton_iterations,
                symbolic_factorizations, numeric_factorizations,
                dense_fallbacks, warm_start_hits, warm_start_attempts,
                100.0 * warm_start_hit_rate());
  return std::string(buf);
}

EvalStats StatsCollector::snapshot() const {
  EvalStats s;
  s.simulations = simulations_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  s.batch_points = batch_points_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.pending_batches = pending_batches_.load(std::memory_order_relaxed);
  s.sim_seconds =
      static_cast<double>(sim_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void StatsCollector::reset() {
  simulations_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  batch_calls_.store(0, std::memory_order_relaxed);
  batch_points_.store(0, std::memory_order_relaxed);
  max_batch_.store(0, std::memory_order_relaxed);
  // pending_batches_ is a live gauge, not an accumulator: resetting it
  // while a batch is in flight would underflow on end_pending_batch().
  sim_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace autockt::eval
