#include "eval/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace autockt::eval {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  simulations += other.simulations;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  batch_calls += other.batch_calls;
  batch_points += other.batch_points;
  max_batch = std::max(max_batch, other.max_batch);
  pending_batches += other.pending_batches;
  sim_seconds += other.sim_seconds;
  newton_iterations += other.newton_iterations;
  symbolic_factorizations += other.symbolic_factorizations;
  numeric_factorizations += other.numeric_factorizations;
  dense_fallbacks += other.dense_fallbacks;
  warm_start_attempts += other.warm_start_attempts;
  warm_start_hits += other.warm_start_hits;
  batch_refactorizations += other.batch_refactorizations;
  batch_lanes += other.batch_lanes;
  batch_lane_fallbacks += other.batch_lane_fallbacks;
  disk_hits += other.disk_hits;
  disk_appends += other.disk_appends;
  worker_dispatches += other.worker_dispatches;
  worker_retries += other.worker_retries;
  worker_restarts += other.worker_restarts;
  return *this;
}

EvalStats EvalStats::operator+(const EvalStats& other) const {
  EvalStats out = *this;
  out += other;
  return out;
}

EvalStats EvalStats::since(const EvalStats& before) const {
  EvalStats out;
  out.simulations = simulations - before.simulations;
  out.cache_hits = cache_hits - before.cache_hits;
  out.cache_misses = cache_misses - before.cache_misses;
  out.batch_calls = batch_calls - before.batch_calls;
  out.batch_points = batch_points - before.batch_points;
  out.max_batch = max_batch;            // a high-water mark does not subtract
  out.pending_batches = pending_batches;  // a gauge does not subtract either
  out.sim_seconds = sim_seconds - before.sim_seconds;
  out.newton_iterations = newton_iterations - before.newton_iterations;
  out.symbolic_factorizations =
      symbolic_factorizations - before.symbolic_factorizations;
  out.numeric_factorizations =
      numeric_factorizations - before.numeric_factorizations;
  out.dense_fallbacks = dense_fallbacks - before.dense_fallbacks;
  out.warm_start_attempts = warm_start_attempts - before.warm_start_attempts;
  out.warm_start_hits = warm_start_hits - before.warm_start_hits;
  out.batch_refactorizations =
      batch_refactorizations - before.batch_refactorizations;
  out.batch_lanes = batch_lanes - before.batch_lanes;
  out.batch_lane_fallbacks =
      batch_lane_fallbacks - before.batch_lane_fallbacks;
  out.disk_hits = disk_hits - before.disk_hits;
  out.disk_appends = disk_appends - before.disk_appends;
  out.worker_dispatches = worker_dispatches - before.worker_dispatches;
  out.worker_retries = worker_retries - before.worker_retries;
  out.worker_restarts = worker_restarts - before.worker_restarts;
  return out;
}

double EvalStats::cache_hit_rate() const {
  const long total = cache_lookups();
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits) /
                          static_cast<double>(total);
}

double EvalStats::mean_batch_size() const {
  return batch_calls == 0 ? 0.0
                          : static_cast<double>(batch_points) /
                                static_cast<double>(batch_calls);
}

double EvalStats::warm_start_hit_rate() const {
  return warm_start_attempts == 0
             ? 0.0
             : static_cast<double>(warm_start_hits) /
                   static_cast<double>(warm_start_attempts);
}

std::vector<std::pair<const char*, double>> EvalStats::fields() const {
  return {
      {"simulations", static_cast<double>(simulations)},
      {"cache_hits", static_cast<double>(cache_hits)},
      {"cache_misses", static_cast<double>(cache_misses)},
      {"batch_calls", static_cast<double>(batch_calls)},
      {"batch_points", static_cast<double>(batch_points)},
      {"max_batch", static_cast<double>(max_batch)},
      {"pending_batches", static_cast<double>(pending_batches)},
      {"sim_seconds", sim_seconds},
      {"newton_iterations", static_cast<double>(newton_iterations)},
      {"symbolic_factorizations", static_cast<double>(symbolic_factorizations)},
      {"numeric_factorizations", static_cast<double>(numeric_factorizations)},
      {"dense_fallbacks", static_cast<double>(dense_fallbacks)},
      {"warm_start_attempts", static_cast<double>(warm_start_attempts)},
      {"warm_start_hits", static_cast<double>(warm_start_hits)},
      {"batch_refactorizations", static_cast<double>(batch_refactorizations)},
      {"batch_lanes", static_cast<double>(batch_lanes)},
      {"batch_lane_fallbacks", static_cast<double>(batch_lane_fallbacks)},
      {"disk_hits", static_cast<double>(disk_hits)},
      {"disk_appends", static_cast<double>(disk_appends)},
      {"worker_dispatches", static_cast<double>(worker_dispatches)},
      {"worker_retries", static_cast<double>(worker_retries)},
      {"worker_restarts", static_cast<double>(worker_restarts)},
  };
}

std::string EvalStats::summary() const {
  // Rendered from fields() so a new counter can never be silently missing
  // from the dump (the format is pinned by tests/test_eval.cpp).
  std::string out;
  out.reserve(384);
  char buf[64];
  for (const auto& [name, value] : fields()) {
    if (!out.empty()) out.push_back(' ');
    if (std::string_view(name) == "sim_seconds") {
      std::snprintf(buf, sizeof(buf), "%s=%.3f", name, value);
    } else {
      std::snprintf(buf, sizeof(buf), "%s=%ld", name,
                    static_cast<long>(value));
    }
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                " cache_hit_rate=%.1f%% warm_start_hit_rate=%.1f%%",
                100.0 * cache_hit_rate(), 100.0 * warm_start_hit_rate());
  out += buf;
  return out;
}

EvalStats StatsCollector::snapshot() const {
  EvalStats s;
  s.simulations = simulations_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  s.batch_points = batch_points_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.pending_batches = pending_batches_.load(std::memory_order_relaxed);
  s.sim_seconds =
      static_cast<double>(sim_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.disk_appends = disk_appends_.load(std::memory_order_relaxed);
  s.worker_dispatches = worker_dispatches_.load(std::memory_order_relaxed);
  s.worker_retries = worker_retries_.load(std::memory_order_relaxed);
  s.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  return s;
}

void StatsCollector::reset() {
  simulations_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  batch_calls_.store(0, std::memory_order_relaxed);
  batch_points_.store(0, std::memory_order_relaxed);
  max_batch_.store(0, std::memory_order_relaxed);
  // pending_batches_ is a live gauge, not an accumulator: resetting it
  // while a batch is in flight would underflow on end_pending_batch().
  sim_nanos_.store(0, std::memory_order_relaxed);
  disk_hits_.store(0, std::memory_order_relaxed);
  disk_appends_.store(0, std::memory_order_relaxed);
  worker_dispatches_.store(0, std::memory_order_relaxed);
  worker_retries_.store(0, std::memory_order_relaxed);
  worker_restarts_.store(0, std::memory_order_relaxed);
}

}  // namespace autockt::eval
