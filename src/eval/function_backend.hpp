#pragma once
// FunctionBackend: the leaf of every backend stack — adapts a plain
// simulator callable (the lambdas the problem factories build) into the
// EvalBackend interface, charging each call to the simulation counter and
// the simulator wall-time clock. Exceptions escaping the callable are
// converted to Error results so one bad design point cannot take down a
// batch worker.

#include <string>
#include <utility>

#include "eval/backend.hpp"

namespace autockt::eval {

class FunctionBackend : public EvalBackend {
 public:
  explicit FunctionBackend(EvalFn fn, std::string name = "function")
      : fn_([f = std::move(fn)](const ParamVector& p, OpHint*) {
          return f(p);
        }),
        name_(std::move(name)) {}

  /// Hint-aware callable: receives the caller's warm-start slot (slot 0 of
  /// the threaded SimHint; null on cold starts).
  explicit FunctionBackend(HintedEvalFn fn, std::string name = "function")
      : fn_(std::move(fn)), name_(std::move(name)) {}

  std::string name() const override { return name_; }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override;

 private:
  HintedEvalFn fn_;
  std::string name_;
};

}  // namespace autockt::eval
