#pragma once
// FunctionBackend: the leaf of every backend stack — adapts a plain
// simulator callable (the lambdas the problem factories build) into the
// EvalBackend interface, charging each call to the simulation counter and
// the simulator wall-time clock. Exceptions escaping the callable are
// converted to Error results so one bad design point cannot take down a
// batch worker.

#include <string>
#include <utility>

#include "eval/backend.hpp"

namespace autockt::eval {

class FunctionBackend : public EvalBackend {
 public:
  explicit FunctionBackend(EvalFn fn, std::string name = "function")
      : fn_([f = std::move(fn)](const ParamVector& p, OpHint*) {
          return f(p);
        }),
        name_(std::move(name)) {}

  /// Hint-aware callable: receives the caller's warm-start slot (slot 0 of
  /// the threaded SimHint; null on cold starts).
  explicit FunctionBackend(HintedEvalFn fn, std::string name = "function")
      : fn_(std::move(fn)), name_(std::move(name)) {}

  /// Batch-aware leaf: scalar calls go through `fn`, whole batches through
  /// `batch_fn` as ONE batched-kernel invocation (lanes of the SoA numeric
  /// kernel). Both callables must agree point-for-point.
  FunctionBackend(HintedEvalFn fn, BatchEvalFn batch_fn,
                  std::string name = "function")
      : fn_(std::move(fn)),
        batch_fn_(std::move(batch_fn)),
        name_(std::move(name)) {}

  std::string name() const override { return name_; }

  bool prefers_batch() const override { return batch_fn_ != nullptr; }

 protected:
  EvalResult do_evaluate(const ParamVector& params, SimHint* hint) override;

  std::vector<EvalResult> do_evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<SimHint*>& hints) override;

 private:
  HintedEvalFn fn_;
  BatchEvalFn batch_fn_;
  std::string name_;
};

}  // namespace autockt::eval
