#include "eval/function_backend.hpp"

#include <chrono>
#include <exception>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::eval {

EvalResult FunctionBackend::do_evaluate(const ParamVector& params,
                                        SimHint* hint) {
  trace::TraceSpan span(trace::names::kEvalSimulate);
  const auto t0 = std::chrono::steady_clock::now();
  EvalResult result = [&]() -> EvalResult {
    try {
      return fn_(params, hint != nullptr ? &hint->slot(0) : nullptr);
    } catch (const std::exception& e) {
      return util::Error{std::string("evaluator threw: ") + e.what(), -1};
    } catch (...) {
      return util::Error{"evaluator threw a non-std exception", -1};
    }
  }();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  counters_.add_simulations(1, dt.count());
  return result;
}

std::vector<EvalResult> FunctionBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<SimHint*>& hints) {
  if (batch_fn_ == nullptr) {
    // No batched simulator: inherit the serial-loop semantics.
    return EvalBackend::do_evaluate_batch(points, hints);
  }
  trace::TraceSpan span(trace::names::kEvalSimulate);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<OpHint*> op_hints(points.size(), nullptr);
  for (std::size_t i = 0; i < points.size(); ++i) {
    SimHint* hint = hint_at(hints, i);
    if (hint != nullptr) op_hints[i] = &hint->slot(0);
  }
  std::vector<EvalResult> results = [&]() -> std::vector<EvalResult> {
    try {
      return batch_fn_(points, op_hints);
    } catch (const std::exception& e) {
      return std::vector<EvalResult>(
          points.size(),
          EvalResult(util::Error{std::string("evaluator threw: ") + e.what(),
                                 -1}));
    } catch (...) {
      return std::vector<EvalResult>(
          points.size(),
          EvalResult(util::Error{"evaluator threw a non-std exception", -1}));
    }
  }();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  counters_.add_simulations(static_cast<long>(points.size()), dt.count());
  return results;
}

}  // namespace autockt::eval
