#include "eval/function_backend.hpp"

#include <chrono>
#include <exception>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::eval {

EvalResult FunctionBackend::do_evaluate(const ParamVector& params,
                                        SimHint* hint) {
  trace::TraceSpan span(trace::names::kEvalSimulate);
  const auto t0 = std::chrono::steady_clock::now();
  EvalResult result = [&]() -> EvalResult {
    try {
      return fn_(params, hint != nullptr ? &hint->slot(0) : nullptr);
    } catch (const std::exception& e) {
      return util::Error{std::string("evaluator threw: ") + e.what(), -1};
    } catch (...) {
      return util::Error{"evaluator threw a non-std exception", -1};
    }
  }();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  counters_.add_simulations(1, dt.count());
  return result;
}

}  // namespace autockt::eval
