#include "eval/disk_log_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "trace/names.hpp"
#include "trace/trace.hpp"
#include "util/fmt.hpp"

namespace autockt::eval {
namespace {

constexpr const char* kMagic = "autockt-evalcache-v1";

std::string format_hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex_u64(std::string_view text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : text) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | digit;
  }
  *out = bits;
  return true;
}

/// Error messages may contain spaces and newlines; hex-encode the bytes so
/// a record stays a single whitespace-tokenized line. "-" encodes empty.
std::string encode_bytes(const std::string& bytes) {
  if (bytes.empty()) return "-";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

bool decode_bytes(const std::string& text, std::string* out) {
  out->clear();
  if (text == "-") return true;
  if (text.size() % 2 != 0) return false;
  auto nibble = [](char c, unsigned* v) {
    if (c >= '0' && c <= '9') {
      *v = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      *v = static_cast<unsigned>(c - 'a') + 10;
    } else {
      return false;
    }
    return true;
  };
  out->reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    unsigned hi, lo;
    if (!nibble(text[i], &hi) || !nibble(text[i + 1], &lo)) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// Parse one record line (without the trailing '\n'). Returns false on any
/// malformation — including a checksum mismatch — which the replay loop
/// treats as the start of a torn tail.
bool parse_record(const std::string& line, ParamVector* key,
                  EvalResult* value) {
  const std::size_t c_pos = line.rfind(" C ");
  if (c_pos == std::string::npos) return false;
  const std::string body = line.substr(0, c_pos);
  std::uint64_t want = 0;
  if (!parse_hex_u64(std::string_view(line).substr(c_pos + 3), &want)) {
    return false;
  }
  if (fingerprint64(body) != want) return false;

  std::istringstream in(body);
  std::string tag;
  std::size_t nk = 0;
  if (!(in >> tag >> nk) || tag != "R") return false;
  key->clear();
  key->reserve(nk);
  for (std::size_t i = 0; i < nk; ++i) {
    int k;
    if (!(in >> k)) return false;
    key->push_back(k);
  }
  if (!(in >> tag)) return false;
  if (tag == "S") {
    std::size_t nv = 0;
    if (!(in >> nv)) return false;
    SpecVector specs;
    specs.reserve(nv);
    for (std::size_t i = 0; i < nv; ++i) {
      std::string hex;
      double d;
      if (!(in >> hex) || !util::parse_hex_bits(hex, &d)) return false;
      specs.push_back(d);
    }
    *value = EvalResult(std::move(specs));
  } else if (tag == "F") {
    util::Error err;
    std::string msg_hex;
    if (!(in >> err.code >> err.line >> err.col >> msg_hex)) return false;
    if (!decode_bytes(msg_hex, &err.message)) return false;
    *value = EvalResult(std::move(err));
  } else {
    return false;
  }
  // Trailing garbage after a well-formed body would have broken the
  // checksum already; nothing further to verify.
  return true;
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

std::string shard_path(const std::string& dir, std::size_t i) {
  return dir + "/memo-" + std::to_string(i) + ".log";
}

util::Error open_error(std::string message) {
  return util::Error{std::move(message), /*code=*/1};
}

}  // namespace

std::string DiskLogStore::encode_record(const ParamVector& key,
                                        const EvalResult& value) {
  std::string body = "R " + std::to_string(key.size());
  for (int k : key) {
    body += ' ';
    body += std::to_string(k);
  }
  if (value.ok()) {
    const SpecVector& specs = value.value();
    body += " S " + std::to_string(specs.size());
    for (double d : specs) {
      body += ' ';
      body += util::format_hex_bits(d);
    }
  } else {
    const util::Error& err = value.error();
    body += " F " + std::to_string(err.code) + ' ' +
            std::to_string(err.line) + ' ' + std::to_string(err.col) + ' ' +
            encode_bytes(err.message);
  }
  return body;
}

DiskLogStore::DiskLogStore(std::string dir, std::uint64_t fingerprint,
                           Options options)
    : dir_(std::move(dir)),
      fingerprint_(fingerprint),
      options_(options),
      index_(options.index_shards) {}

util::Expected<std::shared_ptr<DiskLogStore>> DiskLogStore::open(
    const std::string& dir, std::uint64_t fingerprint,
    const Options& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return open_error("eval cache: cannot create directory '" + dir +
                      "': " + ec.message());
  }

  // Infer the shard count from the directory; a fresh cache uses the
  // requested count.
  std::size_t existing = 0;
  while (std::filesystem::exists(shard_path(dir, existing))) ++existing;
  const bool fresh = existing == 0;
  const std::size_t n_files =
      fresh ? std::max<std::size_t>(1, options.file_shards) : existing;

  auto store = std::shared_ptr<DiskLogStore>(
      new DiskLogStore(dir, fingerprint, options));
  trace::TraceSpan replay_span(trace::names::kEvalDiskReplay);

  for (std::size_t i = 0; i < n_files; ++i) {
    const std::string path = shard_path(dir, i);
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      return open_error("eval cache: cannot open '" + path +
                        "': " + std::strerror(errno));
    }
    auto file = std::make_unique<File>();
    file->fd = fd;
    store->files_.push_back(std::move(file));

    const std::string header = std::string(kMagic) +
                               " fp=" + format_hex_u64(fingerprint) +
                               " shard=" + std::to_string(i) + "/" +
                               std::to_string(n_files) + "\n";
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      return open_error("eval cache: cannot stat '" + path +
                        "': " + std::strerror(errno));
    }
    if (st.st_size == 0) {
      if (!write_all(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
        return open_error("eval cache: cannot initialize '" + path +
                          "': " + std::strerror(errno));
      }
      continue;
    }

    // Existing shard: verify the header, then replay records until the
    // first torn/corrupt one.
    std::string content(static_cast<std::size_t>(st.st_size), '\0');
    std::size_t got = 0;
    while (got < content.size()) {
      ssize_t r = ::pread(fd, content.data() + got, content.size() - got,
                          static_cast<off_t>(got));
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) {
        return open_error("eval cache: cannot read '" + path +
                          "': " + std::strerror(errno));
      }
      got += static_cast<std::size_t>(r);
    }

    const std::size_t header_end = content.find('\n');
    if (header_end == std::string::npos) {
      return open_error("eval cache: '" + path +
                        "' has no header line (not an eval cache?)");
    }
    const std::string header_line = content.substr(0, header_end);
    std::istringstream hin(header_line);
    std::string magic, fp_tok, shard_tok;
    if (!(hin >> magic >> fp_tok >> shard_tok) || magic != kMagic ||
        fp_tok.rfind("fp=", 0) != 0) {
      return open_error("eval cache: '" + path +
                        "' is not an autockt eval cache (bad header '" +
                        header_line + "')");
    }
    std::uint64_t file_fp = 0;
    if (!parse_hex_u64(std::string_view(fp_tok).substr(3), &file_fp)) {
      return open_error("eval cache: '" + path + "' has a malformed header");
    }
    if (file_fp != fingerprint) {
      return open_error(
          "eval cache: '" + path + "' was written for problem fingerprint " +
          format_hex_u64(file_fp) + " but this problem fingerprints as " +
          format_hex_u64(fingerprint) +
          " — refusing to replay a cache for a different problem definition");
    }

    std::size_t good_end = header_end + 1;
    std::size_t pos = good_end;
    bool torn = false;
    while (pos < content.size()) {
      const std::size_t nl = content.find('\n', pos);
      if (nl == std::string::npos) {
        torn = true;  // tail record was cut mid-write
        break;
      }
      ParamVector key;
      EvalResult value = EvalResult(SpecVector{});
      if (!parse_record(content.substr(pos, nl - pos), &key, &value)) {
        torn = true;  // corrupt record: everything after it is suspect
        break;
      }
      if (store->index_.insert_replayed(key, value)) {
        ++store->replayed_entries_;
      }
      pos = nl + 1;
      good_end = pos;
    }
    if (torn) {
      if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
        return open_error("eval cache: cannot repair torn tail of '" + path +
                          "': " + std::strerror(errno));
      }
    }
  }
  return store;
}

DiskLogStore::~DiskLogStore() {
  flush();
  for (auto& file : files_) {
    if (file->fd >= 0) ::close(file->fd);
  }
}

DiskLogStore::File& DiskLogStore::file_for(const ParamVector& key) {
  return *files_[ParamVectorHash{}(key) % files_.size()];
}

void DiskLogStore::freeze_failed_locked(File& file, const char* what) {
  // A failed (possibly partial) write leaves a torn record at the tail.
  // That tail is harmless exactly as long as it STAYS the tail — open()
  // truncates at the first bad record — but appending more would bury it
  // mid-file and cost every good record written after it. So the shard
  // goes read-only: lookups keep being served from the index, new entries
  // simply stop persisting.
  file.failed = true;
  write_errors_.fetch_add(1, std::memory_order_relaxed);
  trace::counter(trace::names::kEvalDiskWriteError);
  std::fprintf(stderr,
               "autockt: eval cache: %s failed (%s) in '%s'; freezing this "
               "shard read-only — cached lookups continue, new entries on "
               "this shard will not persist across restarts\n",
               what, std::strerror(errno), dir_.c_str());
}

bool DiskLogStore::append(File& file, const std::string& record) {
  std::lock_guard<std::mutex> lock(file.mutex);
  if (file.failed) return false;
  // O_APPEND makes each write atomic with respect to concurrent appenders
  // on the same fd; a crash mid-write can only tear the final record.
  if (!write_all(file.fd, record.data(), record.size())) {
    freeze_failed_locked(file, "shard write");
    return false;
  }
  if (++file.unsynced >= options_.fsync_every) {
    if (::fsync(file.fd) != 0) {
      // After a failed fsync the kernel may have dropped the dirty pages;
      // durability of earlier records is no longer certain — stop here
      // rather than silently pretending later appends are safe.
      freeze_failed_locked(file, "shard fsync");
      return false;
    }
    file.unsynced = 0;
  }
  return true;
}

bool DiskLogStore::lookup(const ParamVector& key, EvalResult* out,
                          bool* replayed) {
  return index_.lookup(key, out, replayed);
}

bool DiskLogStore::insert(const ParamVector& key, const EvalResult& value) {
  if (!index_.insert(key, value)) return false;  // lost the race: no dup log
  std::string record = encode_record(key, value);
  std::uint64_t checksum = fingerprint64(record);
  record += " C " + format_hex_u64(checksum) + "\n";
  if (append(file_for(key), record)) {
    trace::counter(trace::names::kEvalDiskAppend);
  }
  return true;
}

void DiskLogStore::flush() {
  for (auto& file : files_) {
    std::lock_guard<std::mutex> lock(file->mutex);
    if (file->fd >= 0 && !file->failed && file->unsynced > 0) {
      if (::fsync(file->fd) != 0) {
        freeze_failed_locked(*file, "shard fsync");
        continue;
      }
      file->unsynced = 0;
    }
  }
}

std::string DiskLogStore::describe() const {
  return "disk:" + dir_;
}

}  // namespace autockt::eval
