#include "eval/cached_backend.hpp"

#include <unordered_map>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::eval {

CachedBackend::CachedBackend(std::shared_ptr<EvalBackend> inner,
                             std::size_t shards)
    : inner_(std::move(inner)),
      store_(std::make_shared<InMemoryStore>(shards)) {}

CachedBackend::CachedBackend(std::shared_ptr<EvalBackend> inner,
                             std::shared_ptr<MemoStore> store)
    : inner_(std::move(inner)), store_(std::move(store)) {}

void CachedBackend::count_hit(bool replayed) {
  counters_.add_cache_hit();
  trace::counter(trace::names::kEvalCacheHit);
  if (replayed) {
    // The entry came off the on-disk log at open(): this hit is a
    // simulation a PREVIOUS process paid for.
    counters_.add_disk_hit();
    trace::counter(trace::names::kEvalDiskHit);
  }
}

void CachedBackend::memoize(const ParamVector& params,
                            const EvalResult& result) {
  // Simulator failures are memoized like successes (a non-converging point
  // must not be re-simulated), but TRANSPORT failures — a pool worker that
  // crashed or timed out — are transient and must not be: with a persistent
  // store one flaky timeout would durably poison the entry and every warm
  // run would replay the spurious error instead of re-simulating.
  if (is_transport_error(result)) return;
  if (store_->insert(params, result) && store_->persistent()) {
    counters_.add_disk_append();
  }
}

EvalResult CachedBackend::do_evaluate(const ParamVector& params,
                                      SimHint* hint) {
  EvalResult cached = EvalResult(SpecVector{});
  bool replayed = false;
  if (store_->lookup(params, &cached, &replayed)) {
    count_hit(replayed);
    return cached;
  }
  // Simulate outside the store's stripe locks; concurrent misses on the
  // same key may both simulate, but the evaluator is a pure function so
  // either insert wins with the same value.
  counters_.add_cache_miss();
  trace::counter(trace::names::kEvalCacheMiss);
  EvalResult result = inner_->evaluate(params, hint);
  memoize(params, result);
  return result;
}

std::vector<EvalResult> CachedBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<SimHint*>& hints) {
  std::vector<EvalResult> out(points.size(), EvalResult(SpecVector{}));

  // Pass 1: serve hits, collect unique misses (a miss keeps the warm-start
  // hint of its FIRST occurrence — exactly what the serial loop would use).
  std::vector<ParamVector> misses;
  std::vector<SimHint*> miss_hints;
  std::unordered_map<ParamVector, std::vector<std::size_t>, ParamVectorHash>
      miss_slots;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool replayed = false;
    if (store_->lookup(points[i], &out[i], &replayed)) {
      count_hit(replayed);
      continue;
    }
    auto [slot_it, inserted] = miss_slots.try_emplace(points[i]);
    if (inserted) {
      counters_.add_cache_miss();
      trace::counter(trace::names::kEvalCacheMiss);
      misses.push_back(points[i]);
      miss_hints.push_back(hint_at(hints, i));
    } else {
      // A duplicate of an in-flight miss: costs no extra simulation.
      count_hit(/*replayed=*/false);
    }
    slot_it->second.push_back(i);
  }

  // Pass 2: one (smaller) batch below for the unique misses, preserving any
  // fan-out machinery underneath.
  if (!misses.empty()) {
    std::vector<EvalResult> fresh = dispatch_batch(*inner_, misses, miss_hints);
    for (std::size_t m = 0; m < misses.size(); ++m) {
      memoize(misses[m], fresh[m]);
      for (std::size_t slot : miss_slots[misses[m]]) {
        out[slot] = fresh[m];
      }
    }
  }
  return out;
}

}  // namespace autockt::eval
