#include "eval/cached_backend.hpp"

#include <algorithm>

#include "trace/names.hpp"
#include "trace/trace.hpp"

namespace autockt::eval {

std::size_t CachedBackend::VectorHash::operator()(const ParamVector& v) const {
  // FNV-1a over the index words; grid indices are small so byte mixing is
  // plenty to spread shards and buckets.
  std::size_t h = 1469598103934665603ULL;
  for (int x : v) {
    h ^= static_cast<std::size_t>(static_cast<unsigned>(x));
    h *= 1099511628211ULL;
  }
  return h;
}

CachedBackend::CachedBackend(std::shared_ptr<EvalBackend> inner,
                             std::size_t shards)
    : inner_(std::move(inner)) {
  shards_.reserve(std::max<std::size_t>(1, shards));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CachedBackend::Shard& CachedBackend::shard_for(
    const ParamVector& params) const {
  return *shards_[VectorHash{}(params) % shards_.size()];
}

std::size_t CachedBackend::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->map.size();
  }
  return n;
}

void CachedBackend::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
  }
}

EvalResult CachedBackend::do_evaluate(const ParamVector& params,
                                      SimHint* hint) {
  Shard& shard = shard_for(params);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(params);
    if (it != shard.map.end()) {
      counters_.add_cache_hit();
      trace::counter(trace::names::kEvalCacheHit);
      return it->second;
    }
  }
  // Simulate outside the stripe lock; concurrent misses on the same key may
  // both simulate, but the evaluator is a pure function so either insert
  // wins with the same value.
  counters_.add_cache_miss();
  trace::counter(trace::names::kEvalCacheMiss);
  EvalResult result = inner_->evaluate(params, hint);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.emplace(params, result);
  }
  return result;
}

std::vector<EvalResult> CachedBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<SimHint*>& hints) {
  std::vector<EvalResult> out(points.size(), EvalResult(SpecVector{}));

  // Pass 1: serve hits, collect unique misses (a miss keeps the warm-start
  // hint of its FIRST occurrence — exactly what the serial loop would use).
  std::vector<ParamVector> misses;
  std::vector<SimHint*> miss_hints;
  std::unordered_map<ParamVector, std::vector<std::size_t>, VectorHash>
      miss_slots;
  for (std::size_t i = 0; i < points.size(); ++i) {
    Shard& shard = shard_for(points[i]);
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.map.find(points[i]);
      if (it != shard.map.end()) {
        out[i] = it->second;
        hit = true;
      }
    }
    if (hit) {
      counters_.add_cache_hit();
      trace::counter(trace::names::kEvalCacheHit);
      continue;
    }
    auto [slot_it, inserted] = miss_slots.try_emplace(points[i]);
    if (inserted) {
      counters_.add_cache_miss();
      trace::counter(trace::names::kEvalCacheMiss);
      misses.push_back(points[i]);
      miss_hints.push_back(hint_at(hints, i));
    } else {
      // A duplicate of an in-flight miss: costs no extra simulation.
      counters_.add_cache_hit();
      trace::counter(trace::names::kEvalCacheHit);
    }
    slot_it->second.push_back(i);
  }

  // Pass 2: one (smaller) batch below for the unique misses, preserving any
  // fan-out machinery underneath.
  if (!misses.empty()) {
    std::vector<EvalResult> fresh = dispatch_batch(*inner_, misses, miss_hints);
    for (std::size_t m = 0; m < misses.size(); ++m) {
      Shard& shard = shard_for(misses[m]);
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.map.emplace(misses[m], fresh[m]);
      }
      for (std::size_t slot : miss_slots[misses[m]]) {
        out[slot] = fresh[m];
      }
    }
  }
  return out;
}

}  // namespace autockt::eval
