#include "eval/process_pool_backend.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "trace/names.hpp"
#include "trace/trace.hpp"
#include "util/fmt.hpp"

namespace autockt::eval {
namespace {

// ---- binary wire format ---------------------------------------------------
// Little-endian, length-prefixed frames. Doubles travel as raw IEEE bit
// patterns (util/fmt.hpp casts) so replies are bitwise-identical to what
// the child computed — the foundation of the serial-parity contract.

void put_u8(std::string* b, std::uint8_t v) {
  b->push_back(static_cast<char>(v));
}
void put_u32(std::string* b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void put_u64(std::string* b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void put_i64(std::string* b, std::int64_t v) {
  put_u64(b, static_cast<std::uint64_t>(v));
}
void put_double(std::string* b, double v) {
  put_u64(b, util::double_to_bits(v));
}
void put_bytes(std::string* b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b->append(s);
}

/// Bounds-checked reader; any overrun flips `ok` and subsequent reads
/// return zeros (the caller checks `ok` once at the end).
struct Reader {
  const std::string& buf;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || buf.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[pos++]))
           << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return util::bits_to_double(u64()); }
  /// Non-consuming guard for count-prefixed arrays: true only when `count`
  /// elements of at least `min_size` bytes each could still fit in the
  /// remaining buffer. Checked BEFORE any resize(count), so a garbled count
  /// in an otherwise complete frame cannot provoke a multi-GB allocation
  /// (a bad_alloc thrown inside a shard thread would terminate the parent
  /// instead of taking the kill-and-retry path).
  bool bound(std::uint64_t count, std::size_t min_size) {
    if (!ok || count > (buf.size() - pos) / min_size) ok = false;
    return ok;
  }
  std::string bytes() {
    std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }
};

void encode_hint(std::string* b, const SimHint* hint) {
  if (hint == nullptr) {
    put_u8(b, 0);
    return;
  }
  put_u8(b, 1);
  put_u32(b, static_cast<std::uint32_t>(hint->ops.size()));
  for (const OpHint& op : hint->ops) {
    put_u8(b, op.valid ? 1 : 0);
    put_u32(b, static_cast<std::uint32_t>(op.node_v.size()));
    for (double v : op.node_v) put_double(b, v);
    put_u32(b, static_cast<std::uint32_t>(op.branch_i.size()));
    for (double v : op.branch_i) put_double(b, v);
  }
}

/// Returns true when a hint was present; fills *hint either way.
bool decode_hint(Reader* r, SimHint* hint) {
  hint->ops.clear();
  if (r->u8() == 0) return false;
  const std::uint32_t nops = r->u32();
  if (!r->bound(nops, 9)) return false;  // 9 = valid byte + two counts
  hint->ops.resize(nops);
  for (std::uint32_t i = 0; i < nops; ++i) {
    OpHint& op = hint->ops[i];
    op.valid = r->u8() != 0;
    const std::uint32_t nv = r->u32();
    if (!r->bound(nv, 8)) return false;
    op.node_v.resize(nv);
    for (double& v : op.node_v) v = r->f64();
    const std::uint32_t ni = r->u32();
    if (!r->bound(ni, 8)) return false;
    op.branch_i.resize(ni);
    for (double& v : op.branch_i) v = r->f64();
  }
  return true;
}

void encode_result(std::string* b, const EvalResult& result) {
  if (result.ok()) {
    put_u8(b, 1);
    const SpecVector& specs = result.value();
    put_u32(b, static_cast<std::uint32_t>(specs.size()));
    for (double v : specs) put_double(b, v);
  } else {
    put_u8(b, 0);
    const util::Error& err = result.error();
    put_i64(b, err.code);
    put_u64(b, err.line);
    put_u64(b, err.col);
    put_bytes(b, err.message);
  }
}

EvalResult decode_result(Reader* r) {
  if (r->u8() != 0) {
    const std::uint32_t nv = r->u32();
    if (!r->bound(nv, 8)) {
      return EvalResult(
          util::Error{"process pool: garbled worker reply",
                      /*code=*/kTransportErrorCode});
    }
    SpecVector specs(nv);
    for (double& v : specs) v = r->f64();
    return EvalResult(std::move(specs));
  }
  util::Error err;
  err.code = static_cast<int>(r->i64());
  err.line = static_cast<std::size_t>(r->u64());
  err.col = static_cast<std::size_t>(r->u64());
  err.message = r->bytes();
  return EvalResult(std::move(err));
}

void encode_stats(std::string* b, const EvalStats& s) {
  put_i64(b, s.simulations);
  put_i64(b, s.cache_hits);
  put_i64(b, s.cache_misses);
  put_i64(b, s.batch_calls);
  put_i64(b, s.batch_points);
  put_i64(b, s.max_batch);
  put_double(b, s.sim_seconds);
  put_i64(b, s.newton_iterations);
  put_i64(b, s.symbolic_factorizations);
  put_i64(b, s.numeric_factorizations);
  put_i64(b, s.dense_fallbacks);
  put_i64(b, s.warm_start_attempts);
  put_i64(b, s.warm_start_hits);
  put_i64(b, s.batch_refactorizations);
  put_i64(b, s.batch_lanes);
  put_i64(b, s.batch_lane_fallbacks);
  put_i64(b, s.disk_hits);
  put_i64(b, s.disk_appends);
  put_i64(b, s.worker_dispatches);
  put_i64(b, s.worker_retries);
  put_i64(b, s.worker_restarts);
}

EvalStats decode_stats(Reader* r) {
  EvalStats s;
  s.simulations = r->i64();
  s.cache_hits = r->i64();
  s.cache_misses = r->i64();
  s.batch_calls = r->i64();
  s.batch_points = r->i64();
  s.max_batch = r->i64();
  s.sim_seconds = r->f64();
  s.newton_iterations = r->i64();
  s.symbolic_factorizations = r->i64();
  s.numeric_factorizations = r->i64();
  s.dense_fallbacks = r->i64();
  s.warm_start_attempts = r->i64();
  s.warm_start_hits = r->i64();
  s.batch_refactorizations = r->i64();
  s.batch_lanes = r->i64();
  s.batch_lane_fallbacks = r->i64();
  s.disk_hits = r->i64();
  s.disk_appends = r->i64();
  s.worker_dispatches = r->i64();
  s.worker_retries = r->i64();
  s.worker_restarts = r->i64();
  return s;
}

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a crashed peer must surface as EPIPE, not kill the
    // parent with SIGPIPE.
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool send_frame(int fd, const std::string& payload) {
  std::string frame;
  frame.reserve(payload.size() + 4);
  put_u32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  return send_all(fd, frame.data(), frame.size());
}

/// Blocking receive (no deadline) — the child side, which waits forever
/// for the next request and exits on EOF.
bool recv_all_blocking(int fd, char* data, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;  // EOF or error
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool recv_frame_blocking(int fd, std::string* payload) {
  char len_buf[4];
  if (!recv_all_blocking(fd, len_buf, 4)) return false;
  std::string len_str(len_buf, 4);
  Reader r{len_str};
  const std::uint32_t len = r.u32();
  payload->assign(len, '\0');
  return len == 0 || recv_all_blocking(fd, payload->data(), len);
}

/// Deadline-bounded receive — the parent side. Returns false on timeout,
/// EOF or error.
bool recv_all_deadline(int fd, char* data, std::size_t n,
                       std::chrono::steady_clock::time_point deadline) {
  while (n > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const long wait_ms = static_cast<long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1);
    struct pollfd pfd{fd, POLLIN, 0};
    int p = ::poll(&pfd, 1, static_cast<int>(wait_ms));
    if (p < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (p == 0) return false;  // timed out
    ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (r <= 0) return false;
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool recv_frame_deadline(int fd, std::string* payload,
                         std::chrono::steady_clock::time_point deadline) {
  char len_buf[4];
  if (!recv_all_deadline(fd, len_buf, 4, deadline)) return false;
  std::string len_str(len_buf, 4);
  Reader r{len_str};
  const std::uint32_t len = r.u32();
  payload->assign(len, '\0');
  return len == 0 || recv_all_deadline(fd, payload->data(), len, deadline);
}

/// Deadline-bounded send — the parent side. MSG_DONTWAIT keeps each send
/// partial instead of blocking until everything is buffered; a full socket
/// buffer is waited out with poll(POLLOUT) only until the deadline. A child
/// that is alive but not reading (wedged mid-request) with a request larger
/// than the socketpair buffer therefore trips the same kill-and-retry path
/// as a crash, instead of blocking the shard thread forever while it holds
/// the worker mutex.
bool send_all_deadline(int fd, const char* data, std::size_t n,
                       std::chrono::steady_clock::time_point deadline) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      const long wait_ms = static_cast<long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count() +
          1);
      struct pollfd pfd{fd, POLLOUT, 0};
      int p = ::poll(&pfd, 1, static_cast<int>(wait_ms));
      if (p < 0 && errno != EINTR) return false;
      continue;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool send_frame_deadline(int fd, const std::string& payload,
                         std::chrono::steady_clock::time_point deadline) {
  std::string frame;
  frame.reserve(payload.size() + 4);
  put_u32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  return send_all_deadline(fd, frame.data(), frame.size(), deadline);
}

// ---- zygote control channel (SCM_RIGHTS fd passing) -----------------------

/// Zygote -> parent: one fixed-size status message (ok byte + worker pid),
/// with the worker's parent-end socket attached as ancillary data when ok.
bool send_spawn_reply(int sock, int worker_fd, pid_t worker_pid) {
  char payload[1 + sizeof(std::int64_t)];
  payload[0] = worker_fd >= 0 ? 1 : 0;
  const std::int64_t pid64 = static_cast<std::int64_t>(worker_pid);
  std::memcpy(payload + 1, &pid64, sizeof(pid64));
  struct iovec iov{payload, sizeof(payload)};
  struct msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  if (worker_fd >= 0) {
    std::memset(cbuf, 0, sizeof(cbuf));
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    struct cmsghdr* cm = CMSG_FIRSTHDR(&msg);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cm), &worker_fd, sizeof(int));
  }
  ssize_t w;
  do {
    w = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
  } while (w < 0 && errno == EINTR);
  return w == static_cast<ssize_t>(sizeof(payload));
}

/// Parent side of send_spawn_reply. Returns false only when the channel
/// itself is broken (EOF/error/short read) — a well-formed "fork failed"
/// reply returns true with *worker_fd left at -1.
bool recv_spawn_reply(int sock, int* worker_fd, pid_t* worker_pid) {
  *worker_fd = -1;
  *worker_pid = -1;
  char payload[1 + sizeof(std::int64_t)];
  struct iovec iov{payload, sizeof(payload)};
  struct msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);
  ssize_t r;
  do {
    r = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
  } while (r < 0 && errno == EINTR);
  if (r != static_cast<ssize_t>(sizeof(payload))) return false;
  int received_fd = -1;
  for (struct cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
       cm = CMSG_NXTHDR(&msg, cm)) {
    if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS) {
      std::memcpy(&received_fd, CMSG_DATA(cm), sizeof(int));
    }
  }
  if (payload[0] == 0) {
    if (received_fd >= 0) ::close(received_fd);  // malformed: drop the fd
    return true;
  }
  if (received_fd < 0) return true;  // malformed success: treat as failed
  std::int64_t pid64 = -1;
  std::memcpy(&pid64, payload + 1, sizeof(pid64));
  *worker_fd = received_fd;
  *worker_pid = static_cast<pid_t>(pid64);
  return true;
}

}  // namespace

// ---- lifecycle ------------------------------------------------------------

ProcessPoolBackend::ProcessPoolBackend(InnerFactory inner_factory,
                                       const Options& options)
    : inner_factory_(std::move(inner_factory)), options_(options) {
  // The zygote MUST fork here, while this process is still single-threaded
  // (the trainer has not spawned rollout threads yet) — that quiescent fork
  // is what makes every later worker spawn safe.
  start_zygote();
  const std::size_t n = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    spawn_worker_locked(*workers_.back());
  }
}

ProcessPoolBackend::~ProcessPoolBackend() {
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    if (worker->fd >= 0) {
      unregister_parent_fd(worker->fd);
      ::close(worker->fd);  // EOF tells the child to _exit cleanly
      worker->fd = -1;
    }
    if (worker->pid > 0) {
      if (worker->direct) {
        // Only fallback-forked workers are our children; zygote-spawned
        // ones are the zygote's (the kernel reaps them — see zygote_main).
        int status = 0;
        ::waitpid(worker->pid, &status, 0);
      }
      worker->pid = -1;
    }
  }
  shutdown_zygote();
}

void ProcessPoolBackend::register_parent_fd(int fd) {
  std::lock_guard<std::mutex> lock(parent_fds_mutex_);
  parent_fds_.push_back(fd);
}

void ProcessPoolBackend::unregister_parent_fd(int fd) {
  std::lock_guard<std::mutex> lock(parent_fds_mutex_);
  parent_fds_.erase(std::remove(parent_fds_.begin(), parent_fds_.end(), fd),
                    parent_fds_.end());
}

void ProcessPoolBackend::start_zygote() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return;
  }
  if (pid == 0) {
    ::close(fds[0]);
    zygote_main(fds[1]);  // never returns
  }
  ::close(fds[1]);
  zygote_fd_ = fds[0];
  zygote_pid_ = pid;
  register_parent_fd(zygote_fd_);
}

void ProcessPoolBackend::shutdown_zygote() {
  std::lock_guard<std::mutex> lock(zygote_mutex_);
  if (zygote_fd_ >= 0) {
    unregister_parent_fd(zygote_fd_);
    ::close(zygote_fd_);  // EOF: the zygote loop exits
    zygote_fd_ = -1;
  }
  if (zygote_pid_ > 0) {
    int status = 0;
    ::waitpid(zygote_pid_, &status, 0);
    zygote_pid_ = -1;
  }
}

void ProcessPoolBackend::zygote_main(int control_fd) {
  // The zygote stays single-threaded for its whole life, so its forks are
  // always safe: a worker may malloc and build thread pools immediately.
  // With SIGCHLD ignored the kernel reaps exited workers — no zombie
  // accumulates even though the parent never waits on grandchildren.
  ::signal(SIGCHLD, SIG_IGN);
  char cmd = 0;
  while (recv_all_blocking(control_fd, &cmd, 1)) {
    int pair[2] = {-1, -1};
    pid_t pid = -1;
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) == 0) {
      pid = ::fork();
      if (pid == 0) {
        // The worker: shed the zygote's descriptors, then serve. It
        // inherits nothing else — sibling workers' sockets live only in
        // the parent process.
        ::close(control_fd);
        ::close(pair[0]);
        child_main(pair[1]);  // never returns
      }
      ::close(pair[1]);
      if (pid < 0) {
        ::close(pair[0]);
        pair[0] = -1;
      }
    }
    const bool sent = send_spawn_reply(control_fd, pair[0], pid);
    if (pair[0] >= 0) ::close(pair[0]);  // parent holds its own copy now
    if (!sent) break;
  }
  ::_exit(0);
}

bool ProcessPoolBackend::spawn_via_zygote(int* fd, pid_t* pid) {
  std::lock_guard<std::mutex> lock(zygote_mutex_);
  if (zygote_fd_ < 0) return false;
  char cmd = 'S';
  if (!send_all(zygote_fd_, &cmd, 1) ||
      !recv_spawn_reply(zygote_fd_, fd, pid)) {
    // The control channel is broken — the zygote is gone. Close our end so
    // every later spawn falls straight back to direct forks.
    unregister_parent_fd(zygote_fd_);
    ::close(zygote_fd_);
    zygote_fd_ = -1;
    return false;
  }
  return *fd >= 0;
}

void ProcessPoolBackend::spawn_direct(int* out_fd, pid_t* out_pid) {
  // Snapshot the pool's open fds BEFORE forking, under the registry lock —
  // never by walking workers_ in the child, where a concurrent kill/spawn
  // could be mid-update and a reused fd number would make us close a
  // stranger's descriptor.
  std::vector<int> inherited;
  {
    std::lock_guard<std::mutex> lock(parent_fds_mutex_);
    inherited = parent_fds_;
  }
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return;
  }
  if (pid == 0) {
    ::close(fds[0]);
    for (int f : inherited) ::close(f);
    child_main(fds[1]);  // never returns
  }
  ::close(fds[1]);
  *out_fd = fds[0];
  *out_pid = pid;
}

void ProcessPoolBackend::spawn_worker_locked(Worker& worker) {
  worker.fd = -1;
  worker.pid = -1;
  worker.direct = false;
  if (spawn_via_zygote(&worker.fd, &worker.pid)) {
    register_parent_fd(worker.fd);
    return;
  }
  spawn_direct(&worker.fd, &worker.pid);
  if (worker.fd >= 0) {
    worker.direct = true;
    register_parent_fd(worker.fd);
  }
}

void ProcessPoolBackend::kill_worker_locked(Worker& worker) {
  if (worker.fd >= 0) {
    unregister_parent_fd(worker.fd);
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid > 0) {
    ::kill(worker.pid, SIGKILL);
    if (worker.direct) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
    }
    worker.pid = -1;
  }
}

// ---- child ----------------------------------------------------------------

void ProcessPoolBackend::child_main(int fd) {
  // Build the evaluation stack fresh in this process: anything the factory
  // creates (thread pools included) is born after the fork and works.
  std::shared_ptr<EvalBackend> inner;
  try {
    inner = inner_factory_();
  } catch (...) {
    ::_exit(3);
  }
  if (!inner) ::_exit(3);

  std::string request;
  std::string reply;
  std::vector<ParamVector> points;
  std::vector<SimHint> hints;
  std::vector<SimHint*> hint_ptrs;

  while (recv_frame_blocking(fd, &request)) {
    Reader r{request};
    const std::uint32_t n = r.u32();
    if (!r.bound(n, 4)) ::_exit(2);  // 4 = each point's own count prefix
    points.assign(n, ParamVector{});
    for (auto& p : points) {
      const std::uint32_t np = r.u32();
      if (!r.bound(np, 8)) ::_exit(2);
      p.resize(np);
      for (int& k : p) k = static_cast<int>(r.i64());
    }
    hints.assign(n, SimHint{});
    hint_ptrs.assign(n, nullptr);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (decode_hint(&r, &hints[i])) hint_ptrs[i] = &hints[i];
    }
    if (!r.ok) ::_exit(2);

    EvalStats before = inner->stats();
    if (options_.leaf_stats) before += options_.leaf_stats();

    std::vector<EvalResult> results;
    try {
      results = dispatch_batch(*inner, points, hint_ptrs);
    } catch (...) {
      ::_exit(2);  // parent sees the closed socket and retries per point
    }

    EvalStats after = inner->stats();
    if (options_.leaf_stats) after += options_.leaf_stats();

    reply.clear();
    put_u32(&reply, static_cast<std::uint32_t>(results.size()));
    for (const EvalResult& result : results) encode_result(&reply, result);
    for (std::uint32_t i = 0; i < n; ++i) {
      encode_hint(&reply, hint_ptrs[i]);
    }
    encode_stats(&reply, after.since(before));
    if (!send_frame(fd, reply)) break;
  }
  // EOF (normal shutdown) or a send failure: exit without running atexit
  // handlers — this process shares the parent's global state images.
  ::_exit(0);
}

// ---- parent ---------------------------------------------------------------

ProcessPoolBackend::Worker& ProcessPoolBackend::pick_worker() {
  const std::size_t i =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  return *workers_[i];
}

bool ProcessPoolBackend::round_trip(Worker& worker,
                                    const std::string& request,
                                    std::string* reply) {
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.fd < 0) spawn_worker_locked(worker);
  if (worker.fd < 0) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.request_timeout_ms);
  if (send_frame_deadline(worker.fd, request, deadline) &&
      recv_frame_deadline(worker.fd, reply, deadline)) {
    return true;
  }
  // Crash or deadline miss: replace the worker so the retry (and every
  // later request) lands on a healthy process.
  kill_worker_locked(worker);
  spawn_worker_locked(worker);
  counters_.add_worker_restart();
  trace::counter(trace::names::kEvalWorkerRestart);
  return false;
}

void ProcessPoolBackend::run_on_worker(Worker& worker,
                                       const std::vector<ParamVector>& points,
                                       const std::vector<SimHint*>& hints,
                                       std::vector<EvalResult>* out) {
  auto encode_request = [&](std::size_t begin, std::size_t end) {
    std::string request;
    put_u32(&request, static_cast<std::uint32_t>(end - begin));
    for (std::size_t i = begin; i < end; ++i) {
      put_u32(&request, static_cast<std::uint32_t>(points[i].size()));
      for (int k : points[i]) put_i64(&request, k);
    }
    for (std::size_t i = begin; i < end; ++i) {
      encode_hint(&request, hint_at(hints, i));
    }
    return request;
  };

  // Decode a reply for points [begin, end): results by input index, hint
  // write-back, and the child's stats delta folded into child_stats_.
  auto apply_reply = [&](const std::string& reply, std::size_t begin,
                         std::size_t end) {
    Reader r{reply};
    const std::uint32_t n = r.u32();
    if (n != end - begin) return false;
    for (std::size_t i = begin; i < end; ++i) {
      (*out)[i] = decode_result(&r);
    }
    SimHint decoded;
    for (std::size_t i = begin; i < end; ++i) {
      const bool present = decode_hint(&r, &decoded);
      SimHint* target = hint_at(hints, i);
      if (present && target != nullptr) target->ops = std::move(decoded.ops);
    }
    EvalStats delta = decode_stats(&r);
    if (!r.ok) return false;
    {
      std::lock_guard<std::mutex> lock(child_stats_mutex_);
      child_stats_ += delta;
    }
    return true;
  };

  auto dispatch = [&](std::size_t begin, std::size_t end) {
    trace::TraceSpan span(trace::names::kEvalWorkerDispatch);
    trace::counter(trace::names::kEvalWorkerPoints,
                   static_cast<std::int64_t>(end - begin));
    counters_.add_worker_dispatch();
    std::string reply;
    return round_trip(worker, encode_request(begin, end), &reply) &&
           apply_reply(reply, begin, end);
  };

  if (dispatch(0, points.size())) return;

  // The chunk failed (worker crash, timeout, or garbled reply). Retry each
  // point individually — once — so one poison point cannot poison its
  // chunk-mates' results.
  for (std::size_t i = 0; i < points.size(); ++i) {
    counters_.add_worker_retry();
    trace::counter(trace::names::kEvalWorkerRetry);
    if (dispatch(i, i + 1)) continue;
    (*out)[i] = util::Error{
        "process pool: worker crashed or timed out evaluating this point "
        "(retried once)",
        /*code=*/kTransportErrorCode};
  }
}

EvalResult ProcessPoolBackend::do_evaluate(const ParamVector& params,
                                           SimHint* hint) {
  std::vector<EvalResult> out(1, EvalResult(SpecVector{}));
  run_on_worker(pick_worker(), {params}, {hint}, &out);
  return out[0];
}

std::vector<EvalResult> ProcessPoolBackend::do_evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<SimHint*>& hints) {
  std::vector<EvalResult> out(points.size(), EvalResult(SpecVector{}));
  if (points.empty()) return out;

  // Contiguous, balanced shards — one request per worker. Reassembly is by
  // input index, so the output order (and content) matches the serial path
  // regardless of which worker finishes first.
  const std::size_t n_shards = std::min(workers_.size(), points.size());
  std::vector<std::pair<std::size_t, std::size_t>> shards;
  shards.reserve(n_shards);
  const std::size_t base = points.size() / n_shards;
  const std::size_t extra = points.size() % n_shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    shards.emplace_back(begin, begin + len);
    begin += len;
  }

  auto run_shard = [&](std::size_t s) {
    const auto [lo, hi] = shards[s];
    std::vector<ParamVector> shard_points(points.begin() + lo,
                                          points.begin() + hi);
    std::vector<SimHint*> shard_hints;
    shard_hints.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      shard_hints.push_back(hint_at(hints, i));
    }
    std::vector<EvalResult> shard_out(hi - lo, EvalResult(SpecVector{}));
    run_on_worker(*workers_[s % workers_.size()], shard_points, shard_hints,
                  &shard_out);
    for (std::size_t i = lo; i < hi; ++i) out[i] = shard_out[i - lo];
  };

  // The calling thread drives shard 0; one std::thread per further shard
  // keeps all round trips in flight concurrently.
  std::vector<std::thread> threads;
  threads.reserve(n_shards - 1);
  for (std::size_t s = 1; s < n_shards; ++s) {
    threads.emplace_back(run_shard, s);
  }
  run_shard(0);
  for (auto& t : threads) t.join();
  return out;
}

EvalStats ProcessPoolBackend::inner_stats() const {
  std::lock_guard<std::mutex> lock(child_stats_mutex_);
  return child_stats_;
}

void ProcessPoolBackend::reset_inner_stats() {
  std::lock_guard<std::mutex> lock(child_stats_mutex_);
  child_stats_ = EvalStats{};
}

}  // namespace autockt::eval
