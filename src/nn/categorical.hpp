#pragma once
// Categorical-distribution helpers for the factored multi-discrete policy
// head: each circuit parameter gets an independent 3-way (decrement / hold /
// increment) softmax over a slice of the policy network's output.

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace autockt::nn {

/// Numerically stable softmax of logits[offset, offset+k).
inline std::vector<double> softmax_slice(const std::vector<double>& logits,
                                         std::size_t offset, std::size_t k) {
  double max_logit = logits[offset];
  for (std::size_t i = 1; i < k; ++i) {
    max_logit = std::max(max_logit, logits[offset + i]);
  }
  std::vector<double> probs(k);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    probs[i] = std::exp(logits[offset + i] - max_logit);
    sum += probs[i];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

inline int sample_categorical(const std::vector<double>& probs,
                              util::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

inline int argmax(const std::vector<double>& probs) {
  int best = 0;
  for (std::size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

inline double entropy(const std::vector<double>& probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p > 1e-12) h -= p * std::log(p);
  }
  return h;
}

}  // namespace autockt::nn
