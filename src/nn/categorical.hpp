#pragma once
// Categorical-distribution helpers for the factored multi-discrete policy
// head: each circuit parameter gets an independent 3-way (decrement / hold /
// increment) softmax over a slice of the policy network's output.

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace autockt::nn {

/// Numerically stable softmax of logits[offset, offset+k).
inline std::vector<double> softmax_slice(const std::vector<double>& logits,
                                         std::size_t offset, std::size_t k) {
  double max_logit = logits[offset];
  for (std::size_t i = 1; i < k; ++i) {
    max_logit = std::max(max_logit, logits[offset + i]);
  }
  std::vector<double> probs(k);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    probs[i] = std::exp(logits[offset + i] - max_logit);
    sum += probs[i];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

inline int sample_categorical(const std::vector<double>& probs,
                              util::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

inline int argmax(const std::vector<double>& probs) {
  int best = 0;
  for (std::size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

// ---- batched factored heads -------------------------------------------------
// Helpers over a batch of logit rows (as produced by Mlp::forward_batch):
// each row holds `heads` contiguous k-way slices. Row r draws from its own
// RNG stream, so batched sampling is bitwise-identical to per-row
// sample_categorical() loops on the same streams.

/// Sample one action per head for each row. `logits` is rows x (heads * k)
/// row-major; rngs[r] drives row r. Returns rows x heads actions row-major;
/// when `logps` is non-null it receives the per-row summed log-probability.
inline std::vector<int> sample_heads_batch(const std::vector<double>& logits,
                                           int rows, int heads, int k,
                                           const std::vector<util::Rng*>& rngs,
                                           std::vector<double>* logps) {
  std::vector<int> actions(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(heads));
  if (logps) logps->assign(static_cast<std::size_t>(rows), 0.0);
  const std::size_t stride =
      static_cast<std::size_t>(heads) * static_cast<std::size_t>(k);
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    double logp = 0.0;
    for (int h = 0; h < heads; ++h) {
      const auto probs = softmax_slice(
          logits, r * stride + static_cast<std::size_t>(h * k),
          static_cast<std::size_t>(k));
      const int a = sample_categorical(probs, *rngs[r]);
      actions[r * static_cast<std::size_t>(heads) +
              static_cast<std::size_t>(h)] = a;
      logp += std::log(std::max(probs[static_cast<std::size_t>(a)], 1e-12));
    }
    if (logps) (*logps)[r] = logp;
  }
  return actions;
}

/// Per-head argmax for each row; shapes as in sample_heads_batch().
inline std::vector<int> argmax_heads_batch(const std::vector<double>& logits,
                                           int rows, int heads, int k) {
  std::vector<int> actions(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(heads));
  const std::size_t stride =
      static_cast<std::size_t>(heads) * static_cast<std::size_t>(k);
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    for (int h = 0; h < heads; ++h) {
      const auto probs = softmax_slice(
          logits, r * stride + static_cast<std::size_t>(h * k),
          static_cast<std::size_t>(k));
      actions[r * static_cast<std::size_t>(heads) +
              static_cast<std::size_t>(h)] = argmax(probs);
    }
  }
  return actions;
}

inline double entropy(const std::vector<double>& probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p > 1e-12) h -= p * std::log(p);
  }
  return h;
}

}  // namespace autockt::nn
