#include "nn/mlp.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"

namespace autockt::nn {

Mlp::Mlp(std::vector<int> layer_sizes, Activation act, std::uint64_t seed,
         double final_scale)
    : sizes_(std::move(layer_sizes)), act_(act) {
  if (sizes_.size() < 2) {
    throw std::invalid_argument("Mlp needs at least input and output sizes");
  }
  std::size_t offset = 0;
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    Layer layer;
    layer.in = sizes_[i];
    layer.out = sizes_[i + 1];
    layer.w_off = offset;
    offset += static_cast<std::size_t>(layer.in) * layer.out;
    layer.b_off = offset;
    offset += static_cast<std::size_t>(layer.out);
    layers_.push_back(layer);
  }
  params_.assign(offset, 0.0);
  grads_.assign(offset, 0.0);

  // Xavier-uniform init; output layer additionally scaled.
  util::Rng rng(seed);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const double bound = std::sqrt(6.0 / (layer.in + layer.out));
    const double scale = li + 1 == layers_.size() ? final_scale : 1.0;
    for (int i = 0; i < layer.in * layer.out; ++i) {
      params_[layer.w_off + static_cast<std::size_t>(i)] =
          scale * rng.uniform(-bound, bound);
    }
    // biases start at zero
  }
}

double Mlp::activate(double v) const {
  return act_ == Activation::Tanh ? std::tanh(v) : (v > 0.0 ? v : 0.0);
}

double Mlp::activate_grad(double pre) const {
  if (act_ == Activation::Tanh) {
    const double t = std::tanh(pre);
    return 1.0 - t * t;
  }
  return pre > 0.0 ? 1.0 : 0.0;
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  std::vector<double> cur = x;
  std::vector<double> next;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    next.assign(static_cast<std::size_t>(layer.out), 0.0);
    const bool last = li + 1 == layers_.size();
    for (int o = 0; o < layer.out; ++o) {
      const double* w =
          params_.data() + layer.w_off + static_cast<std::size_t>(o) * layer.in;
      double acc = params_[layer.b_off + static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.in; ++i) {
        acc += w[i] * cur[static_cast<std::size_t>(i)];
      }
      next[static_cast<std::size_t>(o)] = last ? acc : activate(acc);
    }
    cur.swap(next);
  }
  return cur;
}

std::vector<double> Mlp::forward_batch(const std::vector<double>& x,
                                       int rows) const {
  if (rows < 0 ||
      x.size() != static_cast<std::size_t>(rows) *
                      static_cast<std::size_t>(sizes_.front())) {
    throw std::invalid_argument("Mlp::forward_batch: bad batch shape");
  }
  const std::size_t n = static_cast<std::size_t>(rows);
  std::vector<double> cur = x;
  std::vector<double> next;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const std::size_t in = static_cast<std::size_t>(layer.in);
    const std::size_t out = static_cast<std::size_t>(layer.out);
    next.resize(n * out);  // every element is written below
    const bool last = li + 1 == layers_.size();
    // GEMM loop order (o, r, i): the o-th weight row streams once from
    // params_ and is reused across all batch rows; the inner i-loop keeps
    // the exact accumulation order of the single-row forward().
    for (std::size_t o = 0; o < out; ++o) {
      const double* w = params_.data() + layer.w_off + o * in;
      const double b = params_[layer.b_off + o];
      for (std::size_t r = 0; r < n; ++r) {
        const double* xr = cur.data() + r * in;
        double acc = b;
        for (std::size_t i = 0; i < in; ++i) acc += w[i] * xr[i];
        next[r * out + o] = last ? acc : activate(acc);
      }
    }
    cur.swap(next);
  }
  return cur;
}

Mlp::Trace Mlp::forward_trace(const std::vector<double>& x) const {
  Trace trace;
  trace.inputs.reserve(layers_.size());
  std::vector<double> cur = x;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    trace.inputs.push_back(cur);
    std::vector<double> next(static_cast<std::size_t>(layer.out), 0.0);
    const bool last = li + 1 == layers_.size();
    for (int o = 0; o < layer.out; ++o) {
      const double* w =
          params_.data() + layer.w_off + static_cast<std::size_t>(o) * layer.in;
      double acc = params_[layer.b_off + static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.in; ++i) {
        acc += w[i] * cur[static_cast<std::size_t>(i)];
      }
      next[static_cast<std::size_t>(o)] = last ? acc : activate(acc);
    }
    cur.swap(next);
  }
  trace.output = cur;
  return trace;
}

std::vector<double> Mlp::backward(const Trace& trace,
                                  const std::vector<double>& d_output) {
  std::vector<double> d_cur = d_output;  // dLoss/d(post-activation of layer)
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const Layer& layer = layers_[li];
    const std::vector<double>& input = trace.inputs[li];
    const bool last = li + 1 == layers_.size();

    // dLoss/d(pre-activation), using the cached post-activations (for tanh,
    // d act/d pre = 1 - a^2; for relu, 1[a > 0]).
    const std::vector<double>& post =
        last ? trace.output : trace.inputs[li + 1];
    std::vector<double> d_pre(static_cast<std::size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double g = d_cur[static_cast<std::size_t>(o)];
      if (!last) {
        const double a = post[static_cast<std::size_t>(o)];
        g *= act_ == Activation::Tanh ? (1.0 - a * a) : (a > 0.0 ? 1.0 : 0.0);
      }
      d_pre[static_cast<std::size_t>(o)] = g;
    }

    // Parameter gradients.
    for (int o = 0; o < layer.out; ++o) {
      const double g = d_pre[static_cast<std::size_t>(o)];
      double* gw =
          grads_.data() + layer.w_off + static_cast<std::size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; ++i) {
        gw[i] += g * input[static_cast<std::size_t>(i)];
      }
      grads_[layer.b_off + static_cast<std::size_t>(o)] += g;
    }

    // Propagate to the layer input.
    std::vector<double> d_in(static_cast<std::size_t>(layer.in), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double g = d_pre[static_cast<std::size_t>(o)];
      const double* w =
          params_.data() + layer.w_off + static_cast<std::size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; ++i) {
        d_in[static_cast<std::size_t>(i)] += g * w[i];
      }
    }
    d_cur.swap(d_in);
  }
  return d_cur;
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

void Mlp::save(std::ostream& out) const {
  out << "mlp " << sizes_.size() << "\n";
  for (int s : sizes_) out << s << " ";
  out << "\n" << (act_ == Activation::Tanh ? "tanh" : "relu") << "\n";
  out.precision(17);
  for (double p : params_) out << p << " ";
  out << "\n";
}

Mlp Mlp::load(std::istream& in) {
  std::string magic;
  std::size_t n_sizes = 0;
  in >> magic >> n_sizes;
  if (magic != "mlp" || n_sizes < 2) {
    throw std::runtime_error("Mlp::load: bad header");
  }
  std::vector<int> sizes(n_sizes);
  for (auto& s : sizes) in >> s;
  std::string act_name;
  in >> act_name;
  Mlp mlp(sizes, act_name == "tanh" ? Activation::Tanh : Activation::Relu, 0);
  for (double& p : mlp.params_) in >> p;
  if (!in) throw std::runtime_error("Mlp::load: truncated weights");
  return mlp;
}

Adam::Adam(std::size_t n, double lr, double beta1, double beta2, double eps)
    : lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      m_(n, 0.0),
      v_(n, 0.0) {}

void Adam::step(std::vector<double>& params, const std::vector<double>& grads) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

}  // namespace autockt::nn
