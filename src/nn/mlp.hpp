#pragma once
// Minimal dense neural-network stack with hand-derived backpropagation:
// flat parameter storage (so the optimizer sees one contiguous vector),
// tanh hidden layers, linear output. This is the substrate for the PPO
// policy/value networks (paper: three layers of 50 neurons) and for the
// GA+ML baseline's discriminator.
//
// Inference (`forward`) is const and allocation-light, so multiple rollout
// workers can query one frozen network concurrently.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace autockt::nn {

enum class Activation { Tanh, Relu };

class Mlp {
 public:
  /// layer_sizes = {in, hidden..., out}. Hidden layers use `act`; the output
  /// layer is linear with weights scaled by `final_scale` at init (small
  /// values keep an initial policy near-uniform, which PPO likes).
  Mlp(std::vector<int> layer_sizes, Activation act, std::uint64_t seed,
      double final_scale = 1.0);

  int input_size() const { return sizes_.front(); }
  int output_size() const { return sizes_.back(); }

  /// Thread-safe inference.
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Batched thread-safe inference: `x` holds `rows` input vectors stacked
  /// row-major (rows * input_size values); returns rows * output_size,
  /// row-major. One matrix–matrix pass per layer, reusing each weight row
  /// across the whole batch; per-row accumulation order is identical to
  /// forward(), so row i equals forward(row i) bitwise.
  std::vector<double> forward_batch(const std::vector<double>& x,
                                    int rows) const;

  /// Cached activations for one forward pass, consumed by backward().
  struct Trace {
    std::vector<std::vector<double>> inputs;  // input to each layer
    std::vector<double> output;
  };
  Trace forward_trace(const std::vector<double>& x) const;

  /// Accumulate parameter gradients given dLoss/dOutput for the pass
  /// recorded in `trace`. Returns dLoss/dInput.
  std::vector<double> backward(const Trace& trace,
                               const std::vector<double>& d_output);

  void zero_grad();

  std::vector<double>& params() { return params_; }
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& grads() { return grads_; }

  std::size_t param_count() const { return params_.size(); }

  /// Text serialization (architecture + weights).
  void save(std::ostream& out) const;
  static Mlp load(std::istream& in);

 private:
  struct Layer {
    int in = 0, out = 0;
    std::size_t w_off = 0, b_off = 0;
  };

  double activate(double v) const;
  double activate_grad(double pre) const;

  std::vector<int> sizes_;
  Activation act_;
  std::vector<Layer> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;
};

/// Adam optimizer over a flat parameter vector.
class Adam {
 public:
  explicit Adam(std::size_t n, double lr = 3e-4, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  void step(std::vector<double>& params, const std::vector<double>& grads);
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::vector<double> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace autockt::nn
