#include "baselines/random_agent.hpp"

namespace autockt::baselines {

RandomAgentResult run_random_episode(env::SizingEnv& sizing_env,
                                     util::Rng& rng) {
  RandomAgentResult result;
  sizing_env.reset();
  const int n = sizing_env.num_params();
  std::vector<int> action(static_cast<std::size_t>(n), 1);
  for (;;) {
    for (int i = 0; i < n; ++i) {
      action[static_cast<std::size_t>(i)] = static_cast<int>(rng.bounded(
          static_cast<std::uint64_t>(env::SizingEnv::kActionsPerParam)));
    }
    auto sr = sizing_env.step(action);
    ++result.steps;
    if (sr.done) {
      result.reached = sr.goal_met;
      return result;
    }
  }
}

}  // namespace autockt::baselines
