#pragma once
// Internal shared machinery for the GA-family baselines: the serial-protocol
// batch evaluator. Generations are simulated through the problem's
// evaluation backend in whole-population evaluate_batch() calls (the
// backend may fan out over threads and dedup repeated genes), but
// individuals are *scored* in the historical one-at-a-time order, stopping
// at the first satisfying individual or the eval budget — so GaResult is
// bit-identical to the serial loop for a fixed seed. Both run_ga and
// run_ga_ml share this so their result contracts cannot drift apart.

#include <cstddef>
#include <functional>
#include <vector>

#include "baselines/genetic.hpp"
#include "circuits/sizing_problem.hpp"

namespace autockt::baselines::detail {

struct Individual {
  circuits::ParamVector genes;
  double fitness = -1e30;
  circuits::SpecVector specs;
};

class SerialProtocolEvaluator {
 public:
  /// `on_scored`, if set, observes every scored individual in processing
  /// order (the GA+ML discriminator dataset hook).
  SerialProtocolEvaluator(const circuits::SizingProblem& problem,
                          const circuits::SpecVector& target, long max_evals,
                          GaResult& result,
                          std::function<void(const Individual&)> on_scored = {})
      : problem_(problem),
        target_(target),
        max_evals_(max_evals),
        result_(result),
        on_scored_(std::move(on_scored)) {}

  long remaining_budget() const {
    return max_evals_ > result_.total_evals
               ? max_evals_ - result_.total_evals
               : 0;
  }

  /// Batch-simulate individuals [0, limit) of `group`, then score them in
  /// order; returns true when the run should stop (goal reached or budget
  /// exhausted — both can happen mid-batch, exactly like the serial loop).
  bool evaluate_group(std::vector<Individual>& group, std::size_t limit) {
    std::vector<circuits::ParamVector> points;
    points.reserve(limit);
    for (std::size_t i = 0; i < limit; ++i) points.push_back(group[i].genes);
    const auto batch = problem_.evaluate_batch(points);
    for (std::size_t i = 0; i < limit; ++i) {
      if (score(group[i], batch[i])) return true;
      if (result_.total_evals >= max_evals_) return true;
    }
    return false;
  }

 private:
  /// Score one simulated individual under the serial result protocol.
  bool score(Individual& ind,
             const util::Expected<circuits::SpecVector>& specs) {
    ++result_.total_evals;
    ind.specs = specs.ok() ? specs.value() : problem_.fail_specs();
    ind.fitness = problem_.reward_eq1(ind.specs, target_);
    if (on_scored_) on_scored_(ind);
    if (ind.fitness > result_.best_reward || result_.best_params.empty()) {
      result_.best_reward = ind.fitness;
      result_.best_params = ind.genes;
      result_.best_specs = ind.specs;
    }
    if (!result_.reached && problem_.goal_met(ind.specs, target_)) {
      result_.reached = true;
      result_.evals_to_reach = result_.total_evals;
    }
    return result_.reached;
  }

  const circuits::SizingProblem& problem_;
  const circuits::SpecVector& target_;
  const long max_evals_;
  GaResult& result_;
  std::function<void(const Individual&)> on_scored_;
};

}  // namespace autockt::baselines::detail
