#pragma once
// Random-walk baseline: uniformly random increment/hold/decrement actions in
// the sizing environment. The paper uses it (Tables II-III) to demonstrate
// that the design spaces are hard enough that random exploration rarely
// reaches a target.

#include "env/sizing_env.hpp"
#include "util/rng.hpp"

namespace autockt::baselines {

struct RandomAgentResult {
  bool reached = false;
  int steps = 0;
};

/// Run one episode (from reset to done) with uniform random actions against
/// the environment's current target.
RandomAgentResult run_random_episode(env::SizingEnv& sizing_env,
                                     util::Rng& rng);

}  // namespace autockt::baselines
