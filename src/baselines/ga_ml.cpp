#include "baselines/ga_ml.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/batch_eval.hpp"
#include "nn/mlp.hpp"

namespace autockt::baselines {

using circuits::ParamVector;
using circuits::SizingProblem;
using circuits::SpecVector;
using detail::Individual;

namespace {

std::vector<double> features(const SizingProblem& problem,
                             const ParamVector& genes) {
  std::vector<double> x;
  x.reserve(genes.size());
  for (std::size_t i = 0; i < genes.size(); ++i) {
    const int hi = problem.params[i].grid_size() - 1;
    x.push_back(hi == 0 ? 0.0
                        : 2.0 * static_cast<double>(genes[i]) /
                                  static_cast<double>(hi) -
                              1.0);
  }
  return x;
}

/// Logistic-regression-style training: y in {0,1}, single logit output,
/// loss = softplus(z) - y*z, dL/dz = sigmoid(z) - y.
void train_discriminator(nn::Mlp& disc, nn::Adam& opt,
                         const std::vector<std::vector<double>>& xs,
                         const std::vector<double>& ys, int epochs,
                         util::Rng& rng) {
  if (xs.empty()) return;
  std::vector<std::size_t> order(xs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  constexpr std::size_t kBatch = 32;
  for (int e = 0; e < epochs; ++e) {
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[rng.bounded(i + 1)]);
    }
    for (std::size_t start = 0; start < order.size(); start += kBatch) {
      const std::size_t stop = std::min(start + kBatch, order.size());
      const double inv_b = 1.0 / static_cast<double>(stop - start);
      disc.zero_grad();
      for (std::size_t k = start; k < stop; ++k) {
        const std::size_t idx = order[k];
        nn::Mlp::Trace trace = disc.forward_trace(xs[idx]);
        const double z = trace.output[0];
        const double sig = 1.0 / (1.0 + std::exp(-z));
        disc.backward(trace, {(sig - ys[idx]) * inv_b});
      }
      opt.step(disc.params(), disc.grads());
    }
  }
}

}  // namespace

GaResult run_ga_ml(const SizingProblem& problem, const SpecVector& target,
                   const GaMlConfig& config) {
  util::Rng rng(config.seed);
  GaResult result;

  // Discriminator over normalized parameter vectors.
  nn::Mlp disc({static_cast<int>(problem.params.size()), config.disc_hidden,
                config.disc_hidden, 1},
               nn::Activation::Tanh, config.seed * 31 + 5);
  nn::Adam opt(disc.param_count(), config.disc_lr);

  // Dataset of every individual actually simulated.
  std::vector<std::vector<double>> data_x;
  std::vector<double> data_fitness;

  // Candidate rankings simulate through evaluate_batch() but score under
  // the serial protocol (see batch_eval.hpp); every scored individual also
  // lands in the discriminator's dataset, in processing order.
  detail::SerialProtocolEvaluator evaluator(
      problem, target, config.ga.max_evals, result,
      [&](const Individual& ind) {
        data_x.push_back(features(problem, ind.genes));
        data_fitness.push_back(ind.fitness);
      });

  const GaConfig& ga = config.ga;
  std::vector<Individual> population(static_cast<std::size_t>(ga.population));
  for (auto& ind : population) {
    ind.genes.reserve(problem.params.size());
    for (const auto& def : problem.params) {
      ind.genes.push_back(static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(def.grid_size()))));
    }
  }
  const std::size_t init_count =
      std::min(population.size(),
               static_cast<std::size_t>(evaluator.remaining_budget()));
  if (evaluator.evaluate_group(population, init_count)) return result;

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int k = 0; k < ga.tournament; ++k) {
      const Individual& cand = population[rng.bounded(population.size())];
      if (best == nullptr || cand.fitness > best->fitness) best = &cand;
    }
    return *best;
  };

  while (result.total_evals < ga.max_evals) {
    // Label the dataset: "good" = beats the current population median.
    std::vector<double> fits;
    fits.reserve(population.size());
    for (const auto& ind : population) fits.push_back(ind.fitness);
    std::nth_element(fits.begin(), fits.begin() + fits.size() / 2, fits.end());
    const double median = fits[fits.size() / 2];
    std::vector<double> labels;
    labels.reserve(data_fitness.size());
    for (double f : data_fitness) labels.push_back(f > median ? 1.0 : 0.0);
    train_discriminator(disc, opt, data_x, labels, config.disc_epochs, rng);

    // Generate a large candidate pool, but simulate only the discriminator's
    // top picks — the BagNet economy.
    const std::size_t pool_size =
        population.size() * static_cast<std::size_t>(config.candidate_factor);
    std::vector<ParamVector> pool;
    pool.reserve(pool_size);
    std::vector<double> feature_rows;
    feature_rows.reserve(pool_size * problem.params.size());
    for (std::size_t c = 0; c < pool_size; ++c) {
      ParamVector genes = tournament_pick().genes;
      const Individual& pb = tournament_pick();
      if (rng.bernoulli(ga.crossover_prob)) {
        for (std::size_t i = 0; i < genes.size(); ++i) {
          if (rng.bernoulli(0.5)) genes[i] = pb.genes[i];
        }
      }
      for (std::size_t i = 0; i < genes.size(); ++i) {
        if (!rng.bernoulli(ga.mutation_prob)) continue;
        const int hi = problem.params[i].grid_size() - 1;
        if (rng.bernoulli(ga.local_jitter_prob)) {
          const int jitter = static_cast<int>(rng.uniform_int(1, 3)) *
                             (rng.bernoulli(0.5) ? 1 : -1);
          genes[i] = std::clamp(genes[i] + jitter, 0, hi);
        } else {
          genes[i] = static_cast<int>(
              rng.bounded(static_cast<std::uint64_t>(hi + 1)));
        }
      }
      const auto x = features(problem, genes);
      feature_rows.insert(feature_rows.end(), x.begin(), x.end());
      pool.push_back(std::move(genes));
    }
    // Rank the whole pool with one batched discriminator pass (the
    // DNN-Opt lesson: batching network queries is what makes NN-in-the-
    // loop sizing fast); row i equals disc.forward(features(pool[i]))
    // bitwise, so rankings are unchanged.
    const std::vector<double> scores =
        disc.forward_batch(feature_rows, static_cast<int>(pool.size()));

    std::vector<std::size_t> order(pool.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scores[a] > scores[b];
    });
    const std::size_t to_sim = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.sim_fraction *
                                    static_cast<double>(pool.size())));

    // The discriminator's top picks get simulated as one batch — the
    // BagNet economy, now also the backend's natural fan-out unit.
    std::vector<Individual> evaluated;
    const std::size_t sim_count = std::min(
        to_sim, static_cast<std::size_t>(evaluator.remaining_budget()));
    evaluated.reserve(sim_count);
    for (std::size_t k = 0; k < sim_count; ++k) {
      Individual child;
      child.genes = pool[order[k]];
      evaluated.push_back(std::move(child));
    }
    if (evaluator.evaluate_group(evaluated, evaluated.size())) return result;

    // Survivor selection over parents + newly simulated children.
    for (auto& ind : evaluated) population.push_back(std::move(ind));
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness > b.fitness;
              });
    population.resize(static_cast<std::size_t>(ga.population));
  }
  return result;
}

}  // namespace autockt::baselines
