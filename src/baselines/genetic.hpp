#pragma once
// Vanilla genetic algorithm baseline (paper Tables I-IV compare against it).
//
// Integer-encoded individuals over the sizing grid; tournament selection,
// uniform crossover, per-gene mutation mixing local jitter with uniform
// resampling. Fitness is the paper's Eq. 1 reward against the fixed target;
// the run stops the moment any individual satisfies every hard constraint,
// and reports how many circuit simulations were consumed — the paper's
// sample-efficiency metric.
//
// Populations are simulated through SizingProblem::evaluate_batch, so a
// parallel backend evaluates a whole generation concurrently. Results and
// eval counts are bit-identical to the historical one-at-a-time loop for a
// fixed seed; when the run ends mid-batch the backend may have simulated
// (at most one generation of) extra points, which appears only in
// EvalStats, never in GaResult.

#include <cstdint>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "util/rng.hpp"

namespace autockt::baselines {

struct GaConfig {
  int population = 40;
  int elite = 2;              // individuals copied unchanged each generation
  int tournament = 3;
  double crossover_prob = 0.9;
  double mutation_prob = 0.15;  // per gene
  double local_jitter_prob = 0.5;  // mutated gene: +/- few steps vs resample
  long max_evals = 20000;
  std::uint64_t seed = 1;
};

struct GaResult {
  bool reached = false;
  long evals_to_reach = 0;  // simulations used when the target was first met
  long total_evals = 0;
  double best_reward = 0.0;
  circuits::ParamVector best_params;
  circuits::SpecVector best_specs;
};

GaResult run_ga(const circuits::SizingProblem& problem,
                const circuits::SpecVector& target, const GaConfig& config);

/// The paper tuned the GA by sweeping initial population sizes and keeping
/// the best result; this helper reproduces that protocol.
GaResult run_ga_best_of_sweep(const circuits::SizingProblem& problem,
                              const circuits::SpecVector& target,
                              const GaConfig& base,
                              const std::vector<int>& population_sizes);

}  // namespace autockt::baselines
