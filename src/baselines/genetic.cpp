#include "baselines/genetic.hpp"

#include <algorithm>

#include "baselines/batch_eval.hpp"

namespace autockt::baselines {

using circuits::ParamVector;
using circuits::SizingProblem;
using circuits::SpecVector;
using detail::Individual;

namespace {

ParamVector random_individual(const SizingProblem& problem, util::Rng& rng) {
  ParamVector genes;
  genes.reserve(problem.params.size());
  for (const auto& def : problem.params) {
    genes.push_back(static_cast<int>(
        rng.bounded(static_cast<std::uint64_t>(def.grid_size()))));
  }
  return genes;
}

void mutate(const SizingProblem& problem, const GaConfig& config,
            ParamVector& genes, util::Rng& rng) {
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (!rng.bernoulli(config.mutation_prob)) continue;
    const int hi = problem.params[i].grid_size() - 1;
    if (rng.bernoulli(config.local_jitter_prob)) {
      const int jitter = static_cast<int>(rng.uniform_int(1, 3)) *
                         (rng.bernoulli(0.5) ? 1 : -1);
      genes[i] = std::clamp(genes[i] + jitter, 0, hi);
    } else {
      genes[i] =
          static_cast<int>(rng.bounded(static_cast<std::uint64_t>(hi + 1)));
    }
  }
}

}  // namespace

GaResult run_ga(const SizingProblem& problem, const SpecVector& target,
                const GaConfig& config) {
  util::Rng rng(config.seed);
  GaResult result;
  detail::SerialProtocolEvaluator evaluator(problem, target, config.max_evals,
                                            result);

  std::vector<Individual> population(
      static_cast<std::size_t>(config.population));
  for (auto& ind : population) ind.genes = random_individual(problem, rng);
  // Cap at the eval budget: the serial loop would stop there too.
  const std::size_t init_count =
      std::min(population.size(),
               static_cast<std::size_t>(evaluator.remaining_budget()));
  if (evaluator.evaluate_group(population, init_count)) return result;

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int k = 0; k < config.tournament; ++k) {
      const Individual& cand = population[rng.bounded(population.size())];
      if (best == nullptr || cand.fitness > best->fitness) best = &cand;
    }
    return *best;
  };

  while (result.total_evals < config.max_evals) {
    std::vector<Individual> next;
    next.reserve(population.size());

    // Elitism.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return population[a].fitness > population[b].fitness;
    });
    for (int e = 0; e < config.elite && e < static_cast<int>(order.size());
         ++e) {
      next.push_back(population[order[static_cast<std::size_t>(e)]]);
    }

    // Breed the whole generation first (the RNG draw order matches the
    // one-at-a-time loop — evaluation consumes no randomness), then
    // simulate it as one population-sized batch.
    std::vector<Individual> children;
    const std::size_t want =
        std::min(population.size() - next.size(),
                 static_cast<std::size_t>(evaluator.remaining_budget()));
    children.reserve(want);
    while (children.size() < want) {
      Individual child;
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      child.genes = pa.genes;
      if (rng.bernoulli(config.crossover_prob)) {
        for (std::size_t i = 0; i < child.genes.size(); ++i) {
          if (rng.bernoulli(0.5)) child.genes[i] = pb.genes[i];
        }
      }
      mutate(problem, config, child.genes, rng);
      children.push_back(std::move(child));
    }
    // A goal hit or an exhausted budget ends the run inside the batch —
    // mid-generation, exactly like the serial loop. Otherwise the
    // generation is complete and next is full.
    if (evaluator.evaluate_group(children, children.size())) return result;
    for (auto& child : children) next.push_back(std::move(child));
    population.swap(next);
  }
  return result;
}

GaResult run_ga_best_of_sweep(const SizingProblem& problem,
                              const SpecVector& target, const GaConfig& base,
                              const std::vector<int>& population_sizes) {
  GaResult best;
  bool first = true;
  for (std::size_t i = 0; i < population_sizes.size(); ++i) {
    GaConfig config = base;
    config.population = population_sizes[i];
    config.seed = base.seed + 1000 * (i + 1);
    GaResult r = run_ga(problem, target, config);
    const bool better =
        (r.reached && !best.reached) ||
        (r.reached == best.reached &&
         (r.reached ? r.evals_to_reach < best.evals_to_reach
                    : r.best_reward > best.best_reward));
    if (first || better) {
      best = std::move(r);
      first = false;
    }
  }
  return best;
}

}  // namespace autockt::baselines
