#pragma once
// GA + neural-discriminator baseline, reimplementing the mechanism of
// BagNet [7] (Hakhamaneshi et al., ICCAD 2019) that the paper's Table IV
// cites as prior state-of-the-art: a genetic algorithm whose candidate
// offspring are pre-screened by an online-trained neural network, so only
// candidates predicted to beat the running population get the expensive
// circuit simulation. Sample efficiency is counted in real simulations.

#include <cstdint>

#include "baselines/genetic.hpp"
#include "circuits/sizing_problem.hpp"

namespace autockt::baselines {

struct GaMlConfig {
  GaConfig ga;                 // underlying evolutionary settings
  int candidate_factor = 6;    // candidates generated per population slot
  double sim_fraction = 0.25;  // top-scored fraction that gets simulated
  int disc_hidden = 20;        // discriminator: 2 hidden layers this wide
  int disc_epochs = 40;
  double disc_lr = 3e-3;
  std::uint64_t seed = 1;
};

/// Same result contract as the vanilla GA: evals count simulated candidates
/// in processing order (batched through the problem's evaluation backend,
/// whose EvalStats track the underlying simulator traffic).
GaResult run_ga_ml(const circuits::SizingProblem& problem,
                   const circuits::SpecVector& target,
                   const GaMlConfig& config);

}  // namespace autockt::baselines
