#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace autockt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  // %g-style: compact for both 1063 and 2.5e7.
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace autockt::util
