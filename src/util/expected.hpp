#pragma once
// Minimal expected/error-or-value type (std::expected is C++23; we target
// C++20). Used for operations that can fail for reasons the caller must
// handle explicitly, e.g. DC operating-point non-convergence.

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace autockt::util {

/// Error payload: a human-readable message plus an optional machine code.
/// Errors raised while parsing text (netlist decks) also carry a structured
/// 1-based source location, so downstream diagnostics don't have to scrape
/// the rendered message; 0 means "no location".
struct Error {
  std::string message;
  int code = 0;
  std::size_t line = 0;
  std::size_t col = 0;
};

template <typename T>
class Expected {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Expected(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw std::runtime_error("Expected: " + error().message);
    return std::get<T>(data_);
  }
  T& value() & {
    if (!ok()) throw std::runtime_error("Expected: " + error().message);
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) throw std::runtime_error("Expected: " + error().message);
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    return std::get<Error>(data_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace autockt::util
