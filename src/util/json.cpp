#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace autockt::util {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Expected<JsonValue> run() {
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  Error fail(const std::string& what) const {
    return Error{"json: " + what + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Expected<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      JsonValue v;
      v.type_ = JsonValue::Type::String;
      v.string_ = std::move(*s);
      return v;
    }
    if (literal("true")) {
      JsonValue v;
      v.type_ = JsonValue::Type::Bool;
      v.bool_ = true;
      return v;
    }
    if (literal("false")) {
      JsonValue v;
      v.type_ = JsonValue::Type::Bool;
      return v;
    }
    if (literal("null")) return JsonValue{};
    return parse_number();
  }

  Expected<JsonValue> parse_object() {
    eat('{');
    JsonValue out;
    out.type_ = JsonValue::Type::Object;
    if (eat('}')) return out;
    while (true) {
      auto key = parse_string_token();
      if (!key.ok()) return key.error();
      if (!eat(':')) return fail("expected ':' after object key");
      auto value = parse_value();
      if (!value.ok()) return value;
      out.members_.emplace_back(std::move(*key), std::move(*value));
      if (eat(',')) continue;
      if (eat('}')) return out;
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<JsonValue> parse_array() {
    eat('[');
    JsonValue out;
    out.type_ = JsonValue::Type::Array;
    if (eat(']')) return out;
    while (true) {
      auto value = parse_value();
      if (!value.ok()) return value;
      out.items_.push_back(std::move(*value));
      if (eat(',')) continue;
      if (eat(']')) return out;
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<std::string> parse_string_token() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    return parse_string();
  }

  Expected<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'b':
            c = '\b';
            break;
          case 'f':
            c = '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            // Only BMP escapes below 0x80 round-trip into a single byte;
            // higher code points are not produced by this repo's writers.
            c = static_cast<char>(
                std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            c = esc;  // \" \\ \/
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Expected<JsonValue> parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return fail("expected a JSON value");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    v.number_ = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Expected<JsonValue> JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

}  // namespace autockt::util
