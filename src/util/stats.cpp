#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace autockt::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double median(std::vector<double> xs) {
  return percentile(std::move(xs), 50.0);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::size_t Histogram::total() const {
  std::size_t acc = 0;
  for (auto c : counts) acc += c;
  return acc;
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + (static_cast<double>(i) + 0.5) * width;
}

Histogram make_histogram(const std::vector<double>& xs, double lo, double hi,
                         std::size_t bins) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins == 0 ? 1 : bins, 0);
  if (hi <= lo) {
    h.counts[0] = xs.size();
    return h;
  }
  const double width = (hi - lo) / static_cast<double>(h.counts.size());
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(
                                         h.counts.size()) -
                                         1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

std::vector<double> ema(const std::vector<double>& xs, double alpha) {
  std::vector<double> out;
  out.reserve(xs.size());
  double acc = 0.0;
  bool first = true;
  for (double x : xs) {
    acc = first ? x : alpha * x + (1.0 - alpha) * acc;
    first = false;
    out.push_back(acc);
  }
  return out;
}

}  // namespace autockt::util
