#pragma once
// Console table rendering for experiment output. Every bench binary prints a
// paper-vs-measured table through this utility so the formats stay uniform.

#include <string>
#include <vector>

namespace autockt::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string num(double v, int precision = 4);

  /// Render with aligned columns and a separator under the header.
  std::string to_string() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autockt::util
