#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace autockt::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::Info};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace autockt::util
