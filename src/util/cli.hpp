#pragma once
// Tiny command-line parser shared by examples and bench binaries.
// Supports --flag, --key=value and --key value forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace autockt::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace autockt::util
