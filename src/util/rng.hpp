#pragma once
// Deterministic, explicitly seeded random number generation.
//
// All stochastic components in this repository (spec sampling, PPO rollouts,
// genetic-algorithm mutation, parasitic variation) draw from util::Rng so that
// every experiment is exactly reproducible from a single --seed argument.
// The generator is xoshiro256++ seeded through splitmix64, which gives good
// statistical quality without any global state.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace autockt::util {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for the `index`-th independent stream derived from `base`: a pure
/// function of (base, index), so stream i is the same no matter how many
/// sibling streams exist. Shared by the vector env's per-lane streams and
/// deployment's per-target streams — the reproducibility contracts of both
/// depend on this exact derivation.
inline std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t sm = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  return splitmix64(sm);
}

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xa0c0c0de2020ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Unbiased uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // Lemire's rejection method.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next();
      // Use 128-bit multiply-shift reduction.
      __uint128_t m = static_cast<__uint128_t>(r) * bound;
      std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (stable for a given stream id).
  Rng split(std::uint64_t stream) {
    return Rng(next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace autockt::util
