#include "util/csv.hpp"

#include <fstream>
#include <sstream>

namespace autockt::util {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(10);
    os << v;
    cells.push_back(os.str());
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

}  // namespace autockt::util
