#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/fmt.hpp"

namespace autockt::util {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  // %.17g, locale-independent: SpecSuite (and anything replotting figure
  // data) relies on strtod recovering the exact double from these cells.
  for (double v : values) cells.push_back(format_g17(v));
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

}  // namespace autockt::util
