#pragma once
// CSV emission for figure data. Bench binaries dump per-point series
// (training curves, reached/unreached scatter data, histograms) so the
// paper's figures can be re-plotted from files.

#include <string>
#include <vector>

namespace autockt::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<double>& values);
  void add_row(const std::vector<std::string>& cells);

  std::string to_string() const;

  /// Write to `path`; returns false (and leaves no partial file guarantee)
  /// on I/O failure.
  bool save(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autockt::util
