#include "util/cli.hpp"

#include <cstdlib>

namespace autockt::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes") {
    return true;
  }
  return false;
}

}  // namespace autockt::util
