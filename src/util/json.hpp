#pragma once
// Minimal JSON value + recursive-descent parser. Just enough for the
// repo's own machine-readable artifacts — BENCH_*.json snapshots
// (bench_diff), trace JSONL lines (tests/test_trace.cpp) — with no
// external dependency. Objects preserve insertion order; numbers are
// doubles (fine for ns/op and counters; exact for integers < 2^53).

#include <string>
#include <utility>
#include <vector>

#include "util/expected.hpp"

namespace autockt::util {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }

  double as_number(double fallback = 0.0) const {
    return type_ == Type::Number ? number_ : fallback;
  }
  bool as_bool(bool fallback = false) const {
    return type_ == Type::Bool ? bool_ : fallback;
  }
  const std::string& as_string() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object lookup; null when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (type_ != Type::Object) return nullptr;
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Parse one JSON document (the whole string must be consumed, modulo
  /// trailing whitespace).
  static Expected<JsonValue> parse(const std::string& text);

 private:
  friend class JsonParser;
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members_;  // Object
};

}  // namespace autockt::util
