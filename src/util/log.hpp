#pragma once
// Leveled stderr logging with a global threshold. Experiments run chatty at
// Info; tests silence everything below Warn.

#include <sstream>
#include <string>

namespace autockt::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_threshold() <= LogLevel::Debug)
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_threshold() <= LogLevel::Info)
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_threshold() <= LogLevel::Warn)
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_threshold() <= LogLevel::Error)
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace autockt::util
