#pragma once
// Locale-independent numeric formatting shared by every serialization path
// that promises bitwise double round-trips (SpecSuite CSVs, figure-data
// CSVs). One definition so the "%.17g through strtod recovers the exact
// bits" contract lives in exactly one place.

#include <cstdio>
#include <string>

namespace autockt::util {

/// Format `v` with enough digits that strtod recovers the identical double
/// (17 significant digits are sufficient for IEEE binary64). The decimal
/// separator is normalized to '.' so the OUTPUT does not depend on
/// LC_NUMERIC; readers are expected to parse under the default "C" radix
/// convention (this program never calls setlocale).
inline std::string format_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (char* p = buf; *p != '\0'; ++p) {
    if (*p == ',') *p = '.';
  }
  return buf;
}

}  // namespace autockt::util
