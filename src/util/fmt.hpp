#pragma once
// Locale-independent numeric formatting shared by every serialization path
// that promises bitwise double round-trips (SpecSuite CSVs, figure-data
// CSVs, the on-disk eval cache, the worker wire protocol). One definition so
// the "%.17g through strtod recovers the exact bits" contract — and its
// stricter sibling, the u64 bit-cast round trip — live in exactly one place.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

namespace autockt::util {

/// Format `v` with enough digits that strtod recovers the identical double
/// (17 significant digits are sufficient for IEEE binary64). The decimal
/// separator is normalized to '.' so the OUTPUT does not depend on
/// LC_NUMERIC; readers are expected to parse under the default "C" radix
/// convention (this program never calls setlocale).
inline std::string format_g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (char* p = buf; *p != '\0'; ++p) {
    if (*p == ',') *p = '.';
  }
  return buf;
}

/// Inverse of format_g17: strtod under the "C" radix convention. Recovers
/// the exact bits for every finite double (including denormals and -0.0);
/// NaNs come back as *a* NaN but the payload/sign bits are not preserved —
/// serializers that must round-trip NaNs bitwise use the u64 casts below.
inline double parse_g17(const std::string& text) {
  return std::strtod(text.c_str(), nullptr);
}

/// Bit-exact double <-> uint64_t casts: the identity every binary/hex
/// serialization path relies on. Unlike the %.17g route these round-trip
/// EVERY bit pattern — NaN payloads, signalling bits, -0.0, denormals,
/// infinities — so two processes exchanging doubles through them can
/// promise bitwise-equal results.
inline std::uint64_t double_to_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double bits_to_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// 16-hex-digit rendering of a double's bit pattern (zero padded, lower
/// case): the on-disk eval cache's record format. Fixed width keeps records
/// trivially parseable and the torn-tail detector simple.
inline std::string format_hex_bits(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(double_to_bits(v)));
  return buf;
}

/// Parse a 16-hex-digit bit pattern back into the identical double.
/// Returns false (and leaves *out untouched) on any malformed input:
/// wrong length, non-hex characters.
inline bool parse_hex_bits(std::string_view text, double* out) {
  if (text.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : text) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | digit;
  }
  *out = bits_to_double(bits);
  return true;
}

}  // namespace autockt::util
