#pragma once
// Descriptive statistics over small in-memory samples; used by experiment
// harnesses (sample-efficiency averages, percentile tables, histograms) and
// by tests asserting distributional properties.

#include <cstddef>
#include <vector>

namespace autockt::util {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Empty input returns 0.
double percentile(std::vector<double> xs, double p);

/// Pearson correlation coefficient; returns 0 for degenerate inputs.
double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi] with `bins` buckets. Out-of-range
/// samples are clamped to the first/last bucket.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  std::size_t total() const;
  double bin_center(std::size_t i) const;
};

Histogram make_histogram(const std::vector<double>& xs, double lo, double hi,
                         std::size_t bins);

/// Exponential moving average smoothing (used for reward curves).
std::vector<double> ema(const std::vector<double>& xs, double alpha);

}  // namespace autockt::util
