#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "trace/names.hpp"

namespace autockt::trace {

namespace names {

const std::vector<NameInfo>& registry() {
  static const std::vector<NameInfo> kRegistry = {
      // spans
      {kEvalEvaluate, "span",
       "one EvalBackend::evaluate() call at one decorator layer"},
      {kEvalEvaluateBatch, "span",
       "one evaluate_batch() call at the outermost backend layer"},
      {kEvalSimulate, "span", "one real simulator invocation (FunctionBackend leaf)"},
      {kEvalCorner, "span", "one per-corner evaluation inside CornerBackend"},
      {kSimBuildWorkspace, "span",
       "SimWorkspace construction: pattern discovery + symbolic factorization"},
      {kSimFactorReal, "span", "real-valued numeric LU (re)factorization"},
      {kSimSolveReal, "span", "real-valued triangular solve"},
      {kSimFactorComplex, "span", "complex G + jwC numeric LU (re)factorization"},
      {kSimSolveComplex, "span", "complex triangular solve"},
      {kSimFactorRealBatch, "span",
       "real batched numeric LU over all lanes of one SoA pass"},
      {kSimSolveRealBatch, "span", "real batched triangular solve (all lanes)"},
      {kSimFactorComplexBatch, "span",
       "complex batched G + jwC numeric LU over all lanes"},
      {kSimSolveComplexBatch, "span",
       "complex batched triangular solve (all lanes)"},
      {kRlPipelineOverlap, "span",
       "policy inference overlapped with env simulation during collection"},
      {kEnvTick, "span", "one VectorSizingEnv::step_all lockstep tick"},
      {kEnvReset, "span", "one batched VectorSizingEnv reset"},
      {kRlIteration, "span", "one PPO training iteration (collect + update)"},
      {kRlCollect, "span", "rollout collection phase of a PPO iteration"},
      {kRlUpdate, "span", "clipped-surrogate update phase of a PPO iteration"},
      {kRlHoldoutProbe, "span", "greedy goal-rate probe over the holdout suite"},
      {kDeployRun, "span", "one deploy_agent() call over a target set"},
      {kEvalDiskReplay, "span",
       "DiskLogStore open(): replaying the on-disk log into the memo index"},
      {kEvalWorkerDispatch, "span",
       "one request round trip to a ProcessPoolBackend worker"},
      // counters
      {kEvalCacheHit, "counter", "evaluation answered from the memo cache"},
      {kEvalCacheMiss, "counter", "evaluation that had to reach the simulator"},
      {kEvalBatchPoints, "counter",
       "points submitted in one evaluate_batch (value = batch size)"},
      {kSimRestampReal, "counter", "real MNA restamp (begin_real)"},
      {kSimRestampComplex, "counter", "complex MNA restamp (begin_complex)"},
      {kSimNewtonIterations, "counter",
       "Newton iterations completed (value = iterations added)"},
      {kSimWarmStartAttempt, "counter",
       "DC solve offered a previous operating point"},
      {kSimWarmStartHit, "counter",
       "warm-started DC solve converged from the hint directly"},
      {kSimDenseFallback, "counter",
       "sparse pivot check failed; dense partial-pivot fallback ran"},
      {kSimBatchRefactor, "counter",
       "one batched refactorization pass (all lanes of one matrix)"},
      {kSimBatchLanes, "counter",
       "lanes factored by a batched refactorization (value = lane count)"},
      {kSimBatchLaneFallback, "counter",
       "single lane of a batched refactorization fell back to dense LU"},
      {kEvalDiskHit, "counter",
       "memo hit served by an entry replayed from the on-disk cache"},
      {kEvalDiskAppend, "counter",
       "memo entry appended to the on-disk eval cache log"},
      {kEvalWorkerPoints, "counter",
       "points shipped to pool workers (value = shard size)"},
      {kEvalWorkerRetry, "counter",
       "request retried after a worker crash or timeout"},
      {kEvalWorkerRestart, "counter",
       "crashed/timed-out pool worker replaced by a fresh fork"},
      {kEvalDiskWriteError, "counter",
       "eval-cache shard write failed (ENOSPC/EIO); shard frozen read-only"},
  };
  return kRegistry;
}

}  // namespace names

namespace {

std::atomic<bool> g_enabled{false};

#if AUTOCKT_TRACE_ENABLED

/// One producer thread's buffer. The mutex is effectively uncontended
/// (only the owning thread writes; reset/snapshot readers are rare), so
/// recording stays cheap and threads never serialize against each other.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceRecord> records;
  std::vector<std::uint64_t> open_spans;  // seq stack of open spans
  std::uint64_t next_seq = 0;
  std::uint32_t ord = 0;
};

struct GlobalState {
  std::mutex mutex;
  // shared_ptr keeps buffers of joined threads alive until the recorder is
  // read (PPO collection workers finish before the trainer snapshots).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

GlobalState& global_state() {
  static GlobalState* state = new GlobalState();  // leaked: outlives threads
  return *state;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - global_state().epoch)
          .count());
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    GlobalState& state = global_state();
    std::lock_guard<std::mutex> lock(state.mutex);
    fresh->ord = static_cast<std::uint32_t>(state.buffers.size());
    state.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

#endif  // AUTOCKT_TRACE_ENABLED

void write_json_record(std::ostream& out, const TraceRecord& rec) {
  // Names come from the static registry (trace/names.hpp) and contain no
  // characters that need JSON escaping.
  out << "{\"type\":\""
      << (rec.kind == RecordKind::Span ? "span" : "counter")
      << "\",\"name\":\"" << rec.name << "\",\"thread\":" << rec.thread_ord
      << ",\"seq\":" << rec.seq << ",\"parent\":" << rec.parent
      << ",\"depth\":" << rec.depth << ",\"start_ns\":" << rec.start_ns;
  if (rec.kind == RecordKind::Span) {
    out << ",\"dur_ns\":" << rec.duration_ns;
  } else {
    out << ",\"value\":" << rec.value;
  }
  out << "}\n";
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool TraceRecorder::enabled() const {
  return g_enabled.load(std::memory_order_relaxed);
}

#if AUTOCKT_TRACE_ENABLED

void TraceRecorder::reset() {
  GlobalState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->records.clear();
    buffer->open_spans.clear();
    buffer->next_seq = 0;
  }
  state.epoch = std::chrono::steady_clock::now();
}

std::vector<TraceRecord> TraceRecorder::snapshot() const {
  GlobalState& state = global_state();
  std::vector<TraceRecord> out;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (const auto& buffer : state.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      out.insert(out.end(), buffer->records.begin(), buffer->records.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.thread_ord != b.thread_ord
                         ? a.thread_ord < b.thread_ord
                         : a.seq < b.seq;
            });
  return out;
}

#else  // AUTOCKT_TRACE_ENABLED == 0

void TraceRecorder::reset() {}

std::vector<TraceRecord> TraceRecorder::snapshot() const { return {}; }

#endif  // AUTOCKT_TRACE_ENABLED

std::map<std::string, long> TraceRecorder::counts_by_name() const {
  std::map<std::string, long> counts;
  for (const TraceRecord& rec : snapshot()) ++counts[rec.name];
  return counts;
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  const std::vector<TraceRecord> records = snapshot();
  std::uint32_t threads = 0;
  for (const TraceRecord& rec : records) {
    threads = std::max(threads, rec.thread_ord + 1);
  }
  out << "{\"type\":\"header\",\"schema\":\"autockt-trace-v1\","
      << "\"record_count\":" << records.size()
      << ",\"thread_count\":" << threads << "}\n";
  for (const TraceRecord& rec : records) write_json_record(out, rec);
}

bool TraceRecorder::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return out.good();
}

#if AUTOCKT_TRACE_ENABLED

TraceSpan::TraceSpan(const char* name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  TraceRecord rec;
  rec.name = name;
  rec.kind = RecordKind::Span;
  rec.thread_ord = buffer.ord;
  rec.seq = buffer.next_seq++;
  rec.parent = buffer.open_spans.empty()
                   ? -1
                   : static_cast<std::int64_t>(buffer.open_spans.back());
  rec.depth = static_cast<std::uint32_t>(buffer.open_spans.size());
  rec.start_ns = now_ns();
  index_ = buffer.records.size();
  seq_ = rec.seq;
  t0_ns_ = rec.start_ns;
  buffer.records.push_back(rec);
  buffer.open_spans.push_back(rec.seq);
  buffer_ = &buffer;
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  ThreadBuffer& buffer = *static_cast<ThreadBuffer*>(buffer_);
  std::lock_guard<std::mutex> lock(buffer.mutex);
  // A reset() between open and close dropped our record; verify before
  // patching so the close can never corrupt an unrelated record.
  if (index_ < buffer.records.size() && buffer.records[index_].seq == seq_ &&
      buffer.records[index_].kind == RecordKind::Span) {
    const std::uint64_t now = now_ns();
    buffer.records[index_].duration_ns = now > t0_ns_ ? now - t0_ns_ : 0;
  }
  if (!buffer.open_spans.empty() && buffer.open_spans.back() == seq_) {
    buffer.open_spans.pop_back();
  }
}

void counter(const char* name, std::int64_t value) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  TraceRecord rec;
  rec.name = name;
  rec.kind = RecordKind::Counter;
  rec.thread_ord = buffer.ord;
  rec.seq = buffer.next_seq++;
  rec.parent = buffer.open_spans.empty()
                   ? -1
                   : static_cast<std::int64_t>(buffer.open_spans.back());
  rec.depth = static_cast<std::uint32_t>(buffer.open_spans.size());
  rec.start_ns = now_ns();
  rec.value = value;
  buffer.records.push_back(rec);
}

#endif  // AUTOCKT_TRACE_ENABLED

}  // namespace autockt::trace
