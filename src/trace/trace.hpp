#pragma once
// Deterministic span/trace layer (docs/DESIGN.md section 11, operator's
// guide in docs/OBSERVABILITY.md). A process-wide TraceRecorder collects
// TraceRecords into per-thread buffers; scoped TraceSpan RAII timers and
// counter() events are the only producers. The contract that makes traces
// assertable in tests:
//
//  * Determinism: for a fixed seed, the *count* of records per name is
//    bitwise-identical across runs (durations, thread ordinals and
//    interleavings are not — never assert on those).
//  * Per-thread buffering: producers touch only their own buffer (one
//    uncontended mutex each), so tracing never serializes the rollout
//    workers against each other.
//  * Off by default: recording starts only after set_enabled(true); a
//    disabled call site costs one relaxed atomic load.
//  * Compile-out: configure with -DAUTOCKT_TRACE=OFF and TraceSpan/counter
//    become empty inlines — zero overhead, same API, every caller still
//    compiles.
//
// Every name passed to TraceSpan/counter must come from trace/names.hpp so
// the registry (and the OBSERVABILITY.md glossary cross-check test) stays
// the single source of truth.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#ifndef AUTOCKT_TRACE_ENABLED
#define AUTOCKT_TRACE_ENABLED 1
#endif

namespace autockt::trace {

enum class RecordKind { Span, Counter };

/// One completed span or counter event. `seq` orders records within a
/// thread (parents allocate their seq before any child, so parent < seq
/// always holds); `parent` is the seq of the innermost enclosing span on
/// the same thread, -1 at top level.
struct TraceRecord {
  const char* name = nullptr;  // interned literal from trace/names.hpp
  RecordKind kind = RecordKind::Span;
  std::uint32_t thread_ord = 0;  // buffer registration order (not stable
                                 // across runs — do not assert on it)
  std::uint64_t seq = 0;
  std::int64_t parent = -1;
  std::uint32_t depth = 0;
  std::uint64_t start_ns = 0;     // steady-clock ns since recorder epoch
  std::uint64_t duration_ns = 0;  // 0 for counters and still-open spans
  std::int64_t value = 0;         // counter delta; 0 for spans
};

/// Whether the span layer was compiled in (-DAUTOCKT_TRACE=ON, default).
constexpr bool compiled_in() { return AUTOCKT_TRACE_ENABLED != 0; }

/// Process-wide sink for trace records. All methods are thread-safe; reset
/// and snapshot may race with producers (they see a consistent prefix of
/// each thread's buffer).
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Runtime switch. Off by default; flipping it on/off mid-span is safe
  /// (an orphaned close is dropped, never mispatched).
  void set_enabled(bool on);
  bool enabled() const;

  /// Drop all records, restart per-thread sequence numbers and the epoch.
  /// Call only at quiescent points (no spans open anywhere).
  void reset();

  /// Merged copy of every thread's records, sorted by (thread_ord, seq).
  std::vector<TraceRecord> snapshot() const;

  /// Record count per name — the deterministic projection of a trace.
  std::map<std::string, long> counts_by_name() const;

  /// JSON-lines export: one header line ("type":"header", schema
  /// "autockt-trace-v1") followed by one line per record. Schema details
  /// in docs/OBSERVABILITY.md.
  void write_jsonl(std::ostream& out) const;
  bool write_jsonl_file(const std::string& path) const;

 private:
  TraceRecorder() = default;
};

inline TraceRecorder& recorder() { return TraceRecorder::instance(); }

#if AUTOCKT_TRACE_ENABLED

/// Scoped RAII timer. The record is appended (with duration 0) when the
/// span opens — establishing parent links for children — and its duration
/// is patched in place when the scope exits.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void* buffer_ = nullptr;  // ThreadBuffer*; null when recording was off
  std::size_t index_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t t0_ns_ = 0;
};

/// Append a counter event (delta or gauge sample) under the current span.
void counter(const char* name, std::int64_t value = 1);

#else  // AUTOCKT_TRACE_ENABLED == 0: same API, empty inlines.

class TraceSpan {
 public:
  explicit TraceSpan(const char* /*name*/) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline void counter(const char* /*name*/, std::int64_t /*value*/ = 1) {}

#endif  // AUTOCKT_TRACE_ENABLED

}  // namespace autockt::trace
