#pragma once
// The trace name registry: every span/counter name the recorder can emit,
// as interned constants. Call sites must use these (never ad-hoc string
// literals) so that registry() stays the exhaustive catalog — the
// OBSERVABILITY.md glossary is cross-checked against it by
// tests/test_trace.cpp, and bench_snapshot keys its counter section off
// the same names. Append-only: renaming a span breaks committed
// BENCH_*.json baselines and any downstream trace tooling.

#include <vector>

namespace autockt::trace::names {

// ---- spans ---------------------------------------------------------------
inline constexpr const char* kEvalEvaluate = "eval/evaluate";
inline constexpr const char* kEvalEvaluateBatch = "eval/evaluate_batch";
inline constexpr const char* kEvalSimulate = "eval/simulate";
inline constexpr const char* kEvalCorner = "eval/corner";
inline constexpr const char* kSimBuildWorkspace = "sim/build_workspace";
inline constexpr const char* kSimFactorReal = "sim/factor_real";
inline constexpr const char* kSimSolveReal = "sim/solve_real";
inline constexpr const char* kSimFactorComplex = "sim/factor_complex";
inline constexpr const char* kSimSolveComplex = "sim/solve_complex";
inline constexpr const char* kSimFactorRealBatch = "sim/factor_real_batch";
inline constexpr const char* kSimSolveRealBatch = "sim/solve_real_batch";
inline constexpr const char* kSimFactorComplexBatch =
    "sim/factor_complex_batch";
inline constexpr const char* kSimSolveComplexBatch = "sim/solve_complex_batch";
inline constexpr const char* kRlPipelineOverlap = "rl/pipeline_overlap";
inline constexpr const char* kEnvTick = "env/tick";
inline constexpr const char* kEnvReset = "env/reset";
inline constexpr const char* kRlIteration = "rl/iteration";
inline constexpr const char* kRlCollect = "rl/collect";
inline constexpr const char* kRlUpdate = "rl/update";
inline constexpr const char* kRlHoldoutProbe = "rl/holdout_probe";
inline constexpr const char* kDeployRun = "deploy/run";
inline constexpr const char* kEvalDiskReplay = "eval/disk_replay";
inline constexpr const char* kEvalWorkerDispatch = "eval/worker_dispatch";

// ---- counters ------------------------------------------------------------
inline constexpr const char* kEvalCacheHit = "eval/cache_hit";
inline constexpr const char* kEvalCacheMiss = "eval/cache_miss";
inline constexpr const char* kEvalBatchPoints = "eval/batch_points";
inline constexpr const char* kSimRestampReal = "sim/restamp_real";
inline constexpr const char* kSimRestampComplex = "sim/restamp_complex";
inline constexpr const char* kSimNewtonIterations = "sim/newton_iterations";
inline constexpr const char* kSimWarmStartAttempt = "sim/warm_start_attempt";
inline constexpr const char* kSimWarmStartHit = "sim/warm_start_hit";
inline constexpr const char* kSimDenseFallback = "sim/dense_fallback";
inline constexpr const char* kSimBatchRefactor = "sim/batch_refactor";
inline constexpr const char* kSimBatchLanes = "sim/batch_lanes";
inline constexpr const char* kSimBatchLaneFallback = "sim/batch_lane_fallback";
inline constexpr const char* kEvalDiskHit = "eval/disk_hit";
inline constexpr const char* kEvalDiskAppend = "eval/disk_append";
inline constexpr const char* kEvalWorkerPoints = "eval/worker_points";
inline constexpr const char* kEvalWorkerRetry = "eval/worker_retry";
inline constexpr const char* kEvalWorkerRestart = "eval/worker_restart";
inline constexpr const char* kEvalDiskWriteError = "eval/disk_write_error";

/// One registry row: the exported name, its kind ("span" or "counter") and
/// a one-line description (mirrored into the OBSERVABILITY.md glossary).
struct NameInfo {
  const char* name;
  const char* kind;
  const char* doc;
};

/// Every name the recorder can emit. Exhaustive by construction; the
/// glossary cross-check test fails when a name is added here but not
/// documented in docs/OBSERVABILITY.md.
const std::vector<NameInfo>& registry();

}  // namespace autockt::trace::names
