#pragma once
// Sparse MNA storage: triplet-assembled structural patterns frozen into
// compressed-sparse-column (CSC) form, with O(log nnz_col) slot resolution
// so device stamps write straight into a flat value array.
//
// The split matters for the simulation kernel: a circuit topology's pattern
// is discovered ONCE (PatternBuilder), frozen into a SparsePattern shared by
// every evaluation of that topology, and each Newton iteration / frequency
// point merely zeroes and re-accumulates the value array — no node maps, no
// reallocation, no dense clears.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace autockt::linalg {

/// Collects structural (row, col) positions during pattern discovery.
/// Duplicates are welcome and merged. A position declared `weak` is
/// structurally present but expected to be numerically zero in common
/// operation (gmin homotopy diagonals, transient companion conductances at
/// DC); the sparse LU avoids weak slots as pivots while strong candidates
/// remain. Any strong declaration of a position overrides weak ones.
class PatternBuilder {
 public:
  explicit PatternBuilder(std::size_t n) : n_(n) {}

  std::size_t size() const { return n_; }

  void add(std::size_t row, std::size_t col, bool weak = false) {
    assert(row < n_ && col < n_);
    entries_.push_back(
        {static_cast<int>(col), static_cast<int>(row), weak ? 1 : 0});
  }

  struct Entry {
    int col, row, weak;  // col first: entries sort col-major
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.col != b.col) return a.col < b.col;
      if (a.row != b.row) return a.row < b.row;
      return a.weak < b.weak;  // strong (0) sorts first and wins the merge
    }
  };

  /// Sorted (col-major, then row) deduplicated entries; duplicate positions
  /// merge to strong unless every declaration was weak.
  std::vector<Entry> sorted_unique() && {
    std::sort(entries_.begin(), entries_.end());
    std::vector<Entry> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) {
      if (!out.empty() && out.back().col == e.col && out.back().row == e.row)
        continue;  // first occurrence (strong if any was strong) wins
      out.push_back(e);
    }
    return out;
  }

 private:
  std::size_t n_ = 0;
  std::vector<Entry> entries_;
};

/// Frozen structural pattern of an n x n matrix in CSC form. Immutable once
/// built; value arrays (one per concurrent assembly) live outside so one
/// pattern serves real and complex assemblies alike.
class SparsePattern {
 public:
  SparsePattern() = default;

  explicit SparsePattern(PatternBuilder builder) : n_(builder.size()) {
    const auto entries = std::move(builder).sorted_unique();
    col_ptr_.assign(n_ + 1, 0);
    row_idx_.reserve(entries.size());
    weak_.reserve(entries.size());
    for (const auto& e : entries) {
      ++col_ptr_[static_cast<std::size_t>(e.col) + 1];
      row_idx_.push_back(e.row);
      weak_.push_back(static_cast<char>(e.weak));
    }
    for (std::size_t c = 0; c < n_; ++c) col_ptr_[c + 1] += col_ptr_[c];
  }

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return row_idx_.size(); }

  /// Per-slot weak flags (see PatternBuilder::add).
  const std::vector<char>& weak() const { return weak_; }

  /// Slot of (row, col) in the value array; -1 when structurally zero.
  int slot(std::size_t row, std::size_t col) const {
    const int* first = row_idx_.data() + col_ptr_[col];
    const int* last = row_idx_.data() + col_ptr_[col + 1];
    const int* it = std::lower_bound(first, last, static_cast<int>(row));
    if (it == last || *it != static_cast<int>(row)) return -1;
    return static_cast<int>(it - row_idx_.data());
  }

  /// Row index stored at value slot `s`.
  int row_of_slot(std::size_t s) const { return row_idx_[s]; }

  /// Column of value slot `s` (O(log n); used for scatter-map setup only).
  int col_of_slot(std::size_t s) const {
    const auto it = std::upper_bound(col_ptr_.begin(), col_ptr_.end(),
                                     static_cast<int>(s));
    return static_cast<int>(it - col_ptr_.begin()) - 1;
  }

  const std::vector<int>& col_ptr() const { return col_ptr_; }
  const std::vector<int>& row_idx() const { return row_idx_; }

 private:
  std::size_t n_ = 0;
  std::vector<int> col_ptr_;  // size n+1
  std::vector<int> row_idx_;  // size nnz, sorted within each column
  std::vector<char> weak_;    // size nnz
};

}  // namespace autockt::linalg
