#pragma once
// Sparse LU for MNA systems, split into a structural (symbolic) phase done
// once per circuit topology and a numeric refactorization done every Newton
// iteration / frequency point / env step.
//
//  * SparseLuSymbolic — Markowitz-ordered elimination on the frozen pattern:
//    picks pivots minimizing (row_count-1)*(col_count-1), computes the fill
//    pattern, and compiles the whole elimination into flat slot programs
//    (scatter map, per-pivot L/U slot lists, update target lists). Ordering
//    is purely structural, so it is a deterministic function of the circuit
//    topology — two threads, or two runs, always produce the same factors
//    for the same matrix values regardless of which design point they saw
//    first. Positions the discovery pass marks "weak" (gmin homotopy
//    diagonals, transient companion slots — structurally present but often
//    numerically zero) are avoided as pivots while any strong candidate
//    remains. The structural working set is sparse row/column adjacency
//    lists (O(nnz + fill) memory), never a dense n*n occupancy map, so
//    symbolic analysis of large generated decks cannot allocate
//    quadratically.
//  * SparseLuNumeric<T> — replays the compiled program over a value array:
//    zero heap allocation, sparse flop count, shared between real (Newton,
//    transient) and complex (AC, noise) assemblies of the same pattern.
//    refactor() applies a scale-aware pivot check (relative to the largest
//    entry of the pivot's original column, never an absolute epsilon);
//    callers fall back to dense partial-pivot LU when it fails, which keeps
//    results deterministic: the fallback depends only on the matrix values.
//  * SparseLuNumericBatch<T> — the same compiled program replayed over K
//    interleaved value arrays ("lanes") per pass, with lane-contiguous
//    struct-of-arrays storage so the inner update loops vectorize and the K
//    dependent elimination chains interleave into independent instruction
//    streams. Per-lane results are bitwise identical to running
//    SparseLuNumeric<T> on that lane alone (the serial-exact contract).

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <type_traits>
#include <vector>

#include "linalg/sparse.hpp"

namespace autockt::linalg {

namespace detail {
inline double mag_of(double v) { return std::fabs(v); }
inline double mag_of(const std::complex<double>& v) { return std::abs(v); }
}  // namespace detail

class SparseLuSymbolic {
 public:
  SparseLuSymbolic() = default;

  /// Structural analysis of `pattern`; `weak` flags (size nnz, may be empty
  /// meaning all-strong) demote slots as pivot candidates.
  explicit SparseLuSymbolic(const SparsePattern& pattern,
                            const std::vector<char>& weak = {}) {
    build(pattern, weak);
  }

  /// Structurally factorizable (a complete pivot sequence exists).
  bool ok() const { return ok_; }
  std::size_t size() const { return n_; }
  std::size_t lu_nnz() const { return lu_nnz_; }
  /// Multiply-add count of one numeric refactorization (diagnostic).
  std::size_t flops() const { return upd_slot_.size(); }

 private:
  template <typename T>
  friend class SparseLuNumeric;
  template <typename T>
  friend class SparseLuNumericBatch;

  /// Index of `col` in the sorted list, or -1.
  static int find_col(const std::vector<int>& cols, int col) {
    const auto it = std::lower_bound(cols.begin(), cols.end(), col);
    if (it == cols.end() || *it != col) return -1;
    return static_cast<int>(it - cols.begin());
  }

  void build(const SparsePattern& pattern, const std::vector<char>& weak) {
    n_ = pattern.size();
    ok_ = true;
    const std::size_t n = n_;
    if (n == 0) return;

    // ---- phase 1: Markowitz pivot order ------------------------------------
    // Sparse structural working set: per-row sorted column lists (with
    // aligned strength flags) plus per-column row lists. Candidate
    // enumeration order does not matter — the tie-break below is a strict
    // total order over (strength, cost, j, i), so the selected pivot is the
    // unique minimum however the active set is scanned.
    std::vector<std::vector<int>> row_cols(n);
    std::vector<std::vector<char>> row_strong(n);
    std::vector<std::vector<int>> col_rows(n);
    for (std::size_t col = 0; col < n; ++col) {
      for (int p = pattern.col_ptr()[col]; p < pattern.col_ptr()[col + 1];
           ++p) {
        const auto row = static_cast<std::size_t>(pattern.row_idx()[p]);
        const char s = weak.empty() ? 1 : static_cast<char>(!weak[p]);
        std::vector<int>& cols = row_cols[row];
        const auto it =
            std::lower_bound(cols.begin(), cols.end(), static_cast<int>(col));
        const auto pos = static_cast<std::size_t>(it - cols.begin());
        if (it != cols.end() && *it == static_cast<int>(col)) {
          row_strong[row][pos] = s;  // duplicate slot: last writer wins
        } else {
          cols.insert(it, static_cast<int>(col));
          row_strong[row].insert(row_strong[row].begin() +
                                     static_cast<std::ptrdiff_t>(pos),
                                 s);
        }
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      for (int c : row_cols[r]) {
        col_rows[static_cast<std::size_t>(c)].push_back(static_cast<int>(r));
      }
    }

    std::vector<char> row_active(n, 1), col_active(n, 1);
    std::vector<int> row_cnt(n, 0), col_cnt(n, 0);
    for (std::size_t r = 0; r < n; ++r)
      row_cnt[r] = static_cast<int>(row_cols[r].size());
    for (std::size_t c = 0; c < n; ++c)
      col_cnt[c] = static_cast<int>(col_rows[c].size());

    // Hoisted merge scratch (fill merges swap through these).
    std::vector<int> piv_cols, merged_cols;
    std::vector<char> piv_strong, merged_strong;

    prow_.assign(n, 0);
    pcol_.assign(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
      long best_cost = -1;
      std::size_t bi = 0, bj = 0;
      bool best_strong = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (!col_active[j]) continue;
        for (const int ri : col_rows[j]) {
          const auto i = static_cast<std::size_t>(ri);
          if (!row_active[i]) continue;
          const int pos = find_col(row_cols[i], static_cast<int>(j));
          const bool s = row_strong[i][static_cast<std::size_t>(pos)] != 0;
          const long cost = static_cast<long>(row_cnt[i] - 1) *
                            static_cast<long>(col_cnt[j] - 1);
          // Strong beats weak; then lower Markowitz cost; then (j, i) order.
          const bool better =
              best_cost < 0 || (s && !best_strong) ||
              (s == best_strong &&
               (cost < best_cost ||
                (cost == best_cost && (j < bj || (j == bj && i < bi)))));
          if (better) {
            best_cost = cost;
            bi = i;
            bj = j;
            best_strong = s;
          }
        }
      }
      if (best_cost < 0) {
        ok_ = false;  // structurally singular
        return;
      }
      prow_[k] = static_cast<int>(bi);
      pcol_[k] = static_cast<int>(bj);
      row_active[bi] = 0;
      col_active[bj] = 0;
      for (const int c : row_cols[bi])
        if (col_active[static_cast<std::size_t>(c)])
          --col_cnt[static_cast<std::size_t>(c)];
      for (const int r : col_rows[bj])
        if (row_active[static_cast<std::size_t>(r)])
          --row_cnt[static_cast<std::size_t>(r)];

      // Structural fill among still-active rows/cols: merge the pivot row's
      // active columns into every active row of the pivot column. Fill
      // inherits strength from its sources (a product of two weak,
      // often-zero entries is itself often zero); an existing weak entry is
      // upgraded when both sources are strong.
      piv_cols.clear();
      piv_strong.clear();
      for (std::size_t t = 0; t < row_cols[bi].size(); ++t) {
        const int c = row_cols[bi][t];
        if (col_active[static_cast<std::size_t>(c)]) {
          piv_cols.push_back(c);
          piv_strong.push_back(row_strong[bi][t]);
        }
      }
      if (piv_cols.empty()) continue;
      for (const int ri : col_rows[bj]) {
        const auto r = static_cast<std::size_t>(ri);
        if (!row_active[r]) continue;
        const int bj_pos = find_col(row_cols[r], static_cast<int>(bj));
        const char s_rbj = row_strong[r][static_cast<std::size_t>(bj_pos)];
        std::vector<int>& rc = row_cols[r];
        std::vector<char>& rs = row_strong[r];
        merged_cols.clear();
        merged_strong.clear();
        std::size_t a = 0, b = 0;
        while (a < rc.size() || b < piv_cols.size()) {
          if (b == piv_cols.size() ||
              (a < rc.size() && rc[a] < piv_cols[b])) {
            merged_cols.push_back(rc[a]);
            merged_strong.push_back(rs[a]);
            ++a;
          } else if (a < rc.size() && rc[a] == piv_cols[b]) {
            merged_cols.push_back(rc[a]);
            merged_strong.push_back(static_cast<char>(
                rs[a] | (s_rbj & piv_strong[b])));
            ++a;
            ++b;
          } else {
            const int c = piv_cols[b];
            merged_cols.push_back(c);
            merged_strong.push_back(static_cast<char>(s_rbj & piv_strong[b]));
            ++row_cnt[r];
            ++col_cnt[static_cast<std::size_t>(c)];
            col_rows[static_cast<std::size_t>(c)].push_back(ri);
            ++b;
          }
        }
        rc.swap(merged_cols);
        rs.swap(merged_strong);
      }
    }

    inv_prow_.assign(n, 0);
    inv_pcol_.assign(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
      inv_prow_[static_cast<std::size_t>(prow_[k])] = static_cast<int>(k);
      inv_pcol_[static_cast<std::size_t>(pcol_[k])] = static_cast<int>(k);
    }

    // ---- phase 2: LU fill pattern in permuted coordinates ------------------
    // Recomputed cleanly with the same sparse-list representation: per
    // permuted row, a sorted column list; per column, the rows strictly
    // below the diagonal that contain it (the fill frontier).
    std::vector<std::vector<int>> lu_rows(n);
    for (std::size_t col = 0; col < n; ++col) {
      for (int p = pattern.col_ptr()[col]; p < pattern.col_ptr()[col + 1];
           ++p) {
        const auto row = static_cast<std::size_t>(pattern.row_idx()[p]);
        lu_rows[static_cast<std::size_t>(inv_prow_[row])].push_back(
            inv_pcol_[col]);
      }
    }
    std::vector<std::vector<int>> below(n);  // rows r > c containing col c
    for (std::size_t r = 0; r < n; ++r) {
      std::vector<int>& cols = lu_rows[r];
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
      for (const int c : cols) {
        if (static_cast<std::size_t>(c) < r)
          below[static_cast<std::size_t>(c)].push_back(static_cast<int>(r));
      }
    }
    std::vector<int> fill_scratch;
    for (std::size_t k = 0; k < n; ++k) {
      const std::vector<int>& uk = lu_rows[k];
      const auto u_begin = std::upper_bound(uk.begin(), uk.end(),
                                            static_cast<int>(k));
      if (u_begin == uk.end()) continue;
      for (std::size_t t = 0; t < below[k].size(); ++t) {
        const auto r = static_cast<std::size_t>(below[k][t]);
        std::vector<int>& rc = lu_rows[r];
        fill_scratch.clear();
        auto a = rc.begin();
        for (auto b = u_begin; b != uk.end(); ++b) {
          a = std::lower_bound(a, rc.end(), *b);
          if (a == rc.end() || *a != *b) fill_scratch.push_back(*b);
        }
        for (const int c : fill_scratch) {
          rc.insert(std::lower_bound(rc.begin(), rc.end(), c), c);
          if (static_cast<std::size_t>(c) < r)
            below[static_cast<std::size_t>(c)].push_back(static_cast<int>(r));
        }
      }
    }

    // Slot assignment (row-major over the permuted LU pattern).
    std::vector<int> row_start(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) {
      row_start[r + 1] = row_start[r] + static_cast<int>(lu_rows[r].size());
    }
    lu_nnz_ = static_cast<std::size_t>(row_start[n]);
    const auto slot_at = [&](std::size_t r, std::size_t c) -> int {
      const int pos = find_col(lu_rows[r], static_cast<int>(c));
      return pos < 0 ? -1 : row_start[r] + pos;
    };

    // Scatter map: A-pattern slot -> LU slot.
    scatter_.assign(pattern.nnz(), -1);
    scatter_col_.assign(pattern.nnz(), 0);
    for (std::size_t col = 0; col < n; ++col) {
      for (int p = pattern.col_ptr()[col]; p < pattern.col_ptr()[col + 1];
           ++p) {
        const auto row = static_cast<std::size_t>(pattern.row_idx()[p]);
        scatter_[static_cast<std::size_t>(p)] =
            slot_at(static_cast<std::size_t>(inv_prow_[row]),
                    static_cast<std::size_t>(inv_pcol_[col]));
        scatter_col_[static_cast<std::size_t>(p)] = inv_pcol_[col];
      }
    }

    diag_slot_.assign(n, -1);
    for (std::size_t k = 0; k < n; ++k) diag_slot_[k] = slot_at(k, k);

    // Column-major adjacency (rows ascending, matching the row scan order).
    std::vector<std::vector<int>> lu_cols(n);
    for (std::size_t r = 0; r < n; ++r) {
      for (const int c : lu_rows[r])
        lu_cols[static_cast<std::size_t>(c)].push_back(static_cast<int>(r));
    }

    auto build_lists = [&](auto pred, std::vector<int>& ptr,
                           std::vector<int>& idx, std::vector<int>& slot,
                           bool by_row) {
      ptr.assign(n + 1, 0);
      idx.clear();
      slot.clear();
      for (std::size_t a = 0; a < n; ++a) {
        const std::vector<int>& list = by_row ? lu_rows[a] : lu_cols[a];
        for (const int bo : list) {
          const auto b = static_cast<std::size_t>(bo);
          const std::size_t r = by_row ? a : b;
          const std::size_t c = by_row ? b : a;
          if (pred(r, c)) {
            idx.push_back(static_cast<int>(b));
            slot.push_back(slot_at(r, c));
          }
        }
        ptr[a + 1] = static_cast<int>(idx.size());
      }
    };
    auto in_l = [](std::size_t r, std::size_t c) { return c < r; };
    auto in_u_offdiag = [](std::size_t r, std::size_t c) { return c > r; };
    build_lists(in_l, lrow_ptr_, lrow_idx_, lrow_slot_, /*by_row=*/true);
    build_lists(in_u_offdiag, urow_ptr_, urow_idx_, urow_slot_, true);
    build_lists(in_l, lcol_ptr_, lcol_idx_, lcol_slot_, /*by_row=*/false);
    build_lists(in_u_offdiag, ucol_ptr_, ucol_idx_, ucol_slot_, false);

    // Compiled update program: for pivot k, for each L slot (r,k), for each
    // U slot (k,c): target slot (r,c). Flat, in loop order.
    upd_ptr_.assign(n + 1, 0);
    upd_slot_.clear();
    for (std::size_t k = 0; k < n; ++k) {
      for (int lp = lcol_ptr_[k]; lp < lcol_ptr_[k + 1]; ++lp) {
        const auto r = static_cast<std::size_t>(lcol_idx_[lp]);
        for (int up = urow_ptr_[k]; up < urow_ptr_[k + 1]; ++up) {
          const auto c = static_cast<std::size_t>(urow_idx_[up]);
          upd_slot_.push_back(slot_at(r, c));
        }
      }
      upd_ptr_[k + 1] = static_cast<int>(upd_slot_.size());
    }
  }

  std::size_t n_ = 0;
  std::size_t lu_nnz_ = 0;
  bool ok_ = false;
  std::vector<int> prow_, pcol_, inv_prow_, inv_pcol_;
  std::vector<int> scatter_;      // A slot -> LU slot
  std::vector<int> scatter_col_;  // A slot -> permuted column (pivot scale)
  std::vector<int> diag_slot_;
  // Row-major / column-major adjacency of L (unit diag excluded) and U
  // (diagonal excluded); *_idx holds the other coordinate.
  std::vector<int> lrow_ptr_, lrow_idx_, lrow_slot_;
  std::vector<int> urow_ptr_, urow_idx_, urow_slot_;
  std::vector<int> lcol_ptr_, lcol_idx_, lcol_slot_;
  std::vector<int> ucol_ptr_, ucol_idx_, ucol_slot_;
  std::vector<int> upd_ptr_, upd_slot_;
};

/// Numeric side: value array + scratch, reusable with zero allocation after
/// construction. One instance per concurrent solver (not thread-safe).
template <typename T>
class SparseLuNumeric {
 public:
  SparseLuNumeric() = default;

  explicit SparseLuNumeric(const SparseLuSymbolic& symbolic)
      : sym_(&symbolic),
        lu_vals_(symbolic.lu_nnz(), T{}),
        col_scale_(symbolic.size(), 0.0),
        y_(symbolic.size(), T{}) {}

  /// Scale-aware pivot acceptance: |pivot| must exceed this fraction of the
  /// largest |entry| stamped into its (permuted) column.
  static constexpr double kPivotRelTol = 1e-13;

  /// Refactorize from `a_vals` (aligned with the A pattern the symbolic
  /// analysis was built from). Returns false — leaving no usable factors —
  /// when a pivot fails the scale-aware check; the caller is expected to
  /// fall back to a pivoting (dense) solve for this matrix.
  bool refactor(const T* a_vals) {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    std::fill(lu_vals_.begin(), lu_vals_.end(), T{});
    std::fill(col_scale_.begin(), col_scale_.end(), 0.0);
    for (std::size_t p = 0; p < s.scatter_.size(); ++p) {
      const T v = a_vals[p];
      lu_vals_[static_cast<std::size_t>(s.scatter_[p])] += v;
      double& scale = col_scale_[static_cast<std::size_t>(s.scatter_col_[p])];
      scale = std::max(scale, detail::mag_of(v));
    }
    for (std::size_t k = 0; k < n; ++k) {
      const T piv = lu_vals_[static_cast<std::size_t>(s.diag_slot_[k])];
      const double scale = col_scale_[k];
      if (!(detail::mag_of(piv) > kPivotRelTol * scale) ||
          scale < std::numeric_limits<double>::min()) {
        return false;
      }
      const T inv_piv = T(1) / piv;
      const int l0 = s.lcol_ptr_[k], l1 = s.lcol_ptr_[k + 1];
      const int u0 = s.urow_ptr_[k], u1 = s.urow_ptr_[k + 1];
      const int* upd = s.upd_slot_.data() + s.upd_ptr_[k];
      for (int lp = l0; lp < l1; ++lp) {
        T& lval = lu_vals_[static_cast<std::size_t>(s.lcol_slot_[lp])];
        lval *= inv_piv;
        if (lval == T{}) {
          upd += (u1 - u0);
          continue;
        }
        for (int up = u0; up < u1; ++up) {
          lu_vals_[static_cast<std::size_t>(*upd++)] -=
              lval * lu_vals_[static_cast<std::size_t>(s.urow_slot_[up])];
        }
      }
    }
    return true;
  }

  /// Solve A x = b (b and x must not alias; sizes n).
  void solve(const T* b, T* x) const {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    // z = P_r b; forward L (unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[static_cast<std::size_t>(s.prow_[i])];
      for (int p = s.lrow_ptr_[i]; p < s.lrow_ptr_[i + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.lrow_slot_[p])] *
               y_[static_cast<std::size_t>(s.lrow_idx_[p])];
      }
      y_[i] = acc;
    }
    // Backward U; then x = P_c^T y.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = y_[ii];
      for (int p = s.urow_ptr_[ii]; p < s.urow_ptr_[ii + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.urow_slot_[p])] *
               y_[static_cast<std::size_t>(s.urow_idx_[p])];
      }
      y_[ii] = acc / lu_vals_[static_cast<std::size_t>(s.diag_slot_[ii])];
    }
    for (std::size_t j = 0; j < n; ++j)
      x[static_cast<std::size_t>(s.pcol_[j])] = y_[j];
  }

  /// Solve A^T x = b (plain transpose — what adjoint noise analysis needs).
  void solve_transposed(const T* b, T* x) const {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    // B^T = U^T L^T with B = P_r A P_c: solve U^T w = P_c^T-permuted b.
    for (std::size_t j = 0; j < n; ++j) {
      T acc = b[static_cast<std::size_t>(s.pcol_[j])];
      for (int p = s.ucol_ptr_[j]; p < s.ucol_ptr_[j + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.ucol_slot_[p])] *
               y_[static_cast<std::size_t>(s.ucol_idx_[p])];
      }
      y_[j] = acc / lu_vals_[static_cast<std::size_t>(s.diag_slot_[j])];
    }
    // L^T v = w (unit upper in transpose).
    for (std::size_t kk = n; kk-- > 0;) {
      T acc = y_[kk];
      for (int p = s.lcol_ptr_[kk]; p < s.lcol_ptr_[kk + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.lcol_slot_[p])] *
               y_[static_cast<std::size_t>(s.lcol_idx_[p])];
      }
      y_[kk] = acc;
    }
    for (std::size_t i = 0; i < n; ++i)
      x[static_cast<std::size_t>(s.prow_[i])] = y_[i];
  }

 private:
  const SparseLuSymbolic* sym_ = nullptr;
  std::vector<T> lu_vals_;
  std::vector<double> col_scale_;
  mutable std::vector<T> y_;  // substitution scratch (solves are sequential)
};

/// Batched numeric kernel: K simulation lanes per elimination-program pass.
///
/// Storage is struct-of-arrays with lane-contiguous slots, held as plain
/// double arrays. A real slot s occupies K doubles at [s*K + lane]; a
/// complex slot occupies 2K doubles — the real parts at [s*2K + lane], the
/// imaginary parts at [s*2K + K + lane] (split-complex). Splitting matters:
/// a lane loop over std::complex<double> compiles to a per-element
/// __muldc3 library call under the C99 Annex G rules, while the split form
/// is straight-line double arithmetic the compiler vectorizes. Every inner
/// loop over lanes is therefore unit-stride packed math, and the K
/// dependent elimination chains run as independent instruction streams
/// instead of one latency-bound chain.
///
/// Serial-exact contract: lane l's pivot decisions, factors and solve
/// results are bitwise identical to running SparseLuNumeric<T> over that
/// lane's values alone. For complex T the multiply in the update loops is
/// expanded as (ar*br - ai*bi, ar*bi + ai*br) — exactly the value the
/// scalar kernel's operator* produces whenever the product is not the
/// all-NaN case that triggers Annex G recovery (finite stamped matrices
/// never are; lanes that go non-finite have already failed the pivot check
/// and are discarded to the dense fallback). Complex divisions and
/// magnitude checks go through the same std::complex library calls as the
/// scalar kernel, so the Smith's-algorithm division rounding matches
/// bitwise. The zero-L-multiplier skip is classified per L slot across
/// lanes: all lanes zero skips the whole update block (the scalar skip for
/// every lane), no lane zero runs a branch-free lane loop (the scalar
/// update for every lane), and the mixed case falls back to a per-lane
/// guard — each lane always sees exactly the scalar operation sequence.
/// Lanes whose scale-aware pivot check fails are flagged for the caller's
/// per-lane dense fallback; their inverse pivots are forced to zero so the
/// remaining passes stay finite for the surviving lanes.
template <typename T>
class SparseLuNumericBatch {
  /// Components per slot: 1 for real, 2 (split re/im blocks) for complex.
  static constexpr bool kComplex = !std::is_same_v<T, double>;
  static constexpr std::size_t kComp = kComplex ? 2 : 1;

 public:
  SparseLuNumericBatch() = default;

  SparseLuNumericBatch(const SparseLuSymbolic& symbolic, std::size_t lanes) {
    reset(symbolic, lanes);
  }

  /// Re-point at `symbolic` with a (possibly different) lane count, reusing
  /// the existing allocations when they are large enough. Lockstep Newton
  /// shrinks the lane count every time a lane retires, so this runs on the
  /// DC hot path and must not reallocate on shrink (vector::assign keeps
  /// capacity).
  void reset(const SparseLuSymbolic& symbolic, std::size_t lanes) {
    sym_ = &symbolic;
    lanes_ = lanes;
    lu_vals_.assign(symbolic.lu_nnz() * lanes * kComp, 0.0);
    col_scale_.assign(symbolic.size() * lanes, 0.0);
    inv_piv_.assign(lanes * kComp, 0.0);
    y_.assign(symbolic.size() * lanes * kComp, 0.0);
    if constexpr (kComplex) {
      finite_acc_.assign(lanes, 0.0);
      lane_exact_.assign(lanes, 0);
      exact_scale_.assign(symbolic.size() * lanes, 0.0);
    }
  }

  std::size_t lanes() const { return lanes_; }

  /// Refactorize all lanes from `a_vals` (layout [a_slot*K + lane]).
  /// `lane_ok[l]` (size K) is set to 1 when lane l passed every scale-aware
  /// pivot check — the same predicate, in the same pivot order, as the
  /// scalar refactor — and 0 otherwise; failed lanes carry no usable
  /// factors and the caller is expected to dense-fall-back per lane.
  void refactor(const T* a_vals, unsigned char* lane_ok) {
    refactor_impl(
        [a_vals, K = lanes_](std::size_t p, std::size_t l) {
          return a_vals[p * K + l];
        },
        lane_ok);
  }

  /// Complex-only fused AC refactorization: forms y = g + i*omega*c on the
  /// fly from the separate conductance/capacitance lane arrays (both laid
  /// out [a_slot*K + lane]) instead of requiring the caller to materialize
  /// an interleaved complex array per frequency point. The imaginary part
  /// is computed as omega * c — the identical expression the AC assembly
  /// uses — so the factors are bitwise the same as refactor() on that
  /// materialized array.
  void refactor_gc(const double* g_vals, const double* c_vals, double omega,
                   unsigned char* lane_ok) {
    static_assert(kComplex, "refactor_gc is the complex AC entry point");
    refactor_impl(
        [g_vals, c_vals, omega, K = lanes_](std::size_t p, std::size_t l) {
          return T(g_vals[p * K + l], omega * c_vals[p * K + l]);
        },
        lane_ok);
  }

 private:
  template <typename Src>
  void refactor_impl(Src src, unsigned char* lane_ok) {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    const std::size_t K = lanes_;
    double* const lu = lu_vals_.data();
    std::fill(lu_vals_.begin(), lu_vals_.end(), 0.0);
    std::fill(col_scale_.begin(), col_scale_.end(), 0.0);
    for (std::size_t l = 0; l < K; ++l) lane_ok[l] = 1;
    if constexpr (kComplex) {
      std::fill(finite_acc_.begin(), finite_acc_.end(), 0.0);
    }
    for (std::size_t p = 0; p < s.scatter_.size(); ++p) {
      double* dst = lu + static_cast<std::size_t>(s.scatter_[p]) * K * kComp;
      double* scale =
          col_scale_.data() + static_cast<std::size_t>(s.scatter_col_[p]) * K;
      for (std::size_t l = 0; l < K; ++l) {
        const T v = src(p, l);
        if constexpr (kComplex) {
          // Track |re|+|im| instead of the hypot the scalar kernel uses:
          // it brackets the true magnitude within 2x (m/2 <= |v| <= m for
          // finite v), which is all the pivot screen below needs, and it is
          // branch-free vector math instead of a libm call per lane. The
          // running sum poisons to NaN/inf the moment any entry does, which
          // routes that lane to the exact path.
          const double re = v.real(), im = v.imag();
          dst[l] += re;
          dst[K + l] += im;
          const double m = std::fabs(re) + std::fabs(im);
          scale[l] = std::max(scale[l], m);
          finite_acc_[l] += m;
        } else {
          dst[l] += v;
          scale[l] = std::max(scale[l], detail::mag_of(v));
        }
      }
    }
    if constexpr (kComplex) {
      for (std::size_t l = 0; l < K; ++l) {
        lane_exact_[l] = finite_acc_[l] < std::numeric_limits<double>::max()
                             ? static_cast<unsigned char>(0)
                             : static_cast<unsigned char>(1);
        if (lane_exact_[l] != 0) fill_exact_scale(src, l);
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      const double* piv =
          lu + static_cast<std::size_t>(s.diag_slot_[k]) * K * kComp;
      const double* scale = col_scale_.data() + k * K;
      for (std::size_t l = 0; l < K; ++l) {
        if (lane_ok[l] == 0) {
          // Dead lane: the scalar kernel bailed out at its first failed
          // pivot, so no further decisions exist to mirror. Zero inverse
          // pivots keep the surviving lanes' passes finite.
          store(inv_piv_.data(), l, T{});
          continue;
        }
        bool ok = false;
        if constexpr (kComplex) {
          // Conservative screen on the |re|+|im| bounds: certifies the
          // overwhelmingly common "pivot comfortably passes" case without
          // any hypot. Inconclusive lanes switch to the exact per-column
          // scales (the scalar kernel's own max-of-hypots), so the
          // accept/reject decision — and therefore every factor — is
          // always the scalar one. A NaN pivot component makes the screen
          // comparison false, which is exactly the conservative direction.
          if (lane_exact_[l] == 0) {
            const double ub = scale[l];
            const double piv_lb =
                0.5 * (std::fabs(piv[l]) + std::fabs(piv[K + l]));
            if (piv_lb > SparseLuNumeric<T>::kPivotRelTol * ub &&
                0.5 * ub >= std::numeric_limits<double>::min()) {
              ok = true;
            } else {
              fill_exact_scale(src, l);
              lane_exact_[l] = 1;
            }
          }
          if (lane_exact_[l] != 0) {
            const double esc = exact_scale_[k * K + l];
            ok = !(!(detail::mag_of(load(piv, l)) >
                     SparseLuNumeric<T>::kPivotRelTol * esc) ||
                   esc < std::numeric_limits<double>::min());
          }
        } else {
          // Mirrors the scalar acceptance exactly (including NaN
          // behaviour: !(mag > tol*scale) fails the lane).
          ok = !(!(detail::mag_of(load(piv, l)) >
                   SparseLuNumeric<T>::kPivotRelTol * scale[l]) ||
                 scale[l] < std::numeric_limits<double>::min());
        }
        lane_ok[l] = static_cast<unsigned char>(lane_ok[l] & (ok ? 1 : 0));
        // Division goes through the std::complex operator so the rounding
        // matches the scalar kernel bitwise.
        store(inv_piv_.data(), l,
              lane_ok[l] != 0 ? T(1) / load(piv, l) : T{});
      }
      const int l0 = s.lcol_ptr_[k], l1 = s.lcol_ptr_[k + 1];
      const int u0 = s.urow_ptr_[k], u1 = s.urow_ptr_[k + 1];
      const int* upd = s.upd_slot_.data() + s.upd_ptr_[k];
      for (int lp = l0; lp < l1; ++lp) {
        double* __restrict lrow =
            lu + static_cast<std::size_t>(s.lcol_slot_[lp]) * K * kComp;
        const double* __restrict ip = inv_piv_.data();
        std::size_t zero_lanes = 0;
        for (std::size_t l = 0; l < K; ++l) {
          if constexpr (kComplex) {
            const double lr = lrow[l], li = lrow[K + l];
            lrow[l] = lr * ip[l] - li * ip[K + l];
            lrow[K + l] = lr * ip[K + l] + li * ip[l];
            if (lrow[l] == 0.0 && lrow[K + l] == 0.0) ++zero_lanes;
          } else {
            lrow[l] *= ip[l];
            if (lrow[l] == 0.0) ++zero_lanes;
          }
        }
        if (zero_lanes == K) {
          upd += (u1 - u0);
          continue;
        }
        if (zero_lanes == 0) {
          for (int up = u0; up < u1; ++up) {
            double* __restrict tgt =
                lu + static_cast<std::size_t>(*upd++) * K * kComp;
            const double* __restrict urow =
                lu + static_cast<std::size_t>(s.urow_slot_[up]) * K * kComp;
            for (std::size_t l = 0; l < K; ++l) {
              if constexpr (kComplex) {
                tgt[l] -= lrow[l] * urow[l] - lrow[K + l] * urow[K + l];
                tgt[K + l] -= lrow[l] * urow[K + l] + lrow[K + l] * urow[l];
              } else {
                tgt[l] -= lrow[l] * urow[l];
              }
            }
          }
        } else {
          for (int up = u0; up < u1; ++up) {
            double* __restrict tgt =
                lu + static_cast<std::size_t>(*upd++) * K * kComp;
            const double* __restrict urow =
                lu + static_cast<std::size_t>(s.urow_slot_[up]) * K * kComp;
            for (std::size_t l = 0; l < K; ++l) {
              if constexpr (kComplex) {
                if (lrow[l] != 0.0 || lrow[K + l] != 0.0) {
                  tgt[l] -= lrow[l] * urow[l] - lrow[K + l] * urow[K + l];
                  tgt[K + l] -= lrow[l] * urow[K + l] + lrow[K + l] * urow[l];
                }
              } else {
                if (lrow[l] != 0.0) tgt[l] -= lrow[l] * urow[l];
              }
            }
          }
        }
      }
    }
  }

 public:
  /// Solve A x = b for every lane (b, x laid out [i*K + lane]; must not
  /// alias). Failed lanes produce unspecified values — the caller replaces
  /// them with its dense-fallback solution.
  void solve(const T* b, T* x) const {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    const std::size_t K = lanes_;
    const double* const lu = lu_vals_.data();
    double* const y = y_.data();
    for (std::size_t i = 0; i < n; ++i) {
      double* __restrict yi = y + i * K * kComp;
      const T* bi = b + static_cast<std::size_t>(s.prow_[i]) * K;
      for (std::size_t l = 0; l < K; ++l) store(yi, l, bi[l]);
      for (int p = s.lrow_ptr_[i]; p < s.lrow_ptr_[i + 1]; ++p) {
        const double* __restrict lv =
            lu + static_cast<std::size_t>(s.lrow_slot_[p]) * K * kComp;
        const double* __restrict yj =
            y + static_cast<std::size_t>(s.lrow_idx_[p]) * K * kComp;
        fnmadd(yi, lv, yj, K);
      }
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double* __restrict yi = y + ii * K * kComp;
      for (int p = s.urow_ptr_[ii]; p < s.urow_ptr_[ii + 1]; ++p) {
        const double* __restrict uv =
            lu + static_cast<std::size_t>(s.urow_slot_[p]) * K * kComp;
        const double* __restrict yj =
            y + static_cast<std::size_t>(s.urow_idx_[p]) * K * kComp;
        fnmadd(yi, uv, yj, K);
      }
      const double* dv =
          lu + static_cast<std::size_t>(s.diag_slot_[ii]) * K * kComp;
      for (std::size_t l = 0; l < K; ++l) {
        store(yi, l, load(yi, l) / load(dv, l));
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      T* xj = x + static_cast<std::size_t>(s.pcol_[j]) * K;
      const double* yj = y + j * K * kComp;
      for (std::size_t l = 0; l < K; ++l) xj[l] = load(yj, l);
    }
  }

  /// Solve A^T x = b for every lane (adjoint noise analysis).
  void solve_transposed(const T* b, T* x) const {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    const std::size_t K = lanes_;
    const double* const lu = lu_vals_.data();
    double* const y = y_.data();
    for (std::size_t j = 0; j < n; ++j) {
      double* __restrict yj = y + j * K * kComp;
      const T* bj = b + static_cast<std::size_t>(s.pcol_[j]) * K;
      for (std::size_t l = 0; l < K; ++l) store(yj, l, bj[l]);
      for (int p = s.ucol_ptr_[j]; p < s.ucol_ptr_[j + 1]; ++p) {
        const double* __restrict uv =
            lu + static_cast<std::size_t>(s.ucol_slot_[p]) * K * kComp;
        const double* __restrict yi =
            y + static_cast<std::size_t>(s.ucol_idx_[p]) * K * kComp;
        fnmadd(yj, uv, yi, K);
      }
      const double* dv =
          lu + static_cast<std::size_t>(s.diag_slot_[j]) * K * kComp;
      for (std::size_t l = 0; l < K; ++l) {
        store(yj, l, load(yj, l) / load(dv, l));
      }
    }
    for (std::size_t kk = n; kk-- > 0;) {
      double* __restrict yk = y + kk * K * kComp;
      for (int p = s.lcol_ptr_[kk]; p < s.lcol_ptr_[kk + 1]; ++p) {
        const double* __restrict lv =
            lu + static_cast<std::size_t>(s.lcol_slot_[p]) * K * kComp;
        const double* __restrict yi =
            y + static_cast<std::size_t>(s.lcol_idx_[p]) * K * kComp;
        fnmadd(yk, lv, yi, K);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      T* xi = x + static_cast<std::size_t>(s.prow_[i]) * K;
      const double* yi = y + i * K * kComp;
      for (std::size_t l = 0; l < K; ++l) xi[l] = load(yi, l);
    }
  }

 private:
  /// Load/store lane l of a split slot block as the element type.
  T load(const double* slot, std::size_t l) const {
    if constexpr (kComplex) {
      return T(slot[l], slot[lanes_ + l]);
    } else {
      return slot[l];
    }
  }
  void store(double* slot, std::size_t l, T v) const {
    if constexpr (kComplex) {
      slot[l] = v.real();
      slot[lanes_ + l] = v.imag();
    } else {
      slot[l] = v;
    }
  }

  /// Recompute lane l's per-column pivot scales exactly as the scalar
  /// kernel does (max of std::abs over the column's A entries). Called only
  /// when the cheap screen in refactor() is inconclusive or the lane's
  /// values are not all finite.
  template <typename Src>
  void fill_exact_scale(Src src, std::size_t l) {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t K = lanes_;
    for (std::size_t k = 0; k < s.n_; ++k) exact_scale_[k * K + l] = 0.0;
    for (std::size_t p = 0; p < s.scatter_.size(); ++p) {
      double& sc =
          exact_scale_[static_cast<std::size_t>(s.scatter_col_[p]) * K + l];
      sc = std::max(sc, detail::mag_of(src(p, l)));
    }
  }

  /// acc -= a * b over all lanes of split slot blocks (the substitution
  /// inner loop; the complex multiply is the Annex-G fast-path expansion).
  static void fnmadd(double* __restrict acc, const double* __restrict a,
                     const double* __restrict b, std::size_t K) {
    if constexpr (kComplex) {
      for (std::size_t l = 0; l < K; ++l) {
        acc[l] -= a[l] * b[l] - a[K + l] * b[K + l];
        acc[K + l] -= a[l] * b[K + l] + a[K + l] * b[l];
      }
    } else {
      for (std::size_t l = 0; l < K; ++l) acc[l] -= a[l] * b[l];
    }
  }

  const SparseLuSymbolic* sym_ = nullptr;
  std::size_t lanes_ = 0;
  // Split SoA storage: slot s's lane values start at [s * lanes * kComp];
  // for complex the imaginary parts follow the real block at +lanes.
  std::vector<double> lu_vals_;
  std::vector<double> col_scale_;  // [permuted_col * lanes + lane]
  std::vector<double> inv_piv_;    // per-lane inverse pivot scratch (split)
  mutable std::vector<double> y_;  // substitution scratch (split)
  // Complex-only pivot-screen state: running |re|+|im| sum per lane (NaN/
  // inf poison detection), per-lane "use exact scales" flag, and the
  // exact scalar-identical per-column scales for flagged lanes.
  std::vector<double> finite_acc_;
  std::vector<unsigned char> lane_exact_;
  std::vector<double> exact_scale_;
};

}  // namespace autockt::linalg
