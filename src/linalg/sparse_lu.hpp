#pragma once
// Sparse LU for MNA systems, split into a structural (symbolic) phase done
// once per circuit topology and a numeric refactorization done every Newton
// iteration / frequency point / env step.
//
//  * SparseLuSymbolic — Markowitz-ordered elimination on the frozen pattern:
//    picks pivots minimizing (row_count-1)*(col_count-1), computes the fill
//    pattern, and compiles the whole elimination into flat slot programs
//    (scatter map, per-pivot L/U slot lists, update target lists). Ordering
//    is purely structural, so it is a deterministic function of the circuit
//    topology — two threads, or two runs, always produce the same factors
//    for the same matrix values regardless of which design point they saw
//    first. Positions the discovery pass marks "weak" (gmin homotopy
//    diagonals, transient companion slots — structurally present but often
//    numerically zero) are avoided as pivots while any strong candidate
//    remains.
//  * SparseLuNumeric<T> — replays the compiled program over a value array:
//    zero heap allocation, sparse flop count, shared between real (Newton,
//    transient) and complex (AC, noise) assemblies of the same pattern.
//    refactor() applies a scale-aware pivot check (relative to the largest
//    entry of the pivot's original column, never an absolute epsilon);
//    callers fall back to dense partial-pivot LU when it fails, which keeps
//    results deterministic: the fallback depends only on the matrix values.

#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <vector>

#include "linalg/sparse.hpp"

namespace autockt::linalg {

namespace detail {
inline double mag_of(double v) { return std::fabs(v); }
inline double mag_of(const std::complex<double>& v) { return std::abs(v); }
}  // namespace detail

class SparseLuSymbolic {
 public:
  SparseLuSymbolic() = default;

  /// Structural analysis of `pattern`; `weak` flags (size nnz, may be empty
  /// meaning all-strong) demote slots as pivot candidates.
  explicit SparseLuSymbolic(const SparsePattern& pattern,
                            const std::vector<char>& weak = {}) {
    build(pattern, weak);
  }

  /// Structurally factorizable (a complete pivot sequence exists).
  bool ok() const { return ok_; }
  std::size_t size() const { return n_; }
  std::size_t lu_nnz() const { return lu_nnz_; }
  /// Multiply-add count of one numeric refactorization (diagnostic).
  std::size_t flops() const { return upd_slot_.size(); }

 private:
  template <typename T>
  friend class SparseLuNumeric;

  void build(const SparsePattern& pattern, const std::vector<char>& weak) {
    n_ = pattern.size();
    ok_ = true;
    const std::size_t n = n_;
    if (n == 0) return;

    // Dense structural working set: occupancy + strength, original coords.
    std::vector<char> occ(n * n, 0), strong(n * n, 0);
    for (std::size_t col = 0; col < n; ++col) {
      for (int p = pattern.col_ptr()[col]; p < pattern.col_ptr()[col + 1];
           ++p) {
        const auto row = static_cast<std::size_t>(pattern.row_idx()[p]);
        occ[row * n + col] = 1;
        strong[row * n + col] =
            weak.empty() ? 1 : static_cast<char>(!weak[p]);
      }
    }

    // Markowitz pivot selection with deterministic tie-breaks.
    std::vector<char> row_active(n, 1), col_active(n, 1);
    std::vector<int> row_cnt(n, 0), col_cnt(n, 0);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        if (occ[r * n + c]) {
          ++row_cnt[r];
          ++col_cnt[c];
        }

    prow_.assign(n, 0);
    pcol_.assign(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
      long best_cost = -1;
      std::size_t bi = 0, bj = 0;
      bool best_strong = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (!col_active[j]) continue;
        for (std::size_t i = 0; i < n; ++i) {
          if (!row_active[i] || !occ[i * n + j]) continue;
          const bool s = strong[i * n + j] != 0;
          const long cost = static_cast<long>(row_cnt[i] - 1) *
                            static_cast<long>(col_cnt[j] - 1);
          // Strong beats weak; then lower Markowitz cost; then (j, i) order.
          const bool better =
              best_cost < 0 || (s && !best_strong) ||
              (s == best_strong &&
               (cost < best_cost ||
                (cost == best_cost && (j < bj || (j == bj && i < bi)))));
          if (better) {
            best_cost = cost;
            bi = i;
            bj = j;
            best_strong = s;
          }
        }
      }
      if (best_cost < 0) {
        ok_ = false;  // structurally singular
        return;
      }
      prow_[k] = static_cast<int>(bi);
      pcol_[k] = static_cast<int>(bj);
      row_active[bi] = 0;
      col_active[bj] = 0;
      for (std::size_t c = 0; c < n; ++c)
        if (occ[bi * n + c] && col_active[c]) --col_cnt[c];
      for (std::size_t r = 0; r < n; ++r)
        if (occ[r * n + bj] && row_active[r]) --row_cnt[r];
      // Structural fill among still-active rows/cols.
      for (std::size_t r = 0; r < n; ++r) {
        if (!row_active[r] || !occ[r * n + bj]) continue;
        for (std::size_t c = 0; c < n; ++c) {
          if (!col_active[c] || !occ[bi * n + c]) continue;
          if (!occ[r * n + c]) {
            occ[r * n + c] = 1;
            ++row_cnt[r];
            ++col_cnt[c];
          }
          // Fill inherits strength from its sources: a product of two weak
          // (often-zero) entries is itself often zero.
          if (strong[r * n + bj] && strong[bi * n + c])
            strong[r * n + c] = 1;
        }
      }
    }

    inv_prow_.assign(n, 0);
    inv_pcol_.assign(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
      inv_prow_[static_cast<std::size_t>(prow_[k])] = static_cast<int>(k);
      inv_pcol_[static_cast<std::size_t>(pcol_[k])] = static_cast<int>(k);
    }

    // Recompute the LU fill pattern cleanly in permuted coordinates.
    std::vector<char> lu_occ(n * n, 0);
    for (std::size_t col = 0; col < n; ++col) {
      for (int p = pattern.col_ptr()[col]; p < pattern.col_ptr()[col + 1];
           ++p) {
        const auto row = static_cast<std::size_t>(pattern.row_idx()[p]);
        lu_occ[static_cast<std::size_t>(inv_prow_[row]) * n +
               static_cast<std::size_t>(inv_pcol_[col])] = 1;
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t r = k + 1; r < n; ++r) {
        if (!lu_occ[r * n + k]) continue;
        for (std::size_t c = k + 1; c < n; ++c) {
          if (lu_occ[k * n + c]) lu_occ[r * n + c] = 1;
        }
      }
    }

    // Slot assignment (row-major over the permuted LU pattern).
    std::vector<int> slot_of(n * n, -1);
    lu_nnz_ = 0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        if (lu_occ[r * n + c])
          slot_of[r * n + c] = static_cast<int>(lu_nnz_++);
      }
    }

    // Scatter map: A-pattern slot -> LU slot.
    scatter_.assign(pattern.nnz(), -1);
    scatter_col_.assign(pattern.nnz(), 0);
    for (std::size_t col = 0; col < n; ++col) {
      for (int p = pattern.col_ptr()[col]; p < pattern.col_ptr()[col + 1];
           ++p) {
        const auto row = static_cast<std::size_t>(pattern.row_idx()[p]);
        scatter_[static_cast<std::size_t>(p)] =
            slot_of[static_cast<std::size_t>(inv_prow_[row]) * n +
                    static_cast<std::size_t>(inv_pcol_[col])];
        scatter_col_[static_cast<std::size_t>(p)] = inv_pcol_[col];
      }
    }

    diag_slot_.assign(n, -1);
    for (std::size_t k = 0; k < n; ++k) diag_slot_[k] = slot_of[k * n + k];

    auto build_lists = [&](auto pred, std::vector<int>& ptr,
                           std::vector<int>& idx, std::vector<int>& slot,
                           bool by_row) {
      ptr.assign(n + 1, 0);
      idx.clear();
      slot.clear();
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
          const std::size_t r = by_row ? a : b;
          const std::size_t c = by_row ? b : a;
          if (slot_of[r * n + c] >= 0 && pred(r, c)) {
            idx.push_back(static_cast<int>(b));
            slot.push_back(slot_of[r * n + c]);
          }
        }
        ptr[a + 1] = static_cast<int>(idx.size());
      }
    };
    auto in_l = [](std::size_t r, std::size_t c) { return c < r; };
    auto in_u_offdiag = [](std::size_t r, std::size_t c) { return c > r; };
    build_lists(in_l, lrow_ptr_, lrow_idx_, lrow_slot_, /*by_row=*/true);
    build_lists(in_u_offdiag, urow_ptr_, urow_idx_, urow_slot_, true);
    build_lists(in_l, lcol_ptr_, lcol_idx_, lcol_slot_, /*by_row=*/false);
    build_lists(in_u_offdiag, ucol_ptr_, ucol_idx_, ucol_slot_, false);

    // Compiled update program: for pivot k, for each L slot (r,k), for each
    // U slot (k,c): target slot (r,c). Flat, in loop order.
    upd_ptr_.assign(n + 1, 0);
    upd_slot_.clear();
    for (std::size_t k = 0; k < n; ++k) {
      for (int lp = lcol_ptr_[k]; lp < lcol_ptr_[k + 1]; ++lp) {
        const auto r = static_cast<std::size_t>(lcol_idx_[lp]);
        for (int up = urow_ptr_[k]; up < urow_ptr_[k + 1]; ++up) {
          const auto c = static_cast<std::size_t>(urow_idx_[up]);
          upd_slot_.push_back(slot_of[r * n + c]);
        }
      }
      upd_ptr_[k + 1] = static_cast<int>(upd_slot_.size());
    }
  }

  std::size_t n_ = 0;
  std::size_t lu_nnz_ = 0;
  bool ok_ = false;
  std::vector<int> prow_, pcol_, inv_prow_, inv_pcol_;
  std::vector<int> scatter_;      // A slot -> LU slot
  std::vector<int> scatter_col_;  // A slot -> permuted column (pivot scale)
  std::vector<int> diag_slot_;
  // Row-major / column-major adjacency of L (unit diag excluded) and U
  // (diagonal excluded); *_idx holds the other coordinate.
  std::vector<int> lrow_ptr_, lrow_idx_, lrow_slot_;
  std::vector<int> urow_ptr_, urow_idx_, urow_slot_;
  std::vector<int> lcol_ptr_, lcol_idx_, lcol_slot_;
  std::vector<int> ucol_ptr_, ucol_idx_, ucol_slot_;
  std::vector<int> upd_ptr_, upd_slot_;
};

/// Numeric side: value array + scratch, reusable with zero allocation after
/// construction. One instance per concurrent solver (not thread-safe).
template <typename T>
class SparseLuNumeric {
 public:
  SparseLuNumeric() = default;

  explicit SparseLuNumeric(const SparseLuSymbolic& symbolic)
      : sym_(&symbolic),
        lu_vals_(symbolic.lu_nnz(), T{}),
        col_scale_(symbolic.size(), 0.0),
        y_(symbolic.size(), T{}) {}

  /// Scale-aware pivot acceptance: |pivot| must exceed this fraction of the
  /// largest |entry| stamped into its (permuted) column.
  static constexpr double kPivotRelTol = 1e-13;

  /// Refactorize from `a_vals` (aligned with the A pattern the symbolic
  /// analysis was built from). Returns false — leaving no usable factors —
  /// when a pivot fails the scale-aware check; the caller is expected to
  /// fall back to a pivoting (dense) solve for this matrix.
  bool refactor(const T* a_vals) {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    std::fill(lu_vals_.begin(), lu_vals_.end(), T{});
    std::fill(col_scale_.begin(), col_scale_.end(), 0.0);
    for (std::size_t p = 0; p < s.scatter_.size(); ++p) {
      const T v = a_vals[p];
      lu_vals_[static_cast<std::size_t>(s.scatter_[p])] += v;
      double& scale = col_scale_[static_cast<std::size_t>(s.scatter_col_[p])];
      scale = std::max(scale, detail::mag_of(v));
    }
    for (std::size_t k = 0; k < n; ++k) {
      const T piv = lu_vals_[static_cast<std::size_t>(s.diag_slot_[k])];
      const double scale = col_scale_[k];
      if (!(detail::mag_of(piv) > kPivotRelTol * scale) ||
          scale < std::numeric_limits<double>::min()) {
        return false;
      }
      const T inv_piv = T(1) / piv;
      const int l0 = s.lcol_ptr_[k], l1 = s.lcol_ptr_[k + 1];
      const int u0 = s.urow_ptr_[k], u1 = s.urow_ptr_[k + 1];
      const int* upd = s.upd_slot_.data() + s.upd_ptr_[k];
      for (int lp = l0; lp < l1; ++lp) {
        T& lval = lu_vals_[static_cast<std::size_t>(s.lcol_slot_[lp])];
        lval *= inv_piv;
        if (lval == T{}) {
          upd += (u1 - u0);
          continue;
        }
        for (int up = u0; up < u1; ++up) {
          lu_vals_[static_cast<std::size_t>(*upd++)] -=
              lval * lu_vals_[static_cast<std::size_t>(s.urow_slot_[up])];
        }
      }
    }
    return true;
  }

  /// Solve A x = b (b and x must not alias; sizes n).
  void solve(const T* b, T* x) const {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    // z = P_r b; forward L (unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[static_cast<std::size_t>(s.prow_[i])];
      for (int p = s.lrow_ptr_[i]; p < s.lrow_ptr_[i + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.lrow_slot_[p])] *
               y_[static_cast<std::size_t>(s.lrow_idx_[p])];
      }
      y_[i] = acc;
    }
    // Backward U; then x = P_c^T y.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = y_[ii];
      for (int p = s.urow_ptr_[ii]; p < s.urow_ptr_[ii + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.urow_slot_[p])] *
               y_[static_cast<std::size_t>(s.urow_idx_[p])];
      }
      y_[ii] = acc / lu_vals_[static_cast<std::size_t>(s.diag_slot_[ii])];
    }
    for (std::size_t j = 0; j < n; ++j)
      x[static_cast<std::size_t>(s.pcol_[j])] = y_[j];
  }

  /// Solve A^T x = b (plain transpose — what adjoint noise analysis needs).
  void solve_transposed(const T* b, T* x) const {
    const SparseLuSymbolic& s = *sym_;
    const std::size_t n = s.n_;
    // B^T = U^T L^T with B = P_r A P_c: solve U^T w = P_c^T-permuted b.
    for (std::size_t j = 0; j < n; ++j) {
      T acc = b[static_cast<std::size_t>(s.pcol_[j])];
      for (int p = s.ucol_ptr_[j]; p < s.ucol_ptr_[j + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.ucol_slot_[p])] *
               y_[static_cast<std::size_t>(s.ucol_idx_[p])];
      }
      y_[j] = acc / lu_vals_[static_cast<std::size_t>(s.diag_slot_[j])];
    }
    // L^T v = w (unit upper in transpose).
    for (std::size_t kk = n; kk-- > 0;) {
      T acc = y_[kk];
      for (int p = s.lcol_ptr_[kk]; p < s.lcol_ptr_[kk + 1]; ++p) {
        acc -= lu_vals_[static_cast<std::size_t>(s.lcol_slot_[p])] *
               y_[static_cast<std::size_t>(s.lcol_idx_[p])];
      }
      y_[kk] = acc;
    }
    for (std::size_t i = 0; i < n; ++i)
      x[static_cast<std::size_t>(s.prow_[i])] = y_[i];
  }

 private:
  const SparseLuSymbolic* sym_ = nullptr;
  std::vector<T> lu_vals_;
  std::vector<double> col_scale_;
  mutable std::vector<T> y_;  // substitution scratch (solves are sequential)
};

}  // namespace autockt::linalg
