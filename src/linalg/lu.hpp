#pragma once
// Partial-pivot LU factorization and solves for dense real/complex systems.
// This is the single linear-algebra kernel behind DC Newton iterations,
// AC sweeps, transient companion solves and adjoint noise analysis.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace autockt::linalg {

namespace detail {
inline double abs_of(double v) { return std::fabs(v); }
inline double abs_of(const std::complex<double>& v) { return std::abs(v); }
}  // namespace detail

/// LU factorization with row pivoting. Holds the factors in-place plus the
/// permutation, and can solve for many right-hand sides (and the transposed
/// system, needed by adjoint noise analysis).
template <typename T>
class LuFactorization {
 public:
  /// Factorizes a copy of `a`. Check ok() before solving.
  explicit LuFactorization(Matrix<T> a) : lu_(std::move(a)) {
    const std::size_t n = lu_.rows();
    singular_ = (n != lu_.cols());
    if (singular_) return;
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    // Scale-aware singularity reference: the largest entry magnitude of each
    // ORIGINAL column. An absolute epsilon misclassifies both uniformly tiny
    // (nonsingular) and uniformly huge (singular, cancelled-to-roundoff)
    // systems; relative to the column scale, elimination cancelling a column
    // down to roundoff is flagged regardless of the matrix's units.
    std::vector<double> col_scale(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        col_scale[c] = std::max(col_scale[c], detail::abs_of(lu_(r, c)));
      }
    }

    for (std::size_t col = 0; col < n; ++col) {
      // Pivot selection.
      std::size_t pivot = col;
      double best = detail::abs_of(lu_(col, col));
      for (std::size_t r = col + 1; r < n; ++r) {
        const double mag = detail::abs_of(lu_(r, col));
        if (mag > best) {
          best = mag;
          pivot = r;
        }
      }
      if (!(best > kSingularRelTol * col_scale[col])) {
        singular_ = true;
        return;
      }
      if (pivot != col) {
        for (std::size_t c = 0; c < n; ++c)
          std::swap(lu_(col, c), lu_(pivot, c));
        std::swap(perm_[col], perm_[pivot]);
        parity_ = -parity_;
      }
      // Elimination.
      const T inv_piv = T(1) / lu_(col, col);
      for (std::size_t r = col + 1; r < n; ++r) {
        const T factor = lu_(r, col) * inv_piv;
        lu_(r, col) = factor;
        if (factor == T{}) continue;
        T* dst = lu_.row_ptr(r);
        const T* src = lu_.row_ptr(col);
        for (std::size_t c = col + 1; c < n; ++c) dst[c] -= factor * src[c];
      }
    }
  }

  bool ok() const { return !singular_; }

  /// Solve A x = b. Requires ok().
  std::vector<T> solve(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    std::vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
    // Forward substitution (unit lower).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = x[i];
      const T* row = lu_.row_ptr(i);
      for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
      x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      const T* row = lu_.row_ptr(ii);
      for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
      x[ii] = acc / row[ii];
    }
    return x;
  }

  /// Solve A^T x = b (A^H for complex is NOT applied; this is the plain
  /// transpose, which is what interreciprocal adjoint analysis needs).
  std::vector<T> solve_transposed(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    // A = P^T L U  =>  A^T = U^T L^T P. Solve U^T y = b, L^T z = y, x = P^T z.
    std::vector<T> y(b);
    // U^T is lower triangular with diagonal of U.
    for (std::size_t i = 0; i < n; ++i) {
      T acc = y[i];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * y[j];
      y[i] = acc / lu_(i, i);
    }
    // L^T is unit upper triangular.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = y[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * y[j];
      y[ii] = acc;
    }
    std::vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = y[i];
    return x;
  }

  /// Determinant (product of pivots times permutation parity).
  T determinant() const {
    if (singular_) return T{};
    T det = static_cast<T>(parity_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
  }

 private:
  /// Pivot acceptance relative to the original column scale (see above).
  /// A zero-scale (empty) column fails the strict > comparison outright.
  static constexpr double kSingularRelTol = 1e-13;
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int parity_ = 1;
  bool singular_ = false;
};

/// One-shot convenience: solve A x = b, returning empty vector on singular A.
template <typename T>
std::vector<T> solve(const Matrix<T>& a, const std::vector<T>& b) {
  LuFactorization<T> lu(a);
  if (!lu.ok()) return {};
  return lu.solve(b);
}

/// Residual infinity-norm ||A x - b||_inf, used by tests.
template <typename T>
double residual_norm(const Matrix<T>& a, const std::vector<T>& x,
                     const std::vector<T>& b) {
  auto ax = a.mul(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    worst = std::max(worst, detail::abs_of(ax[i] - b[i]));
  }
  return worst;
}

}  // namespace autockt::linalg
