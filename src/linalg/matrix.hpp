#pragma once
// Dense row-major matrix over double or complex<double>.
//
// MNA systems in this project are small (< ~30 unknowns), so a dense
// representation with partial-pivot LU is both simpler and faster than a
// sparse solver at this scale.

#include <algorithm>
#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace autockt::linalg {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      assert(row.size() == cols_);
      for (const T& v : row) data_.push_back(v);
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const T* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  Matrix<T> transposed() const {
    Matrix<T> out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  /// Matrix-vector product (sizes must agree).
  std::vector<T> mul(const std::vector<T>& x) const {
    assert(x.size() == cols_);
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      const T* row = row_ptr(r);
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
    return y;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

}  // namespace autockt::linalg
