#pragma once
// Topology analyzers over an instantiated spice::Circuit — every check runs
// STATICALLY, before any Newton iteration, so a malformed netlist is
// rejected with a named defect instead of producing a garbage operating
// point the RL agent happily optimizes against.
//
// Checks (ids from analysis::diagnostic_catalog()):
//   AC101  no element connects to ground at all
//   AC102  floating node: no DC-conductive path to ground (conductive =
//          resistor body, voltage source, MOSFET channel, bias-servo port;
//          capacitors, current sources and VCCS ports do not conduct)
//   AC103  voltage-source loop (a cycle of fixed node differences)
//   AC104  current-source cutset: a node attached only to current sources
//          (and capacitors) — KCL cannot balance a fixed current there
//   AC105  capacitor-only node: open at DC in every direction
//   AC106  duplicate element names
//   AC107  out-of-range device parameters (non-positive R/W/L, negative C,
//          mult < 1)
//   AC108  structural-singularity preflight: the exact discovery pass the
//          simulation kernel runs (Circuit::declare_real_pattern into a
//          linalg::SparsePattern), minus the gmin-homotopy diagonals that
//          paper over defects numerically, then empty row/column detection
//          and the SparseLuSymbolic complete-pivot-sequence check.
//
// Devices report their structure through Device::topology(); unknown device
// kinds are invisible to the graph checks (never a false positive).

#include <functional>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "spice/circuit.hpp"

namespace autockt::analysis {

/// Optional source-location oracle: device name -> (1-based line, col) in
/// the deck the circuit came from; return {0, 0} when unknown. Lets deck
/// linting attribute circuit-level findings to deck lines.
using DeviceLocationLookup =
    std::function<std::pair<std::size_t, std::size_t>(const std::string&)>;

/// Run every topology check. Diagnostics are ordered by check id, then by
/// declaration order, so output is deterministic.
std::vector<Diagnostic> lint_circuit(
    const spice::Circuit& circuit,
    const DeviceLocationLookup& location = nullptr);

}  // namespace autockt::analysis
