#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace autockt::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

bool severity_from_name(const std::string& name, Severity* out) {
  if (name == "note") {
    *out = Severity::Note;
  } else if (name == "warning") {
    *out = Severity::Warning;
  } else if (name == "error") {
    *out = Severity::Error;
  } else {
    return false;
  }
  return true;
}

const std::vector<DiagnosticDef>& diagnostic_catalog() {
  // Ids are a public contract (CI assertions, lint-disable comments, the
  // bad-deck corpus). Append-only: never renumber or reuse.
  static const std::vector<DiagnosticDef> kCatalog = {
      {"AC001", Severity::Error, "deck fails to parse (syntax error)"},
      {"AC002", Severity::Error,
       "element or directive line fails to instantiate"},
      {"AC003", Severity::Warning,
       "lint-disable comment names an unknown diagnostic id"},
      {"AC101", Severity::Error, "no element connects to ground (node 0)"},
      {"AC102", Severity::Error,
       "floating node: no DC-conductive path to ground"},
      {"AC103", Severity::Error,
       "voltage-source loop fixes a cycle of node differences"},
      {"AC104", Severity::Error,
       "current-source cutset: node fed only by current sources"},
      {"AC105", Severity::Error,
       "capacitor-only node has no DC connection at all"},
      {"AC106", Severity::Error, "duplicate element name"},
      {"AC107", Severity::Error,
       "out-of-range device parameter (W/L/R/C/mult)"},
      {"AC108", Severity::Error,
       "structurally singular MNA system (no complete pivot sequence)"},
      {"AC201", Severity::Warning,
       "unused .param: declared but never referenced"},
      {"AC202", Severity::Warning,
       "degenerate .param grid: steps==1 cannot reach hi"},
      {"AC203", Severity::Warning,
       "degenerate or invalid log-scale .param grid"},
      {"AC204", Severity::Warning,
       ".spec sampling interval is empty (sample_lo == sample_hi)"},
      {"AC205", Severity::Error,
       ".measure binding cannot be satisfied by the netlist"},
      {"AC206", Severity::Error, ".spec has no .measure binding"},
      {"AC207", Severity::Warning, ".param name shadows an element name"},
  };
  return kCatalog;
}

const DiagnosticDef* find_diagnostic_def(const std::string& id) {
  for (const DiagnosticDef& def : diagnostic_catalog()) {
    if (id == def.id) return &def;
  }
  return nullptr;
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::Error;
                     });
}

std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                           Severity severity) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

std::vector<Diagnostic> apply_suppressions(
    std::vector<Diagnostic> diagnostics,
    const std::vector<std::string>& suppressed_ids) {
  if (suppressed_ids.empty()) return diagnostics;
  diagnostics.erase(
      std::remove_if(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) {
                       if (d.severity == Severity::Error) return false;
                       return std::find(suppressed_ids.begin(),
                                        suppressed_ids.end(),
                                        d.id) != suppressed_ids.end();
                     }),
      diagnostics.end());
  return diagnostics;
}

std::string render_diagnostics_text(const std::vector<Diagnostic>& diagnostics,
                                    const std::string& source_name) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << source_name;
    if (d.line > 0) {
      out << ':' << d.line;
      if (d.col > 0) out << ':' << d.col;
    }
    out << ": " << severity_name(d.severity) << ": " << d.id << ": "
        << d.message << '\n';
    if (!d.note.empty()) out << "    note: " << d.note << '\n';
  }
  return out.str();
}

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Minimal cursor over the JSON dialect render_diagnostics_json emits.
struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  util::Expected<std::string> string() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') {
      return util::Error{"diagnostics json: expected string at offset " +
                         std::to_string(pos)};
    }
    ++pos;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'u': {
            if (pos + 4 > text.size()) {
              return util::Error{"diagnostics json: truncated \\u escape"};
            }
            c = static_cast<char>(
                std::stoi(text.substr(pos, 4), nullptr, 16));
            pos += 4;
            break;
          }
          default:
            c = esc;  // \" \\ \/ and friends
        }
      }
      out.push_back(c);
    }
    if (pos >= text.size()) {
      return util::Error{"diagnostics json: unterminated string"};
    }
    ++pos;  // closing quote
    return out;
  }

  util::Expected<std::size_t> integer() {
    skip_ws();
    std::size_t v = 0;
    bool any = false;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      v = v * 10 + static_cast<std::size_t>(text[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) {
      return util::Error{"diagnostics json: expected integer at offset " +
                         std::to_string(pos)};
    }
    return v;
  }
};

}  // namespace

std::string render_diagnostics_json(const std::vector<Diagnostic>& diagnostics,
                                    const std::string& source_name) {
  std::ostringstream out;
  out << "{\n  \"source\": ";
  append_json_string(out, source_name);
  out << ",\n  \"error_count\": " << count_severity(diagnostics,
                                                    Severity::Error);
  out << ",\n  \"warning_count\": "
      << count_severity(diagnostics, Severity::Warning);
  out << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"id\": ";
    append_json_string(out, d.id);
    out << ", \"severity\": ";
    append_json_string(out, severity_name(d.severity));
    out << ", \"line\": " << d.line << ", \"col\": " << d.col
        << ", \"message\": ";
    append_json_string(out, d.message);
    out << ", \"note\": ";
    append_json_string(out, d.note);
    out << "}";
  }
  out << (diagnostics.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

util::Expected<std::vector<Diagnostic>> parse_diagnostics_json(
    const std::string& json, std::string* source_out) {
  JsonCursor cur{json};
  if (!cur.eat('{')) return util::Error{"diagnostics json: expected '{'"};

  std::vector<Diagnostic> out;
  bool first_key = true;
  while (!cur.peek('}')) {
    if (!first_key && !cur.eat(',')) {
      return util::Error{"diagnostics json: expected ',' between keys"};
    }
    first_key = false;
    auto key = cur.string();
    if (!key.ok()) return key.error();
    if (!cur.eat(':')) return util::Error{"diagnostics json: expected ':'"};

    if (*key == "source") {
      auto v = cur.string();
      if (!v.ok()) return v.error();
      if (source_out != nullptr) *source_out = *v;
    } else if (*key == "error_count" || *key == "warning_count") {
      auto v = cur.integer();
      if (!v.ok()) return v.error();
    } else if (*key == "diagnostics") {
      if (!cur.eat('[')) {
        return util::Error{"diagnostics json: expected '['"};
      }
      while (!cur.peek(']')) {
        if (!out.empty() && !cur.eat(',')) {
          return util::Error{"diagnostics json: expected ',' in array"};
        }
        if (!cur.eat('{')) {
          return util::Error{"diagnostics json: expected diagnostic object"};
        }
        Diagnostic d;
        bool first_field = true;
        while (!cur.peek('}')) {
          if (!first_field && !cur.eat(',')) {
            return util::Error{"diagnostics json: expected ',' in object"};
          }
          first_field = false;
          auto field = cur.string();
          if (!field.ok()) return field.error();
          if (!cur.eat(':')) {
            return util::Error{"diagnostics json: expected ':' in object"};
          }
          if (*field == "id" || *field == "severity" ||
              *field == "message" || *field == "note") {
            auto v = cur.string();
            if (!v.ok()) return v.error();
            if (*field == "id") {
              d.id = *v;
            } else if (*field == "severity") {
              if (!severity_from_name(*v, &d.severity)) {
                return util::Error{"diagnostics json: unknown severity '" +
                                   *v + "'"};
              }
            } else if (*field == "message") {
              d.message = *v;
            } else {
              d.note = *v;
            }
          } else if (*field == "line" || *field == "col") {
            auto v = cur.integer();
            if (!v.ok()) return v.error();
            (*field == "line" ? d.line : d.col) = *v;
          } else {
            return util::Error{"diagnostics json: unknown field '" + *field +
                               "'"};
          }
        }
        cur.eat('}');
        out.push_back(std::move(d));
      }
      cur.eat(']');
    } else {
      return util::Error{"diagnostics json: unknown key '" + *key + "'"};
    }
  }
  if (!cur.eat('}')) return util::Error{"diagnostics json: expected '}'"};
  return out;
}

}  // namespace autockt::analysis
