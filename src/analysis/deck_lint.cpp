#include "analysis/deck_lint.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <utility>

#include "analysis/circuit_lint.hpp"

namespace autockt::analysis {

namespace {

using spice::DeckMeasure;
using spice::DeckParam;
using spice::DeckSpec;
using spice::NetlistDeck;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

Diagnostic make(const char* id, std::size_t line, std::size_t col,
                std::string message, std::string note = "") {
  const DiagnosticDef* def = find_diagnostic_def(id);
  Diagnostic d;
  d.id = id;
  d.severity = def != nullptr ? def->severity : Severity::Error;
  d.line = line;
  d.col = col;
  d.message = std::move(message);
  d.note = std::move(note);
  return d;
}

/// First raw line whose element name matches (lowercased); {0, 0} if none.
std::pair<std::size_t, std::size_t> element_location(
    const NetlistDeck& deck, const std::string& name) {
  for (const NetlistDeck::RawLine& raw : deck.lines) {
    if (raw.tokens.empty() || raw.tokens[0][0] == '.') continue;
    if (lower(raw.tokens[0]) == name) {
      return {raw.no, raw.cols.empty() ? 0 : raw.cols[0]};
    }
  }
  return {0, 0};
}

bool has_directive(const NetlistDeck& deck, const std::string& head) {
  for (const NetlistDeck::RawLine& raw : deck.lines) {
    if (!raw.tokens.empty() && lower(raw.tokens[0]) == head) return true;
  }
  return false;
}

void check_lint_disables(const NetlistDeck& deck,
                         std::vector<Diagnostic>& out) {
  for (const std::string& id : deck.lint_disables) {
    if (find_diagnostic_def(id) == nullptr) {
      out.push_back(make("AC003", 0, 0,
                         "lint-disable names unknown diagnostic id '" + id +
                             "'",
                         "known ids are listed by `netlist_lint --ids`"));
    }
  }
}

void check_params(const NetlistDeck& deck, std::vector<Diagnostic>& out) {
  for (const DeckParam& p : deck.params) {
    // AC201: never referenced by a {name} substitution in any raw line.
    const std::string ref = "{" + p.name + "}";
    bool used = false;
    for (const NetlistDeck::RawLine& raw : deck.lines) {
      for (const std::string& t : raw.tokens) {
        used = used || lower(t).find(ref) != std::string::npos;
      }
    }
    if (!used) {
      out.push_back(make("AC201", p.line_no, 0,
                         ".param '" + p.name + "' is never referenced",
                         "the RL agent sweeps a design variable that cannot "
                         "change the circuit"));
    }

    // AC202: a one-point grid declared with a non-trivial range.
    if (p.steps == 1 && p.lo != p.hi) {
      out.push_back(make("AC202", p.line_no, 0,
                         ".param '" + p.name + "' has steps=1 but lo=" +
                             std::to_string(p.lo) +
                             " != hi=" + std::to_string(p.hi),
                         "the grid holds the variable at lo; hi is "
                         "unreachable"));
    }

    // AC203: log grids need strictly positive bounds to be meaningful, and
    // coincident endpoints make every grid point identical.
    if (p.log_scale && (p.lo <= 0.0 || p.hi <= 0.0)) {
      out.push_back(make("AC203", p.line_no, 0,
                         ".param '" + p.name +
                             "' declares a log grid with non-positive "
                             "bounds",
                         "log spacing interpolates lo*(hi/lo)^f; it is "
                         "undefined for lo <= 0"));
    } else if (p.log_scale && p.steps > 1 && p.lo == p.hi) {
      out.push_back(make("AC203", p.line_no, 0,
                         ".param '" + p.name + "' log grid has lo == hi",
                         "all " + std::to_string(p.steps) +
                             " grid points evaluate to the same value"));
    }

    // AC207: a param named like an element invites "{m1}" vs "m1" confusion.
    const auto [line, col] = element_location(deck, p.name);
    if (line != 0) {
      out.push_back(make("AC207", p.line_no, 0,
                         ".param '" + p.name +
                             "' shadows the element of the same name "
                             "declared at line " +
                             std::to_string(line)));
    }
  }
}

void check_specs_and_measures(const NetlistDeck& deck,
                              std::vector<Diagnostic>& out) {
  for (const DeckSpec& s : deck.specs) {
    // AC204: nothing to sample — every episode trains against one target.
    if (s.sample_lo == s.sample_hi) {
      out.push_back(make("AC204", s.line_no, 0,
                         ".spec '" + s.name +
                             "' sampling interval is a single point",
                         "target sampling drives generalization; widen "
                         "[sample_lo, sample_hi]"));
    }
    // AC206: an unmeasured spec can never be scored.
    bool measured = false;
    for (const DeckMeasure& m : deck.measures) {
      measured = measured || m.spec == s.name;
    }
    if (!measured) {
      out.push_back(make("AC206", s.line_no, 0,
                         ".spec '" + s.name + "' has no .measure binding"));
    }
  }

  for (const DeckMeasure& m : deck.measures) {
    bool declared = false;
    for (const DeckSpec& s : deck.specs) declared = declared || s.name == m.spec;
    if (!declared) {
      out.push_back(make("AC205", m.line_no, 0,
                         ".measure references undeclared spec '" + m.spec +
                             "'"));
      continue;
    }
    switch (m.kind) {
      case DeckMeasure::Kind::Gain:
      case DeckMeasure::Kind::F3db:
      case DeckMeasure::Kind::Ugbw:
      case DeckMeasure::Kind::PhaseMargin:
        if (!has_directive(deck, ".ac")) {
          out.push_back(make("AC205", m.line_no, 0,
                             ".measure '" + m.spec +
                                 "' needs a .ac analysis in the deck"));
        }
        break;
      case DeckMeasure::Kind::Settling:
        if (!has_directive(deck, ".tran")) {
          out.push_back(make("AC205", m.line_no, 0,
                             ".measure '" + m.spec +
                                 "' needs a .tran analysis in the deck"));
        }
        break;
      case DeckMeasure::Kind::Noise:
        if (!has_directive(deck, ".noise")) {
          out.push_back(make("AC205", m.line_no, 0,
                             ".measure '" + m.spec +
                                 "' needs a .noise analysis in the deck"));
        }
        break;
      case DeckMeasure::Kind::SupplyCurrent: {
        const auto [line, col] = element_location(deck, m.source);
        if (line == 0) {
          out.push_back(make("AC205", m.line_no, 0,
                             ".measure supply_current: no device '" +
                                 m.source + "' in the deck"));
        } else {
          const char kind = lower(m.source)[0];
          if (kind != 'v' && kind != 'b') {
            out.push_back(make("AC205", m.line_no, 0,
                               ".measure supply_current: device '" +
                                   m.source + "' carries no branch current",
                               "only V sources and B bias probes add an MNA "
                               "branch whose current can be read"));
          }
        }
        break;
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> lint_deck(const NetlistDeck& deck) {
  std::vector<Diagnostic> out;
  check_lint_disables(deck, out);
  check_params(deck, out);
  check_specs_and_measures(deck, out);

  // Instantiate at the default design point; topology checks run on the
  // result. Instantiation failure is itself a finding (AC002), not a crash.
  auto inst = deck.instantiate_default();
  if (!inst.ok()) {
    const util::Error& e = inst.error();
    out.push_back(make("AC002", e.line, e.col, e.message,
                       "the deck cannot be simulated at its default design "
                       "point"));
  } else {
    auto circuit_diags = lint_circuit(
        inst->circuit, [&deck](const std::string& device) {
          return element_location(deck, device);
        });
    out.insert(out.end(), std::make_move_iterator(circuit_diags.begin()),
               std::make_move_iterator(circuit_diags.end()));
  }

  // Stable order for renderers and CI assertions: by line, declaration
  // order preserved within a line (and for location-free findings).
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return apply_suppressions(std::move(out), deck.lint_disables);
}

std::vector<Diagnostic> lint_deck_text(const std::string& text) {
  auto parsed = spice::parse_deck_syntax(text);
  if (!parsed.ok()) {
    const util::Error& e = parsed.error();
    return {make("AC001", e.line, e.col, e.message,
                 "fix the syntax error to unlock the remaining checks")};
  }
  return lint_deck(*parsed);
}

}  // namespace autockt::analysis
