#pragma once
// Sizing-dialect analyzers over the NetlistDeck AST plus the front door of
// the whole static-analysis subsystem: lint_deck_text() takes raw deck text
// and returns every diagnostic the analyzers can establish without running
// a single Newton iteration.
//
// Deck-level checks (ids from analysis::diagnostic_catalog()):
//   AC001  deck fails even the syntax pass (reported with line/col)
//   AC002  an element or directive line fails to instantiate at the
//          default design point
//   AC003  a `* lint-disable <id>` comment names an unknown id
//   AC201  .param declared but never referenced by any {name} substitution
//   AC202  degenerate grid: steps==1 with lo != hi never reaches hi
//   AC203  log-scale grid with non-positive bounds, or a log grid whose
//          endpoints coincide across steps > 1
//   AC204  .spec sampling interval is a single point (sample_lo==sample_hi)
//   AC205  .measure binding unsatisfiable: undeclared spec, missing
//          .ac/.tran/.noise analysis, or supply_current naming a device
//          that is absent or carries no branch current
//   AC206  .spec with no .measure binding
//   AC207  .param name shadows an element name
//
// When the deck instantiates, the topology analyzers of circuit_lint.hpp
// (AC101..AC108) run on the resulting circuit with findings attributed back
// to deck lines. `* lint-disable <id>` comments suppress warning/note
// diagnostics deck-wide; error-severity diagnostics are never suppressible.

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "spice/netlist_parser.hpp"

namespace autockt::analysis {

/// Lint a parsed deck AST (as produced by spice::parse_deck_syntax or
/// parse_deck): declaration checks, default instantiation, topology checks,
/// then suppression. Diagnostics are deterministic and attributed to deck
/// lines where possible.
std::vector<Diagnostic> lint_deck(const spice::NetlistDeck& deck);

/// Lint raw deck text. Never throws: a deck the syntax pass rejects yields
/// a single AC001 diagnostic carrying the parser's line/column.
std::vector<Diagnostic> lint_deck_text(const std::string& text);

}  // namespace autockt::analysis
