#include "analysis/circuit_lint.hpp"

#include <map>
#include <numeric>
#include <string>
#include <utility>

#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace autockt::analysis {

namespace {

using spice::Circuit;
using spice::Device;
using spice::DeviceTopology;
using spice::kGround;
using spice::NodeId;
using Kind = DeviceTopology::Kind;

/// Plain union-find over node ids.
class NodeSets {
 public:
  explicit NodeSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }

  /// Returns false when a and b were already connected.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

struct Emitter {
  std::vector<Diagnostic>& out;
  const DeviceLocationLookup& location;

  void add(const char* id, const std::string& device, std::string message,
           std::string note = "") {
    const DiagnosticDef* def = find_diagnostic_def(id);
    Diagnostic d;
    d.id = id;
    d.severity = def != nullptr ? def->severity : Severity::Error;
    if (location && !device.empty()) {
      const auto [line, col] = location(device);
      d.line = line;
      d.col = col;
    }
    d.message = std::move(message);
    d.note = std::move(note);
    out.push_back(std::move(d));
  }
};

/// One row of the analysis working set: the device plus its cached
/// structural description.
struct Element {
  const Device* device = nullptr;
  DeviceTopology topo;
};

void check_duplicate_names(const std::vector<Element>& elements,
                           Emitter& emit) {
  std::map<std::string, int> seen;
  for (const Element& e : elements) {
    if (++seen[e.device->name()] == 2) {
      emit.add("AC106", e.device->name(),
               "duplicate element name '" + e.device->name() + "'",
               "find() resolves the first occurrence; measurements bound to "
               "this name are ambiguous");
    }
  }
}

void check_parameter_ranges(const std::vector<Element>& elements,
                            Emitter& emit) {
  for (const Element& e : elements) {
    const std::string& name = e.device->name();
    switch (e.topo.kind) {
      case Kind::Resistor: {
        const auto* r = dynamic_cast<const spice::Resistor*>(e.device);
        if (r != nullptr && !(r->resistance() > 0.0)) {
          emit.add("AC107", name,
                   "resistor '" + name + "' has non-positive resistance");
        }
        break;
      }
      case Kind::Capacitor: {
        const auto* c = dynamic_cast<const spice::Capacitor*>(e.device);
        if (c != nullptr && c->capacitance() < 0.0) {
          emit.add("AC107", name,
                   "capacitor '" + name + "' has negative capacitance");
        }
        break;
      }
      case Kind::Mosfet: {
        const auto* m = dynamic_cast<const spice::Mosfet*>(e.device);
        if (m == nullptr) break;
        if (!(m->geom().width > 0.0)) {
          emit.add("AC107", name,
                   "mosfet '" + name + "' has non-positive width");
        }
        if (!(m->geom().length > 0.0)) {
          emit.add("AC107", name,
                   "mosfet '" + name + "' has non-positive length");
        }
        if (m->geom().mult < 1) {
          emit.add("AC107", name, "mosfet '" + name + "' has mult < 1");
        }
        break;
      }
      default:
        break;
    }
  }
}

/// AC101/AC102/AC104/AC105: DC-connectivity flood from ground plus the
/// per-node classification of unreachable nodes.
void check_dc_connectivity(const Circuit& circuit,
                           const std::vector<Element>& elements,
                           Emitter& emit) {
  const std::size_t num_nodes = circuit.num_nodes();

  bool touches_ground = false;
  for (const Element& e : elements) {
    for (const NodeId n : e.topo.nodes) touches_ground |= (n == kGround);
  }
  if (!elements.empty() && !touches_ground) {
    emit.add("AC101", elements.front().device->name(),
             "no element connects to ground (node 0)",
             "every node voltage is relative to ground; add a supply or "
             "reference to node 0/gnd");
    // Every node would be "floating" now; the one diagnostic says it all.
    return;
  }

  NodeSets sets(num_nodes);
  for (const Element& e : elements) {
    for (const auto& [a, b] : e.topo.dc_paths) sets.unite(a, b);
  }

  // Incident device kinds and a representative device per node.
  std::vector<std::vector<const Element*>> incident(num_nodes);
  for (const Element& e : elements) {
    for (const NodeId n : e.topo.nodes) {
      if (n < num_nodes) incident[n].push_back(&e);
    }
  }

  const std::size_t ground_root = sets.find(kGround);
  for (NodeId n = 1; n < num_nodes; ++n) {
    if (sets.find(n) == ground_root) continue;
    const std::string& node = circuit.node_name(n);
    bool any_cap = false, any_cs = false, other = false;
    for (const Element* e : incident[n]) {
      switch (e->topo.kind) {
        case Kind::Capacitor:
          any_cap = true;
          break;
        case Kind::CurrentSource:
          any_cs = true;
          break;
        default:
          other = true;
      }
    }
    const std::string device =
        incident[n].empty() ? "" : incident[n].front()->device->name();
    if (!incident[n].empty() && any_cap && !any_cs && !other) {
      emit.add("AC105", device,
               "node '" + node + "' connects only to capacitors",
               "the node is open at DC; its voltage is undefined");
    } else if (!incident[n].empty() && any_cs && !other) {
      emit.add("AC104", device,
               "node '" + node + "' is fed only by current sources",
               "KCL cannot balance a fixed current into a node with no "
               "DC-conductive exit");
    } else {
      emit.add("AC102", device,
               "node '" + node + "' has no DC path to ground",
               "voltages are only determined relative to ground through "
               "resistors, sources, channels or bias probes");
    }
  }
}

void check_voltage_source_loops(const Circuit& circuit,
                                const std::vector<Element>& elements,
                                Emitter& emit) {
  NodeSets sets(circuit.num_nodes());
  for (const Element& e : elements) {
    if (e.topo.kind != Kind::VoltageSource) continue;
    for (const auto& [a, b] : e.topo.dc_paths) {
      if (!sets.unite(a, b)) {
        emit.add("AC103", e.device->name(),
                 "voltage source '" + e.device->name() +
                     "' closes a loop of voltage sources",
                 "the loop fixes a cycle of node differences; the branch "
                 "currents are underdetermined");
      }
    }
  }
}

/// AC108: the exact structural preflight the sparse kernel would perform,
/// minus the gmin-homotopy weak diagonals (which exist to nurse NUMERICALLY
/// hard solves and would mask genuine structural defects here).
void check_structural_singularity(const Circuit& circuit, Emitter& emit) {
  const std::size_t n = circuit.num_unknowns();
  if (n == 0) return;

  linalg::PatternBuilder builder(n);
  std::vector<double> rhs(n, 0.0);
  const std::vector<double> zeros(circuit.num_nodes(), 0.0);
  spice::RealStamp ctx{spice::MnaSink(builder), rhs, zeros};
  ctx.num_nodes = circuit.num_nodes();
  circuit.declare_real_pattern(ctx);
  const linalg::SparsePattern pattern(std::move(builder));

  // Name an MNA unknown: node rows first, then branch rows.
  const auto unknown_name = [&](std::size_t k) -> std::string {
    if (k < circuit.num_nodes() - 1) {
      return "node '" + circuit.node_name(k + 1) + "'";
    }
    const std::size_t branch = k - (circuit.num_nodes() - 1);
    for (const auto& dev : circuit.devices()) {
      if (dev->branch_count() > 0 && branch >= dev->first_branch() &&
          branch < dev->first_branch() + dev->branch_count()) {
        return "branch of '" + dev->name() + "'";
      }
    }
    return "branch " + std::to_string(branch);
  };

  // Empty rows/columns are the sharpest (and most explainable) form of
  // structural singularity — report them by name before the generic check.
  std::vector<char> row_nonempty(n, 0);
  bool any_empty = false;
  for (std::size_t c = 0; c < n; ++c) {
    if (pattern.col_ptr()[c + 1] == pattern.col_ptr()[c]) {
      any_empty = true;
      emit.add("AC108", "",
               "MNA column of " + unknown_name(c) +
                   " is structurally empty",
               "nothing in the system depends on this unknown");
    }
  }
  for (const int r : pattern.row_idx()) {
    row_nonempty[static_cast<std::size_t>(r)] = 1;
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (!row_nonempty[r]) {
      any_empty = true;
      emit.add("AC108", "",
               "MNA row of " + unknown_name(r) + " is structurally empty",
               "no device contributes an equation for this unknown");
    }
  }
  if (any_empty) return;

  const linalg::SparseLuSymbolic symbolic(pattern, pattern.weak());
  if (!symbolic.ok()) {
    emit.add("AC108", "",
             "MNA system is structurally singular: no complete pivot "
             "sequence exists",
             "the sparse LU symbolic analysis could not order " +
                 std::to_string(n) + " unknowns");
  }
}

}  // namespace

std::vector<Diagnostic> lint_circuit(const Circuit& circuit,
                                     const DeviceLocationLookup& location) {
  std::vector<Diagnostic> out;
  Emitter emit{out, location};

  std::vector<Element> elements;
  elements.reserve(circuit.devices().size());
  for (const auto& dev : circuit.devices()) {
    Element e;
    e.device = dev.get();
    e.topo = dev->topology();
    if (!e.topo.nodes.empty()) elements.push_back(std::move(e));
  }

  check_duplicate_names(elements, emit);
  check_parameter_ranges(elements, emit);
  check_dc_connectivity(circuit, elements, emit);
  check_voltage_source_loops(circuit, elements, emit);
  check_structural_singularity(circuit, emit);
  return out;
}

}  // namespace autockt::analysis
