#pragma once
// Diagnostics engine for the static netlist/circuit analyzers
// (analysis/deck_lint.hpp, analysis/circuit_lint.hpp).
//
// Every finding is a Diagnostic with a STABLE id (e.g. "AC102"): ids are a
// public contract — CI asserts on them, decks suppress them with
// `* lint-disable <id>` comments, and the bad-deck regression corpus under
// tests/decks/bad/ names the id it expects. Renderers produce the
// human-readable text form and a line-oriented JSON form that round-trips
// through parse_diagnostics_json (used by the netlist_lint CLI artifact
// upload and its tests).
//
// Severity semantics:
//  * Error   — the deck/circuit would produce garbage (or crash) downstream;
//              registry/problem compilation refuse to proceed.
//  * Warning — suspicious but simulatable; collected and reportable, fatal
//              only under --Werror.
//  * Note    — informational (attached context, catalog hints).

#include <cstddef>
#include <string>
#include <vector>

#include "util/expected.hpp"

namespace autockt::analysis {

enum class Severity { Note, Warning, Error };

/// Stable name ("note", "warning", "error").
const char* severity_name(Severity severity);
/// Inverse of severity_name; false on unknown names.
bool severity_from_name(const std::string& name, Severity* out);

/// One analyzer finding. `line`/`col` are 1-based positions in the deck
/// text; 0 means "whole deck" (circuit-level findings on decks keep the
/// line of the offending element when known).
struct Diagnostic {
  std::string id;        // stable catalog id, e.g. "AC102"
  Severity severity = Severity::Warning;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;   // what is wrong
  std::string note;      // optional: why it matters / how to fix

  friend bool operator==(const Diagnostic& a, const Diagnostic& b) {
    return a.id == b.id && a.severity == b.severity && a.line == b.line &&
           a.col == b.col && a.message == b.message && a.note == b.note;
  }
};

/// Catalog entry: every id the analyzers can emit, with its default
/// severity and a one-line summary (rendered into docs and --help).
struct DiagnosticDef {
  const char* id;
  Severity severity;
  const char* summary;
};

/// The full, ordered diagnostic catalog. Ids are never reused or renumbered.
const std::vector<DiagnosticDef>& diagnostic_catalog();

/// Catalog lookup; nullptr for unknown ids.
const DiagnosticDef* find_diagnostic_def(const std::string& id);

/// True if any diagnostic is Error severity.
bool has_errors(const std::vector<Diagnostic>& diagnostics);

/// Number of diagnostics at exactly `severity`.
std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                           Severity severity);

/// Drop diagnostics whose id appears in `suppressed_ids` (deck
/// `* lint-disable <id>` comments). Error-severity diagnostics are NOT
/// suppressible: a deck must not be able to talk its way past the gate.
std::vector<Diagnostic> apply_suppressions(
    std::vector<Diagnostic> diagnostics,
    const std::vector<std::string>& suppressed_ids);

/// Human-readable rendering, one line per diagnostic:
///   <source>:<line>:<col>: <severity>: <id>: <message>
///       note: <note>
std::string render_diagnostics_text(const std::vector<Diagnostic>& diagnostics,
                                    const std::string& source_name);

/// JSON rendering: {"source": "...", "diagnostics": [{...}, ...]} with
/// stable key order; round-trips through parse_diagnostics_json.
std::string render_diagnostics_json(const std::vector<Diagnostic>& diagnostics,
                                    const std::string& source_name);

/// Parse the JSON form emitted by render_diagnostics_json (only that
/// dialect: flat string/integer fields, no nesting beyond the schema).
/// `source_out` (optional) receives the "source" field.
util::Expected<std::vector<Diagnostic>> parse_diagnostics_json(
    const std::string& json, std::string* source_out = nullptr);

}  // namespace autockt::analysis
