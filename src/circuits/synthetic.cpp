#include "circuits/synthetic.hpp"

#include <cmath>
#include <string>

namespace autockt::circuits {

SizingProblem make_synthetic_problem(int n_params, int grid) {
  SizingProblem prob;
  prob.name = "synthetic";
  prob.description = "synthetic smooth sizing problem for tests";
  for (int i = 0; i < n_params; ++i) {
    prob.params.push_back(
        {"p" + std::to_string(i), 0.0, static_cast<double>(grid - 1), 1.0});
  }
  // Sampling ranges are chosen to be jointly feasible: "diff" <= t needs
  // sum(x) >= 3*(5 - t) and "power" <= t allows mean|x| <= 2*(t - 1); the
  // ranges below keep those bands overlapping for every target draw.
  prob.specs = {
      {"sum", SpecSense::GreaterEq, 9.5, 11.0, 10.0, 0.0},
      {"diff", SpecSense::LessEq, 4.6, 5.4, 5.0, 100.0},
      {"power", SpecSense::Minimize, 1.25, 1.5, 1.35, 100.0},
  };
  const auto params = prob.params;
  prob.set_evaluator(
      [params](const ParamVector& idx) -> util::Expected<SpecVector> {
        double sum = 0.0, mean_abs = 0.0;
        for (std::size_t i = 0; i < idx.size(); ++i) {
          const double hi = params[i].end;
          const double x =
              2.0 * static_cast<double>(idx[i]) / hi - 1.0;  // [-1,1]
          sum += x;
          mean_abs += std::fabs(x);
        }
        const double n = static_cast<double>(idx.size());
        return SpecVector{10.0 + sum, 5.0 - sum / n,
                          1.0 + 0.5 * mean_abs / n};
      },
      "synthetic");
  prob.paper_sim_seconds = 0.001;
  prob.validate();
  return prob;
}

}  // namespace autockt::circuits
