#pragma once
// Warm-start glue shared by the circuit simulators: one place owning the
// OpHint <-> OpPoint contract (read a valid hint as the DC Newton stage-0
// guess; refresh it with the converged solution on success, leave it
// untouched on failure so the next evaluation warm-starts from the last
// GOOD operating point).

#include "eval/types.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace autockt::circuits {

/// Copy a valid hint into `warm` (caller-owned storage that must outlive
/// the solve) and point the DC options at it.
inline void apply_warm_start(const eval::OpHint* hint, spice::OpPoint& warm,
                             spice::DcOptions& dc_opt) {
  if (hint != nullptr && hint->valid) {
    warm.node_v = hint->node_v;
    warm.branch_i = hint->branch_i;
    dc_opt.warm_start = &warm;
  }
}

/// Refresh the hint with a freshly converged operating point.
inline void refresh_hint(eval::OpHint* hint, const spice::OpPoint& op) {
  if (hint == nullptr) return;
  hint->node_v = op.node_v;
  hint->branch_i = op.branch_i;
  hint->valid = true;
}

}  // namespace autockt::circuits
