#include "circuits/ngm_ota.hpp"

#include <cmath>

#include "circuits/sim_hint.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/units.hpp"

namespace autockt::circuits {

namespace {
constexpr double kLoadCap = 1e-12;      // F
constexpr double kBiasResistor = 4e3;   // Ohms
constexpr int kBiasDiodeFins = 24;
constexpr double kChannelLengthFactor = 2.0;
constexpr double kVcmFraction = 0.6;

spice::DcOptions ngm_dc_options(const spice::Circuit& ckt,
                                const spice::TechCard& card,
                                spice::SimKernel kernel,
                                spice::SimWorkspace* ws) {
  using namespace spice;
  const double vcm = kVcmFraction * card.vdd;
  DcOptions dc_opt;
  dc_opt.kernel = kernel;
  dc_opt.workspace = ws;
  dc_opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
  dc_opt.initial_node_v[ckt.node("vdd")] = card.vdd;
  dc_opt.initial_node_v[ckt.node("inp")] = vcm;
  dc_opt.initial_node_v[ckt.node("inn")] = vcm;
  dc_opt.initial_node_v[ckt.node("tail")] = 0.2 * card.vdd;
  dc_opt.initial_node_v[ckt.node("x1")] = 0.6 * card.vdd;
  dc_opt.initial_node_v[ckt.node("x2")] = 0.6 * card.vdd;
  dc_opt.initial_node_v[ckt.node("out")] = vcm;
  dc_opt.initial_node_v[ckt.node("bias")] = 0.45 * card.vdd;
  return dc_opt;
}

spice::AcOptions ngm_ac_options(spice::SimKernel kernel,
                                spice::SimWorkspace* ws) {
  spice::AcOptions ac_opt;
  ac_opt.kernel = kernel;
  ac_opt.workspace = ws;
  ac_opt.f_start = 1e2;
  ac_opt.f_stop = 1e11;
  ac_opt.points_per_decade = 10;
  return ac_opt;
}

NgmResult assemble_ngm_result(const spice::AcMeasurements& acm,
                              const spice::OpPoint& op) {
  NgmResult result;
  result.gain = acm.dc_gain;
  result.ugbw_found = acm.ugbw_found;
  if (acm.ugbw_found) {
    result.ugbw = acm.ugbw;
    result.phase_margin = acm.phase_margin_deg;
  } else if (acm.f3db_found) {
    // Smooth continuation below unity gain: report the gain-bandwidth
    // product so the optimization landscape keeps a gradient where the
    // output is railed (gain < 1) instead of collapsing to a constant
    // failure sentinel.
    result.ugbw = acm.dc_gain * acm.f3db;
    result.phase_margin = 0.0;
  }
  result.bias_current = -op.branch_i[0];
  return result;
}
}  // namespace

spice::Circuit build_ngm_ota(const NgmParams& params,
                             const spice::TechCard& card,
                             const NgmBuildOptions& options) {
  using namespace spice;
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId inp = ckt.add_node("inp");
  const NodeId inn = ckt.add_node("inn");
  const NodeId tail = ckt.add_node("tail");
  const NodeId x1 = ckt.add_node("x1");  // stage-1 left output
  const NodeId x2 = ckt.add_node("x2");  // stage-1 right output (to stage 2)
  const NodeId out = ckt.add_node("out");
  const NodeId bias = ckt.add_node("bias");

  const double vcm = kVcmFraction * card.vdd;
  ckt.add<VoltageSource>("vsupply", vdd, kGround,
                         Waveform::constant(card.vdd));
  // Both inputs biased at the common-mode level; AC stimulus on the M2
  // gate. No bias servo here: unlike the classic two-stage, this
  // topology's stage-2 balance is set by the nf_cs/nf_diode and
  // nf_sink mirror ratios, so a servo constraint is frequently
  // infeasible. Designs whose ratios are off rail the output and measure
  // (correctly) near-zero gain — the agent must learn self-consistent
  // sizings, which is part of what makes this circuit "challenging" in
  // the paper's words.
  ckt.add<VoltageSource>("vin", inn, kGround, Waveform::constant(vcm),
                         /*ac_mag=*/1.0);
  ckt.add<VoltageSource>("vinp", inp, kGround, Waveform::constant(vcm));

  const double l = kChannelLengthFactor * card.l_min;
  auto w = [&](int fins) { return card.fin_width * static_cast<double>(fins); };

  // Stage 1: differential pair.
  ckt.add<Mosfet>("m1", x1, inp, tail, kGround, MosType::Nmos,
                  MosGeom{w(params.nf_in), l, 1}, card);
  ckt.add<Mosfet>("m2", x2, inn, tail, kGround, MosType::Nmos,
                  MosGeom{w(params.nf_in), l, 1}, card);
  // Diode-connected loads.
  ckt.add<Mosfet>("m3", x1, x1, vdd, vdd, MosType::Pmos,
                  MosGeom{w(params.nf_diode), l, 1}, card);
  ckt.add<Mosfet>("m4", x2, x2, vdd, vdd, MosType::Pmos,
                  MosGeom{w(params.nf_diode), l, 1}, card);
  // Cross-coupled negative-gm pair.
  ckt.add<Mosfet>("m5", x1, x2, vdd, vdd, MosType::Pmos,
                  MosGeom{w(params.nf_cross), l, 1}, card);
  ckt.add<Mosfet>("m6", x2, x1, vdd, vdd, MosType::Pmos,
                  MosGeom{w(params.nf_cross), l, 1}, card);
  // Tail and bias.
  ckt.add<Mosfet>("m7", tail, bias, kGround, kGround, MosType::Nmos,
                  MosGeom{w(params.nf_tail), l, 1}, card);
  ckt.add<Mosfet>("m10", bias, bias, kGround, kGround, MosType::Nmos,
                  MosGeom{w(kBiasDiodeFins), l, 1}, card);
  ckt.add<Resistor>("rbias", vdd, bias, kBiasResistor);
  // Stage 2.
  ckt.add<Mosfet>("m8", out, x2, vdd, vdd, MosType::Pmos,
                  MosGeom{w(params.nf_cs), l, 1}, card);
  ckt.add<Mosfet>("m9", out, bias, kGround, kGround, MosType::Nmos,
                  MosGeom{w(params.nf_sink), l, 1}, card);

  ckt.add<Capacitor>("cc", x2, out, params.cc);
  ckt.add<Capacitor>("cl", out, kGround, kLoadCap);


  if (options.parasitics != nullptr) {
    const pex::ParasiticModel& pm = *options.parasitics;
    auto key = [](const char* net) {
      return pex::ParasiticModel::net_key("ngm_ota", net);
    };
    const double w_x =
        w(params.nf_in) + w(params.nf_diode) + w(params.nf_cross);
    ckt.add<Capacitor>("cpex_x1", x1, kGround,
                       pm.net_cap(w_x + w(params.nf_cross), key("x1")));
    ckt.add<Capacitor>("cpex_x2", x2, kGround,
                       pm.net_cap(w_x + w(params.nf_cs), key("x2")));
    ckt.add<Capacitor>("cpex_out", out, kGround,
                       pm.net_cap(w(params.nf_cs) + w(params.nf_sink),
                                  key("out")));
    ckt.add<Capacitor>("cpex_tail", tail, kGround,
                       pm.net_cap(2.0 * w(params.nf_in) + w(params.nf_tail),
                                  key("tail")));
  }
  return ckt;
}

util::Expected<NgmResult> simulate_ngm_ota(const NgmParams& params,
                                           const spice::TechCard& card,
                                           const NgmBuildOptions& options) {
  using namespace spice;
  Circuit ckt = build_ngm_ota(params, card, options);

  // One workspace per (thread, topology): pattern + symbolic factorization
  // amortize across every grid point (and every PVT corner, which shares
  // the topology).
  SimWorkspace* ws = nullptr;
  if (options.kernel == SimKernel::Sparse) {
    ws = &workspace_for(ckt, options.parasitics != nullptr ? "ngm_ota_pex"
                                                           : "ngm_ota");
  }

  DcOptions dc_opt = ngm_dc_options(ckt, card, options.kernel, ws);
  OpPoint warm;
  apply_warm_start(options.hint, warm, dc_opt);
  auto op = solve_op(ckt, dc_opt);
  if (!op.ok()) return op.error();
  refresh_hint(options.hint, *op);

  const AcOptions ac_opt = ngm_ac_options(options.kernel, ws);
  auto sweep = ac_sweep(ckt, *op, ckt.node("out"), kGround, ac_opt);
  if (!sweep.ok()) return sweep.error();
  return assemble_ngm_result(measure_ac(*sweep), *op);
}

std::vector<util::Expected<NgmResult>> simulate_ngm_ota_batch(
    const std::vector<NgmParams>& params, const spice::TechCard& card,
    const NgmBuildOptions& options, const std::vector<eval::OpHint*>& hints) {
  using namespace spice;
  const std::size_t K = params.size();
  std::vector<util::Expected<NgmResult>> results(K, NgmResult{});
  if (K == 0) return results;
  const auto hint_of = [&](std::size_t l) -> eval::OpHint* {
    return l < hints.size() ? hints[l] : nullptr;
  };
  if (options.kernel == SimKernel::Dense) {
    for (std::size_t l = 0; l < K; ++l) {
      NgmBuildOptions lane_options = options;
      lane_options.hint = hint_of(l);
      results[l] = simulate_ngm_ota(params[l], card, lane_options);
    }
    return results;
  }

  std::vector<Circuit> circuits;
  circuits.reserve(K);
  for (const NgmParams& p : params) {
    circuits.push_back(build_ngm_ota(p, card, options));
  }
  SimWorkspace& ws = workspace_for(
      circuits.front(),
      options.parasitics != nullptr ? "ngm_ota_pex" : "ngm_ota");

  std::vector<const Circuit*> ckt_ptrs(K);
  std::vector<DcOptions> dc_opts(K);
  std::vector<OpPoint> warm(K);
  for (std::size_t l = 0; l < K; ++l) {
    ckt_ptrs[l] = &circuits[l];
    dc_opts[l] = ngm_dc_options(circuits[l], card, SimKernel::Sparse, &ws);
    NgmBuildOptions lane_options = options;
    lane_options.hint = hint_of(l);
    apply_warm_start(lane_options.hint, warm[l], dc_opts[l]);
  }
  std::vector<util::Expected<OpPoint>> ops =
      solve_op_batch(ckt_ptrs, dc_opts, ws);

  std::vector<std::size_t> ac_lanes;
  std::vector<const Circuit*> ac_ckts;
  std::vector<const OpPoint*> ac_ops;
  for (std::size_t l = 0; l < K; ++l) {
    if (!ops[l].ok()) {
      results[l] = ops[l].error();
      continue;
    }
    refresh_hint(hint_of(l), *ops[l]);
    ac_lanes.push_back(l);
    ac_ckts.push_back(&circuits[l]);
    ac_ops.push_back(&*ops[l]);
  }
  if (ac_lanes.empty()) return results;
  const AcOptions ac_opt = ngm_ac_options(SimKernel::Sparse, &ws);
  std::vector<util::Expected<std::vector<AcPoint>>> sweeps = ac_sweep_batch(
      ac_ckts, ac_ops, circuits.front().node("out"), kGround, ac_opt, ws);
  for (std::size_t s = 0; s < ac_lanes.size(); ++s) {
    const std::size_t l = ac_lanes[s];
    if (!sweeps[s].ok()) {
      results[l] = sweeps[s].error();
      continue;
    }
    results[l] = assemble_ngm_result(measure_ac(*sweeps[s]), *ops[l]);
  }
  return results;
}

NgmParams ngm_params_from_grid(const std::vector<ParamDef>& defs,
                               const ParamVector& idx) {
  NgmParams p;
  p.nf_in = static_cast<int>(defs[0].value(idx[0]));
  p.nf_diode = static_cast<int>(defs[1].value(idx[1]));
  p.nf_cross = static_cast<int>(defs[2].value(idx[2]));
  p.nf_tail = static_cast<int>(defs[3].value(idx[3]));
  p.nf_cs = static_cast<int>(defs[4].value(idx[4]));
  p.nf_sink = static_cast<int>(defs[5].value(idx[5]));
  p.cc = defs[6].value(idx[6]) * 1e-12;
  return p;
}

}  // namespace autockt::circuits
