#pragma once
// A cheap synthetic sizing problem (no circuit simulation): params form a
// grid [0, K-1]^N and specs are smooth monotone functions of the normalized
// parameters. Environment/RL/baseline logic — and the CI generalization
// smoke — exercise the full stack in milliseconds against it. Shared by
// tests/test_helpers.hpp and bench/bench_generalization_smoke.cpp.

#include "circuits/sizing_problem.hpp"

namespace autockt::circuits {

/// Spec shape:
///   spec0 ("sum")  = 10 + sum of normalized params          (GreaterEq)
///   spec1 ("diff") = 5 - mean of normalized params          (LessEq)
///   spec2 ("power")= 1 + 0.5 * mean of |normalized params|  (Minimize)
/// All three are exactly reachable from the grid centre within a few steps,
/// and the sampling ranges keep every random target jointly feasible, which
/// makes RL/GA convergence runs fast and deterministic.
SizingProblem make_synthetic_problem(int n_params = 3, int grid = 21);

}  // namespace autockt::circuits
