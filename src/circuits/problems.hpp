#pragma once
// Factory functions producing the paper's three sizing problems (plus the
// PEX/PVT variant used by the transfer-learning experiment). Target sampling
// ranges follow the paper where our technology surrogate makes them
// achievable; where recalibration was needed the constants below are
// annotated (see DESIGN.md section 3 and EXPERIMENTS.md).

#include "circuits/sizing_problem.hpp"
#include "pex/parasitics.hpp"
#include "pex/pvt.hpp"
#include "spice/mosfet.hpp"

namespace autockt::circuits {

/// Transimpedance amplifier (Table I / Fig. 5). ptm45 card.
SizingProblem make_tia_problem();

/// Two-stage Miller op-amp (Table II / Figs. 7-8). ptm45 card.
SizingProblem make_two_stage_problem();

/// Two-stage OTA with negative-gm load (Table III / Figs. 10-12),
/// schematic-only evaluation. finfet16 card.
SizingProblem make_ngm_problem();

/// Same topology evaluated through the PEX substitute: geometry-driven
/// parasitics plus worst-case over PVT corners (Table IV / Figs. 13-14).
/// Spec definitions are identical to make_ngm_problem() except the phase
/// margin target, which deployment fixes at a 60 degree minimum (paper
/// Section III-D).
SizingProblem make_ngm_pex_problem();

/// Number of circuit simulations one PEX evaluation costs (the corner
/// count); used when accounting sample efficiency in paper-equivalent time.
std::size_t ngm_pex_corner_count();

}  // namespace autockt::circuits
