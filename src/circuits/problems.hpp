#pragma once
// Factory functions producing the paper's three sizing problems (plus the
// PEX/PVT variant used by the transfer-learning experiment). Target sampling
// ranges follow the paper where our technology surrogate makes them
// achievable; where recalibration was needed the constants below are
// annotated (see docs/DESIGN.md section 3 and docs/EXPERIMENTS.md).
//
// Every factory wires an evaluation-backend stack behind the problem:
// a FunctionBackend leaf (the simulator lambda), fanned out over the batch
// thread pool, behind a sharded memo cache keyed on grid indices. The PEX
// factory's leaf is a CornerBackend that simulates PVT corners in parallel
// and folds the worst case. ProblemOptions strips layers for tests and
// benchmarks that need the raw serial path.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "eval/thread_pool.hpp"
#include "pex/parasitics.hpp"
#include "pex/pvt.hpp"
#include "spice/mosfet.hpp"

namespace autockt::circuits {

/// Backend-stack configuration shared by all problem factories.
struct ProblemOptions {
  bool cache = true;            // sharded memo cache over the grid
  std::size_t cache_shards = 16;
  bool parallel_batch = true;   // evaluate_batch() over the worker pool
  bool parallel_corners = true; // PEX only: PVT corners fanned out
  /// evaluate_batch() runs K grid points as lanes of the batched sparse
  /// kernel (SparseLuNumericBatch) instead of looping the scalar
  /// simulator: lockstep DC Newton, batched AC/noise sweeps. Per-point
  /// results are identical; only throughput changes. Ignored by the PEX
  /// factory (its leaf is the corner fan-out) and by the Dense kernel.
  bool batch_kernel = true;
  /// Worker pool for batch/corner fan-out; null uses the process-wide
  /// shared pool.
  std::shared_ptr<eval::ThreadPool> pool;
  /// Directory of a persistent on-disk eval cache (eval::DiskLogStore).
  /// Empty keeps the memo in memory only. The cache is guarded by the
  /// problem fingerprint: opening a directory written for a different
  /// problem definition throws std::runtime_error at construction.
  std::string cache_path;
  /// Fork this many worker processes and shard evaluations across them
  /// (eval::ProcessPoolBackend); 0 evaluates in-process. Results are
  /// bitwise-identical to the serial path; each worker runs its own
  /// simulator stack, so a crash costs one retry rather than the trainer.
  std::size_t eval_workers = 0;
};

/// Stable 64-bit fingerprint of a problem definition: the name, the full
/// parameter grid, every spec definition, and any extra canonical lines
/// (netlist problems pass the raw deck text). Two problems share an on-disk
/// eval cache iff their fingerprints match — the DiskLogStore replay guard.
std::uint64_t problem_fingerprint(const std::string& name,
                                  const std::vector<ParamDef>& params,
                                  const std::vector<SpecDef>& specs,
                                  const std::vector<std::string>& extra = {});

/// The standard backend stack behind a schematic problem: a FunctionBackend
/// simulator leaf, optionally fanned out over the batch thread pool, behind
/// an optional sharded memo cache. Shared by the built-in factories and by
/// deck-compiled problems (circuits/netlist_problem.hpp).
/// `cache_fingerprint` identifies the problem definition to a persistent
/// cache (see problem_fingerprint); only consulted when options.cache_path
/// is set.
std::shared_ptr<eval::EvalBackend> make_standard_backend(
    eval::HintedEvalFn fn, const std::string& name,
    const ProblemOptions& options, std::uint64_t cache_fingerprint = 0);

/// Batch-aware variant: when `options.batch_kernel` is set and `batch_fn`
/// is non-null, the FunctionBackend leaf routes whole batches through
/// `batch_fn` (one batched-kernel invocation) and the thread-pool layer
/// forwards rather than splits them.
std::shared_ptr<eval::EvalBackend> make_standard_backend(
    eval::HintedEvalFn fn, eval::BatchEvalFn batch_fn, const std::string& name,
    const ProblemOptions& options, std::uint64_t cache_fingerprint = 0);

/// Transimpedance amplifier (Table I / Fig. 5). ptm45 card.
SizingProblem make_tia_problem(const ProblemOptions& options = {});

/// Two-stage Miller op-amp (Table II / Figs. 7-8). ptm45 card.
SizingProblem make_two_stage_problem(const ProblemOptions& options = {});

/// Two-stage OTA with negative-gm load (Table III / Figs. 10-12),
/// schematic-only evaluation. finfet16 card.
SizingProblem make_ngm_problem(const ProblemOptions& options = {});

/// Same topology evaluated through the PEX substitute: geometry-driven
/// parasitics plus worst-case over PVT corners (Table IV / Figs. 13-14).
/// Spec definitions are identical to make_ngm_problem() except the phase
/// margin target, which deployment fixes at a 60 degree minimum (paper
/// Section III-D). Corners run through a CornerBackend — in parallel by
/// default — and fold to spec vectors identical to a serial corner loop.
SizingProblem make_ngm_pex_problem(const ProblemOptions& options = {});

/// Number of circuit simulations one PEX evaluation costs (the corner
/// count); used when accounting sample efficiency in paper-equivalent time.
std::size_t ngm_pex_corner_count();

}  // namespace autockt::circuits
