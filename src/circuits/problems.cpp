#include "circuits/problems.hpp"

#include <stdexcept>
#include <utility>

#include "circuits/ngm_ota.hpp"
#include "circuits/tia.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "eval/cached_backend.hpp"
#include "eval/corner_backend.hpp"
#include "eval/disk_log_store.hpp"
#include "eval/function_backend.hpp"
#include "eval/process_pool_backend.hpp"
#include "eval/threaded_backend.hpp"
#include "spice/workspace.hpp"
#include "util/fmt.hpp"

namespace autockt::circuits {

namespace {

/// The spice layer's process-wide kernel counters projected into EvalStats.
/// ProcessPoolBackend workers attach this as Options::leaf_stats so their
/// reply deltas carry the kernel work done in the child — which the
/// parent's own spice::kernel_stats_snapshot() can never see.
eval::EvalStats kernel_leaf_stats() {
  eval::EvalStats s;
  const spice::KernelStats k = spice::kernel_stats_snapshot();
  s.newton_iterations = k.newton_iterations;
  s.symbolic_factorizations = k.symbolic_factorizations;
  s.numeric_factorizations = k.numeric_factorizations;
  s.dense_fallbacks = k.dense_fallbacks;
  s.warm_start_attempts = k.warm_start_attempts;
  s.warm_start_hits = k.warm_start_hits;
  s.batch_refactorizations = k.batch_refactorizations;
  s.batch_lanes = k.batch_lanes;
  s.batch_lane_fallbacks = k.batch_lane_fallbacks;
  return s;
}

/// PEX parasitic severity used for the transfer experiment. Chosen so that
/// schematic-vs-PEX spec differences land in the 5-25% band the paper's
/// Fig. 14 histogram shows.
pex::ParasiticModel transfer_parasitics() {
  pex::ParasiticModel pm;
  pm.cap_fixed = 15e-15;
  pm.cap_per_width = 7.0e-9;
  pm.variation = 0.3;
  pm.salt = 0xba6;  // BAG-generated layout stand-in
  return pm;
}

/// Memo cache goes outermost so hits never touch the pool (or the worker
/// processes) below. With cache_path set the memo is a DiskLogStore — a
/// failed open (fingerprint mismatch, unwritable directory) throws: a
/// persistent cache silently serving the wrong problem would be far worse
/// than failing construction.
std::shared_ptr<eval::EvalBackend> wrap_cache(
    std::shared_ptr<eval::EvalBackend> backend, const ProblemOptions& options,
    std::uint64_t cache_fingerprint) {
  if (!options.cache) return backend;
  if (!options.cache_path.empty()) {
    auto store = eval::DiskLogStore::open(options.cache_path,
                                          cache_fingerprint);
    if (!store.ok()) throw std::runtime_error(store.error().message);
    return std::make_shared<eval::CachedBackend>(std::move(backend),
                                                 store.value());
  }
  return std::make_shared<eval::CachedBackend>(std::move(backend),
                                               options.cache_shards);
}

/// Fork the leaf across worker processes. The factory runs in each CHILD
/// after fork, so the per-worker stack (and any threads it wants) is born
/// there; the parent-side stack above this layer never blocks on a child's
/// survival — crash handling lives inside ProcessPoolBackend.
std::shared_ptr<eval::EvalBackend> wrap_process_pool(
    eval::ProcessPoolBackend::InnerFactory factory, const std::string& name,
    const ProblemOptions& options) {
  eval::ProcessPoolBackend::Options popts;
  popts.workers = options.eval_workers;
  popts.inner_name = name;
  popts.leaf_stats = kernel_leaf_stats;
  return std::make_shared<eval::ProcessPoolBackend>(std::move(factory),
                                                    popts);
}

}  // namespace

std::uint64_t problem_fingerprint(const std::string& name,
                                  const std::vector<ParamDef>& params,
                                  const std::vector<SpecDef>& specs,
                                  const std::vector<std::string>& extra) {
  // Canonical text rendering, hashed with FNV-1a. Doubles go through
  // format_g17 so the rendering (hence the fingerprint) is exact and
  // locale-independent.
  std::string canon = "autockt-problem-v1\nn " + name + "\n";
  for (const ParamDef& p : params) {
    canon += "p " + p.name + ' ' + util::format_g17(p.start) + ' ' +
             util::format_g17(p.end) + ' ' + util::format_g17(p.step) + "\n";
  }
  for (const SpecDef& s : specs) {
    canon += "s " + s.name + ' ' +
             std::to_string(static_cast<int>(s.sense)) + ' ' +
             util::format_g17(s.sample_lo) + ' ' +
             util::format_g17(s.sample_hi) + ' ' +
             util::format_g17(s.norm_const) + ' ' +
             util::format_g17(s.fail_value) + "\n";
  }
  for (const std::string& line : extra) {
    canon += "x " + line + "\n";
  }
  return eval::fingerprint64(canon);
}

std::shared_ptr<eval::EvalBackend> make_standard_backend(
    eval::HintedEvalFn fn, const std::string& name,
    const ProblemOptions& options, std::uint64_t cache_fingerprint) {
  return make_standard_backend(std::move(fn), nullptr, name, options,
                               cache_fingerprint);
}

std::shared_ptr<eval::EvalBackend> make_standard_backend(
    eval::HintedEvalFn fn, eval::BatchEvalFn batch_fn, const std::string& name,
    const ProblemOptions& options, std::uint64_t cache_fingerprint) {
  if (!options.batch_kernel) batch_fn = nullptr;
  std::shared_ptr<eval::EvalBackend> backend;
  if (options.eval_workers > 0) {
    // Distributed stack: Cache(ProcessPool(worker: Function leaf)). Each
    // worker keeps the batched-kernel leaf, so its shard of a batch still
    // runs as lockstep lanes; the thread-pool layer is omitted — processes
    // ARE the fan-out.
    backend = wrap_process_pool(
        [fn = std::move(fn), batch_fn = std::move(batch_fn),
         name]() -> std::shared_ptr<eval::EvalBackend> {
          return batch_fn != nullptr
                     ? std::make_shared<eval::FunctionBackend>(fn, batch_fn,
                                                               name)
                     : std::make_shared<eval::FunctionBackend>(fn, name);
        },
        name, options);
  } else {
    backend =
        batch_fn != nullptr
            ? std::make_shared<eval::FunctionBackend>(
                  std::move(fn), std::move(batch_fn), name)
            : std::make_shared<eval::FunctionBackend>(std::move(fn), name);
    if (options.parallel_batch) {
      backend =
          std::make_shared<eval::ThreadPoolBackend>(backend, options.pool);
    }
  }
  return wrap_cache(std::move(backend), options, cache_fingerprint);
}

SizingProblem make_tia_problem(const ProblemOptions& options) {
  SizingProblem prob;
  prob.name = "tia";
  prob.description =
      "Transimpedance amplifier, ptm45 schematic (paper Fig. 4 / Table I)";
  // Paper's action space, verbatim.
  prob.params = {
      {"wn_um", 2.0, 10.0, 2.0},      // NMOS width, um
      {"mn", 2.0, 32.0, 2.0},         // NMOS multiplier
      {"wp_um", 2.0, 10.0, 2.0},      // PMOS width, um
      {"mp", 2.0, 32.0, 2.0},         // PMOS multiplier
      {"rf_series", 2.0, 20.0, 2.0},  // feedback units in series
      {"rf_parallel", 1.0, 20.0, 1.0} // feedback strings in parallel
  };
  // Spec sampling ranges: paper shapes (settling / cutoff / noise),
  // recalibrated to the ptm45 surrogate's achievable region.
  prob.specs = {
      {"settling_time_s", SpecSense::LessEq, 2.2e-10, 9.0e-10, 4.5e-10, 3e-8},
      {"cutoff_freq_hz", SpecSense::GreaterEq, 1.2e9, 4.0e9, 2.2e9, 1e5},
      {"input_noise_vrms", SpecSense::LessEq, 1.9e-4, 3.0e-4, 2.4e-4, 1e-1},
  };
  prob.paper_sim_seconds = 0.025;

  const spice::TechCard card = spice::TechCard::ptm45();
  const auto param_defs = prob.params;
  prob.backend = make_standard_backend(
      [card, param_defs](const ParamVector& idx,
                         eval::OpHint* hint) -> util::Expected<SpecVector> {
        const TiaParams p = tia_params_from_grid(param_defs, idx);
        TiaBuildOptions build;
        build.hint = hint;
        auto res = simulate_tia(p, card, build);
        if (!res.ok()) return res.error();
        return SpecVector{res->settling_time, res->cutoff_freq,
                          res->input_noise};
      },
      [card, param_defs](const std::vector<ParamVector>& points,
                         const std::vector<eval::OpHint*>& hints)
          -> std::vector<util::Expected<SpecVector>> {
        std::vector<TiaParams> params;
        params.reserve(points.size());
        for (const ParamVector& idx : points) {
          params.push_back(tia_params_from_grid(param_defs, idx));
        }
        auto sims = simulate_tia_batch(params, card, {}, hints);
        std::vector<util::Expected<SpecVector>> out;
        out.reserve(sims.size());
        for (auto& res : sims) {
          if (!res.ok()) {
            out.push_back(res.error());
          } else {
            out.push_back(SpecVector{res->settling_time, res->cutoff_freq,
                                     res->input_noise});
          }
        }
        return out;
      },
      "tia_sim", options,
      problem_fingerprint(prob.name, prob.params, prob.specs));
  prob.validate();
  return prob;
}

SizingProblem make_two_stage_problem(const ProblemOptions& options) {
  SizingProblem prob;
  prob.name = "two_stage_opamp";
  prob.description =
      "Two-stage Miller op-amp, ptm45 schematic (paper Fig. 6 / Table II)";
  // Paper: every width on a 100-point grid plus a 100-point Cc grid
  // => 1e14 combinations. The paper uses one 0.5 um unit for every width;
  // we keep the grid sizes but pick per-device units (widths in um below)
  // so that the frontier designs of OUR technology surrogate sit mid-grid
  // — the same expert ranging the paper itself applies to the negative-gm
  // circuit (Fig. 9). See docs/EXPERIMENTS.md "calibration" notes.
  prob.params = {
      {"w12_um", 0.25, 25.0, 0.25},  // input pair
      {"w34_um", 0.05, 5.0, 0.05},   // mirror load
      {"w5_um", 0.05, 5.0, 0.05},    // tail
      {"w6_um", 0.75, 75.0, 0.75},   // second-stage PMOS
      {"w7_um", 0.35, 35.0, 0.35},   // output sink
      {"w8_um", 0.25, 25.0, 0.25},   // bias diode
      {"cc_pf", 0.02, 2.0, 0.02},    // Miller cap
  };
  // Paper ranges: gain [200,400] V/V, UGBW [1e6, 2.5e7] Hz, PM >= 60 deg,
  // ibias [0.1, 10] mA (minimized).
  // Target sampling ranges keep the paper's *difficulty* rather than its
  // absolute numbers: our level-1-class technology surrogate is more
  // forgiving than BSIM 45 nm, so ranges are pushed toward the Pareto
  // frontier until P(random design satisfies random target) ~ 1e-3 — the
  // density regime in which the paper's GA needs ~1e3 simulations
  // (Table II) while a trained agent still generalizes to ~96% of targets.
  prob.specs = {
      {"gain_vv", SpecSense::GreaterEq, 2000.0, 2600.0, 2300.0, 0.0},
      {"ugbw_hz", SpecSense::GreaterEq, 3.0e7, 6.5e7, 4.5e7, 0.0},
      {"phase_margin_deg", SpecSense::GreaterEq, 60.0, 60.0, 60.0, 0.0},
      // The low end sits below the topology's feasible floor on purpose:
      // the paper's Fig. 8 shows exactly such an unreachable low-power
      // band, and hypothesizes those targets are physically unreachable.
      {"ibias_a", SpecSense::Minimize, 8.0e-5, 1.6e-4, 1.2e-4, 1.0},
  };
  prob.paper_sim_seconds = 0.025;

  const spice::TechCard card = spice::TechCard::ptm45();
  const auto param_defs = prob.params;
  prob.backend = make_standard_backend(
      [card, param_defs](const ParamVector& idx,
                         eval::OpHint* hint) -> util::Expected<SpecVector> {
        const TwoStageParams p = two_stage_params_from_grid(param_defs, idx);
        OpampBuildOptions build;
        build.hint = hint;
        auto res = simulate_two_stage(p, card, build);
        if (!res.ok()) return res.error();
        return SpecVector{res->gain, res->ugbw, res->phase_margin,
                          res->bias_current};
      },
      [card, param_defs](const std::vector<ParamVector>& points,
                         const std::vector<eval::OpHint*>& hints)
          -> std::vector<util::Expected<SpecVector>> {
        std::vector<TwoStageParams> params;
        params.reserve(points.size());
        for (const ParamVector& idx : points) {
          params.push_back(two_stage_params_from_grid(param_defs, idx));
        }
        auto sims = simulate_two_stage_batch(params, card, {}, hints);
        std::vector<util::Expected<SpecVector>> out;
        out.reserve(sims.size());
        for (auto& res : sims) {
          if (!res.ok()) {
            out.push_back(res.error());
          } else {
            out.push_back(SpecVector{res->gain, res->ugbw, res->phase_margin,
                                     res->bias_current});
          }
        }
        return out;
      },
      "two_stage_sim", options,
      problem_fingerprint(prob.name, prob.params, prob.specs));
  prob.validate();
  return prob;
}

namespace {

SizingProblem make_ngm_problem_base() {
  SizingProblem prob;
  prob.name = "ngm_ota";
  prob.description =
      "Two-stage OTA with negative-gm load, finfet16 (paper Fig. 9 / "
      "Table III)";
  // Fin-count grids; ~1e11 combinations (paper: "order of 1e11"). The
  // cross-coupled pair's range sits below the diode load's so that most of
  // the grid (and in particular its centre, the episode start point) avoids
  // first-stage latch-up — mirroring the expert-chosen ranges of Fig. 9.
  // The sink range is chosen so the grid centre satisfies the stage-2
  // current-balance relation nf_sink ~ nf_tail*nf_cs/(2*(nf_diode+nf_cross))
  // (docs/DESIGN.md): episodes then start from a live, measurable design.
  // The cross-coupled range deliberately extends into latch-up territory
  // (nf_cross can exceed nf_diode for part of the grid): most random
  // sizings of this circuit are broken — the property that makes the
  // paper's GA need hundreds of simulations — while the grid centre
  // remains a live, current-balanced design the agent starts from.
  prob.params = {
      {"nf_in", 1.0, 100.0, 1.0},   {"nf_diode", 22.0, 80.0, 2.0},
      {"nf_cross", 2.0, 60.0, 2.0}, {"nf_tail", 2.0, 100.0, 2.0},
      {"nf_cs", 2.0, 100.0, 2.0},   {"nf_sink", 2.0, 40.0, 2.0},
      {"cc_pf", 0.1, 3.0, 0.1},
  };
  // Paper shape: gain in a wide low band, UGBW band, PM target sampled in
  // [60, 75] (the two-sided sampling that aids PEX transfer, Section
  // III-C/D). Numeric ranges recalibrated to the finfet16 surrogate's
  // frontier (see docs/EXPERIMENTS.md).
  prob.specs = {
      {"gain_vv", SpecSense::GreaterEq, 100.0, 350.0, 180.0, 0.0},
      {"ugbw_hz", SpecSense::GreaterEq, 3.0e8, 8.0e8, 4.5e8, 0.0},
      {"phase_margin_deg", SpecSense::GreaterEq, 60.0, 75.0, 65.0, 0.0},
  };
  return prob;
}

}  // namespace

SizingProblem make_ngm_problem(const ProblemOptions& options) {
  SizingProblem prob = make_ngm_problem_base();
  prob.paper_sim_seconds = 2.4;  // paper: Spectre schematic simulation

  const spice::TechCard card = spice::TechCard::finfet16();
  const auto param_defs = prob.params;
  prob.backend = make_standard_backend(
      [card, param_defs](const ParamVector& idx,
                         eval::OpHint* hint) -> util::Expected<SpecVector> {
        const NgmParams p = ngm_params_from_grid(param_defs, idx);
        NgmBuildOptions build;
        build.hint = hint;
        auto res = simulate_ngm_ota(p, card, build);
        if (!res.ok()) return res.error();
        return SpecVector{res->gain, res->ugbw, res->phase_margin};
      },
      [card, param_defs](const std::vector<ParamVector>& points,
                         const std::vector<eval::OpHint*>& hints)
          -> std::vector<util::Expected<SpecVector>> {
        std::vector<NgmParams> params;
        params.reserve(points.size());
        for (const ParamVector& idx : points) {
          params.push_back(ngm_params_from_grid(param_defs, idx));
        }
        auto sims = simulate_ngm_ota_batch(params, card, {}, hints);
        std::vector<util::Expected<SpecVector>> out;
        out.reserve(sims.size());
        for (auto& res : sims) {
          if (!res.ok()) {
            out.push_back(res.error());
          } else {
            out.push_back(SpecVector{res->gain, res->ugbw, res->phase_margin});
          }
        }
        return out;
      },
      "ngm_sim", options,
      problem_fingerprint(prob.name, prob.params, prob.specs));
  prob.validate();
  return prob;
}

std::size_t ngm_pex_corner_count() { return pex::standard_corners().size(); }

SizingProblem make_ngm_pex_problem(const ProblemOptions& options) {
  SizingProblem prob = make_ngm_problem_base();
  prob.name = "ngm_ota_pex";
  prob.description =
      "Negative-gm OTA through layout parasitics + PVT worst case (paper "
      "Section III-D / Table IV)";
  prob.paper_sim_seconds = 91.0;  // paper: BAG PEX simulation
  // Deployment enforces only the 60 degree minimum for phase margin.
  prob.specs[2].sample_lo = 60.0;
  prob.specs[2].sample_hi = 60.0;

  const spice::TechCard nominal = spice::TechCard::finfet16();
  const auto param_defs = prob.params;
  const auto spec_defs = prob.specs;
  const pex::ParasiticModel parasitics = transfer_parasitics();

  // Pre-derive one corner card per PVT corner; the per-corner evaluator is
  // then a pure function of (corner index, grid point), which is what lets
  // CornerBackend fan the corners out across threads while the fold stays
  // bit-identical to a serial corner loop.
  const std::vector<pex::PvtCorner> corners = pex::standard_corners();
  std::vector<spice::TechCard> corner_cards;
  corner_cards.reserve(corners.size());
  for (const pex::PvtCorner& corner : corners) {
    corner_cards.push_back(pex::apply_corner(nominal, corner));
  }

  auto corner_eval = [param_defs, parasitics, corner_cards](
                         std::size_t corner_index, const ParamVector& idx,
                         eval::OpHint* hint) -> util::Expected<SpecVector> {
    const NgmParams p = ngm_params_from_grid(param_defs, idx);
    NgmBuildOptions build;
    build.parasitics = &parasitics;
    build.hint = hint;  // one warm-start slot per corner (see CornerBackend)
    auto res = simulate_ngm_ota(p, corner_cards[corner_index], build);
    if (!res.ok()) return res.error();
    return SpecVector{res->gain, res->ugbw, res->phase_margin};
  };
  auto fold = [spec_defs](const std::vector<SpecVector>& corner_results) {
    return worst_case_fold(spec_defs, corner_results);
  };

  std::shared_ptr<eval::EvalBackend> backend;
  if (options.eval_workers > 0) {
    // Distributed PEX: each worker process owns a CornerBackend. The
    // worker's corner pool (when parallel_corners is on) is created by the
    // factory INSIDE the child — never ThreadPool::shared(), whose threads
    // would be fork-orphaned corpses in the child.
    const std::size_t n_corners = corners.size();
    const bool parallel_corners = options.parallel_corners;
    backend = wrap_process_pool(
        [n_corners, corner_eval, fold,
         parallel_corners]() -> std::shared_ptr<eval::EvalBackend> {
          return std::make_shared<eval::CornerBackend>(
              n_corners, corner_eval, fold,
              parallel_corners ? std::make_shared<eval::ThreadPool>()
                               : nullptr,
              "pex_corners");
        },
        "pex_corners", options);
  } else {
    // With parallel corners on, CornerBackend fans out both single points
    // (over corners) and batches (over point×corner pairs), so no extra
    // batching layer is needed. With corners forced serial, an optional
    // ThreadPoolBackend still honours parallel_batch by spreading batch
    // points across workers (each point's corners staying serial).
    backend = std::make_shared<eval::CornerBackend>(
        corners.size(), std::move(corner_eval), std::move(fold),
        options.parallel_corners
            ? (options.pool ? options.pool : eval::ThreadPool::shared())
            : nullptr,
        "pex_corners");
    if (!options.parallel_corners && options.parallel_batch) {
      backend =
          std::make_shared<eval::ThreadPoolBackend>(backend, options.pool);
    }
  }
  prob.backend =
      wrap_cache(std::move(backend), options,
                 problem_fingerprint(prob.name, prob.params, prob.specs));
  prob.validate();
  return prob;
}

}  // namespace autockt::circuits
