#include "circuits/two_stage_opamp.hpp"

#include <cmath>

#include "circuits/sim_hint.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/units.hpp"

namespace autockt::circuits {

namespace {
constexpr double kLoadCap = 2e-12;        // F
constexpr double kBiasResistor = 20e3;    // Ohms
constexpr double kChannelLengthFactor = 2.0;
constexpr double kVcmFraction = 0.55;     // input common mode / vdd

spice::DcOptions two_stage_dc_options(const spice::Circuit& ckt,
                                      const spice::TechCard& card,
                                      spice::SimKernel kernel,
                                      spice::SimWorkspace* ws) {
  using namespace spice;
  const double vcm = kVcmFraction * card.vdd;
  DcOptions dc_opt;
  dc_opt.kernel = kernel;
  dc_opt.workspace = ws;
  dc_opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
  dc_opt.initial_node_v[ckt.node("vdd")] = card.vdd;
  dc_opt.initial_node_v[ckt.node("inp")] = vcm;
  dc_opt.initial_node_v[ckt.node("inn")] = vcm;
  dc_opt.initial_node_v[ckt.node("tail")] = 0.2 * card.vdd;
  dc_opt.initial_node_v[ckt.node("d1")] = 0.65 * card.vdd;
  dc_opt.initial_node_v[ckt.node("out1")] = 0.65 * card.vdd;
  dc_opt.initial_node_v[ckt.node("out")] = vcm;
  dc_opt.initial_node_v[ckt.node("bias")] = 0.4 * card.vdd;
  return dc_opt;
}

spice::AcOptions two_stage_ac_options(spice::SimKernel kernel,
                                      spice::SimWorkspace* ws) {
  spice::AcOptions ac_opt;
  ac_opt.kernel = kernel;
  ac_opt.workspace = ws;
  ac_opt.f_start = 1e2;
  ac_opt.f_stop = 1e11;
  ac_opt.points_per_decade = 10;
  return ac_opt;
}

OpampResult assemble_two_stage_result(const spice::AcMeasurements& acm,
                                      const spice::OpPoint& op) {
  OpampResult result;
  result.gain = acm.dc_gain;
  result.ugbw_found = acm.ugbw_found;
  result.ugbw = acm.ugbw_found ? acm.ugbw : 0.0;
  result.phase_margin = acm.ugbw_found ? acm.phase_margin_deg : 0.0;
  result.bias_current = -op.branch_i[0];  // vsupply is the first source
  return result;
}
}  // namespace

spice::Circuit build_two_stage(const TwoStageParams& params,
                               const spice::TechCard& card,
                               const OpampBuildOptions& options) {
  using namespace spice;
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId inp = ckt.add_node("inp");
  const NodeId inn = ckt.add_node("inn");
  const NodeId tail = ckt.add_node("tail");
  const NodeId d1 = ckt.add_node("d1");      // mirror diode drain
  const NodeId out1 = ckt.add_node("out1");  // first-stage output
  const NodeId out = ckt.add_node("out");
  const NodeId bias = ckt.add_node("bias");

  const double vcm = kVcmFraction * card.vdd;
  ckt.add<VoltageSource>("vsupply", vdd, kGround,
                         Waveform::constant(card.vdd));
  // AC stimulus drives the M2 gate; the DC servo below feeds the M1 gate,
  // which is the inverting input with respect to `out` (signal path
  // inp -> d1 -> mirror -> out1 -> M6 -> out has odd inversion parity), so
  // the servo loop is genuinely negative feedback.
  ckt.add<VoltageSource>("vin", inn, kGround, Waveform::constant(vcm),
                         /*ac_mag=*/1.0);

  const double l = kChannelLengthFactor * card.l_min;
  ckt.add<Mosfet>("m1", d1, inp, tail, kGround, MosType::Nmos,
                  MosGeom{params.w12, l, 1}, card);
  ckt.add<Mosfet>("m2", out1, inn, tail, kGround, MosType::Nmos,
                  MosGeom{params.w12, l, 1}, card);
  ckt.add<Mosfet>("m3", d1, d1, vdd, vdd, MosType::Pmos,
                  MosGeom{params.w34, l, 1}, card);
  ckt.add<Mosfet>("m4", out1, d1, vdd, vdd, MosType::Pmos,
                  MosGeom{params.w34, l, 1}, card);
  ckt.add<Mosfet>("m5", tail, bias, kGround, kGround, MosType::Nmos,
                  MosGeom{params.w5, l, 1}, card);
  ckt.add<Mosfet>("m6", out, out1, vdd, vdd, MosType::Pmos,
                  MosGeom{params.w6, l, 1}, card);
  ckt.add<Mosfet>("m7", out, bias, kGround, kGround, MosType::Nmos,
                  MosGeom{params.w7, l, 1}, card);
  ckt.add<Mosfet>("m8", bias, bias, kGround, kGround, MosType::Nmos,
                  MosGeom{params.w8, l, 1}, card);

  ckt.add<Resistor>("rbias", vdd, bias, kBiasResistor);
  ckt.add<Capacitor>("cc", out1, out, params.cc);
  ckt.add<Capacitor>("cl", out, kGround, kLoadCap);

  // Ideal DC-bias servo (nullor): drives the M1 gate so that the output
  // sits at the common-mode level, then AC-grounds that gate so the AC
  // sweep sees the open-loop amplifier.
  ckt.add<BiasProbe>("servo", inp, out, vcm);

  if (options.parasitics != nullptr) {
    const pex::ParasiticModel& pm = *options.parasitics;
    auto key = [](const char* net) {
      return pex::ParasiticModel::net_key("two_stage", net);
    };
    ckt.add<Capacitor>("cpex_d1", d1, kGround,
                       pm.net_cap(params.w12 + 2.0 * params.w34, key("d1")));
    ckt.add<Capacitor>(
        "cpex_out1", out1, kGround,
        pm.net_cap(params.w12 + params.w34 + params.w6, key("out1")));
    ckt.add<Capacitor>("cpex_out", out, kGround,
                       pm.net_cap(params.w6 + params.w7, key("out")));
    ckt.add<Capacitor>("cpex_tail", tail, kGround,
                       pm.net_cap(2.0 * params.w12 + params.w5, key("tail")));
  }
  return ckt;
}

util::Expected<OpampResult> simulate_two_stage(
    const TwoStageParams& params, const spice::TechCard& card,
    const OpampBuildOptions& options) {
  using namespace spice;
  Circuit ckt = build_two_stage(params, card, options);

  // One workspace per (thread, topology): the stamp pattern and symbolic
  // factorization are computed once and reused by every grid point.
  SimWorkspace* ws = nullptr;
  if (options.kernel == SimKernel::Sparse) {
    ws = &workspace_for(ckt, options.parasitics != nullptr ? "two_stage_pex"
                                                           : "two_stage");
  }

  DcOptions dc_opt = two_stage_dc_options(ckt, card, options.kernel, ws);
  OpPoint warm;
  apply_warm_start(options.hint, warm, dc_opt);
  auto op = solve_op(ckt, dc_opt);
  if (!op.ok()) return op.error();
  refresh_hint(options.hint, *op);

  const AcOptions ac_opt = two_stage_ac_options(options.kernel, ws);
  auto sweep = ac_sweep(ckt, *op, ckt.node("out"), kGround, ac_opt);
  if (!sweep.ok()) return sweep.error();
  return assemble_two_stage_result(measure_ac(*sweep), *op);
}

std::vector<util::Expected<OpampResult>> simulate_two_stage_batch(
    const std::vector<TwoStageParams>& params, const spice::TechCard& card,
    const OpampBuildOptions& options,
    const std::vector<eval::OpHint*>& hints) {
  using namespace spice;
  const std::size_t K = params.size();
  std::vector<util::Expected<OpampResult>> results(K, OpampResult{});
  if (K == 0) return results;
  const auto hint_of = [&](std::size_t l) -> eval::OpHint* {
    return l < hints.size() ? hints[l] : nullptr;
  };
  if (options.kernel == SimKernel::Dense) {
    for (std::size_t l = 0; l < K; ++l) {
      OpampBuildOptions lane_options = options;
      lane_options.hint = hint_of(l);
      results[l] = simulate_two_stage(params[l], card, lane_options);
    }
    return results;
  }

  std::vector<Circuit> circuits;
  circuits.reserve(K);
  for (const TwoStageParams& p : params) {
    circuits.push_back(build_two_stage(p, card, options));
  }
  SimWorkspace& ws = workspace_for(
      circuits.front(),
      options.parasitics != nullptr ? "two_stage_pex" : "two_stage");

  std::vector<const Circuit*> ckt_ptrs(K);
  std::vector<DcOptions> dc_opts(K);
  std::vector<OpPoint> warm(K);
  for (std::size_t l = 0; l < K; ++l) {
    ckt_ptrs[l] = &circuits[l];
    dc_opts[l] =
        two_stage_dc_options(circuits[l], card, SimKernel::Sparse, &ws);
    OpampBuildOptions lane_options = options;
    lane_options.hint = hint_of(l);
    apply_warm_start(lane_options.hint, warm[l], dc_opts[l]);
  }
  std::vector<util::Expected<OpPoint>> ops =
      solve_op_batch(ckt_ptrs, dc_opts, ws);

  // Compact the converged lanes into one AC batch; DC failures keep their
  // error and never occupy an AC lane.
  std::vector<std::size_t> ac_lanes;
  std::vector<const Circuit*> ac_ckts;
  std::vector<const OpPoint*> ac_ops;
  for (std::size_t l = 0; l < K; ++l) {
    if (!ops[l].ok()) {
      results[l] = ops[l].error();
      continue;
    }
    refresh_hint(hint_of(l), *ops[l]);
    ac_lanes.push_back(l);
    ac_ckts.push_back(&circuits[l]);
    ac_ops.push_back(&*ops[l]);
  }
  if (ac_lanes.empty()) return results;
  const AcOptions ac_opt = two_stage_ac_options(SimKernel::Sparse, &ws);
  std::vector<util::Expected<std::vector<AcPoint>>> sweeps = ac_sweep_batch(
      ac_ckts, ac_ops, circuits.front().node("out"), kGround, ac_opt, ws);
  for (std::size_t s = 0; s < ac_lanes.size(); ++s) {
    const std::size_t l = ac_lanes[s];
    if (!sweeps[s].ok()) {
      results[l] = sweeps[s].error();
      continue;
    }
    results[l] = assemble_two_stage_result(measure_ac(*sweeps[s]), *ops[l]);
  }
  return results;
}

TwoStageParams two_stage_params_from_grid(const std::vector<ParamDef>& defs,
                                          const ParamVector& idx) {
  TwoStageParams p;
  p.w12 = defs[0].value(idx[0]) * 1e-6;  // grids carry widths in um
  p.w34 = defs[1].value(idx[1]) * 1e-6;
  p.w5 = defs[2].value(idx[2]) * 1e-6;
  p.w6 = defs[3].value(idx[3]) * 1e-6;
  p.w7 = defs[4].value(idx[4]) * 1e-6;
  p.w8 = defs[5].value(idx[5]) * 1e-6;
  p.cc = defs[6].value(idx[6]) * 1e-12;
  return p;
}

}  // namespace autockt::circuits
