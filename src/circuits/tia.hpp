#pragma once
// Transimpedance amplifier (paper Fig. 4): self-biased CMOS inverter with a
// resistive feedback ladder, driven by a photodiode modeled as a current
// source with junction capacitance. Technology: ptm45-like planar card.
//
// Paper action space (array notation [start, end, increment]):
//   per transistor:   width [2, 10, 2] um, multiplier [2, 32, 2]
//   feedback ladder:  resistors in series [2, 20, 2], in parallel [1, 20, 1]
//   unit resistance:  5.6 kOhm
// Specs: settling time, -3 dB cutoff frequency, input-referred noise.

#include "circuits/sizing_problem.hpp"
#include "pex/parasitics.hpp"
#include "spice/circuit.hpp"
#include "spice/workspace.hpp"
#include "util/expected.hpp"

namespace autockt::circuits {

struct TiaParams {
  double wn = 4e-6;    // NMOS finger width (m)
  int mn = 8;          // NMOS multiplier
  double wp = 4e-6;    // PMOS finger width (m)
  int mp = 8;          // PMOS multiplier
  int n_series = 4;    // feedback units in series
  int n_parallel = 2;  // feedback strings in parallel

  static constexpr double kUnitResistance = 5.6e3;  // Ohms (paper)

  double feedback_resistance() const {
    return kUnitResistance * static_cast<double>(n_series) /
           static_cast<double>(n_parallel);
  }
};

struct TiaResult {
  double settling_time = 0.0;   // s, 2% band of the step response
  double cutoff_freq = 0.0;     // Hz, -3 dB of the transimpedance
  double input_noise = 0.0;     // Vrms equivalent at the input
  double supply_current = 0.0;  // A (diagnostic; not a paper spec)
};

struct TiaBuildOptions {
  const pex::ParasiticModel* parasitics = nullptr;
  /// Photodiode current stimulus; null means DC 0 A with unit AC magnitude
  /// (the small-signal measurement build). The transient settling run
  /// rebuilds the SAME netlist with a step waveform here, which is what
  /// lets the two builds share one workspace pattern by construction.
  const spice::Waveform* input_stimulus = nullptr;
  /// Sparse reuses the per-thread topology workspace (pattern + symbolic
  /// factorization cached across evaluations); Dense is the legacy
  /// reference kernel for parity tests and benchmarks.
  spice::SimKernel kernel = spice::SimKernel::Sparse;
  /// Warm-start slot threaded from the eval layer: read as the Newton
  /// stage-0 guess when valid, refreshed with the converged operating
  /// point on success.
  eval::OpHint* hint = nullptr;
};

/// Build the netlist (exposed for tests and examples).
spice::Circuit build_tia(const TiaParams& params, const spice::TechCard& card,
                         const TiaBuildOptions& options = {});

/// Full evaluation: DC, AC, transient step response and noise analysis.
util::Expected<TiaResult> simulate_tia(const TiaParams& params,
                                       const spice::TechCard& card,
                                       const TiaBuildOptions& options = {});

/// Batched characterization: K design points run as lanes of the batched
/// kernel — lockstep DC Newton, batched AC and noise sweeps. The transient
/// settling run stays scalar per lane (each lane's window and step size
/// depend on its own measured bandwidth). Per-lane results are identical
/// to simulate_tia(). `hints` may be empty or hold one (possibly null)
/// hint per design; `options.hint` is ignored. The Dense kernel falls back
/// to a scalar loop.
std::vector<util::Expected<TiaResult>> simulate_tia_batch(
    const std::vector<TiaParams>& params, const spice::TechCard& card,
    const TiaBuildOptions& options = {},
    const std::vector<eval::OpHint*>& hints = {});

/// Map a SizingProblem grid point to physical TIA parameters.
TiaParams tia_params_from_grid(const std::vector<ParamDef>& defs,
                               const ParamVector& idx);

}  // namespace autockt::circuits
