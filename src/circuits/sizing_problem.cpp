#include "circuits/sizing_problem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "eval/function_backend.hpp"
#include "spice/workspace.hpp"

namespace autockt::circuits {

namespace {
constexpr double kDenominatorGuard = 1e-12;
}

void SpecDef::validate() const {
  const std::string who = "SpecDef '" + (name.empty() ? "<unnamed>" : name);
  if (std::isnan(sample_lo) || std::isnan(sample_hi)) {
    throw std::invalid_argument(who + "': NaN sampling bound");
  }
  if (sample_hi < sample_lo) {
    throw std::invalid_argument(
        who + "': sample_hi (" + std::to_string(sample_hi) +
        ") < sample_lo (" + std::to_string(sample_lo) + ")");
  }
  if (std::isnan(norm_const) || norm_const <= 0.0) {
    throw std::invalid_argument(
        who + "': norm_const must be positive (got " +
        std::to_string(norm_const) + ")");
  }
  if (std::isnan(fail_value)) {
    throw std::invalid_argument(who + "': NaN fail_value");
  }
}

double SpecDef::rel(double observed, double target) const {
  const double denom =
      std::fabs(observed) + std::fabs(target) + kDenominatorGuard;
  switch (sense) {
    case SpecSense::GreaterEq:
      return (observed - target) / denom;
    case SpecSense::LessEq:
    case SpecSense::Minimize:
      return (target - observed) / denom;
  }
  return 0.0;
}

double lookup_norm(double value, double g) {
  const double denom = std::fabs(value) + std::fabs(g) + kDenominatorGuard;
  return (value - g) / denom;
}

util::Expected<SpecVector> SizingProblem::evaluate(
    const ParamVector& params, eval::SimHint* hint) const {
  if (!backend) {
    return util::Error{"SizingProblem '" + name + "': no evaluation backend",
                       -1};
  }
  return backend->evaluate(params, hint);
}

std::vector<util::Expected<SpecVector>> SizingProblem::evaluate_batch(
    const std::vector<ParamVector>& points,
    const std::vector<eval::SimHint*>& hints) const {
  if (!backend) {
    return std::vector<util::Expected<SpecVector>>(
        points.size(),
        util::Expected<SpecVector>(util::Error{
            "SizingProblem '" + name + "': no evaluation backend", -1}));
  }
  return backend->evaluate_batch(points, hints);
}

void SizingProblem::set_evaluator(eval::EvalFn fn, std::string backend_name) {
  backend = std::make_shared<eval::FunctionBackend>(std::move(fn),
                                                    std::move(backend_name));
}

eval::EvalStats SizingProblem::eval_stats() const {
  eval::EvalStats stats = backend ? backend->stats() : eval::EvalStats{};
  // Merge the simulation-kernel counters. These are process-wide (the
  // workspace registry is shared by every problem), so with several live
  // problems the kernel columns report whole-process activity; reset via
  // reset_eval_stats() or difference with since() per experiment. Added
  // (not assigned) because a ProcessPoolBackend stack already carries the
  // kernel counters of its worker processes in backend->stats() — in that
  // configuration the parent-local counters below stay zero.
  const spice::KernelStats kernel = spice::kernel_stats_snapshot();
  stats.newton_iterations += kernel.newton_iterations;
  stats.symbolic_factorizations += kernel.symbolic_factorizations;
  stats.numeric_factorizations += kernel.numeric_factorizations;
  stats.dense_fallbacks += kernel.dense_fallbacks;
  stats.warm_start_attempts += kernel.warm_start_attempts;
  stats.warm_start_hits += kernel.warm_start_hits;
  stats.batch_refactorizations += kernel.batch_refactorizations;
  stats.batch_lanes += kernel.batch_lanes;
  stats.batch_lane_fallbacks += kernel.batch_lane_fallbacks;
  return stats;
}

void SizingProblem::reset_eval_stats() const {
  if (backend) backend->reset_stats();
  spice::reset_kernel_stats();
}

void SizingProblem::validate() const {
  for (const SpecDef& s : specs) {
    try {
      s.validate();
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("SizingProblem '" + name +
                                  "': " + e.what());
    }
  }
}

double SizingProblem::action_space_log10() const {
  double acc = 0.0;
  for (const ParamDef& p : params) {
    acc += std::log10(static_cast<double>(p.grid_size()));
  }
  return acc;
}

ParamVector SizingProblem::center_params() const {
  ParamVector out;
  out.reserve(params.size());
  for (const ParamDef& p : params) out.push_back(p.grid_size() / 2);
  return out;
}

SpecVector SizingProblem::fail_specs() const {
  SpecVector out;
  out.reserve(specs.size());
  for (const SpecDef& s : specs) out.push_back(s.fail_value);
  return out;
}

bool SizingProblem::valid_params(const ParamVector& p) const {
  if (p.size() != params.size()) return false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0 || p[i] >= params[i].grid_size()) return false;
  }
  return true;
}

std::vector<double> SizingProblem::param_values(const ParamVector& p) const {
  std::vector<double> out;
  out.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    out.push_back(params[i].value(p[i]));
  }
  return out;
}

double SizingProblem::reward_eq1(const SpecVector& observed,
                                 const SpecVector& target) const {
  double r = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double rel = specs[i].rel(observed[i], target[i]);
    if (specs[i].sense == SpecSense::Minimize) {
      r += rel;  // unclamped: keeps rewarding reductions below the budget
    } else {
      r += std::min(rel, 0.0);
    }
  }
  return r;
}

double SizingProblem::hard_violation(const SpecVector& observed,
                                     const SpecVector& target) const {
  double r = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    r += std::min(specs[i].rel(observed[i], target[i]), 0.0);
  }
  return r;
}

SpecVector worst_case_fold(const std::vector<SpecDef>& specs,
                           const std::vector<SpecVector>& corner_results) {
  SpecVector out(specs.size(), 0.0);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    double worst = corner_results.front()[s];
    for (const SpecVector& corner : corner_results) {
      if (specs[s].sense == SpecSense::GreaterEq) {
        worst = std::min(worst, corner[s]);
      } else {
        worst = std::max(worst, corner[s]);
      }
    }
    out[s] = worst;
  }
  return out;
}

}  // namespace autockt::circuits
