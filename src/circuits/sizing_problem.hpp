#pragma once
// The analog sizing problem abstraction shared by the RL environment, the
// baselines and the experiment harnesses.
//
// A problem is: a discretized parameter grid (the paper's [start, end, step]
// action-space notation), a list of design specifications with senses and
// target sampling ranges, and an evaluation *backend* mapping grid points to
// observed specification values (by running the circuit simulator). The
// backend is the pluggable seam of the system: factories stack caching,
// batch fan-out and PVT-corner parallelism behind it (see eval/backend.hpp)
// without any consumer changing how it asks for specs.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/backend.hpp"
#include "eval/stats.hpp"
#include "eval/types.hpp"
#include "util/expected.hpp"

namespace autockt::circuits {

/// How an observed value o relates to its target t to count as satisfied.
///  * GreaterEq: o >= t               (gain, bandwidth, phase margin)
///  * LessEq:    o <= t               (settling time, noise)
///  * Minimize:  o <= t, and Eq. 1 keeps rewarding reductions below t
///    (the paper's o_th terms, e.g. bias current as a power proxy)
enum class SpecSense { GreaterEq, LessEq, Minimize };

struct ParamDef {
  std::string name;
  double start = 0.0;
  double end = 0.0;
  double step = 1.0;

  /// Number of grid points (paper: {x : 0 <= x_i < K}). Degenerate
  /// definitions (non-positive step, end < start) collapse to a single
  /// point instead of dividing blindly.
  int grid_size() const {
    if (step <= 0.0 || end < start) return 1;
    return static_cast<int>((end - start) / step + 1.5);
  }
  /// Physical value at grid index `idx`.
  double value(int idx) const {
    return start + step * static_cast<double>(idx);
  }
};

struct SpecDef {
  std::string name;
  SpecSense sense = SpecSense::GreaterEq;
  double sample_lo = 0.0;   // deployment/training target sampling range
  double sample_hi = 1.0;
  double norm_const = 1.0;  // fixed reference g for lookup normalization
  double fail_value = 0.0;  // observed value substituted when the simulator
                            // cannot produce a measurement

  /// Reject definitions that would only misbehave deep inside lookup
  /// normalization or target sampling: sample_hi < sample_lo, non-positive
  /// norm_const, and NaN bounds all throw std::invalid_argument naming the
  /// spec. Called by the problem factories (and spec::SpecSpace) so bad
  /// definitions fail at construction, not mid-training.
  void validate() const;

  /// Signed relative satisfaction: >= 0 iff the spec is met. This is the
  /// paper's (o - o*)/(o + o*) with the sign arranged per sense.
  double rel(double observed, double target) const;

  bool satisfied(double observed, double target, double tol = 0.0) const {
    return rel(observed, target) >= -tol;
  }
};

using SpecVector = eval::SpecVector;   // aligned with SizingProblem::specs
using ParamVector = eval::ParamVector; // grid indices

/// Paper's fixed-reference normalization: (value - g) / (value + g), with a
/// guard for degenerate denominators. Maps (0, inf) to (-1, 1).
double lookup_norm(double value, double g);

struct SizingProblem {
  std::string name;
  std::string description;
  std::vector<ParamDef> params;
  std::vector<SpecDef> specs;

  /// The evaluation service behind this problem. Shared so that copies of
  /// the problem (and every env/worker holding one) see one cache and one
  /// set of statistics.
  std::shared_ptr<eval::EvalBackend> backend;

  /// Simulate one grid point through the backend. Errors indicate the
  /// simulator could not produce measurements (e.g. DC non-convergence);
  /// callers substitute per-spec fail_value. The optional hint threads the
  /// caller's warm-start state (last converged operating point) down to the
  /// simulator and is refreshed with the new one on success.
  util::Expected<SpecVector> evaluate(const ParamVector& params,
                                      eval::SimHint* hint = nullptr) const;

  /// Simulate many grid points; result i corresponds to params[i]. The
  /// backend may fan out, deduplicate and cache, but values and order are
  /// those of the serial loop. `hints` is empty or aligned with `points`;
  /// distinct points must carry distinct SimHint objects.
  std::vector<util::Expected<SpecVector>> evaluate_batch(
      const std::vector<ParamVector>& points,
      const std::vector<eval::SimHint*>& hints = {}) const;

  /// Compat shim: adopt a raw simulator callable as the backend (wrapped in
  /// a FunctionBackend). Keeps factories and tests terse.
  void set_evaluator(eval::EvalFn fn, std::string backend_name = "function");

  /// Evaluation telemetry (simulations, cache hits, batch shapes, wall
  /// time) accumulated by the backend stack since construction/reset,
  /// merged with the process-wide simulation-kernel counters (Newton
  /// iterations, symbolic/numeric factorizations, warm-start hit rate).
  eval::EvalStats eval_stats() const;
  void reset_eval_stats() const;

  /// Validate every spec definition (see SpecDef::validate). The factories
  /// in circuits/problems.cpp call this before returning, so a hand-edited
  /// sampling range fails loudly at construction.
  void validate() const;

  /// Per-simulation wall-clock cost reported by the paper for this setup;
  /// used to convert sample counts to paper-equivalent hours.
  double paper_sim_seconds = 0.025;

  /// log10 of the total number of parameter combinations.
  double action_space_log10() const;

  /// Paper: on reset, parameters start at the grid centre K/2.
  ParamVector center_params() const;

  /// Spec vector of all fail_values (used when evaluate() errors out).
  SpecVector fail_specs() const;

  bool valid_params(const ParamVector& p) const;

  /// Physical parameter values at a grid point (for reporting).
  std::vector<double> param_values(const ParamVector& p) const;

  // ---- Eq. 1 reward pieces (shared by env, baselines, deployment) -------

  /// The paper's Eq. 1: hard terms clamped at zero plus the unclamped
  /// minimize terms.
  double reward_eq1(const SpecVector& observed, const SpecVector& target) const;

  /// Sum of min(rel, 0) over ALL specs (minimize treated as a <= bound).
  /// The goal test (and deployment "reached" counting) uses this.
  double hard_violation(const SpecVector& observed,
                        const SpecVector& target) const;

  /// All specifications met to 1% relative tolerance.
  bool goal_met(const SpecVector& observed, const SpecVector& target) const {
    return hard_violation(observed, target) >= -kGoalTol;
  }

  static constexpr double kGoalTol = 0.01;
};

/// Fold per-corner spec vectors into the worst case per spec (PEX/PVT flow):
/// GreaterEq keeps the minimum, LessEq/Minimize the maximum.
SpecVector worst_case_fold(const std::vector<SpecDef>& specs,
                           const std::vector<SpecVector>& corner_results);

}  // namespace autockt::circuits
