#include "circuits/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "analysis/deck_lint.hpp"
#include "circuits/netlist_problem.hpp"

namespace autockt::circuits {

namespace {

bool looks_like_path(const std::string& scenario) {
  if (scenario.find('/') != std::string::npos) return true;
  if (scenario.find('\\') != std::string::npos) return true;
  return scenario.size() > 4 &&
         scenario.compare(scenario.size() - 4, 4, ".cir") == 0;
}

}  // namespace

CircuitRegistry CircuitRegistry::with_builtins() {
  CircuitRegistry reg;
  reg.add(
      "tia",
      [](const ProblemOptions& o) -> util::Expected<SizingProblem> {
        return make_tia_problem(o);
      },
      "Transimpedance amplifier, ptm45 schematic (paper Table I)");
  reg.add(
      "two_stage_opamp",
      [](const ProblemOptions& o) -> util::Expected<SizingProblem> {
        return make_two_stage_problem(o);
      },
      "Two-stage Miller op-amp, ptm45 schematic (paper Table II)");
  reg.add(
      "ngm_ota",
      [](const ProblemOptions& o) -> util::Expected<SizingProblem> {
        return make_ngm_problem(o);
      },
      "Negative-gm OTA, finfet16 schematic (paper Table III)");
  reg.add(
      "ngm_ota_pex",
      [](const ProblemOptions& o) -> util::Expected<SizingProblem> {
        return make_ngm_pex_problem(o);
      },
      "Negative-gm OTA through PEX + PVT worst case (paper Table IV)");
  return reg;
}

void CircuitRegistry::add(const std::string& name, Factory factory,
                          std::string description) {
  entries_[name] = Entry{std::move(factory), std::move(description)};
}

util::Expected<std::string> CircuitRegistry::add_deck_file(
    const std::string& path, std::string name) {
  auto deck = load_deck(path);
  if (!deck.ok()) return deck.error();
  if (!deck->has_sizing()) {
    return util::Error{path + ": deck declares no .param/.spec sizing"};
  }
  // Static-analysis gate: errors reject the deck at registration (with
  // every finding rendered, not just the first), warnings ride along under
  // the scenario name for lint_reports().
  auto diags = analysis::lint_deck(*deck);
  if (analysis::has_errors(diags)) {
    return util::Error{path + ": deck fails static analysis:\n" +
                       analysis::render_diagnostics_text(diags, path)};
  }
  if (name.empty()) name = deck_scenario_name(path);
  if (has(name)) {
    // A deck stem silently shadowing a builtin (or another deck) would
    // attribute results to the wrong scenario; collisions must be explicit
    // (pass a distinct `name`, or use add() to replace deliberately).
    return util::Error{path + ": scenario name '" + name +
                       "' is already registered"};
  }
  const std::string description =
      deck->title.empty() ? "deck scenario (" + path + ")" : deck->title;
  if (!diags.empty()) lint_reports_[name] = std::move(diags);
  auto shared = std::make_shared<const spice::NetlistDeck>(std::move(*deck));
  add(name,
      [shared, name](const ProblemOptions& o) {
        return make_netlist_problem(*shared, name, o);
      },
      description);
  return name;
}

util::Expected<std::vector<std::string>> CircuitRegistry::add_deck_dir(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return util::Error{"not a directory: '" + dir + "'"};
  }
  std::vector<std::string> files;
  try {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".cir") {
        files.push_back(entry.path().string());
      }
    }
  } catch (const fs::filesystem_error& e) {
    return util::Error{"cannot scan '" + dir + "': " + std::string(e.what())};
  }
  std::sort(files.begin(), files.end());

  std::vector<std::string> registered;
  registered.reserve(files.size());
  for (const std::string& file : files) {
    auto name = add_deck_file(file);
    if (!name.ok()) return name.error();
    registered.push_back(std::move(*name));
  }
  return registered;
}

bool CircuitRegistry::has(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> CircuitRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string CircuitRegistry::description(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? "" : it->second.description;
}

util::Expected<SizingProblem> CircuitRegistry::make(
    const std::string& scenario, const ProblemOptions& options) const {
  if (const auto it = entries_.find(scenario); it != entries_.end()) {
    return it->second.factory(options);
  }
  if (looks_like_path(scenario)) {
    return make_netlist_problem_from_file(scenario, options);
  }
  std::string known;
  for (const std::string& name : names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  return util::Error{"unknown scenario '" + scenario +
                     "' (registered: " + known +
                     "; or pass a path to a .cir deck)"};
}

util::Expected<std::shared_ptr<const SizingProblem>>
CircuitRegistry::make_shared(const std::string& scenario,
                             const ProblemOptions& options) const {
  auto prob = make(scenario, options);
  if (!prob.ok()) return prob.error();
  return std::make_shared<const SizingProblem>(std::move(*prob));
}

}  // namespace autockt::circuits
