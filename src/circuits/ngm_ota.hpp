#pragma once
// Two-stage OTA with negative-gm load (paper Fig. 9) in the finfet16-like
// quantized-width card.
//
// Stage 1: NMOS differential pair with PMOS diode-connected loads AND a
// PMOS cross-coupled pair. The cross-coupled pair injects negative
// transconductance that partially cancels the diode load, boosting gain via
// positive feedback — which also makes the circuit latch when the
// cross-coupled devices are oversized. This is exactly why the paper calls
// the topology "more challenging to design and more sensitive to layout
// parasitics". Stage 2: PMOS common-source with NMOS mirror sink.
//
// All widths are fin counts (quantized); ~1e11 parameter combinations.
// Specs: gain, UGBW, phase margin (target sampled in [60, 75] deg for
// transfer-learning robustness, per paper Section III-C/D).

#include "circuits/sizing_problem.hpp"
#include "pex/parasitics.hpp"
#include "spice/circuit.hpp"
#include "spice/workspace.hpp"
#include "util/expected.hpp"

namespace autockt::circuits {

struct NgmParams {
  int nf_in = 20;     // diff-pair fins
  int nf_diode = 16;  // diode load fins
  int nf_cross = 8;   // cross-coupled (negative gm) fins
  int nf_tail = 24;   // tail source fins
  int nf_cs = 40;     // second-stage PMOS fins
  int nf_sink = 20;   // second-stage sink fins
  double cc = 0.5e-12;  // Miller compensation (F)
};

struct NgmResult {
  double gain = 0.0;          // V/V
  double ugbw = 0.0;          // Hz
  double phase_margin = 0.0;  // degrees
  double bias_current = 0.0;  // A (diagnostic)
  bool ugbw_found = false;
};

struct NgmBuildOptions {
  const pex::ParasiticModel* parasitics = nullptr;
  /// Sparse reuses the per-thread topology workspace (pattern + symbolic
  /// factorization cached across evaluations); Dense is the legacy
  /// reference kernel for parity tests and benchmarks.
  spice::SimKernel kernel = spice::SimKernel::Sparse;
  /// Warm-start slot threaded from the eval layer: read as the Newton
  /// stage-0 guess when valid, refreshed with the converged operating
  /// point on success.
  eval::OpHint* hint = nullptr;
};

spice::Circuit build_ngm_ota(const NgmParams& params,
                             const spice::TechCard& card,
                             const NgmBuildOptions& options = {});

util::Expected<NgmResult> simulate_ngm_ota(const NgmParams& params,
                                           const spice::TechCard& card,
                                           const NgmBuildOptions& options = {});

/// Batched characterization: K design points run as lanes of the batched
/// kernel (lockstep DC Newton + batched AC sweep); per-lane results are
/// identical to simulate_ngm_ota(). `hints` may be empty or hold one
/// (possibly null) hint per design; `options.hint` is ignored. The Dense
/// kernel falls back to a scalar loop.
std::vector<util::Expected<NgmResult>> simulate_ngm_ota_batch(
    const std::vector<NgmParams>& params, const spice::TechCard& card,
    const NgmBuildOptions& options = {},
    const std::vector<eval::OpHint*>& hints = {});

NgmParams ngm_params_from_grid(const std::vector<ParamDef>& defs,
                               const ParamVector& idx);

}  // namespace autockt::circuits
