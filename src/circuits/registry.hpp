#pragma once
// CircuitRegistry: scenario name -> sizing-problem factory.
//
// AutoCkt's premise is training over many circuits and spec scenarios; the
// registry is the single place a scenario is looked up, whether it is one
// of the four built-in C++ factories (circuits/problems.hpp) or a .cir deck
// compiled at runtime (circuits/netlist_problem.hpp). Trainers, deployment
// and the examples resolve `--problem <name|path.cir>` through here, so
// adding a scenario is a file drop, not a code change.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "circuits/problems.hpp"
#include "circuits/sizing_problem.hpp"
#include "util/expected.hpp"

namespace autockt::circuits {

class CircuitRegistry {
 public:
  using Factory =
      std::function<util::Expected<SizingProblem>(const ProblemOptions&)>;

  /// Registry pre-loaded with the paper's problems: tia, two_stage_opamp,
  /// ngm_ota, ngm_ota_pex.
  static CircuitRegistry with_builtins();

  /// Register (or deliberately replace) a named factory.
  void add(const std::string& name, Factory factory,
           std::string description = "");

  /// Register one deck file as a scenario named after its stem (or `name`
  /// when given). The deck is parsed eagerly so malformed files fail at
  /// registration with their line numbers, then statically analyzed
  /// (analysis::lint_deck): error-severity findings reject the deck with
  /// the rendered diagnostics, warnings are collected under the scenario
  /// name (see lint_reports()). A name colliding with an already-registered
  /// scenario (e.g. a deck stem shadowing a builtin) is an error rather
  /// than a silent replacement. Returns the registered name.
  util::Expected<std::string> add_deck_file(const std::string& path,
                                            std::string name = "");

  /// Register every *.cir file directly under `dir` (sorted by name).
  /// Returns the registered scenario names; an unreadable or malformed deck
  /// fails the whole scan with the file named in the error.
  util::Expected<std::vector<std::string>> add_deck_dir(
      const std::string& dir);

  bool has(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Warning/note diagnostics collected while registering decks, keyed by
  /// scenario name (decks with error-severity findings were rejected
  /// outright). Empty for scenarios that linted clean.
  const std::map<std::string, std::vector<analysis::Diagnostic>>&
  lint_reports() const {
    return lint_reports_;
  }
  /// Description of a registered scenario ("" when unknown).
  std::string description(const std::string& name) const;

  /// Resolve a scenario argument: a registered name, or a path to a .cir
  /// deck (anything containing a path separator or ending in ".cir" is
  /// treated as a path and compiled on the fly). Unknown names error with
  /// the list of registered scenarios.
  util::Expected<SizingProblem> make(const std::string& scenario,
                                     const ProblemOptions& options = {}) const;

  /// make() boxed for the train/deploy APIs, which share problems.
  util::Expected<std::shared_ptr<const SizingProblem>> make_shared(
      const std::string& scenario, const ProblemOptions& options = {}) const;

 private:
  struct Entry {
    Factory factory;
    std::string description;
  };
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::vector<analysis::Diagnostic>> lint_reports_;
};

}  // namespace autockt::circuits
