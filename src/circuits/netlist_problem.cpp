#include "circuits/netlist_problem.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/deck_lint.hpp"
#include "circuits/sim_hint.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "spice/workspace.hpp"

namespace autockt::circuits {

namespace {

using spice::DeckMeasure;
using spice::DeckSpec;

SpecSense sense_of(DeckSpec::Sense s) {
  switch (s) {
    case DeckSpec::Sense::GreaterEq:
      return SpecSense::GreaterEq;
    case DeckSpec::Sense::LessEq:
      return SpecSense::LessEq;
    case DeckSpec::Sense::Minimize:
      return SpecSense::Minimize;
  }
  return SpecSense::GreaterEq;
}

/// Compiled measurement plan: which analyses the deck's measures need, and
/// the per-spec extraction (aligned with the problem's spec order).
struct MeasurePlan {
  bool need_ac = false;
  bool need_tran = false;
  bool need_noise = false;
  struct Extraction {
    DeckMeasure::Kind kind = DeckMeasure::Kind::Gain;
    std::string source;  // SupplyCurrent device name
    double fail_value = 0.0;
  };
  std::vector<Extraction> per_spec;
};

spice::NodeId probe_node(const spice::Circuit& ckt, const std::string& name) {
  if (name == "0" || name == "gnd") return spice::kGround;
  return ckt.node(name);
}

}  // namespace

std::vector<ParamDef> netlist_param_defs(const spice::NetlistDeck& deck) {
  std::vector<ParamDef> defs;
  defs.reserve(deck.params.size());
  for (const spice::DeckParam& p : deck.params) {
    ParamDef def;
    def.name = p.name;
    if (p.log_scale) {
      // Log grids live in index space; DeckParam::value_at maps an index to
      // its physical value inside the evaluator.
      def.start = 0.0;
      def.end = static_cast<double>(p.steps - 1);
      def.step = 1.0;
    } else {
      def.start = p.lo;
      def.end = p.hi;
      def.step = p.steps > 1
                     ? (p.hi - p.lo) / static_cast<double>(p.steps - 1)
                     : 0.0;
    }
    defs.push_back(std::move(def));
  }
  return defs;
}

util::Expected<SizingProblem> make_netlist_problem(
    const spice::NetlistDeck& deck, const std::string& name,
    const ProblemOptions& options) {
  if (deck.params.empty()) {
    return util::Error{"deck '" + name +
                       "' declares no .param design variables"};
  }
  if (deck.specs.empty()) {
    return util::Error{"deck '" + name + "' declares no .spec targets"};
  }

  // Static-analysis preflight: a deck with error-severity findings (floating
  // nodes, source loops, structural singularity, unsatisfiable measures...)
  // never reaches the simulator — it would produce garbage measurements the
  // RL agent happily optimizes against. Warnings are reported by the
  // registry and the netlist_lint CLI, not here.
  if (auto diags = analysis::lint_deck(deck); analysis::has_errors(diags)) {
    return util::Error{"deck '" + name + "' fails static analysis:\n" +
                       analysis::render_diagnostics_text(diags, name)};
  }

  SizingProblem prob;
  prob.name = name;
  prob.description = deck.title.empty()
                         ? "deck-defined sizing scenario"
                         : deck.title;
  prob.params = netlist_param_defs(deck);

  MeasurePlan plan;
  plan.per_spec.reserve(deck.specs.size());
  for (const DeckSpec& s : deck.specs) {
    SpecDef def;
    def.name = s.name;
    def.sense = sense_of(s.sense);
    def.sample_lo = s.sample_lo;
    def.sample_hi = s.sample_hi;
    def.norm_const = s.norm;
    def.fail_value = s.fail_value;
    prob.specs.push_back(std::move(def));

    const DeckMeasure* bound = nullptr;
    for (const DeckMeasure& m : deck.measures) {
      if (m.spec == s.name) bound = &m;
    }
    if (bound == nullptr) {
      // parse_deck enforces the pairing; guard against hand-built decks.
      return util::Error{"spec '" + s.name + "' has no .measure binding"};
    }
    MeasurePlan::Extraction ex;
    ex.kind = bound->kind;
    ex.source = bound->source;
    ex.fail_value = s.fail_value;
    plan.per_spec.push_back(std::move(ex));
    switch (bound->kind) {
      case DeckMeasure::Kind::Gain:
      case DeckMeasure::Kind::F3db:
      case DeckMeasure::Kind::Ugbw:
      case DeckMeasure::Kind::PhaseMargin:
        plan.need_ac = true;
        break;
      case DeckMeasure::Kind::Settling:
        plan.need_tran = true;
        break;
      case DeckMeasure::Kind::Noise:
        plan.need_noise = true;
        break;
      case DeckMeasure::Kind::SupplyCurrent:
        break;
    }
  }

  // Validate the deck instantiates and carries the analyses the plan needs
  // (parse_deck already checked; re-check so decks assembled in code fail
  // here, with a problem-level message, rather than at first evaluation).
  {
    auto inst = deck.instantiate_default();
    if (!inst.ok()) {
      return util::Error{"deck '" + name + "': " + inst.error().message};
    }
    if (plan.need_ac && inst->ac.empty()) {
      return util::Error{"deck '" + name + "' needs a .ac analysis"};
    }
    if (plan.need_tran && inst->tran.empty()) {
      return util::Error{"deck '" + name + "' needs a .tran analysis"};
    }
    if (plan.need_noise && inst->noise.empty()) {
      return util::Error{"deck '" + name + "' needs a .noise analysis"};
    }
  }

  // The evaluator: instantiate the deck at the design point and run exactly
  // the analyses the measures need, all through one per-(thread, topology)
  // workspace so repeated evaluations pay no symbolic-factorization cost.
  auto deck_copy = std::make_shared<const spice::NetlistDeck>(deck);
  const std::string ws_key = "netlist/" + name;
  auto eval = [deck_copy, plan, ws_key](
                  const ParamVector& idx,
                  eval::OpHint* hint) -> util::Expected<SpecVector> {
    using namespace spice;
    std::vector<double> values(deck_copy->params.size());
    for (std::size_t p = 0; p < values.size(); ++p) {
      values[p] = deck_copy->params[p].value_at(idx[p]);
    }
    auto inst = deck_copy->instantiate(values);
    if (!inst.ok()) return inst.error();
    Circuit& ckt = inst->circuit;
    SimWorkspace& ws = workspace_for(ckt, ws_key);

    DcOptions dc_opt;
    dc_opt.workspace = &ws;
    OpPoint warm;
    apply_warm_start(hint, warm, dc_opt);
    dc_opt.initial_node_v = inst->initial_node_voltages();
    auto op = solve_op(ckt, dc_opt);
    if (!op.ok()) return op.error();
    refresh_hint(hint, *op);

    AcMeasurements acm;
    if (plan.need_ac) {
      AcOptions o = inst->ac.front().options;
      o.workspace = &ws;
      auto sweep = ac_sweep(ckt, *op,
                            probe_node(ckt, inst->ac.front().probe),
                            kGround, o);
      if (!sweep.ok()) return sweep.error();
      acm = measure_ac(*sweep);
    }
    SettlingResult settle;
    if (plan.need_tran) {
      TranOptions o = inst->tran.front().options;
      o.workspace = &ws;
      auto tran = transient(
          ckt, *op, {probe_node(ckt, inst->tran.front().probe)}, o);
      if (!tran.ok()) return tran.error();
      settle = measure_settling(tran->time, tran->waveforms[0]);
    }
    double noise_vrms = 0.0;
    if (plan.need_noise) {
      NoiseOptions o = inst->noise.front().options;
      o.workspace = &ws;
      auto noise = noise_sweep(ckt, *op,
                               probe_node(ckt, inst->noise.front().probe),
                               kGround, o);
      if (!noise.ok()) return noise.error();
      noise_vrms = noise->total_output_vrms();
    }

    SpecVector out(plan.per_spec.size(), 0.0);
    for (std::size_t i = 0; i < plan.per_spec.size(); ++i) {
      const MeasurePlan::Extraction& ex = plan.per_spec[i];
      switch (ex.kind) {
        case DeckMeasure::Kind::Gain:
          out[i] = acm.dc_gain;
          break;
        case DeckMeasure::Kind::F3db:
          out[i] = acm.f3db_found ? acm.f3db : ex.fail_value;
          break;
        case DeckMeasure::Kind::Ugbw:
          out[i] = acm.ugbw_found ? acm.ugbw : ex.fail_value;
          break;
        case DeckMeasure::Kind::PhaseMargin:
          out[i] = acm.ugbw_found ? acm.phase_margin_deg : ex.fail_value;
          break;
        case DeckMeasure::Kind::Settling:
          out[i] = settle.settled ? settle.time : ex.fail_value;
          break;
        case DeckMeasure::Kind::Noise:
          out[i] = noise_vrms;
          break;
        case DeckMeasure::Kind::SupplyCurrent: {
          const Device* dev = ckt.find(ex.source);
          if (dev == nullptr || dev->branch_count() == 0) {
            return util::Error{"supply_current: no branch device '" +
                               ex.source + "'"};
          }
          out[i] = std::fabs(op->branch_i[dev->first_branch()]);
          break;
        }
      }
    }
    return out;
  };

  // Batched evaluator: all instantiations of one deck share a topology, so
  // K grid points become K lanes of the batched kernel — one lockstep DC
  // Newton and (when the plan needs it) one batched AC / noise sweep.
  // Transient measures stay scalar per lane. Per-lane results are exactly
  // what the scalar evaluator returns.
  auto eval_batch = [deck_copy, plan, ws_key](
                        const std::vector<ParamVector>& points,
                        const std::vector<eval::OpHint*>& hints)
      -> std::vector<util::Expected<SpecVector>> {
    using namespace spice;
    const std::size_t K = points.size();
    std::vector<util::Expected<SpecVector>> results(K, SpecVector{});
    if (K == 0) return results;
    const auto hint_of = [&](std::size_t l) -> eval::OpHint* {
      return l < hints.size() ? hints[l] : nullptr;
    };

    std::vector<std::optional<spice::ParsedNetlist>> insts(K);
    std::vector<std::size_t> live;
    for (std::size_t l = 0; l < K; ++l) {
      std::vector<double> values(deck_copy->params.size());
      for (std::size_t p = 0; p < values.size(); ++p) {
        values[p] = deck_copy->params[p].value_at(points[l][p]);
      }
      auto inst = deck_copy->instantiate(values);
      if (!inst.ok()) {
        results[l] = inst.error();
        continue;
      }
      insts[l].emplace(std::move(*inst));
      live.push_back(l);
    }
    if (live.empty()) return results;
    SimWorkspace& ws =
        workspace_for(insts[live.front()]->circuit, ws_key);

    std::vector<const Circuit*> dc_ckts;
    std::vector<DcOptions> dc_opts;
    std::vector<OpPoint> warm(K);
    dc_ckts.reserve(live.size());
    dc_opts.reserve(live.size());
    for (const std::size_t l : live) {
      dc_ckts.push_back(&insts[l]->circuit);
      DcOptions dc_opt;
      dc_opt.workspace = &ws;
      apply_warm_start(hint_of(l), warm[l], dc_opt);
      dc_opt.initial_node_v = insts[l]->initial_node_voltages();
      dc_opts.push_back(std::move(dc_opt));
    }
    std::vector<util::Expected<OpPoint>> ops =
        solve_op_batch(dc_ckts, dc_opts, ws);

    // Compact the DC-converged lanes into the batched sweeps.
    std::vector<std::size_t> ok_lanes;
    std::vector<const Circuit*> ok_ckts;
    std::vector<const OpPoint*> ok_ops;
    std::vector<OpPoint> op_store(live.size());
    for (std::size_t s = 0; s < live.size(); ++s) {
      const std::size_t l = live[s];
      if (!ops[s].ok()) {
        results[l] = ops[s].error();
        continue;
      }
      refresh_hint(hint_of(l), *ops[s]);
      op_store[ok_lanes.size()] = std::move(*ops[s]);
      ok_ckts.push_back(&insts[l]->circuit);
      ok_lanes.push_back(l);
    }
    if (ok_lanes.empty()) return results;
    ok_ops.reserve(ok_lanes.size());
    for (std::size_t s = 0; s < ok_lanes.size(); ++s) {
      ok_ops.push_back(&op_store[s]);
    }

    std::vector<util::Expected<std::vector<AcPoint>>> sweeps;
    if (plan.need_ac) {
      AcOptions o = insts[ok_lanes.front()]->ac.front().options;
      o.workspace = &ws;
      const NodeId probe = probe_node(
          *ok_ckts.front(), insts[ok_lanes.front()]->ac.front().probe);
      sweeps = ac_sweep_batch(ok_ckts, ok_ops, probe, kGround, o, ws);
    }
    std::vector<util::Expected<NoiseResult>> noises;
    if (plan.need_noise) {
      NoiseOptions o = insts[ok_lanes.front()]->noise.front().options;
      o.workspace = &ws;
      const NodeId probe = probe_node(
          *ok_ckts.front(), insts[ok_lanes.front()]->noise.front().probe);
      noises = noise_sweep_batch(ok_ckts, ok_ops, probe, kGround, o, ws);
    }

    for (std::size_t s = 0; s < ok_lanes.size(); ++s) {
      const std::size_t l = ok_lanes[s];
      Circuit& ckt = insts[l]->circuit;
      const OpPoint& op = op_store[s];

      AcMeasurements acm;
      if (plan.need_ac) {
        if (!sweeps[s].ok()) {
          results[l] = sweeps[s].error();
          continue;
        }
        acm = measure_ac(*sweeps[s]);
      }
      SettlingResult settle;
      if (plan.need_tran) {
        TranOptions o = insts[l]->tran.front().options;
        o.workspace = &ws;
        auto tran = transient(
            ckt, op, {probe_node(ckt, insts[l]->tran.front().probe)}, o);
        if (!tran.ok()) {
          results[l] = tran.error();
          continue;
        }
        settle = measure_settling(tran->time, tran->waveforms[0]);
      }
      double noise_vrms = 0.0;
      if (plan.need_noise) {
        if (!noises[s].ok()) {
          results[l] = noises[s].error();
          continue;
        }
        noise_vrms = noises[s]->total_output_vrms();
      }

      SpecVector out(plan.per_spec.size(), 0.0);
      bool lane_ok = true;
      for (std::size_t i = 0; i < plan.per_spec.size() && lane_ok; ++i) {
        const MeasurePlan::Extraction& ex = plan.per_spec[i];
        switch (ex.kind) {
          case DeckMeasure::Kind::Gain:
            out[i] = acm.dc_gain;
            break;
          case DeckMeasure::Kind::F3db:
            out[i] = acm.f3db_found ? acm.f3db : ex.fail_value;
            break;
          case DeckMeasure::Kind::Ugbw:
            out[i] = acm.ugbw_found ? acm.ugbw : ex.fail_value;
            break;
          case DeckMeasure::Kind::PhaseMargin:
            out[i] = acm.ugbw_found ? acm.phase_margin_deg : ex.fail_value;
            break;
          case DeckMeasure::Kind::Settling:
            out[i] = settle.settled ? settle.time : ex.fail_value;
            break;
          case DeckMeasure::Kind::Noise:
            out[i] = noise_vrms;
            break;
          case DeckMeasure::Kind::SupplyCurrent: {
            const Device* dev = ckt.find(ex.source);
            if (dev == nullptr || dev->branch_count() == 0) {
              results[l] = util::Error{"supply_current: no branch device '" +
                                       ex.source + "'"};
              lane_ok = false;
              break;
            }
            out[i] = std::fabs(op.branch_i[dev->first_branch()]);
            break;
          }
        }
      }
      if (lane_ok) results[l] = std::move(out);
    }
    return results;
  };

  // Fingerprint for the persistent eval cache: grid + specs + the raw deck
  // text, so editing any card line (device value, analysis point, measure)
  // retires the old cache instead of replaying stale results against the
  // changed circuit.
  std::vector<std::string> deck_lines;
  deck_lines.reserve(deck.lines.size());
  for (const auto& line : deck.lines) {
    std::string joined;
    for (const std::string& tok : line.tokens) {
      if (!joined.empty()) joined += ' ';
      joined += tok;
    }
    deck_lines.push_back(std::move(joined));
  }
  const std::uint64_t fingerprint =
      problem_fingerprint(prob.name, prob.params, prob.specs, deck_lines);

  try {
    prob.backend = make_standard_backend(
        std::move(eval), std::move(eval_batch), name + "_sim", options,
        fingerprint);
  } catch (const std::runtime_error& e) {
    // DiskLogStore::open refused the cache directory (fingerprint
    // mismatch, unwritable path); surface it as a deck-level error.
    return util::Error{"deck '" + name + "': " + std::string(e.what())};
  }
  try {
    prob.validate();
  } catch (const std::invalid_argument& e) {
    return util::Error{"deck '" + name + "': " + std::string(e.what())};
  }
  return prob;
}

util::Expected<SizingProblem> make_netlist_problem_from_text(
    const std::string& deck_text, const std::string& name,
    const ProblemOptions& options) {
  auto deck = spice::parse_deck(deck_text);
  if (!deck.ok()) return deck.error();
  return make_netlist_problem(*deck, name, options);
}

util::Expected<spice::NetlistDeck> load_deck(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Error{"cannot open deck '" + path + "'"};
  std::ostringstream buf;
  buf << in.rdbuf();
  auto deck = spice::parse_deck(buf.str());
  if (!deck.ok()) {
    return util::Error{path + ": " + deck.error().message,
                       deck.error().code};
  }
  return deck;
}

std::string deck_scenario_name(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

util::Expected<SizingProblem> make_netlist_problem_from_file(
    const std::string& path, const ProblemOptions& options) {
  auto deck = load_deck(path);
  if (!deck.ok()) return deck.error();
  return make_netlist_problem(*deck, deck_scenario_name(path), options);
}

}  // namespace autockt::circuits
