#include "circuits/tia.hpp"

#include <algorithm>
#include <cmath>

#include "circuits/sim_hint.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "spice/units.hpp"

namespace autockt::circuits {

namespace {
constexpr double kPhotodiodeCap = 50e-15;  // F
constexpr double kLoadCap = 15e-15;        // F
constexpr double kStepCurrent = 5e-6;      // A input step for settling
constexpr double kChannelLengthFactor = 2.0;  // drawn L = 2 * l_min
// Settling reported when the transient window ends before the output
// demonstrably settles. Equal to the maximum window (and the spec's fail
// value), so a still-ringing design can never out-score one that settled.
constexpr double kUnsettledPenalty = 3e-8;  // s
}  // namespace

spice::Circuit build_tia(const TiaParams& params, const spice::TechCard& card,
                         const TiaBuildOptions& options) {
  using namespace spice;
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");

  ckt.add<VoltageSource>("vsupply", vdd, kGround,
                         Waveform::constant(card.vdd));

  // Photodiode: signal current injected into `in` plus junction capacitance.
  // The default stimulus is DC 0 with unit AC magnitude; the transient
  // settling run passes a step waveform whose edge fires late enough for
  // the window to capture the pre-edge baseline.
  ckt.add<CurrentSource>("iin", kGround, in,
                         options.input_stimulus != nullptr
                             ? *options.input_stimulus
                             : Waveform::constant(0.0),
                         /*ac_mag=*/1.0);
  ckt.add<Capacitor>("cpd", in, kGround, kPhotodiodeCap);

  const double l = kChannelLengthFactor * card.l_min;
  ckt.add<Mosfet>("mn", out, in, kGround, kGround, MosType::Nmos,
                  MosGeom{params.wn, l, params.mn}, card);
  ckt.add<Mosfet>("mp", out, in, vdd, vdd, MosType::Pmos,
                  MosGeom{params.wp, l, params.mp}, card);

  ckt.add<Resistor>("rf", in, out, params.feedback_resistance());
  ckt.add<Capacitor>("cl", out, kGround, kLoadCap);

  if (options.parasitics != nullptr) {
    const pex::ParasiticModel& pm = *options.parasitics;
    const double w_in = params.wn * params.mn + params.wp * params.mp;
    ckt.add<Capacitor>("cpex_in", in, kGround,
                       pm.net_cap(w_in, pex::ParasiticModel::net_key(
                                              "tia", "in")));
    ckt.add<Capacitor>("cpex_out", out, kGround,
                       pm.net_cap(w_in, pex::ParasiticModel::net_key(
                                              "tia", "out")));
  }
  return ckt;
}

util::Expected<TiaResult> simulate_tia(const TiaParams& params,
                                       const spice::TechCard& card,
                                       const TiaBuildOptions& options) {
  using namespace spice;
  Circuit ckt = build_tia(params, card, options);
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  (void)in;

  // One workspace per (thread, topology), shared by the DC solve, the AC
  // and noise sweeps, and the transient run (whose step-stimulus rebuild
  // has the identical structure).
  SimWorkspace* ws = nullptr;
  if (options.kernel == SimKernel::Sparse) {
    ws = &workspace_for(ckt,
                        options.parasitics != nullptr ? "tia_pex" : "tia");
  }

  DcOptions dc_opt;
  dc_opt.kernel = options.kernel;
  dc_opt.workspace = ws;
  OpPoint warm;
  apply_warm_start(options.hint, warm, dc_opt);
  dc_opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
  dc_opt.initial_node_v[ckt.node("vdd")] = card.vdd;
  dc_opt.initial_node_v[ckt.node("in")] = card.vdd / 2.0;
  dc_opt.initial_node_v[ckt.node("out")] = card.vdd / 2.0;
  auto op = solve_op(ckt, dc_opt);
  if (!op.ok()) return op.error();
  refresh_hint(options.hint, *op);

  // ---- AC: transimpedance magnitude and cutoff --------------------------
  AcOptions ac_opt;
  ac_opt.kernel = options.kernel;
  ac_opt.workspace = ws;
  ac_opt.f_start = 1e5;
  ac_opt.f_stop = 1e11;
  ac_opt.points_per_decade = 10;
  auto sweep = ac_sweep(ckt, *op, out, kGround, ac_opt);
  if (!sweep.ok()) return sweep.error();
  const AcMeasurements acm = measure_ac(*sweep);

  TiaResult result;
  result.cutoff_freq = acm.f3db_found ? acm.f3db : ac_opt.f_stop;
  const double z_dc = std::max(acm.dc_gain, 1.0);  // Ohms (1 A AC stimulus)

  // ---- Noise: output-referred, then referred to the input ----------------
  NoiseOptions n_opt;
  n_opt.kernel = options.kernel;
  n_opt.workspace = ws;
  n_opt.f_start = 1e3;
  n_opt.f_stop = 1e10;
  n_opt.points_per_decade = 4;
  auto noise = noise_sweep(ckt, *op, out, kGround, n_opt);
  if (!noise.ok()) return noise.error();
  // Input-referred current noise times the feedback resistance gives the
  // paper's Vrms-equivalent input noise figure.
  result.input_noise = noise->total_output_vrms() *
                       params.feedback_resistance() / z_dc;

  // ---- Transient: step-response settling ---------------------------------
  // Window scaled from the small-signal bandwidth so slow and fast designs
  // are both resolved with ~0.25% time granularity.
  const double f_bw = std::clamp(result.cutoff_freq, 1e7, 1e11);
  const double t_window = std::clamp(10.0 / f_bw, 2e-10, 3e-8);
  const double t_edge = 0.1 * t_window;

  // Same netlist rebuilt with the stepped input source (devices are
  // immutable, so the transient stimulus needs its own build). Because it
  // is the same build function, the structure — and hence the workspace's
  // frozen pattern — matches by construction.
  const Waveform step_wave =
      Waveform::step(0.0, kStepCurrent, t_edge, t_window / 2000.0);
  TiaBuildOptions step_options = options;
  step_options.input_stimulus = &step_wave;
  Circuit step_ckt = build_tia(params, card, step_options);

  TranOptions tr_opt;
  tr_opt.kernel = options.kernel;
  tr_opt.workspace = ws;  // step_ckt shares the topology (and pattern)
  tr_opt.t_stop = t_window;
  tr_opt.dt = t_window / 400.0;
  auto tran = transient(step_ckt, *op, {step_ckt.node("out")}, tr_opt);
  if (!tran.ok()) return tran.error();
  const SettlingResult settle =
      measure_settling(tran->time, tran->waveforms[0], 0.02);
  if (settle.settled) {
    result.settling_time = std::max(settle.time - t_edge, tr_opt.dt);
  } else {
    // The output was still moving at the window end: the measured instant is
    // only a lower bound. Report the penalty instead of crediting the design
    // with a (possibly tiny) truncated window length.
    result.settling_time = kUnsettledPenalty;
  }

  result.supply_current = -op->branch_i[0];
  return result;
}

TiaParams tia_params_from_grid(const std::vector<ParamDef>& defs,
                               const ParamVector& idx) {
  TiaParams p;
  p.wn = defs[0].value(idx[0]) * 1e-6;
  p.mn = static_cast<int>(defs[1].value(idx[1]));
  p.wp = defs[2].value(idx[2]) * 1e-6;
  p.mp = static_cast<int>(defs[3].value(idx[3]));
  p.n_series = static_cast<int>(defs[4].value(idx[4]));
  p.n_parallel = static_cast<int>(defs[5].value(idx[5]));
  return p;
}

}  // namespace autockt::circuits
