#include "circuits/tia.hpp"

#include <algorithm>
#include <cmath>

#include "circuits/sim_hint.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "spice/units.hpp"

namespace autockt::circuits {

namespace {
constexpr double kPhotodiodeCap = 50e-15;  // F
constexpr double kLoadCap = 15e-15;        // F
constexpr double kStepCurrent = 5e-6;      // A input step for settling
constexpr double kChannelLengthFactor = 2.0;  // drawn L = 2 * l_min
// Settling reported when the transient window ends before the output
// demonstrably settles. Equal to the maximum window (and the spec's fail
// value), so a still-ringing design can never out-score one that settled.
constexpr double kUnsettledPenalty = 3e-8;  // s

spice::DcOptions tia_dc_options(const spice::Circuit& ckt,
                                const spice::TechCard& card,
                                spice::SimKernel kernel,
                                spice::SimWorkspace* ws) {
  spice::DcOptions dc_opt;
  dc_opt.kernel = kernel;
  dc_opt.workspace = ws;
  dc_opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
  dc_opt.initial_node_v[ckt.node("vdd")] = card.vdd;
  dc_opt.initial_node_v[ckt.node("in")] = card.vdd / 2.0;
  dc_opt.initial_node_v[ckt.node("out")] = card.vdd / 2.0;
  return dc_opt;
}

spice::AcOptions tia_ac_options(spice::SimKernel kernel,
                                spice::SimWorkspace* ws) {
  spice::AcOptions ac_opt;
  ac_opt.kernel = kernel;
  ac_opt.workspace = ws;
  ac_opt.f_start = 1e5;
  ac_opt.f_stop = 1e11;
  ac_opt.points_per_decade = 10;
  return ac_opt;
}

spice::NoiseOptions tia_noise_options(spice::SimKernel kernel,
                                      spice::SimWorkspace* ws) {
  spice::NoiseOptions n_opt;
  n_opt.kernel = kernel;
  n_opt.workspace = ws;
  n_opt.f_start = 1e3;
  n_opt.f_stop = 1e10;
  n_opt.points_per_decade = 4;
  return n_opt;
}

/// Transient step-response settling measurement around the converged op
/// point; window scaled from the lane's own small-signal bandwidth (which
/// is why this stage stays scalar in the batched path).
util::Expected<double> tia_settling_time(const TiaParams& params,
                                         const spice::TechCard& card,
                                         const TiaBuildOptions& options,
                                         spice::SimWorkspace* ws,
                                         const spice::OpPoint& op,
                                         double cutoff_freq) {
  using namespace spice;
  // Window scaled from the small-signal bandwidth so slow and fast designs
  // are both resolved with ~0.25% time granularity.
  const double f_bw = std::clamp(cutoff_freq, 1e7, 1e11);
  const double t_window = std::clamp(10.0 / f_bw, 2e-10, 3e-8);
  const double t_edge = 0.1 * t_window;

  // Same netlist rebuilt with the stepped input source (devices are
  // immutable, so the transient stimulus needs its own build). Because it
  // is the same build function, the structure — and hence the workspace's
  // frozen pattern — matches by construction.
  const Waveform step_wave =
      Waveform::step(0.0, kStepCurrent, t_edge, t_window / 2000.0);
  TiaBuildOptions step_options = options;
  step_options.input_stimulus = &step_wave;
  Circuit step_ckt = build_tia(params, card, step_options);

  TranOptions tr_opt;
  tr_opt.kernel = options.kernel;
  tr_opt.workspace = ws;  // step_ckt shares the topology (and pattern)
  tr_opt.t_stop = t_window;
  tr_opt.dt = t_window / 400.0;
  auto tran = transient(step_ckt, op, {step_ckt.node("out")}, tr_opt);
  if (!tran.ok()) return tran.error();
  const SettlingResult settle =
      measure_settling(tran->time, tran->waveforms[0], 0.02);
  if (settle.settled) {
    return std::max(settle.time - t_edge, tr_opt.dt);
  }
  // The output was still moving at the window end: the measured instant is
  // only a lower bound. Report the penalty instead of crediting the design
  // with a (possibly tiny) truncated window length.
  return kUnsettledPenalty;
}
}  // namespace

spice::Circuit build_tia(const TiaParams& params, const spice::TechCard& card,
                         const TiaBuildOptions& options) {
  using namespace spice;
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");

  ckt.add<VoltageSource>("vsupply", vdd, kGround,
                         Waveform::constant(card.vdd));

  // Photodiode: signal current injected into `in` plus junction capacitance.
  // The default stimulus is DC 0 with unit AC magnitude; the transient
  // settling run passes a step waveform whose edge fires late enough for
  // the window to capture the pre-edge baseline.
  ckt.add<CurrentSource>("iin", kGround, in,
                         options.input_stimulus != nullptr
                             ? *options.input_stimulus
                             : Waveform::constant(0.0),
                         /*ac_mag=*/1.0);
  ckt.add<Capacitor>("cpd", in, kGround, kPhotodiodeCap);

  const double l = kChannelLengthFactor * card.l_min;
  ckt.add<Mosfet>("mn", out, in, kGround, kGround, MosType::Nmos,
                  MosGeom{params.wn, l, params.mn}, card);
  ckt.add<Mosfet>("mp", out, in, vdd, vdd, MosType::Pmos,
                  MosGeom{params.wp, l, params.mp}, card);

  ckt.add<Resistor>("rf", in, out, params.feedback_resistance());
  ckt.add<Capacitor>("cl", out, kGround, kLoadCap);

  if (options.parasitics != nullptr) {
    const pex::ParasiticModel& pm = *options.parasitics;
    const double w_in = params.wn * params.mn + params.wp * params.mp;
    ckt.add<Capacitor>("cpex_in", in, kGround,
                       pm.net_cap(w_in, pex::ParasiticModel::net_key(
                                              "tia", "in")));
    ckt.add<Capacitor>("cpex_out", out, kGround,
                       pm.net_cap(w_in, pex::ParasiticModel::net_key(
                                              "tia", "out")));
  }
  return ckt;
}

util::Expected<TiaResult> simulate_tia(const TiaParams& params,
                                       const spice::TechCard& card,
                                       const TiaBuildOptions& options) {
  using namespace spice;
  Circuit ckt = build_tia(params, card, options);
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  (void)in;

  // One workspace per (thread, topology), shared by the DC solve, the AC
  // and noise sweeps, and the transient run (whose step-stimulus rebuild
  // has the identical structure).
  SimWorkspace* ws = nullptr;
  if (options.kernel == SimKernel::Sparse) {
    ws = &workspace_for(ckt,
                        options.parasitics != nullptr ? "tia_pex" : "tia");
  }

  DcOptions dc_opt = tia_dc_options(ckt, card, options.kernel, ws);
  OpPoint warm;
  apply_warm_start(options.hint, warm, dc_opt);
  auto op = solve_op(ckt, dc_opt);
  if (!op.ok()) return op.error();
  refresh_hint(options.hint, *op);

  // ---- AC: transimpedance magnitude and cutoff --------------------------
  const AcOptions ac_opt = tia_ac_options(options.kernel, ws);
  auto sweep = ac_sweep(ckt, *op, out, kGround, ac_opt);
  if (!sweep.ok()) return sweep.error();
  const AcMeasurements acm = measure_ac(*sweep);

  TiaResult result;
  result.cutoff_freq = acm.f3db_found ? acm.f3db : ac_opt.f_stop;
  const double z_dc = std::max(acm.dc_gain, 1.0);  // Ohms (1 A AC stimulus)

  // ---- Noise: output-referred, then referred to the input ----------------
  const NoiseOptions n_opt = tia_noise_options(options.kernel, ws);
  auto noise = noise_sweep(ckt, *op, out, kGround, n_opt);
  if (!noise.ok()) return noise.error();
  // Input-referred current noise times the feedback resistance gives the
  // paper's Vrms-equivalent input noise figure.
  result.input_noise = noise->total_output_vrms() *
                       params.feedback_resistance() / z_dc;

  // ---- Transient: step-response settling ---------------------------------
  auto settling = tia_settling_time(params, card, options, ws, *op,
                                    result.cutoff_freq);
  if (!settling.ok()) return settling.error();
  result.settling_time = *settling;

  result.supply_current = -op->branch_i[0];
  return result;
}

std::vector<util::Expected<TiaResult>> simulate_tia_batch(
    const std::vector<TiaParams>& params, const spice::TechCard& card,
    const TiaBuildOptions& options, const std::vector<eval::OpHint*>& hints) {
  using namespace spice;
  const std::size_t K = params.size();
  std::vector<util::Expected<TiaResult>> results(K, TiaResult{});
  if (K == 0) return results;
  const auto hint_of = [&](std::size_t l) -> eval::OpHint* {
    return l < hints.size() ? hints[l] : nullptr;
  };
  if (options.kernel == SimKernel::Dense) {
    for (std::size_t l = 0; l < K; ++l) {
      TiaBuildOptions lane_options = options;
      lane_options.hint = hint_of(l);
      results[l] = simulate_tia(params[l], card, lane_options);
    }
    return results;
  }

  std::vector<Circuit> circuits;
  circuits.reserve(K);
  for (const TiaParams& p : params) {
    circuits.push_back(build_tia(p, card, options));
  }
  SimWorkspace& ws = workspace_for(
      circuits.front(), options.parasitics != nullptr ? "tia_pex" : "tia");
  const NodeId out = circuits.front().node("out");

  std::vector<const Circuit*> ckt_ptrs(K);
  std::vector<DcOptions> dc_opts(K);
  std::vector<OpPoint> warm(K);
  for (std::size_t l = 0; l < K; ++l) {
    ckt_ptrs[l] = &circuits[l];
    dc_opts[l] = tia_dc_options(circuits[l], card, SimKernel::Sparse, &ws);
    TiaBuildOptions lane_options = options;
    lane_options.hint = hint_of(l);
    apply_warm_start(lane_options.hint, warm[l], dc_opts[l]);
  }
  std::vector<util::Expected<OpPoint>> ops =
      solve_op_batch(ckt_ptrs, dc_opts, ws);

  // Compact the converged lanes into the batched AC and noise sweeps.
  std::vector<std::size_t> live;
  std::vector<const Circuit*> live_ckts;
  std::vector<const OpPoint*> live_ops;
  for (std::size_t l = 0; l < K; ++l) {
    if (!ops[l].ok()) {
      results[l] = ops[l].error();
      continue;
    }
    refresh_hint(hint_of(l), *ops[l]);
    live.push_back(l);
    live_ckts.push_back(&circuits[l]);
    live_ops.push_back(&*ops[l]);
  }
  if (live.empty()) return results;

  const AcOptions ac_opt = tia_ac_options(SimKernel::Sparse, &ws);
  std::vector<util::Expected<std::vector<AcPoint>>> sweeps =
      ac_sweep_batch(live_ckts, live_ops, out, kGround, ac_opt, ws);
  const NoiseOptions n_opt = tia_noise_options(SimKernel::Sparse, &ws);
  std::vector<util::Expected<NoiseResult>> noises =
      noise_sweep_batch(live_ckts, live_ops, out, kGround, n_opt, ws);

  TiaBuildOptions lane_options = options;
  lane_options.kernel = SimKernel::Sparse;
  for (std::size_t s = 0; s < live.size(); ++s) {
    const std::size_t l = live[s];
    if (!sweeps[s].ok()) {
      results[l] = sweeps[s].error();
      continue;
    }
    if (!noises[s].ok()) {
      results[l] = noises[s].error();
      continue;
    }
    const AcMeasurements acm = measure_ac(*sweeps[s]);
    TiaResult result;
    result.cutoff_freq = acm.f3db_found ? acm.f3db : ac_opt.f_stop;
    const double z_dc = std::max(acm.dc_gain, 1.0);
    result.input_noise = noises[s]->total_output_vrms() *
                         params[l].feedback_resistance() / z_dc;
    auto settling = tia_settling_time(params[l], card, lane_options, &ws,
                                      *ops[l], result.cutoff_freq);
    if (!settling.ok()) {
      results[l] = settling.error();
      continue;
    }
    result.settling_time = *settling;
    result.supply_current = -ops[l]->branch_i[0];
    results[l] = result;
  }
  return results;
}

TiaParams tia_params_from_grid(const std::vector<ParamDef>& defs,
                               const ParamVector& idx) {
  TiaParams p;
  p.wn = defs[0].value(idx[0]) * 1e-6;
  p.mn = static_cast<int>(defs[1].value(idx[1]));
  p.wp = defs[2].value(idx[2]) * 1e-6;
  p.mp = static_cast<int>(defs[3].value(idx[3]));
  p.n_series = static_cast<int>(defs[4].value(idx[4]));
  p.n_parallel = static_cast<int>(defs[5].value(idx[5]));
  return p;
}

}  // namespace autockt::circuits
