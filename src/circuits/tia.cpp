#include "circuits/tia.hpp"

#include <algorithm>
#include <cmath>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/noise.hpp"
#include "spice/transient.hpp"
#include "spice/units.hpp"

namespace autockt::circuits {

namespace {
constexpr double kPhotodiodeCap = 50e-15;  // F
constexpr double kLoadCap = 15e-15;        // F
constexpr double kStepCurrent = 5e-6;      // A input step for settling
constexpr double kChannelLengthFactor = 2.0;  // drawn L = 2 * l_min
}  // namespace

spice::Circuit build_tia(const TiaParams& params, const spice::TechCard& card,
                         const TiaBuildOptions& options) {
  using namespace spice;
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");

  ckt.add<VoltageSource>("vsupply", vdd, kGround,
                         Waveform::constant(card.vdd));

  // Photodiode: signal current injected into `in` plus junction capacitance.
  // The step fires late enough for the transient window to capture the
  // pre-edge baseline (the window is sized by the caller from the AC
  // bandwidth; t0 is overridden there).
  ckt.add<CurrentSource>("iin", kGround, in,
                         Waveform::constant(0.0), /*ac_mag=*/1.0);
  ckt.add<Capacitor>("cpd", in, kGround, kPhotodiodeCap);

  const double l = kChannelLengthFactor * card.l_min;
  ckt.add<Mosfet>("mn", out, in, kGround, kGround, MosType::Nmos,
                  MosGeom{params.wn, l, params.mn}, card);
  ckt.add<Mosfet>("mp", out, in, vdd, vdd, MosType::Pmos,
                  MosGeom{params.wp, l, params.mp}, card);

  ckt.add<Resistor>("rf", in, out, params.feedback_resistance());
  ckt.add<Capacitor>("cl", out, kGround, kLoadCap);

  if (options.parasitics != nullptr) {
    const pex::ParasiticModel& pm = *options.parasitics;
    const double w_in = params.wn * params.mn + params.wp * params.mp;
    ckt.add<Capacitor>("cpex_in", in, kGround,
                       pm.net_cap(w_in, pex::ParasiticModel::net_key(
                                              "tia", "in")));
    ckt.add<Capacitor>("cpex_out", out, kGround,
                       pm.net_cap(w_in, pex::ParasiticModel::net_key(
                                              "tia", "out")));
  }
  return ckt;
}

util::Expected<TiaResult> simulate_tia(const TiaParams& params,
                                       const spice::TechCard& card,
                                       const TiaBuildOptions& options) {
  using namespace spice;
  Circuit ckt = build_tia(params, card, options);
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  (void)in;

  DcOptions dc_opt;
  dc_opt.initial_node_v.assign(ckt.num_nodes(), 0.0);
  dc_opt.initial_node_v[ckt.node("vdd")] = card.vdd;
  dc_opt.initial_node_v[ckt.node("in")] = card.vdd / 2.0;
  dc_opt.initial_node_v[ckt.node("out")] = card.vdd / 2.0;
  auto op = solve_op(ckt, dc_opt);
  if (!op.ok()) return op.error();

  // ---- AC: transimpedance magnitude and cutoff --------------------------
  AcOptions ac_opt;
  ac_opt.f_start = 1e5;
  ac_opt.f_stop = 1e11;
  ac_opt.points_per_decade = 10;
  auto sweep = ac_sweep(ckt, *op, out, kGround, ac_opt);
  if (!sweep.ok()) return sweep.error();
  const AcMeasurements acm = measure_ac(*sweep);

  TiaResult result;
  result.cutoff_freq = acm.f3db_found ? acm.f3db : ac_opt.f_stop;
  const double z_dc = std::max(acm.dc_gain, 1.0);  // Ohms (1 A AC stimulus)

  // ---- Noise: output-referred, then referred to the input ----------------
  NoiseOptions n_opt;
  n_opt.f_start = 1e3;
  n_opt.f_stop = 1e10;
  n_opt.points_per_decade = 4;
  auto noise = noise_sweep(ckt, *op, out, kGround, n_opt);
  if (!noise.ok()) return noise.error();
  // Input-referred current noise times the feedback resistance gives the
  // paper's Vrms-equivalent input noise figure.
  result.input_noise = noise->total_output_vrms() *
                       params.feedback_resistance() / z_dc;

  // ---- Transient: step-response settling ---------------------------------
  // Window scaled from the small-signal bandwidth so slow and fast designs
  // are both resolved with ~0.25% time granularity.
  const double f_bw = std::clamp(result.cutoff_freq, 1e7, 1e11);
  const double t_window = std::clamp(10.0 / f_bw, 2e-10, 3e-8);
  const double t_edge = 0.1 * t_window;

  // Same netlist with a stepped input source (devices are immutable, so the
  // transient stimulus needs its own build). Node ordering matches `ckt`,
  // which lets the converged OP seed the transient directly.
  Circuit step_ckt;
  {
    using namespace spice;
    const NodeId vdd2 = step_ckt.add_node("vdd");
    const NodeId in2 = step_ckt.add_node("in");
    const NodeId out2 = step_ckt.add_node("out");
    step_ckt.add<VoltageSource>("vsupply", vdd2, kGround,
                                Waveform::constant(card.vdd));
    step_ckt.add<CurrentSource>(
        "iin", kGround, in2,
        Waveform::step(0.0, kStepCurrent, t_edge, t_window / 2000.0));
    step_ckt.add<Capacitor>("cpd", in2, kGround, kPhotodiodeCap);
    const double l = kChannelLengthFactor * card.l_min;
    step_ckt.add<Mosfet>("mn", out2, in2, kGround, kGround, MosType::Nmos,
                         MosGeom{params.wn, l, params.mn}, card);
    step_ckt.add<Mosfet>("mp", out2, in2, vdd2, vdd2, MosType::Pmos,
                         MosGeom{params.wp, l, params.mp}, card);
    step_ckt.add<Resistor>("rf", in2, out2, params.feedback_resistance());
    step_ckt.add<Capacitor>("cl", out2, kGround, kLoadCap);
    if (options.parasitics != nullptr) {
      const pex::ParasiticModel& pm = *options.parasitics;
      const double w_in = params.wn * params.mn + params.wp * params.mp;
      step_ckt.add<Capacitor>(
          "cpex_in", in2, kGround,
          pm.net_cap(w_in, pex::ParasiticModel::net_key("tia", "in")));
      step_ckt.add<Capacitor>(
          "cpex_out", out2, kGround,
          pm.net_cap(w_in, pex::ParasiticModel::net_key("tia", "out")));
    }
  }

  TranOptions tr_opt;
  tr_opt.t_stop = t_window;
  tr_opt.dt = t_window / 400.0;
  auto tran = transient(step_ckt, *op, {step_ckt.node("out")}, tr_opt);
  if (!tran.ok()) return tran.error();
  const double settle_abs =
      settling_time(tran->time, tran->waveforms[0], 0.02);
  result.settling_time = std::max(settle_abs - t_edge, tr_opt.dt);

  result.supply_current = -op->branch_i[0];
  return result;
}

TiaParams tia_params_from_grid(const std::vector<ParamDef>& defs,
                               const ParamVector& idx) {
  TiaParams p;
  p.wn = defs[0].value(idx[0]) * 1e-6;
  p.mn = static_cast<int>(defs[1].value(idx[1]));
  p.wp = defs[2].value(idx[2]) * 1e-6;
  p.mp = static_cast<int>(defs[3].value(idx[3]));
  p.n_series = static_cast<int>(defs[4].value(idx[4]));
  p.n_parallel = static_cast<int>(defs[5].value(idx[5]));
  return p;
}

}  // namespace autockt::circuits
