#pragma once
// Two-stage Miller-compensated operational amplifier (paper Fig. 6) in the
// ptm45-like planar card.
//
// Stage 1: NMOS differential pair (M1/M2) with PMOS mirror load (M3/M4) and
// NMOS tail source (M5). Stage 2: PMOS common-source (M6) with NMOS current
// sink (M7). Bias: NMOS diode (M8) fed from a supply resistor; M5/M7 mirror
// it. Miller capacitor Cc couples the stages; fixed load capacitance.
//
// Paper action space: every transistor width in [1, 100, 1] * 0.5 um and
// Cc in [0.1, 10.0, 0.1] pF — 10^14 combinations with the six independent
// widths (pairs share a width). Specs: gain, UGBW, phase margin >= 60 deg,
// and bias current (minimized power proxy).
//
// Open-loop biasing uses the standard simulation servo: a huge RC feedback
// (1 GOhm / 10 uF) from output to the inverting input centers the DC
// operating point while leaving the AC response open-loop above ~1 Hz —
// exactly the practice an analog designer uses in Spectre.

#include "circuits/sizing_problem.hpp"
#include "pex/parasitics.hpp"
#include "spice/circuit.hpp"
#include "spice/workspace.hpp"
#include "util/expected.hpp"

namespace autockt::circuits {

struct TwoStageParams {
  double w12 = 10e-6;  // input pair width (m)
  double w34 = 10e-6;  // mirror load width
  double w5 = 10e-6;   // tail width
  double w6 = 20e-6;   // second-stage PMOS width
  double w7 = 10e-6;   // output sink width
  double w8 = 5e-6;    // bias diode width
  double cc = 2e-12;   // Miller compensation (F)
};

struct OpampResult {
  double gain = 0.0;              // V/V
  double ugbw = 0.0;              // Hz
  double phase_margin = 0.0;      // degrees
  double bias_current = 0.0;      // A (total supply draw)
  bool ugbw_found = false;
};

struct OpampBuildOptions {
  const pex::ParasiticModel* parasitics = nullptr;
  /// Sparse reuses the per-thread topology workspace (pattern + symbolic
  /// factorization cached across evaluations); Dense is the legacy
  /// reference kernel for parity tests and benchmarks.
  spice::SimKernel kernel = spice::SimKernel::Sparse;
  /// Warm-start slot threaded from the eval layer: read as the Newton
  /// stage-0 guess when valid, refreshed with the converged operating
  /// point on success.
  eval::OpHint* hint = nullptr;
};

spice::Circuit build_two_stage(const TwoStageParams& params,
                               const spice::TechCard& card,
                               const OpampBuildOptions& options = {});

util::Expected<OpampResult> simulate_two_stage(
    const TwoStageParams& params, const spice::TechCard& card,
    const OpampBuildOptions& options = {});

/// Batched characterization: K design points of the same topology run as
/// lanes of the batched kernel (lockstep DC Newton + batched AC sweep).
/// Per-lane results are identical to simulate_two_stage(). `hints` may be
/// empty (no warm starts) or hold one (possibly null) hint per design;
/// `options.hint` is ignored. The Dense kernel falls back to a scalar loop.
std::vector<util::Expected<OpampResult>> simulate_two_stage_batch(
    const std::vector<TwoStageParams>& params, const spice::TechCard& card,
    const OpampBuildOptions& options = {},
    const std::vector<eval::OpHint*>& hints = {});

TwoStageParams two_stage_params_from_grid(const std::vector<ParamDef>& defs,
                                          const ParamVector& idx);

}  // namespace autockt::circuits
