#pragma once
// Deck-defined sizing problems: compile a SPICE deck carrying .param/.spec/
// .measure sizing declarations (spice/netlist_parser.hpp) into a full
// SizingProblem — ParamDefs from the .param grids, SpecDefs from the .spec
// declarations, and a measurement pipeline that instantiates the deck at
// each visited design point and runs the requested analyses through the
// sparse SimWorkspace kernel with SimHint warm starts, behind the standard
// evaluation-backend stack from ProblemOptions.
//
// This is what turns scenario diversity from a code change into a file
// drop: any .cir deck with sizing declarations trains through the exact
// train_agent/deploy_agent pipeline the hand-written factories use.

#include <memory>
#include <string>

#include "circuits/problems.hpp"
#include "circuits/sizing_problem.hpp"
#include "spice/netlist_parser.hpp"
#include "util/expected.hpp"

namespace autockt::circuits {

/// Compile a parsed deck into a sizing problem. `name` keys the per-thread
/// simulation-workspace registry and names the problem; errors describe the
/// missing/invalid sizing declaration.
util::Expected<SizingProblem> make_netlist_problem(
    const spice::NetlistDeck& deck, const std::string& name,
    const ProblemOptions& options = {});

/// Parse + compile deck text in one step.
util::Expected<SizingProblem> make_netlist_problem_from_text(
    const std::string& deck_text, const std::string& name,
    const ProblemOptions& options = {});

/// Load a deck file; the problem is named after the file stem.
util::Expected<SizingProblem> make_netlist_problem_from_file(
    const std::string& path, const ProblemOptions& options = {});

/// Read and parse a deck file; parse errors are prefixed with the path.
/// Shared by make_netlist_problem_from_file and CircuitRegistry.
util::Expected<spice::NetlistDeck> load_deck(const std::string& path);

/// Scenario name for a deck path: the file stem ("a/b/five_t_ota.cir" ->
/// "five_t_ota").
std::string deck_scenario_name(const std::string& path);

/// Grid ParamDefs derived from a deck's .param declarations. Linear grids
/// carry physical values (start/step/end); log grids expose their integer
/// index space (0..steps-1) and the deck maps index -> physical value inside
/// the evaluator. Exposed for the dialect round-trip tests.
std::vector<ParamDef> netlist_param_defs(const spice::NetlistDeck& deck);

}  // namespace autockt::circuits
