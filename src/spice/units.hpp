#pragma once
// Physical constants and unit helpers used across the simulator.

namespace autockt::spice {

inline constexpr double kBoltzmann = 1.380649e-23;   // J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kRoomTempK = 300.0;          // K
inline constexpr double kPi = 3.141592653589793;

/// Thermal voltage kT/q at temperature `temp_k`.
inline double thermal_voltage(double temp_k) {
  return kBoltzmann * temp_k / kElectronCharge;
}

// Readability multipliers for netlist construction.
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

}  // namespace autockt::spice
