#pragma once
// Netlist container: named nodes, owned devices, branch-unknown bookkeeping,
// and whole-circuit stamping used by every analysis.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/device.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace autockt::spice {

/// Converged operating point: node voltages (indexed by NodeId, [0] is
/// ground) and branch currents (indexed by branch number).
struct OpPoint {
  std::vector<double> node_v;
  std::vector<double> branch_i;

  double voltage(NodeId n) const { return node_v[n]; }
};

class Circuit {
 public:
  Circuit() { node_names_.push_back("0"); }

  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;

  /// Create a named node; names must be unique. Returns its id.
  NodeId add_node(const std::string& name);

  /// Look up an existing node id by name (throws on unknown name).
  NodeId node(const std::string& name) const;

  bool has_node(const std::string& name) const {
    return node_ids_.count(name) > 0;
  }

  /// Name of a node id ("0" for ground); ids come from add_node/node.
  const std::string& node_name(NodeId n) const { return node_names_[n]; }

  std::size_t num_nodes() const { return node_names_.size(); }  // incl. ground
  std::size_t num_branches() const { return num_branches_; }
  std::size_t num_unknowns() const {
    return (num_nodes() - 1) + num_branches();
  }

  /// Construct and register a device. Returns a non-owning pointer.
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = dev.get();
    raw->set_first_branch(num_branches_);
    num_branches_ += raw->branch_count();
    devices_.push_back(std::move(dev));
    return raw;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Find a device by name; nullptr if absent.
  const Device* find(const std::string& name) const;

  // ---- whole-circuit stamping ------------------------------------------
  void stamp_real(RealStamp& ctx) const;
  void stamp_complex(ComplexStamp& ctx) const;
  /// Pattern-discovery passes: declare every position the stamps above may
  /// touch (see Device::declare_real_pattern).
  void declare_real_pattern(RealStamp& ctx) const;
  void declare_complex_pattern(ComplexStamp& ctx) const;
  std::vector<CapElement> collect_caps() const;
  std::vector<NoiseSource> collect_noise(const std::vector<double>& op_voltages,
                                         double freq, double temp_k) const;
  /// Allocation-free variant for per-frequency sweeps: clears and refills.
  void collect_noise(const std::vector<double>& op_voltages, double freq,
                     double temp_k, std::vector<NoiseSource>& out) const;

  /// Split a raw MNA unknown vector into an OpPoint.
  OpPoint unpack(const std::vector<double>& x) const;

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::size_t num_branches_ = 0;
};

}  // namespace autockt::spice
