#include "spice/characterize.hpp"

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/workspace.hpp"

namespace autockt::spice {

namespace {

/// Terminal-voltage vector for a standalone device: nodes 1=d, 2=g, 3=s.
CurvePoint eval_device(const Mosfet& device, double vd, double vg,
                       double vs, double x) {
  const auto ss = device.linearize({0.0, vd, vg, vs});
  CurvePoint p;
  p.x = x;
  p.id = std::fabs(ss.id);
  p.gm = ss.gm;
  p.gds = ss.gds;
  return p;
}

}  // namespace

std::vector<CurvePoint> id_vgs_curve(const TechCard& card, MosType type,
                                     const MosGeom& geom, double vds,
                                     const SweepSpec& sweep) {
  const Mosfet device("dut", 1, 2, 3, 0, type, geom, card);
  std::vector<CurvePoint> curve;
  curve.reserve(static_cast<std::size_t>(sweep.points));
  for (int i = 0; i < sweep.points; ++i) {
    const double v = sweep.start + (sweep.stop - sweep.start) * i /
                                       std::max(sweep.points - 1, 1);
    if (type == MosType::Nmos) {
      curve.push_back(eval_device(device, vds, v, 0.0, v));
    } else {
      // PMOS mirrored: source at the card supply, |Vgs| and |Vds| positive.
      curve.push_back(eval_device(device, card.vdd - vds, card.vdd - v,
                                  card.vdd, v));
    }
  }
  return curve;
}

std::vector<CurvePoint> id_vds_curve(const TechCard& card, MosType type,
                                     const MosGeom& geom, double vgs,
                                     const SweepSpec& sweep) {
  const Mosfet device("dut", 1, 2, 3, 0, type, geom, card);
  std::vector<CurvePoint> curve;
  curve.reserve(static_cast<std::size_t>(sweep.points));
  for (int i = 0; i < sweep.points; ++i) {
    const double v = sweep.start + (sweep.stop - sweep.start) * i /
                                       std::max(sweep.points - 1, 1);
    if (type == MosType::Nmos) {
      curve.push_back(eval_device(device, v, vgs, 0.0, v));
    } else {
      curve.push_back(eval_device(device, card.vdd - v, card.vdd - vgs,
                                  card.vdd, v));
    }
  }
  return curve;
}

double inverter_trip_voltage(const TechCard& card, double wn, double wp,
                             double length) {
  // Bisection on f(vin) = vout(vin) - vin, which is monotone decreasing for
  // an inverter.
  auto vout_of = [&](double vin) -> double {
    Circuit ckt;
    const NodeId vdd = ckt.add_node("vdd");
    const NodeId in = ckt.add_node("in");
    const NodeId out = ckt.add_node("out");
    ckt.add<VoltageSource>("vs", vdd, kGround, Waveform::constant(card.vdd));
    ckt.add<VoltageSource>("vi", in, kGround, Waveform::constant(vin));
    ckt.add<Mosfet>("mn", out, in, kGround, kGround, MosType::Nmos,
                    MosGeom{wn, length, 1}, card);
    ckt.add<Mosfet>("mp", out, in, vdd, vdd, MosType::Pmos,
                    MosGeom{wp, length, 1}, card);
    DcOptions opt;
    opt.initial_node_v = {0.0, card.vdd, vin, card.vdd / 2.0};
    // Every bisection step rebuilds the same topology; the registry
    // workspace keeps one symbolic factorization for the whole search.
    opt.workspace = &workspace_for(ckt, "characterize_inverter");
    auto op = solve_op(ckt, opt);
    return op.ok() ? op->voltage(out) : card.vdd / 2.0;
  };

  double lo = 0.0, hi = card.vdd;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (vout_of(mid) > mid) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace autockt::spice
