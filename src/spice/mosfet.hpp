#pragma once
// Smoothed square-law MOSFET model with channel-length modulation,
// subthreshold continuation, drain/source swap symmetry and geometry-derived
// capacitances.
//
// This is the stand-in for the paper's BSIM 45 nm predictive models and the
// TSMC 16 nm FinFET PDK (see docs/DESIGN.md, substitution table). The model is
// C-infinity smooth in all terminal voltages, which keeps Newton iterations
// well-behaved across the whole sizing grid:
//
//   Vov_eff  = n*vT * softplus((Vgs - Vth)/(n*vT))      (EKV-style inversion)
//   Vds_eff  = Vov_eff * tanh(Vds / Vov_eff)            (smooth triode/sat)
//   Id       = u*Cox*(W/L) * (Vov_eff*Vds_eff - Vds_eff^2/2) * (1 + lambda*Vds)
//
// Noise: thermal 4kT*gamma*gm plus 1/f flicker Kf*Id/(Cox*W*L*f).

#include <string>
#include <vector>

#include "spice/device.hpp"

namespace autockt::spice {

enum class MosType { Nmos, Pmos };

/// Operating region classification (diagnostic; the model itself is smooth).
enum class MosRegion { Subthreshold, Triode, Saturation };

/// Process/technology card. One card instance describes one PVT condition;
/// the PEX engine derives corner cards by perturbing a nominal card.
struct TechCard {
  std::string name;
  double vdd = 1.2;          // nominal supply (V)
  double temp_k = 300.0;     // simulation temperature (K)

  double u_cox_n = 3.0e-4;   // NMOS transconductance factor uCox (A/V^2)
  double u_cox_p = 1.2e-4;   // PMOS uCox (A/V^2)
  double vth_n = 0.35;       // NMOS threshold (V)
  double vth_p = 0.35;       // PMOS threshold magnitude (V)
  double lambda_n = 0.15;    // CLM at L = l_min (1/V); scales as l_min/L
  double lambda_p = 0.20;
  double l_min = 45e-9;      // minimum drawn length (m)

  double cox_area = 1.0e-2;  // gate oxide cap (F/m^2)
  double cov_w = 3.0e-10;    // overlap cap per width (F/m)
  double cj_w = 5.0e-10;     // junction cap per width (F/m)

  double subthreshold_n = 1.5;  // slope factor
  double gamma_noise = 1.0;     // thermal noise excess factor
  double kf = 1.0e-26;          // flicker coefficient (see model above)

  bool quantized_width = false;  // FinFET: widths come in fin quanta
  double fin_width = 0.0;        // electrical width per fin (m)

  /// 45 nm planar predictive-technology-like card (paper's PTM 45 nm).
  static TechCard ptm45();
  /// 16 nm FinFET-like card (paper's TSMC 16 nm FF).
  static TechCard finfet16();
};

/// Drawn geometry of one device.
struct MosGeom {
  double width = 1e-6;   // electrical width per finger (m)
  double length = 90e-9; // channel length (m)
  int mult = 1;          // parallel fingers

  double total_width() const { return width * static_cast<double>(mult); }
};

/// Small-signal linearization at a bias point.
struct MosSmallSignal {
  double id = 0.0;     // drain current, sign per device polarity (A)
  double gm = 0.0;     // transconductance magnitude (S)
  double gds = 0.0;    // output conductance magnitude (S)
  double vov_eff = 0.0;
  MosRegion region = MosRegion::Subthreshold;
};

class Mosfet : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         MosType type, MosGeom geom, const TechCard& card);

  MosType type() const { return type_; }
  const MosGeom& geom() const { return geom_; }

  void stamp_real(RealStamp& ctx) const override;
  void stamp_complex(ComplexStamp& ctx) const override;
  void declare_real_pattern(RealStamp& ctx) const override;
  void declare_complex_pattern(ComplexStamp& ctx) const override;
  void collect_caps(std::vector<CapElement>& out) const override;
  void collect_noise(const std::vector<double>& op_voltages, double freq,
                     double temp_k,
                     std::vector<NoiseSource>& out) const override;

  /// Evaluate the model at explicit terminal voltages (indexed by node).
  MosSmallSignal linearize(const std::vector<double>& voltages) const;

  /// The channel conducts drain<->source; gate and bulk draw no DC current.
  DeviceTopology topology() const override {
    return {DeviceTopology::Kind::Mosfet, {d_, g_, s_, b_}, {{d_, s_}}};
  }

  double cgs() const { return cgs_; }
  double cgd() const { return cgd_; }
  double cdb() const { return cdb_; }
  double csb() const { return csb_; }

 private:
  // Model evaluation with drain/source symmetry handling. Outputs the
  // injected current J at the (possibly swapped) drain node and its
  // derivatives w.r.t. the actual node voltages.
  struct Eval {
    NodeId d_eff, s_eff;   // after swap
    double j = 0.0;        // current leaving d_eff into the device
    double gds = 0.0;      // dJ/dv(d_eff)
    double gm = 0.0;       // dJ/dv(g)
    double id_mag = 0.0;   // |channel current|
    double vov_eff = 0.0;
    double vds = 0.0;      // swapped, polarity-corrected (>= 0)
    double vgs = 0.0;
  };
  Eval evaluate(const std::vector<double>& voltages) const;

  NodeId d_, g_, s_, b_;
  MosType type_;
  MosGeom geom_;
  // Card-derived constants captured at construction (cards are per-corner
  // value types; see docs/DESIGN.md).
  double u_cox_, vth_, lambda_eff_, nvt_, gamma_noise_, kf_, cox_area_;
  double temp_k_;
  double cgs_, cgd_, cdb_, csb_;
};

}  // namespace autockt::spice
