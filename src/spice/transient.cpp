#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "spice/real_solver.hpp"

namespace autockt::spice {

namespace {

/// Trapezoidal companion state for one capacitive element.
struct CapState {
  CapElement elem;
  double v = 0.0;  // voltage across (n1 - n2) at the previous accepted step
  double i = 0.0;  // current through at the previous accepted step
};

double across(const std::vector<double>& node_v, const CapElement& e) {
  const double v1 = e.n1 == kGround ? 0.0 : node_v[e.n1];
  const double v2 = e.n2 == kGround ? 0.0 : node_v[e.n2];
  return v1 - v2;
}

template <typename Driver>
util::Expected<TranResult> transient_impl(const Circuit& circuit,
                                          Driver& driver,
                                          const OpPoint& initial,
                                          const std::vector<NodeId>& probes,
                                          const TranOptions& options) {
  const std::size_t n_unknowns = circuit.num_unknowns();
  const std::size_t n_nodes = circuit.num_nodes();
  const double h = options.dt;

  std::vector<CapState> caps;
  for (const CapElement& e : circuit.collect_caps()) {
    CapState s;
    s.elem = e;
    s.v = across(initial.node_v, e);
    s.i = 0.0;  // steady state: no capacitor current
    caps.push_back(s);
  }

  // Trapezoidal companions: i_new = geq*v_new - (geq*v_old + i_old). The
  // companion conductance slots are part of the workspace's frozen pattern
  // (declared weak), so the sparse kernel re-uses its symbolic
  // factorization across every step and iteration.
  auto companions = [&](RealStamp& ctx) {
    for (const CapState& s : caps) {
      const double geq = 2.0 * s.elem.capacitance / h;
      const double ihist = geq * s.v + s.i;
      ctx.conductance(s.elem.n1, s.elem.n2, geq);
      ctx.inject(s.elem.n1, ihist);
      ctx.inject(s.elem.n2, -ihist);
    }
  };

  // Full unknown vector, warm-started from the operating point.
  std::vector<double> x(n_unknowns, 0.0);
  for (NodeId n = 1; n < n_nodes; ++n) x[n - 1] = initial.node_v[n];
  for (std::size_t b = 0; b < circuit.num_branches(); ++b) {
    x[(n_nodes - 1) + b] = initial.branch_i[b];
  }

  TranResult result;
  const auto steps = static_cast<std::size_t>(std::ceil(options.t_stop / h));
  result.time.reserve(steps + 1);
  result.waveforms.assign(probes.size(), {});

  std::vector<double> node_v(n_nodes, 0.0);
  std::vector<double> x_new;

  auto record = [&](double t) {
    result.time.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      const NodeId n = probes[p];
      result.waveforms[p].push_back(n == kGround ? 0.0 : x[n - 1]);
    }
  };
  record(0.0);

  for (std::size_t k = 1; k <= steps; ++k) {
    const double t = static_cast<double>(k) * h;
    bool converged = false;
    detail::StampKnobs knobs;
    knobs.time = t;
    knobs.transient = true;

    for (int iter = 0; iter < options.max_newton; ++iter) {
      kernel_counters::add_newton_iterations(1);
      for (NodeId n = 1; n < n_nodes; ++n) node_v[n] = x[n - 1];
      if (!driver.solve(circuit, node_v, knobs, companions, x_new)) {
        return util::Error{"transient matrix singular at t=" +
                               std::to_string(t),
                           3};
      }

      double worst = 0.0;
      for (std::size_t i = 0; i + 1 < n_nodes; ++i) {
        const double dv = std::fabs(x_new[i] - x[i]);
        const double tol =
            options.v_abstol + options.v_reltol * std::fabs(x_new[i]);
        worst = std::max(worst, dv - tol);
      }
      if (worst <= 0.0) {
        x = x_new;
        converged = true;
        break;
      }
      for (std::size_t i = 0; i < n_unknowns; ++i) {
        double step = x_new[i] - x[i];
        if (i + 1 < n_nodes) {
          step = std::clamp(step, -options.max_step, options.max_step);
        }
        x[i] += step;
      }
    }
    if (!converged) {
      return util::Error{"transient Newton failed at t=" + std::to_string(t),
                         3};
    }

    // Accept the step: roll companion state forward.
    for (NodeId n = 1; n < n_nodes; ++n) node_v[n] = x[n - 1];
    for (CapState& s : caps) {
      const double geq = 2.0 * s.elem.capacitance / h;
      const double v_new = across(node_v, s.elem);
      const double i_new = geq * v_new - (geq * s.v + s.i);
      s.v = v_new;
      s.i = i_new;
    }
    record(t);
  }
  return result;
}

}  // namespace

util::Expected<TranResult> transient(const Circuit& circuit,
                                     const OpPoint& initial,
                                     const std::vector<NodeId>& probes,
                                     const TranOptions& options) {
  if (options.kernel == SimKernel::Dense) {
    detail::DenseRealDriver driver(circuit.num_unknowns());
    return transient_impl(circuit, driver, initial, probes, options);
  }
  if (options.workspace != nullptr) {
    if (!options.workspace->compatible(circuit) ||
        !options.workspace->has_real()) {
      return util::Error{"transient: workspace does not match the circuit",
                         3};
    }
    detail::SparseRealDriver driver{*options.workspace};
    return transient_impl(circuit, driver, initial, probes, options);
  }
  SimWorkspace scratch(circuit, SimWorkspace::Sides::Real);
  detail::SparseRealDriver driver{scratch};
  return transient_impl(circuit, driver, initial, probes, options);
}

}  // namespace autockt::spice
