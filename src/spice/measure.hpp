#pragma once
// Specification extraction from analysis results: the quantities the paper's
// environments observe (gain, unity-gain bandwidth, phase margin, -3 dB
// cutoff, settling time).

#include <cstddef>
#include <vector>

#include "spice/ac.hpp"
#include "spice/transient.hpp"

namespace autockt::spice {

struct AcMeasurements {
  double dc_gain = 0.0;           // |H| at the lowest swept frequency (V/V)
  double peak_gain = 0.0;         // max |H| over the sweep (== dc_gain when
                                  // the response is monotone from DC)
  double f3db = 0.0;              // -3 dB cutoff (Hz); 0 if not found
  double ugbw = 0.0;              // unity-gain frequency (Hz); 0 if |H| < 1
  double phase_margin_deg = 0.0;  // 180 + unwrapped relative phase at UGBW
  bool ugbw_found = false;
  bool f3db_found = false;
};

/// Extracts gain/bandwidth/phase metrics from a log-spaced AC sweep. Phase
/// is unwrapped and referenced to the lowest-frequency point, so inverting
/// and non-inverting amplifiers measure the same phase margin. The -3 dB
/// cutoff is referenced to the PEAK magnitude and searched from the peak
/// onward, so peaked (|H| rising above DC) responses report the true
/// bandwidth edge instead of a level derived from the smaller DC gain.
AcMeasurements measure_ac(const std::vector<AcPoint>& sweep);

/// Interpolated frequency where |H| crosses `level` between samples i and
/// i+1 (log-log interpolation; linear-in-magnitude fallback when the segment
/// is flat in log space, geometric midpoint when it is exactly flat).
/// Exposed for regression tests of the degenerate-segment handling.
double ac_crossing_freq(const std::vector<AcPoint>& sweep, std::size_t i,
                        double level);

/// Settling measurement with an explicit trust flag.
struct SettlingResult {
  /// Instant from which the waveform stays within the band (same value the
  /// legacy settling_time() scalar reported).
  double time = 0.0;
  /// True only when the window demonstrably captured settling: the waveform
  /// enters the +/- tol band around its final sample and dwells there for a
  /// meaningful fraction of the window. False when the waveform is still
  /// moving at (or near) the window end — the "final value" is then just
  /// wherever the transient was truncated, and `time` is a lower bound, not
  /// a measurement.
  bool settled = false;
};

/// Time for waveform to enter and stay within +/- tol * |step amplitude| of
/// its final value. `min_dwell_fraction` is the fraction of the window the
/// waveform must spend inside the band after the settling instant for the
/// measurement to count as settled.
SettlingResult measure_settling(const std::vector<double>& time,
                                const std::vector<double>& waveform,
                                double tol = 0.02,
                                double min_dwell_fraction = 0.05);

/// Legacy scalar form: measure_settling().time. Cannot report whether the
/// waveform actually settled — prefer measure_settling() anywhere the
/// distinction feeds a reward or a specification.
double settling_time(const std::vector<double>& time,
                     const std::vector<double>& waveform, double tol = 0.02);

}  // namespace autockt::spice
