#pragma once
// Specification extraction from analysis results: the quantities the paper's
// environments observe (gain, unity-gain bandwidth, phase margin, -3 dB
// cutoff, settling time).

#include <vector>

#include "spice/ac.hpp"
#include "spice/transient.hpp"

namespace autockt::spice {

struct AcMeasurements {
  double dc_gain = 0.0;           // |H| at the lowest swept frequency (V/V)
  double f3db = 0.0;              // -3 dB cutoff (Hz); 0 if not found
  double ugbw = 0.0;              // unity-gain frequency (Hz); 0 if |H| < 1
  double phase_margin_deg = 0.0;  // 180 + unwrapped relative phase at UGBW
  bool ugbw_found = false;
  bool f3db_found = false;
};

/// Extracts gain/bandwidth/phase metrics from a log-spaced AC sweep. Phase
/// is unwrapped and referenced to the lowest-frequency point, so inverting
/// and non-inverting amplifiers measure the same phase margin.
AcMeasurements measure_ac(const std::vector<AcPoint>& sweep);

/// Time for waveform to enter and stay within +/- tol * |step amplitude|
/// of its final value. Returns the full window length if it never settles.
double settling_time(const std::vector<double>& time,
                     const std::vector<double>& waveform, double tol = 0.02);

}  // namespace autockt::spice
