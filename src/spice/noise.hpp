#pragma once
// Small-signal noise analysis via the adjoint (interreciprocal) method:
// one transposed solve per frequency yields the transfer from every internal
// noise current source to the probe, so cost is independent of the number of
// noise sources.

#include <vector>

#include "spice/circuit.hpp"
#include "spice/workspace.hpp"
#include "util/expected.hpp"

namespace autockt::spice {

struct NoiseOptions {
  double f_start = 1e3;
  double f_stop = 1e10;
  int points_per_decade = 5;
  SimKernel kernel = SimKernel::Sparse;
  /// Reusable workspace (sparse kernel); temporary per call when null.
  SimWorkspace* workspace = nullptr;
};

struct NoiseResult {
  std::vector<double> freq;      // Hz
  std::vector<double> out_psd;   // V^2/Hz at the probe
  double total_output_v2 = 0.0;  // integrated output noise power (V^2)

  double total_output_vrms() const;
};

/// Output-referred noise at probe_p - probe_m over the sweep band.
util::Expected<NoiseResult> noise_sweep(const Circuit& circuit,
                                        const OpPoint& op, NodeId probe_p,
                                        NodeId probe_m,
                                        const NoiseOptions& options = {});

/// Batched noise sweeps over K circuits sharing one topology: the adjoint
/// stimulus is common to all lanes, so every frequency point is one batched
/// refactorization + one batched transposed solve. Per-lane results are
/// identical to noise_sweep(). `options.kernel`/`workspace` are ignored
/// (the shared sparse `ws` is used).
std::vector<util::Expected<NoiseResult>> noise_sweep_batch(
    const std::vector<const Circuit*>& circuits,
    const std::vector<const OpPoint*>& ops, NodeId probe_p, NodeId probe_m,
    const NoiseOptions& options, SimWorkspace& ws);

}  // namespace autockt::spice
