#include "spice/devices.hpp"

#include "spice/units.hpp"

namespace autockt::spice {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId n1, NodeId n2, double ohms)
    : Device(std::move(name)), n1_(n1), n2_(n2), ohms_(ohms) {}

void Resistor::stamp_real(RealStamp& ctx) const {
  ctx.conductance(n1_, n2_, 1.0 / ohms_);
}

void Resistor::stamp_complex(ComplexStamp& ctx) const {
  ctx.conductance(n1_, n2_, 1.0 / ohms_);
}

void Resistor::collect_noise(const std::vector<double>& /*op_voltages*/,
                             double /*freq*/, double temp_k,
                             std::vector<NoiseSource>& out) const {
  // Johnson-Nyquist current noise: 4kT/R, white.
  out.push_back({n1_, n2_, 4.0 * kBoltzmann * temp_k / ohms_, name()});
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId n1, NodeId n2, double farads)
    : Device(std::move(name)), n1_(n1), n2_(n2), farads_(farads) {}

void Capacitor::stamp_real(RealStamp& /*ctx*/) const {
  // Open at DC. Transient companion stamps are handled by the engine via
  // collect_caps().
}

void Capacitor::stamp_complex(ComplexStamp& ctx) const {
  ctx.capacitance(n1_, n2_, farads_);
}

void Capacitor::collect_caps(std::vector<CapElement>& out) const {
  out.push_back({n1_, n2_, farads_});
}

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             Waveform wave, double ac_mag)
    : Device(std::move(name)),
      plus_(plus),
      minus_(minus),
      wave_(wave),
      ac_mag_(ac_mag) {}

void VoltageSource::stamp_real(RealStamp& ctx) const {
  const std::size_t br = ctx.row_of_branch(first_branch());
  if (plus_ != kGround) {
    ctx.add_a(ctx.row_of_node(plus_), br, 1.0);
    ctx.add_a(br, ctx.row_of_node(plus_), 1.0);
  }
  if (minus_ != kGround) {
    ctx.add_a(ctx.row_of_node(minus_), br, -1.0);
    ctx.add_a(br, ctx.row_of_node(minus_), -1.0);
  }
  ctx.add_rhs(br, ctx.source_scale *
                      (ctx.transient ? wave_.value(ctx.time) : wave_.dc()));
}

void VoltageSource::stamp_complex(ComplexStamp& ctx) const {
  const std::size_t br = ctx.row_of_branch(first_branch());
  if (plus_ != kGround) {
    ctx.add_g(ctx.row_of_node(plus_), br, 1.0);
    ctx.add_g(br, ctx.row_of_node(plus_), 1.0);
  }
  if (minus_ != kGround) {
    ctx.add_g(ctx.row_of_node(minus_), br, -1.0);
    ctx.add_g(br, ctx.row_of_node(minus_), -1.0);
  }
  ctx.add_rhs(br, std::complex<double>(ac_mag_, 0.0));
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId plus, NodeId minus,
                             Waveform wave, double ac_mag)
    : Device(std::move(name)),
      plus_(plus),
      minus_(minus),
      wave_(wave),
      ac_mag_(ac_mag) {}

void CurrentSource::stamp_real(RealStamp& ctx) const {
  const double i =
      ctx.source_scale * (ctx.transient ? wave_.value(ctx.time) : wave_.dc());
  ctx.inject(plus_, -i);
  ctx.inject(minus_, i);
}

void CurrentSource::stamp_complex(ComplexStamp& ctx) const {
  ctx.inject(plus_, std::complex<double>(-ac_mag_, 0.0));
  ctx.inject(minus_, std::complex<double>(ac_mag_, 0.0));
}

// --------------------------------------------------------------- BiasProbe

BiasProbe::BiasProbe(std::string name, NodeId bias_node, NodeId sense_node,
                     double target_v)
    : Device(std::move(name)),
      bias_node_(bias_node),
      sense_node_(sense_node),
      target_v_(target_v) {}

void BiasProbe::stamp_real(RealStamp& ctx) const {
  const std::size_t br = ctx.row_of_branch(first_branch());
  // Servo current enters the bias node...
  if (bias_node_ != kGround) ctx.add_a(ctx.row_of_node(bias_node_), br, 1.0);
  // ...and the constraint row demands the sensed node equal the target
  // (scaled along with the independent sources during source stepping).
  if (sense_node_ != kGround) ctx.add_a(br, ctx.row_of_node(sense_node_), 1.0);
  ctx.add_rhs(br, ctx.source_scale * target_v_);
}

void BiasProbe::stamp_complex(ComplexStamp& ctx) const {
  const std::size_t br = ctx.row_of_branch(first_branch());
  // Open-loop small-signal behaviour: hold the bias node at AC ground.
  if (bias_node_ != kGround) {
    ctx.add_g(ctx.row_of_node(bias_node_), br, 1.0);
    ctx.add_g(br, ctx.row_of_node(bias_node_), 1.0);
  }
}

// -------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, NodeId out_p, NodeId out_m, NodeId in_p,
           NodeId in_m, double gm)
    : Device(std::move(name)),
      out_p_(out_p),
      out_m_(out_m),
      in_p_(in_p),
      in_m_(in_m),
      gm_(gm) {}

void Vccs::stamp_real(RealStamp& ctx) const {
  // Current gm*v(in) leaves out_p and enters out_m.
  ctx.jacobian(out_p_, in_p_, gm_);
  ctx.jacobian(out_p_, in_m_, -gm_);
  ctx.jacobian(out_m_, in_p_, -gm_);
  ctx.jacobian(out_m_, in_m_, gm_);
}

void Vccs::stamp_complex(ComplexStamp& ctx) const {
  ctx.transconductance(out_p_, in_p_, gm_);
  ctx.transconductance(out_p_, in_m_, -gm_);
  ctx.transconductance(out_m_, in_p_, -gm_);
  ctx.transconductance(out_m_, in_m_, gm_);
}

}  // namespace autockt::spice
