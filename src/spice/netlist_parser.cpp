#include "spice/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/fmt.hpp"

namespace autockt::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// One source line split into whitespace-separated tokens plus the 1-based
/// column each token starts at (for located errors and diagnostics).
struct TokenizedLine {
  std::vector<std::string> tokens;
  std::vector<std::size_t> cols;
};

TokenizedLine tokenize(const std::string& line) {
  TokenizedLine out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '*') break;  // trailing comment
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.tokens.push_back(line.substr(start, i - start));
    out.cols.push_back(start + 1);
  }
  return out;
}

util::Error at_line(std::size_t line_no, const std::string& message) {
  util::Error e;
  e.message = "line " + std::to_string(line_no) + ": " + message;
  e.code = 10;
  e.line = line_no;
  return e;
}

/// Located variant: names line AND column in the message, and carries both
/// as structured fields (util::Error::line/col).
util::Error at(std::size_t line_no, std::size_t col,
               const std::string& message) {
  util::Error e;
  e.message = "line " + std::to_string(line_no) + ", col " +
              std::to_string(col) + ": " + message;
  e.code = 10;
  e.line = line_no;
  e.col = col;
  return e;
}

/// If a line carries a comment ('*' opening a token), record any
/// `* lint-disable <id>...` ids it names (uppercased, source order).
void scan_lint_disable(const std::string& line,
                       std::vector<std::string>& out) {
  std::size_t pos = std::string::npos;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '*' &&
        (i == 0 || std::isspace(static_cast<unsigned char>(line[i - 1])))) {
      pos = i;
      break;
    }
  }
  if (pos == std::string::npos) return;
  std::istringstream stream(line.substr(pos + 1));
  std::string word;
  if (!(stream >> word) || lower(word) != "lint-disable") return;
  while (stream >> word) {
    std::transform(word.begin(), word.end(), word.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    out.push_back(word);
  }
}

/// Resolve a node token, creating the node on first use.
NodeId node_of(Circuit& ckt, const std::string& name) {
  const std::string n = lower(name);
  if (n == "0" || n == "gnd") return kGround;
  if (!ckt.has_node(n)) return ckt.add_node(n);
  return ckt.node(n);
}

/// key=value option map from trailing tokens.
std::map<std::string, std::string> options_from(
    const std::vector<std::string>& tokens, std::size_t first) {
  std::map<std::string, std::string> out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      out[lower(tokens[i])] = "";
    } else {
      out[lower(tokens[i].substr(0, eq))] = tokens[i].substr(eq + 1);
    }
  }
  return out;
}

/// Source tail parser: "dc <v> [ac <mag>] [step v0 v1 t0 trise]".
struct SourceSpec {
  Waveform wave = Waveform::constant(0.0);
  double ac_mag = 0.0;
};

util::Expected<SourceSpec> parse_source_tail(
    const std::vector<std::string>& tokens,
    const std::vector<std::size_t>& cols, std::size_t i,
    std::size_t line_no) {
  SourceSpec spec;
  while (i < tokens.size()) {
    const std::string key = lower(tokens[i]);
    if (key == "dc") {
      if (i + 1 >= tokens.size()) {
        return at(line_no, cols[i], "dc needs a value");
      }
      auto v = parse_spice_number(tokens[i + 1]);
      if (!v.ok()) return at(line_no, cols[i + 1], v.error().message);
      spec.wave = Waveform::constant(*v);
      i += 2;
    } else if (key == "ac") {
      if (i + 1 >= tokens.size()) {
        return at(line_no, cols[i], "ac needs a value");
      }
      auto v = parse_spice_number(tokens[i + 1]);
      if (!v.ok()) return at(line_no, cols[i + 1], v.error().message);
      spec.ac_mag = *v;
      i += 2;
    } else if (key == "step") {
      if (i + 4 >= tokens.size()) {
        return at(line_no, cols[i], "step needs v0 v1 t0 trise");
      }
      double vals[4];
      for (int k = 0; k < 4; ++k) {
        const std::size_t j = i + 1 + static_cast<std::size_t>(k);
        auto v = parse_spice_number(tokens[j]);
        if (!v.ok()) return at(line_no, cols[j], v.error().message);
        vals[k] = *v;
      }
      spec.wave = Waveform::step(vals[0], vals[1], vals[2], vals[3]);
      i += 5;
    } else {
      // Bare number == dc value (SPICE shorthand "V1 a 0 1.2").
      auto v = parse_spice_number(tokens[i]);
      if (!v.ok()) {
        return at(line_no, cols[i], "unexpected token '" + tokens[i] + "'");
      }
      spec.wave = Waveform::constant(*v);
      ++i;
    }
  }
  return spec;
}

/// Map a sense keyword of a .spec declaration.
util::Expected<DeckSpec::Sense> parse_sense(const std::string& token,
                                            std::size_t line_no,
                                            std::size_t col) {
  const std::string s = lower(token);
  if (s == "geq") return DeckSpec::Sense::GreaterEq;
  if (s == "leq") return DeckSpec::Sense::LessEq;
  if (s == "min") return DeckSpec::Sense::Minimize;
  return at(line_no, col,
            "unknown spec sense '" + token + "' (want geq, leq or min)");
}

/// Map a measurement keyword of a .measure declaration.
util::Expected<DeckMeasure::Kind> parse_measure_kind(const std::string& token,
                                                     std::size_t line_no,
                                                     std::size_t col) {
  const std::string s = lower(token);
  if (s == "gain") return DeckMeasure::Kind::Gain;
  if (s == "f3db") return DeckMeasure::Kind::F3db;
  if (s == "ugbw") return DeckMeasure::Kind::Ugbw;
  if (s == "phase_margin") return DeckMeasure::Kind::PhaseMargin;
  if (s == "settling") return DeckMeasure::Kind::Settling;
  if (s == "noise") return DeckMeasure::Kind::Noise;
  if (s == "supply_current") return DeckMeasure::Kind::SupplyCurrent;
  return at(line_no, col,
            "unknown measure kind '" + token +
                "' (want gain, f3db, ugbw, phase_margin, "
                "settling, noise or supply_current)");
}

}  // namespace

std::vector<double> ParsedNetlist::initial_node_voltages() const {
  std::vector<double> out(circuit.num_nodes(), 0.0);
  for (const auto& [node, volts] : nodesets) {
    if (node != kGround && node < out.size()) out[node] = volts;
  }
  return out;
}

double DeckParam::value_at(int idx) const {
  if (steps <= 1) return lo;
  const double frac =
      static_cast<double>(idx) / static_cast<double>(steps - 1);
  if (log_scale) return lo * std::pow(hi / lo, frac);
  return lo + (hi - lo) * frac;
}

int NetlistDeck::param_index(const std::string& name) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

util::Expected<double> parse_spice_number(const std::string& token) {
  if (token.empty()) return util::Error{"empty number", 11};
  const std::string t = lower(token);
  char* end = nullptr;
  const double base = std::strtod(t.c_str(), &end);
  if (end == t.c_str()) {
    return util::Error{"bad number '" + token + "'", 11};
  }
  const std::string suffix(end);
  double scale = 1.0;
  if (suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "t") {
    scale = 1e12;
  } else if (suffix == "g") {
    scale = 1e9;
  } else if (suffix == "meg") {
    scale = 1e6;
  } else if (suffix == "k") {
    scale = 1e3;
  } else if (suffix == "m") {
    scale = 1e-3;
  } else if (suffix == "u") {
    scale = 1e-6;
  } else if (suffix == "n") {
    scale = 1e-9;
  } else if (suffix == "p") {
    scale = 1e-12;
  } else if (suffix == "f") {
    scale = 1e-15;
  } else {
    return util::Error{"unknown suffix '" + suffix + "' in '" + token + "'",
                       11};
  }
  return base * scale;
}

namespace {

/// Substitute every {param} reference in `token` with the value's %.17g
/// rendering (the engineering-suffix path then scales it exactly as it
/// would a literal, so "w={wp}u" behaves like "w=3.2u").
util::Expected<std::string> substitute_params(
    const std::string& token, const NetlistDeck& deck,
    const std::vector<double>& values, std::size_t line_no,
    std::size_t col) {
  std::string out = token;
  std::size_t open;
  while ((open = out.find('{')) != std::string::npos) {
    const std::size_t close = out.find('}', open);
    if (close == std::string::npos) {
      return at(line_no, col, "unterminated '{' in '" + token + "'");
    }
    const std::string name = lower(out.substr(open + 1, close - open - 1));
    const int p = deck.param_index(name);
    if (p < 0) {
      return at(line_no, col, "unknown design variable '{" + name +
                                  "}' in '" + token + "'");
    }
    out = out.substr(0, open) +
          util::format_g17(values[static_cast<std::size_t>(p)]) +
          out.substr(close + 1);
  }
  return out;
}

}  // namespace

util::Expected<ParsedNetlist> NetlistDeck::instantiate(
    const std::vector<double>& values) const {
  if (values.size() != params.size()) {
    return util::Error{"instantiate: " + std::to_string(values.size()) +
                           " values for " + std::to_string(params.size()) +
                           " design variables",
                       10};
  }
  ParsedNetlist out;
  out.title = title;
  TechCard default_card = TechCard::ptm45();

  std::vector<std::string> tokens;
  for (const RawLine& raw : lines) {
    const std::size_t line_no = raw.no;
    // 1-based column per token, padded with 0 ("unknown") for hand-built
    // RawLines that predate column tracking.
    std::vector<std::size_t> cols = raw.cols;
    cols.resize(raw.tokens.size(), 0);
    tokens.clear();
    tokens.reserve(raw.tokens.size());
    for (std::size_t i = 0; i < raw.tokens.size(); ++i) {
      auto sub = substitute_params(raw.tokens[i], *this, values, line_no,
                                   cols[i]);
      if (!sub.ok()) return sub.error();
      tokens.push_back(std::move(*sub));
    }
    const std::string head = lower(tokens[0]);
    // Located error for token i; falls back to line-only when the column is
    // unknown (hand-built RawLines).
    const auto err = [&](std::size_t i, const std::string& msg) {
      return i < cols.size() && cols[i] > 0 ? at(line_no, cols[i], msg)
                                            : at_line(line_no, msg);
    };

    // ---- directives ------------------------------------------------------
    if (head[0] == '.') {
      if (head == ".card") {
        if (tokens.size() < 2) return err(0, ".card needs a name");
        const std::string name = lower(tokens[1]);
        if (name == "ptm45") {
          default_card = TechCard::ptm45();
        } else if (name == "finfet16") {
          default_card = TechCard::finfet16();
        } else {
          return err(1, "unknown card '" + tokens[1] + "'");
        }
      } else if (head == ".nodeset") {
        if (tokens.size() < 3) {
          return err(0, ".nodeset needs node and voltage");
        }
        auto v = parse_spice_number(tokens[2]);
        if (!v.ok()) return err(2, v.error().message);
        out.nodesets.emplace_back(node_of(out.circuit, tokens[1]), *v);
      } else if (head == ".op") {
        out.want_op = true;
      } else if (head == ".ac") {
        if (tokens.size() < 4) {
          return err(0, ".ac needs probe f_start f_stop");
        }
        AcRequest req;
        req.probe = lower(tokens[1]);
        auto f0 = parse_spice_number(tokens[2]);
        auto f1 = parse_spice_number(tokens[3]);
        if (!f0.ok()) return err(2, f0.error().message);
        if (!f1.ok()) return err(3, f1.error().message);
        req.options.f_start = *f0;
        req.options.f_stop = *f1;
        if (tokens.size() > 4) {
          auto ppd = parse_spice_number(tokens[4]);
          if (!ppd.ok()) return err(4, ppd.error().message);
          req.options.points_per_decade = static_cast<int>(*ppd);
        }
        out.ac.push_back(std::move(req));
      } else if (head == ".tran") {
        if (tokens.size() < 4) {
          return err(0, ".tran needs probe t_stop dt");
        }
        TranRequest req;
        req.probe = lower(tokens[1]);
        auto ts = parse_spice_number(tokens[2]);
        auto dt = parse_spice_number(tokens[3]);
        if (!ts.ok()) return err(2, ts.error().message);
        if (!dt.ok()) return err(3, dt.error().message);
        req.options.t_stop = *ts;
        req.options.dt = *dt;
        out.tran.push_back(std::move(req));
      } else if (head == ".noise") {
        if (tokens.size() < 4) {
          return err(0, ".noise needs probe f_start f_stop");
        }
        NoiseRequest req;
        req.probe = lower(tokens[1]);
        auto f0 = parse_spice_number(tokens[2]);
        auto f1 = parse_spice_number(tokens[3]);
        if (!f0.ok()) return err(2, f0.error().message);
        if (!f1.ok()) return err(3, f1.error().message);
        req.options.f_start = *f0;
        req.options.f_stop = *f1;
        out.noise.push_back(std::move(req));
      } else {
        return err(0, "unknown directive '" + tokens[0] + "'");
      }
      continue;
    }

    // ---- elements --------------------------------------------------------
    const char kind = head[0];
    const std::string name = lower(tokens[0]);
    switch (kind) {
      case 'r': {
        if (tokens.size() < 4) {
          return err(0, "R needs 2 nodes + value");
        }
        auto v = parse_spice_number(tokens[3]);
        if (!v.ok()) return err(3, v.error().message);
        if (*v <= 0.0) return err(3, "resistance must be positive");
        out.circuit.add<Resistor>(name, node_of(out.circuit, tokens[1]),
                                  node_of(out.circuit, tokens[2]), *v);
        break;
      }
      case 'c': {
        if (tokens.size() < 4) {
          return err(0, "C needs 2 nodes + value");
        }
        auto v = parse_spice_number(tokens[3]);
        if (!v.ok()) return err(3, v.error().message);
        if (*v < 0.0) return err(3, "capacitance must be >= 0");
        out.circuit.add<Capacitor>(name, node_of(out.circuit, tokens[1]),
                                   node_of(out.circuit, tokens[2]), *v);
        break;
      }
      case 'v':
      case 'i': {
        if (tokens.size() < 3) return err(0, "source needs 2 nodes");
        auto spec = parse_source_tail(tokens, cols, 3, line_no);
        if (!spec.ok()) return spec.error();
        const NodeId np = node_of(out.circuit, tokens[1]);
        const NodeId nm = node_of(out.circuit, tokens[2]);
        if (kind == 'v') {
          out.circuit.add<VoltageSource>(name, np, nm, spec->wave,
                                         spec->ac_mag);
        } else {
          out.circuit.add<CurrentSource>(name, np, nm, spec->wave,
                                         spec->ac_mag);
        }
        break;
      }
      case 'g': {
        if (tokens.size() < 6) {
          return err(0, "G needs 4 nodes + transconductance");
        }
        auto gm = parse_spice_number(tokens[5]);
        if (!gm.ok()) return err(5, gm.error().message);
        out.circuit.add<Vccs>(name, node_of(out.circuit, tokens[1]),
                              node_of(out.circuit, tokens[2]),
                              node_of(out.circuit, tokens[3]),
                              node_of(out.circuit, tokens[4]), *gm);
        break;
      }
      case 'b': {
        if (tokens.size() < 4) {
          return err(0, "B needs bias node, sense node, target");
        }
        auto v = parse_spice_number(tokens[3]);
        if (!v.ok()) return err(3, v.error().message);
        out.circuit.add<BiasProbe>(name, node_of(out.circuit, tokens[1]),
                                   node_of(out.circuit, tokens[2]), *v);
        break;
      }
      case 'm': {
        if (tokens.size() < 6) {
          return err(0, "M needs d g s b + nmos|pmos [+ options]");
        }
        const std::string type = lower(tokens[5]);
        if (type != "nmos" && type != "pmos") {
          return err(5, "device type must be nmos or pmos");
        }
        const auto options = options_from(tokens, 6);
        // Token index of a key=value option, for located errors (0 = the
        // element name when the key is absent).
        const auto opt_index = [&](const std::string& key) -> std::size_t {
          for (std::size_t i = 6; i < tokens.size(); ++i) {
            if (lower(tokens[i]).rfind(key + "=", 0) == 0) return i;
          }
          return 0;
        };
        MosGeom geom;
        geom.length = 2.0 * default_card.l_min;
        TechCard card = default_card;
        if (auto it = options.find("card"); it != options.end()) {
          if (it->second == "ptm45") {
            card = TechCard::ptm45();
          } else if (it->second == "finfet16") {
            card = TechCard::finfet16();
          } else {
            return err(opt_index("card"), "unknown card '" + it->second + "'");
          }
        }
        if (auto it = options.find("w"); it != options.end()) {
          auto v = parse_spice_number(it->second);
          if (!v.ok()) return err(opt_index("w"), v.error().message);
          geom.width = *v;
        } else {
          return err(0, "M device needs w=<width>");
        }
        if (auto it = options.find("l"); it != options.end()) {
          auto v = parse_spice_number(it->second);
          if (!v.ok()) return err(opt_index("l"), v.error().message);
          geom.length = *v;
        }
        if (auto it = options.find("mult"); it != options.end()) {
          auto v = parse_spice_number(it->second);
          if (!v.ok()) return err(opt_index("mult"), v.error().message);
          geom.mult = static_cast<int>(*v);
        }
        out.circuit.add<Mosfet>(
            name, node_of(out.circuit, tokens[1]),
            node_of(out.circuit, tokens[2]), node_of(out.circuit, tokens[3]),
            node_of(out.circuit, tokens[4]),
            type == "nmos" ? MosType::Nmos : MosType::Pmos, geom, card);
        break;
      }
      default:
        return err(0, "unknown element '" + tokens[0] + "'");
    }
  }

  // Validate analysis probes exist.
  auto check_probe = [&](const std::string& probe) -> bool {
    return probe == "0" || probe == "gnd" || out.circuit.has_node(probe);
  };
  for (const auto& req : out.ac) {
    if (!check_probe(req.probe)) {
      return util::Error{".ac probe node '" + req.probe + "' not in netlist",
                         10};
    }
  }
  for (const auto& req : out.tran) {
    if (!check_probe(req.probe)) {
      return util::Error{".tran probe node '" + req.probe + "' not in netlist",
                         10};
    }
  }
  for (const auto& req : out.noise) {
    if (!check_probe(req.probe)) {
      return util::Error{".noise probe node '" + req.probe + "' not in netlist",
                         10};
    }
  }
  return out;
}

util::Expected<ParsedNetlist> NetlistDeck::instantiate_default() const {
  std::vector<double> values;
  values.reserve(params.size());
  for (const DeckParam& p : params) values.push_back(p.default_value());
  return instantiate(values);
}

util::Expected<NetlistDeck> parse_deck_syntax(const std::string& text) {
  NetlistDeck deck;

  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  bool ended = false;

  while (std::getline(stream, line)) {
    ++line_no;
    if (ended) break;
    scan_lint_disable(line, deck.lint_disables);
    const TokenizedLine tl = tokenize(line);
    const auto& tokens = tl.tokens;
    if (tokens.empty()) continue;
    const std::string head = lower(tokens[0]);

    if (head == ".end") {
      ended = true;
      continue;
    }
    if (head == ".title") {
      std::ostringstream title;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (i > 1) title << ' ';
        title << tokens[i];
      }
      deck.title = title.str();
      continue;
    }

    // ---- sizing declarations --------------------------------------------
    if (head == ".param") {
      if (tokens.size() < 5) {
        return at(line_no, tl.cols[0], ".param needs name lo hi steps [log]");
      }
      DeckParam p;
      p.name = lower(tokens[1]);
      p.line_no = line_no;
      if (deck.param_index(p.name) >= 0) {
        return at(line_no, tl.cols[1], "duplicate .param '" + p.name + "'");
      }
      auto lo = parse_spice_number(tokens[2]);
      auto hi = parse_spice_number(tokens[3]);
      auto steps = parse_spice_number(tokens[4]);
      if (!lo.ok()) return at(line_no, tl.cols[2], lo.error().message);
      if (!hi.ok()) return at(line_no, tl.cols[3], hi.error().message);
      if (!steps.ok()) return at(line_no, tl.cols[4], steps.error().message);
      p.lo = *lo;
      p.hi = *hi;
      if (*steps < 1.0 || *steps != std::floor(*steps)) {
        return at(line_no, tl.cols[4],
                  ".param '" + p.name + "': steps must be a " +
                      "positive integer, got '" + tokens[4] + "'");
      }
      p.steps = static_cast<int>(*steps);
      if (p.hi < p.lo) {
        return at(line_no, tl.cols[3], ".param '" + p.name + "': hi < lo");
      }
      if (tokens.size() > 5) {
        if (lower(tokens[5]) != "log") {
          return at(line_no, tl.cols[5],
                    "unexpected token '" + tokens[5] +
                        "' (only 'log' may follow steps)");
        }
        p.log_scale = true;
        // NOTE: the lo > 0 requirement of log grids is enforced by
        // parse_deck (and reported as AC203 by the linter), not here —
        // parse_deck_syntax keeps such decks inspectable.
      }
      deck.params.push_back(std::move(p));
      continue;
    }
    if (head == ".spec") {
      if (tokens.size() < 6) {
        return at(line_no, tl.cols[0],
                  ".spec needs name sense sample_lo sample_hi norm");
      }
      DeckSpec s;
      s.name = lower(tokens[1]);
      s.line_no = line_no;
      for (const DeckSpec& existing : deck.specs) {
        if (existing.name == s.name) {
          return at(line_no, tl.cols[1], "duplicate .spec '" + s.name + "'");
        }
      }
      auto sense = parse_sense(tokens[2], line_no, tl.cols[2]);
      if (!sense.ok()) return sense.error();
      s.sense = *sense;
      auto lo = parse_spice_number(tokens[3]);
      auto hi = parse_spice_number(tokens[4]);
      auto norm = parse_spice_number(tokens[5]);
      if (!lo.ok()) return at(line_no, tl.cols[3], lo.error().message);
      if (!hi.ok()) return at(line_no, tl.cols[4], hi.error().message);
      if (!norm.ok()) return at(line_no, tl.cols[5], norm.error().message);
      s.sample_lo = *lo;
      s.sample_hi = *hi;
      s.norm = *norm;
      if (s.sample_hi < s.sample_lo) {
        return at(line_no, tl.cols[4],
                  ".spec '" + s.name + "': sample_hi < sample_lo");
      }
      if (s.norm <= 0.0) {
        return at(line_no, tl.cols[5],
                  ".spec '" + s.name + "': norm must be > 0");
      }
      for (std::size_t i = 6; i < tokens.size(); ++i) {
        const std::string opt = lower(tokens[i]);
        if (opt.rfind("fail=", 0) == 0) {
          auto fv = parse_spice_number(opt.substr(5));
          if (!fv.ok()) return at(line_no, tl.cols[i], fv.error().message);
          s.fail_value = *fv;
          s.has_fail = true;
        } else {
          return at(line_no, tl.cols[i],
                    "unexpected token '" + tokens[i] + "'");
        }
      }
      if (!s.has_fail) {
        // Sense-appropriate default: a value that decisively fails any
        // target in the sampling range, so a failed measurement can never
        // read as satisfied.
        s.fail_value = s.sense == DeckSpec::Sense::GreaterEq
                           ? 0.0
                           : 1e3 * std::max(std::abs(s.sample_hi), s.norm);
      }
      deck.specs.push_back(std::move(s));
      continue;
    }
    if (head == ".measure") {
      if (tokens.size() < 3) {
        return at(line_no, tl.cols[0], ".measure needs spec_name and kind");
      }
      DeckMeasure m;
      m.spec = lower(tokens[1]);
      m.line_no = line_no;
      auto kind = parse_measure_kind(tokens[2], line_no, tl.cols[2]);
      if (!kind.ok()) return kind.error();
      m.kind = *kind;
      if (m.kind == DeckMeasure::Kind::SupplyCurrent) {
        if (tokens.size() < 4) {
          return at(line_no, tl.cols[2],
                    ".measure supply_current needs a V-source name");
        }
        m.source = lower(tokens[3]);
      }
      for (const DeckMeasure& existing : deck.measures) {
        if (existing.spec == m.spec) {
          return at(line_no, tl.cols[1],
                    "duplicate .measure for spec '" + m.spec + "'");
        }
      }
      deck.measures.push_back(std::move(m));
      continue;
    }

    // Everything else — elements and simulation directives — is kept raw
    // for (re-)instantiation at arbitrary design-variable values.
    deck.lines.push_back(NetlistDeck::RawLine{line_no, tokens, tl.cols});
  }

  return deck;
}

util::Expected<NetlistDeck> parse_deck(const std::string& text) {
  auto parsed = parse_deck_syntax(text);
  if (!parsed.ok()) return parsed.error();
  NetlistDeck deck = std::move(*parsed);

  // Grid-bound validation deferred from the syntax pass (the linter reports
  // this as AC203 instead of stopping at the first defect).
  for (const DeckParam& p : deck.params) {
    if (p.log_scale && p.lo <= 0.0) {
      return at_line(p.line_no,
                     ".param '" + p.name + "': log grid needs lo > 0");
    }
  }

  // Eager validation: instantiate at the default design point so malformed
  // element lines and unknown {param} references fail at parse time with
  // their line numbers, not at first evaluation.
  auto inst = deck.instantiate_default();
  if (!inst.ok()) return inst.error();

  // Cross-validate the sizing declarations against the instantiated deck.
  for (const DeckMeasure& m : deck.measures) {
    bool known = false;
    for (const DeckSpec& s : deck.specs) known = known || s.name == m.spec;
    if (!known) {
      return at_line(m.line_no,
                     ".measure references undeclared spec '" + m.spec + "'");
    }
    switch (m.kind) {
      case DeckMeasure::Kind::Gain:
      case DeckMeasure::Kind::F3db:
      case DeckMeasure::Kind::Ugbw:
      case DeckMeasure::Kind::PhaseMargin:
        if (inst->ac.empty()) {
          return at_line(m.line_no, ".measure '" + m.spec +
                                        "' needs a .ac analysis in the deck");
        }
        break;
      case DeckMeasure::Kind::Settling:
        if (inst->tran.empty()) {
          return at_line(m.line_no,
                         ".measure '" + m.spec +
                             "' needs a .tran analysis in the deck");
        }
        break;
      case DeckMeasure::Kind::Noise:
        if (inst->noise.empty()) {
          return at_line(m.line_no,
                         ".measure '" + m.spec +
                             "' needs a .noise analysis in the deck");
        }
        break;
      case DeckMeasure::Kind::SupplyCurrent: {
        const Device* dev = inst->circuit.find(m.source);
        if (dev == nullptr) {
          return at_line(m.line_no, ".measure supply_current: no device '" +
                                        m.source + "' in the deck");
        }
        if (dev->branch_count() == 0) {
          return at_line(m.line_no, ".measure supply_current: device '" +
                                        m.source +
                                        "' carries no branch current");
        }
        break;
      }
    }
  }
  for (const DeckSpec& s : deck.specs) {
    bool measured = false;
    for (const DeckMeasure& m : deck.measures) {
      measured = measured || m.spec == s.name;
    }
    if (!measured) {
      return at_line(s.line_no,
                     ".spec '" + s.name + "' has no .measure binding");
    }
  }
  return deck;
}

util::Expected<ParsedNetlist> parse_netlist(const std::string& text) {
  auto deck = parse_deck(text);
  if (!deck.ok()) return deck.error();
  return deck->instantiate_default();
}

}  // namespace autockt::spice
