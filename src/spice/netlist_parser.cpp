#include "spice/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

namespace autockt::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '*') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

util::Error at_line(std::size_t line_no, const std::string& message) {
  return util::Error{"line " + std::to_string(line_no) + ": " + message, 10};
}

/// Resolve a node token, creating the node on first use.
NodeId node_of(Circuit& ckt, const std::string& name) {
  const std::string n = lower(name);
  if (n == "0" || n == "gnd") return kGround;
  if (!ckt.has_node(n)) return ckt.add_node(n);
  return ckt.node(n);
}

/// key=value option map from trailing tokens.
std::map<std::string, std::string> options_from(
    const std::vector<std::string>& tokens, std::size_t first) {
  std::map<std::string, std::string> out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      out[lower(tokens[i])] = "";
    } else {
      out[lower(tokens[i].substr(0, eq))] = tokens[i].substr(eq + 1);
    }
  }
  return out;
}

/// Source tail parser: "dc <v> [ac <mag>] [step v0 v1 t0 trise]".
struct SourceSpec {
  Waveform wave = Waveform::constant(0.0);
  double ac_mag = 0.0;
};

util::Expected<SourceSpec> parse_source_tail(
    const std::vector<std::string>& tokens, std::size_t i,
    std::size_t line_no) {
  SourceSpec spec;
  while (i < tokens.size()) {
    const std::string key = lower(tokens[i]);
    if (key == "dc") {
      if (i + 1 >= tokens.size()) return at_line(line_no, "dc needs a value");
      auto v = parse_spice_number(tokens[i + 1]);
      if (!v.ok()) return v.error();
      spec.wave = Waveform::constant(*v);
      i += 2;
    } else if (key == "ac") {
      if (i + 1 >= tokens.size()) return at_line(line_no, "ac needs a value");
      auto v = parse_spice_number(tokens[i + 1]);
      if (!v.ok()) return v.error();
      spec.ac_mag = *v;
      i += 2;
    } else if (key == "step") {
      if (i + 4 >= tokens.size()) {
        return at_line(line_no, "step needs v0 v1 t0 trise");
      }
      double vals[4];
      for (int k = 0; k < 4; ++k) {
        auto v =
            parse_spice_number(tokens[i + 1 + static_cast<std::size_t>(k)]);
        if (!v.ok()) return v.error();
        vals[k] = *v;
      }
      spec.wave = Waveform::step(vals[0], vals[1], vals[2], vals[3]);
      i += 5;
    } else {
      // Bare number == dc value (SPICE shorthand "V1 a 0 1.2").
      auto v = parse_spice_number(tokens[i]);
      if (!v.ok()) {
        return at_line(line_no, "unexpected token '" + tokens[i] + "'");
      }
      spec.wave = Waveform::constant(*v);
      ++i;
    }
  }
  return spec;
}

}  // namespace

std::vector<double> ParsedNetlist::initial_node_voltages() const {
  std::vector<double> out(circuit.num_nodes(), 0.0);
  for (const auto& [node, volts] : nodesets) {
    if (node != kGround && node < out.size()) out[node] = volts;
  }
  return out;
}

util::Expected<double> parse_spice_number(const std::string& token) {
  if (token.empty()) return util::Error{"empty number", 11};
  const std::string t = lower(token);
  char* end = nullptr;
  const double base = std::strtod(t.c_str(), &end);
  if (end == t.c_str()) {
    return util::Error{"bad number '" + token + "'", 11};
  }
  const std::string suffix(end);
  double scale = 1.0;
  if (suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "t") {
    scale = 1e12;
  } else if (suffix == "g") {
    scale = 1e9;
  } else if (suffix == "meg") {
    scale = 1e6;
  } else if (suffix == "k") {
    scale = 1e3;
  } else if (suffix == "m") {
    scale = 1e-3;
  } else if (suffix == "u") {
    scale = 1e-6;
  } else if (suffix == "n") {
    scale = 1e-9;
  } else if (suffix == "p") {
    scale = 1e-12;
  } else if (suffix == "f") {
    scale = 1e-15;
  } else {
    return util::Error{"unknown suffix '" + suffix + "' in '" + token + "'",
                       11};
  }
  return base * scale;
}

util::Expected<ParsedNetlist> parse_netlist(const std::string& text) {
  ParsedNetlist out;
  TechCard default_card = TechCard::ptm45();

  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  bool ended = false;

  while (std::getline(stream, line)) {
    ++line_no;
    if (ended) break;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string head = lower(tokens[0]);

    // ---- directives ------------------------------------------------------
    if (head[0] == '.') {
      if (head == ".title") {
        std::ostringstream title;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          if (i > 1) title << ' ';
          title << tokens[i];
        }
        out.title = title.str();
      } else if (head == ".card") {
        if (tokens.size() < 2) return at_line(line_no, ".card needs a name");
        const std::string name = lower(tokens[1]);
        if (name == "ptm45") {
          default_card = TechCard::ptm45();
        } else if (name == "finfet16") {
          default_card = TechCard::finfet16();
        } else {
          return at_line(line_no, "unknown card '" + tokens[1] + "'");
        }
      } else if (head == ".nodeset") {
        if (tokens.size() < 3) {
          return at_line(line_no, ".nodeset needs node and voltage");
        }
        auto v = parse_spice_number(tokens[2]);
        if (!v.ok()) return v.error();
        out.nodesets.emplace_back(node_of(out.circuit, tokens[1]), *v);
      } else if (head == ".op") {
        out.want_op = true;
      } else if (head == ".ac") {
        if (tokens.size() < 4) {
          return at_line(line_no, ".ac needs probe f_start f_stop");
        }
        AcRequest req;
        req.probe = lower(tokens[1]);
        auto f0 = parse_spice_number(tokens[2]);
        auto f1 = parse_spice_number(tokens[3]);
        if (!f0.ok()) return f0.error();
        if (!f1.ok()) return f1.error();
        req.options.f_start = *f0;
        req.options.f_stop = *f1;
        if (tokens.size() > 4) {
          auto ppd = parse_spice_number(tokens[4]);
          if (!ppd.ok()) return ppd.error();
          req.options.points_per_decade = static_cast<int>(*ppd);
        }
        out.ac.push_back(std::move(req));
      } else if (head == ".tran") {
        if (tokens.size() < 4) {
          return at_line(line_no, ".tran needs probe t_stop dt");
        }
        TranRequest req;
        req.probe = lower(tokens[1]);
        auto ts = parse_spice_number(tokens[2]);
        auto dt = parse_spice_number(tokens[3]);
        if (!ts.ok()) return ts.error();
        if (!dt.ok()) return dt.error();
        req.options.t_stop = *ts;
        req.options.dt = *dt;
        out.tran.push_back(std::move(req));
      } else if (head == ".noise") {
        if (tokens.size() < 4) {
          return at_line(line_no, ".noise needs probe f_start f_stop");
        }
        NoiseRequest req;
        req.probe = lower(tokens[1]);
        auto f0 = parse_spice_number(tokens[2]);
        auto f1 = parse_spice_number(tokens[3]);
        if (!f0.ok()) return f0.error();
        if (!f1.ok()) return f1.error();
        req.options.f_start = *f0;
        req.options.f_stop = *f1;
        out.noise.push_back(std::move(req));
      } else if (head == ".end") {
        ended = true;
      } else {
        return at_line(line_no, "unknown directive '" + tokens[0] + "'");
      }
      continue;
    }

    // ---- elements --------------------------------------------------------
    const char kind = head[0];
    const std::string name = lower(tokens[0]);
    switch (kind) {
      case 'r': {
        if (tokens.size() < 4) {
          return at_line(line_no, "R needs 2 nodes + value");
        }
        auto v = parse_spice_number(tokens[3]);
        if (!v.ok()) return at_line(line_no, v.error().message);
        if (*v <= 0.0) return at_line(line_no, "resistance must be positive");
        out.circuit.add<Resistor>(name, node_of(out.circuit, tokens[1]),
                                  node_of(out.circuit, tokens[2]), *v);
        break;
      }
      case 'c': {
        if (tokens.size() < 4) {
          return at_line(line_no, "C needs 2 nodes + value");
        }
        auto v = parse_spice_number(tokens[3]);
        if (!v.ok()) return at_line(line_no, v.error().message);
        if (*v < 0.0) return at_line(line_no, "capacitance must be >= 0");
        out.circuit.add<Capacitor>(name, node_of(out.circuit, tokens[1]),
                                   node_of(out.circuit, tokens[2]), *v);
        break;
      }
      case 'v':
      case 'i': {
        if (tokens.size() < 3) return at_line(line_no, "source needs 2 nodes");
        auto spec = parse_source_tail(tokens, 3, line_no);
        if (!spec.ok()) return spec.error();
        const NodeId np = node_of(out.circuit, tokens[1]);
        const NodeId nm = node_of(out.circuit, tokens[2]);
        if (kind == 'v') {
          out.circuit.add<VoltageSource>(name, np, nm, spec->wave,
                                         spec->ac_mag);
        } else {
          out.circuit.add<CurrentSource>(name, np, nm, spec->wave,
                                         spec->ac_mag);
        }
        break;
      }
      case 'g': {
        if (tokens.size() < 6) {
          return at_line(line_no, "G needs 4 nodes + transconductance");
        }
        auto gm = parse_spice_number(tokens[5]);
        if (!gm.ok()) return at_line(line_no, gm.error().message);
        out.circuit.add<Vccs>(name, node_of(out.circuit, tokens[1]),
                              node_of(out.circuit, tokens[2]),
                              node_of(out.circuit, tokens[3]),
                              node_of(out.circuit, tokens[4]), *gm);
        break;
      }
      case 'b': {
        if (tokens.size() < 4) {
          return at_line(line_no, "B needs bias node, sense node, target");
        }
        auto v = parse_spice_number(tokens[3]);
        if (!v.ok()) return at_line(line_no, v.error().message);
        out.circuit.add<BiasProbe>(name, node_of(out.circuit, tokens[1]),
                                   node_of(out.circuit, tokens[2]), *v);
        break;
      }
      case 'm': {
        if (tokens.size() < 6) {
          return at_line(line_no, "M needs d g s b + nmos|pmos [+ options]");
        }
        const std::string type = lower(tokens[5]);
        if (type != "nmos" && type != "pmos") {
          return at_line(line_no, "device type must be nmos or pmos");
        }
        const auto options = options_from(tokens, 6);
        MosGeom geom;
        geom.length = 2.0 * default_card.l_min;
        TechCard card = default_card;
        if (auto it = options.find("card"); it != options.end()) {
          if (it->second == "ptm45") {
            card = TechCard::ptm45();
          } else if (it->second == "finfet16") {
            card = TechCard::finfet16();
          } else {
            return at_line(line_no, "unknown card '" + it->second + "'");
          }
        }
        if (auto it = options.find("w"); it != options.end()) {
          auto v = parse_spice_number(it->second);
          if (!v.ok()) return at_line(line_no, v.error().message);
          geom.width = *v;
        } else {
          return at_line(line_no, "M device needs w=<width>");
        }
        if (auto it = options.find("l"); it != options.end()) {
          auto v = parse_spice_number(it->second);
          if (!v.ok()) return at_line(line_no, v.error().message);
          geom.length = *v;
        }
        if (auto it = options.find("mult"); it != options.end()) {
          auto v = parse_spice_number(it->second);
          if (!v.ok()) return at_line(line_no, v.error().message);
          geom.mult = static_cast<int>(*v);
        }
        out.circuit.add<Mosfet>(
            name, node_of(out.circuit, tokens[1]),
            node_of(out.circuit, tokens[2]), node_of(out.circuit, tokens[3]),
            node_of(out.circuit, tokens[4]),
            type == "nmos" ? MosType::Nmos : MosType::Pmos, geom, card);
        break;
      }
      default:
        return at_line(line_no, "unknown element '" + tokens[0] + "'");
    }
  }

  // Validate analysis probes exist.
  auto check_probe = [&](const std::string& probe) -> bool {
    return probe == "0" || probe == "gnd" || out.circuit.has_node(probe);
  };
  for (const auto& req : out.ac) {
    if (!check_probe(req.probe)) {
      return util::Error{".ac probe node '" + req.probe + "' not in netlist",
                         10};
    }
  }
  for (const auto& req : out.tran) {
    if (!check_probe(req.probe)) {
      return util::Error{".tran probe node '" + req.probe + "' not in netlist",
                         10};
    }
  }
  for (const auto& req : out.noise) {
    if (!check_probe(req.probe)) {
      return util::Error{".noise probe node '" + req.probe + "' not in netlist",
                         10};
    }
  }
  return out;
}

}  // namespace autockt::spice
