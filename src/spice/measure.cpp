#include "spice/measure.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "spice/units.hpp"

namespace autockt::spice {

double ac_crossing_freq(const std::vector<AcPoint>& sweep, std::size_t i,
                        double level) {
  const double m0 = std::abs(sweep[i].value);
  const double m1 = std::abs(sweep[i + 1].value);
  const double lf0 = std::log10(sweep[i].freq);
  const double lf1 = std::log10(sweep[i + 1].freq);
  const double lm0 = std::log10(std::max(m0, 1e-30));
  const double lm1 = std::log10(std::max(m1, 1e-30));
  const double lt = std::log10(std::max(level, 1e-30));
  if (lm1 == lm0) {
    // Flat in log space. The exactly-flat segment has no unique crossing;
    // report its geometric midpoint. A segment flat only after the log
    // clamp/rounding still carries magnitude information — interpolate
    // linearly in magnitude instead of snapping to the left endpoint.
    if (m1 == m0) return std::pow(10.0, 0.5 * (lf0 + lf1));
    const double frac = std::clamp((level - m0) / (m1 - m0), 0.0, 1.0);
    return std::pow(10.0, lf0 + frac * (lf1 - lf0));
  }
  const double frac = (lt - lm0) / (lm1 - lm0);
  return std::pow(10.0, lf0 + frac * (lf1 - lf0));
}

AcMeasurements measure_ac(const std::vector<AcPoint>& sweep) {
  AcMeasurements m;
  if (sweep.size() < 2) return m;

  m.dc_gain = std::abs(sweep.front().value);

  // Peak magnitude: the -3 dB reference. For a monotone-from-DC response the
  // peak is the first sample and behaviour matches the DC-referenced search.
  std::size_t peak_idx = 0;
  m.peak_gain = m.dc_gain;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const double mag = std::abs(sweep[i].value);
    if (mag > m.peak_gain) {
      m.peak_gain = mag;
      peak_idx = i;
    }
  }

  // Unwrapped phase in degrees, relative to the first point.
  std::vector<double> phase(sweep.size(), 0.0);
  double prev = std::arg(sweep.front().value);
  double offset = 0.0;
  phase[0] = 0.0;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    double ph = std::arg(sweep[i].value);
    while (ph + offset - prev > kPi) offset -= 2.0 * kPi;
    while (ph + offset - prev < -kPi) offset += 2.0 * kPi;
    const double unwrapped = ph + offset;
    phase[i] = (unwrapped - std::arg(sweep.front().value)) * 180.0 / kPi;
    prev = unwrapped;
  }

  // -3 dB cutoff: first downward crossing of peak/sqrt(2) at or after the
  // peak (a dip before the peak is not the bandwidth edge).
  const double level3db = m.peak_gain / std::sqrt(2.0);
  for (std::size_t i = peak_idx; i + 1 < sweep.size(); ++i) {
    const double m0 = std::abs(sweep[i].value);
    const double m1 = std::abs(sweep[i + 1].value);
    if (m0 >= level3db && m1 < level3db) {
      m.f3db = ac_crossing_freq(sweep, i, level3db);
      m.f3db_found = true;
      break;
    }
  }

  // Unity-gain crossing and phase margin.
  if (m.dc_gain > 1.0) {
    for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
      const double m0 = std::abs(sweep[i].value);
      const double m1 = std::abs(sweep[i + 1].value);
      if (m0 >= 1.0 && m1 < 1.0) {
        m.ugbw = ac_crossing_freq(sweep, i, 1.0);
        m.ugbw_found = true;
        // Linear-in-log-f phase interpolation at the crossing.
        const double lf0 = std::log10(sweep[i].freq);
        const double lf1 = std::log10(sweep[i + 1].freq);
        const double frac =
            lf1 == lf0 ? 0.0 : (std::log10(m.ugbw) - lf0) / (lf1 - lf0);
        const double ph = phase[i] + frac * (phase[i + 1] - phase[i]);
        m.phase_margin_deg = 180.0 + ph;
        break;
      }
    }
  }
  return m;
}

SettlingResult measure_settling(const std::vector<double>& time,
                                const std::vector<double>& waveform,
                                double tol, double min_dwell_fraction) {
  SettlingResult r;
  if (time.size() < 2 || waveform.size() != time.size()) return r;
  const double v_final = waveform.back();
  const double v_initial = waveform.front();
  const double amplitude = std::fabs(v_final - v_initial);
  if (amplitude < 1e-15) {
    r.settled = true;  // nothing moved; trivially settled at the start
    return r;
  }
  const double band = tol * amplitude;

  // Walk backwards: the settling instant is the last time the waveform was
  // outside the band. (The final sample is inside by construction, so the
  // instant always lands strictly before time.back().)
  std::size_t settle_idx = 0;
  for (std::size_t i = waveform.size(); i-- > 0;) {
    if (std::fabs(waveform[i] - v_final) > band) {
      settle_idx = i + 1;
      break;
    }
  }
  r.time = settle_idx == 0 ? time.front() : time[settle_idx];

  // Trust check: a waveform that leaves the band within the last sliver of
  // the window never demonstrated a final value — it was simply truncated
  // ("settled at the last sample" is indistinguishable from "never
  // settled" without this dwell requirement).
  const double window = time.back() - time.front();
  r.settled = (time.back() - r.time) >= min_dwell_fraction * window;
  return r;
}

double settling_time(const std::vector<double>& time,
                     const std::vector<double>& waveform, double tol) {
  return measure_settling(time, waveform, tol).time;
}

}  // namespace autockt::spice
