#include "spice/measure.hpp"

#include <cmath>
#include <complex>

#include "spice/units.hpp"

namespace autockt::spice {

namespace {

/// Log-log interpolated crossing of |H| through `level` between samples i
/// and i+1. Returns the frequency of the crossing.
double interp_crossing(const std::vector<AcPoint>& sweep, std::size_t i,
                       double level) {
  const double m0 = std::abs(sweep[i].value);
  const double m1 = std::abs(sweep[i + 1].value);
  const double lf0 = std::log10(sweep[i].freq);
  const double lf1 = std::log10(sweep[i + 1].freq);
  const double lm0 = std::log10(std::max(m0, 1e-30));
  const double lm1 = std::log10(std::max(m1, 1e-30));
  const double lt = std::log10(std::max(level, 1e-30));
  if (lm1 == lm0) return sweep[i].freq;
  const double frac = (lt - lm0) / (lm1 - lm0);
  return std::pow(10.0, lf0 + frac * (lf1 - lf0));
}

}  // namespace

AcMeasurements measure_ac(const std::vector<AcPoint>& sweep) {
  AcMeasurements m;
  if (sweep.size() < 2) return m;

  m.dc_gain = std::abs(sweep.front().value);

  // Unwrapped phase in degrees, relative to the first point.
  std::vector<double> phase(sweep.size(), 0.0);
  double prev = std::arg(sweep.front().value);
  double offset = 0.0;
  phase[0] = 0.0;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    double ph = std::arg(sweep[i].value);
    while (ph + offset - prev > kPi) offset -= 2.0 * kPi;
    while (ph + offset - prev < -kPi) offset += 2.0 * kPi;
    const double unwrapped = ph + offset;
    phase[i] = (unwrapped - std::arg(sweep.front().value)) * 180.0 / kPi;
    prev = unwrapped;
  }

  // -3 dB cutoff: first downward crossing of dc_gain/sqrt(2).
  const double level3db = m.dc_gain / std::sqrt(2.0);
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    const double m0 = std::abs(sweep[i].value);
    const double m1 = std::abs(sweep[i + 1].value);
    if (m0 >= level3db && m1 < level3db) {
      m.f3db = interp_crossing(sweep, i, level3db);
      m.f3db_found = true;
      break;
    }
  }

  // Unity-gain crossing and phase margin.
  if (m.dc_gain > 1.0) {
    for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
      const double m0 = std::abs(sweep[i].value);
      const double m1 = std::abs(sweep[i + 1].value);
      if (m0 >= 1.0 && m1 < 1.0) {
        m.ugbw = interp_crossing(sweep, i, 1.0);
        m.ugbw_found = true;
        // Linear-in-log-f phase interpolation at the crossing.
        const double lf0 = std::log10(sweep[i].freq);
        const double lf1 = std::log10(sweep[i + 1].freq);
        const double frac =
            lf1 == lf0 ? 0.0 : (std::log10(m.ugbw) - lf0) / (lf1 - lf0);
        const double ph = phase[i] + frac * (phase[i + 1] - phase[i]);
        m.phase_margin_deg = 180.0 + ph;
        break;
      }
    }
  }
  return m;
}

double settling_time(const std::vector<double>& time,
                     const std::vector<double>& waveform, double tol) {
  if (time.size() < 2 || waveform.size() != time.size()) return 0.0;
  const double v_final = waveform.back();
  const double v_initial = waveform.front();
  const double amplitude = std::fabs(v_final - v_initial);
  if (amplitude < 1e-15) return 0.0;
  const double band = tol * amplitude;

  // Walk backwards: the settling instant is the last time the waveform was
  // outside the band.
  for (std::size_t i = waveform.size(); i-- > 0;) {
    if (std::fabs(waveform[i] - v_final) > band) {
      return i + 1 < time.size() ? time[i + 1] : time.back();
    }
  }
  return time.front();
}

}  // namespace autockt::spice
