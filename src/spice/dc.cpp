#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"

namespace autockt::spice {

namespace {

struct NewtonResult {
  bool converged = false;
  std::vector<double> x;  // full unknown vector
};

/// Plain damped Newton at fixed (gmin, source_scale), warm-started from `x0`.
NewtonResult newton(const Circuit& circuit, const DcOptions& opt, double gmin,
                    double source_scale, std::vector<double> x0) {
  const std::size_t n_unknowns = circuit.num_unknowns();
  const std::size_t n_nodes = circuit.num_nodes();
  NewtonResult res;
  res.x = std::move(x0);
  res.x.resize(n_unknowns, 0.0);

  std::vector<double> node_v(n_nodes, 0.0);
  linalg::RealMatrix a(n_unknowns, n_unknowns);
  std::vector<double> b(n_unknowns, 0.0);

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    for (NodeId n = 1; n < n_nodes; ++n) node_v[n] = res.x[n - 1];
    a.fill(0.0);
    std::fill(b.begin(), b.end(), 0.0);
    RealStamp ctx{a, b, node_v};
    ctx.gmin = gmin;
    ctx.source_scale = source_scale;
    ctx.num_nodes = n_nodes;
    circuit.stamp_real(ctx);

    linalg::LuFactorization<double> lu(a);
    if (!lu.ok()) return res;  // singular: report non-convergence
    const std::vector<double> x_new = lu.solve(b);

    // Convergence check on the undamped node-voltage update.
    double worst = 0.0;
    for (std::size_t i = 0; i + 1 < n_nodes; ++i) {
      const double dv = std::fabs(x_new[i] - res.x[i]);
      const double tol = opt.v_abstol + opt.v_reltol * std::fabs(x_new[i]);
      worst = std::max(worst, dv - tol);
    }
    if (worst <= 0.0) {
      res.x = x_new;
      res.converged = true;
      return res;
    }

    // Damped update: clamp per-node moves, take branch currents in full.
    for (std::size_t i = 0; i < n_unknowns; ++i) {
      double step = x_new[i] - res.x[i];
      if (i + 1 < n_nodes) {
        step = std::clamp(step, -opt.max_step, opt.max_step);
      }
      res.x[i] += step;
    }
  }
  return res;
}

}  // namespace

util::Expected<OpPoint> solve_op(const Circuit& circuit,
                                 const DcOptions& options) {
  std::vector<double> x0(circuit.num_unknowns(), 0.0);
  if (!options.initial_node_v.empty()) {
    for (NodeId n = 1;
         n < std::min(circuit.num_nodes(), options.initial_node_v.size() + 0);
         ++n) {
      x0[n - 1] = options.initial_node_v[n];
    }
  }

  // Stage 1: plain Newton from the caller's guess.
  NewtonResult best = newton(circuit, options, 0.0, 1.0, x0);
  if (best.converged) return circuit.unpack(best.x);

  // Stage 2: gmin stepping — heavy shunt conductance first, then relax.
  // Homotopy stages run with a larger iteration budget: they are the
  // last-resort path and only execute for hard bias points.
  DcOptions homotopy = options;
  homotopy.max_iterations = 3 * options.max_iterations;
  std::vector<double> x = x0;
  bool chain_ok = true;
  for (double gmin = 1e-2; gmin >= 1e-13; gmin *= 1e-2) {
    NewtonResult r = newton(circuit, homotopy, gmin, 1.0, x);
    if (!r.converged) {
      chain_ok = false;
      break;
    }
    x = r.x;
  }
  if (chain_ok) {
    NewtonResult r = newton(circuit, homotopy, 0.0, 1.0, x);
    if (r.converged) return circuit.unpack(r.x);
  }

  // Stage 3: source stepping — ramp all independent sources from zero.
  x.assign(circuit.num_unknowns(), 0.0);
  chain_ok = true;
  for (double scale : {0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0}) {
    NewtonResult r = newton(circuit, homotopy, 0.0, scale, x);
    if (!r.converged) {
      chain_ok = false;
      break;
    }
    x = r.x;
  }
  if (chain_ok) return circuit.unpack(x);

  return util::Error{"DC operating point did not converge", 1};
}

}  // namespace autockt::spice
