#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>

#include "spice/real_solver.hpp"

namespace autockt::spice {

namespace {

using detail::kNoExtraStamps;
using detail::StampKnobs;

struct NewtonResult {
  bool converged = false;
  std::vector<double> x;  // full unknown vector
};

/// Plain damped Newton at fixed (gmin, source_scale), warm-started from
/// `x0`, over either kernel driver.
template <typename Driver>
NewtonResult newton(const Circuit& circuit, Driver& driver,
                    const DcOptions& opt, double gmin, double source_scale,
                    std::vector<double> x0) {
  const std::size_t n_unknowns = circuit.num_unknowns();
  const std::size_t n_nodes = circuit.num_nodes();
  NewtonResult res;
  res.x = std::move(x0);
  res.x.resize(n_unknowns, 0.0);

  std::vector<double> node_v(n_nodes, 0.0);
  std::vector<double> x_new;
  StampKnobs knobs;
  knobs.gmin = gmin;
  knobs.source_scale = source_scale;

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    kernel_counters::add_newton_iterations(1);
    for (NodeId n = 1; n < n_nodes; ++n) node_v[n] = res.x[n - 1];
    if (!driver.solve(circuit, node_v, knobs, kNoExtraStamps, x_new)) {
      return res;  // singular: report non-convergence
    }

    // Convergence check on the undamped node-voltage update.
    double worst = 0.0;
    for (std::size_t i = 0; i + 1 < n_nodes; ++i) {
      const double dv = std::fabs(x_new[i] - res.x[i]);
      const double tol = opt.v_abstol + opt.v_reltol * std::fabs(x_new[i]);
      worst = std::max(worst, dv - tol);
    }
    if (worst <= 0.0) {
      res.x = x_new;
      res.converged = true;
      return res;
    }

    // Damped update: clamp per-node moves, take branch currents in full.
    for (std::size_t i = 0; i < n_unknowns; ++i) {
      double step = x_new[i] - res.x[i];
      if (i + 1 < n_nodes) {
        step = std::clamp(step, -opt.max_step, opt.max_step);
      }
      res.x[i] += step;
    }
  }
  return res;
}

/// Stages 2 + 3 of the DC fallback chain (gmin stepping, then source
/// stepping), from the cold-start guess `x0`. Shared by the scalar solver
/// and the batched solver's per-lane retirement path; both homotopy stages
/// restart from `x0`/zeros, so results are independent of how the earlier
/// stages were executed.
template <typename Driver>
util::Expected<OpPoint> homotopy_tail(const Circuit& circuit, Driver& driver,
                                      const DcOptions& options,
                                      const std::vector<double>& x0) {
  // Homotopy stages run with a larger iteration budget: they are the
  // last-resort path and only execute for hard bias points.
  DcOptions homotopy = options;
  homotopy.max_iterations = 3 * options.max_iterations;

  // Stage 2: gmin stepping — heavy shunt conductance first, then relax.
  std::vector<double> x = x0;
  bool chain_ok = true;
  for (double gmin = 1e-2; gmin >= 1e-13; gmin *= 1e-2) {
    NewtonResult r = newton(circuit, driver, homotopy, gmin, 1.0, x);
    if (!r.converged) {
      chain_ok = false;
      break;
    }
    x = r.x;
  }
  if (chain_ok) {
    NewtonResult r = newton(circuit, driver, homotopy, 0.0, 1.0, x);
    if (r.converged) return circuit.unpack(r.x);
  }

  // Stage 3: source stepping — ramp all independent sources from zero.
  x.assign(circuit.num_unknowns(), 0.0);
  chain_ok = true;
  for (double scale : {0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0}) {
    NewtonResult r = newton(circuit, driver, homotopy, 0.0, scale, x);
    if (!r.converged) {
      chain_ok = false;
      break;
    }
    x = r.x;
  }
  if (chain_ok) return circuit.unpack(x);

  return util::Error{"DC operating point did not converge", 1};
}

/// Cold-start node-voltage guess as a full unknown vector.
std::vector<double> cold_start_guess(const Circuit& circuit,
                                     const DcOptions& options) {
  std::vector<double> x0(circuit.num_unknowns(), 0.0);
  if (!options.initial_node_v.empty()) {
    for (NodeId n = 1;
         n < std::min(circuit.num_nodes(), options.initial_node_v.size() + 0);
         ++n) {
      x0[n - 1] = options.initial_node_v[n];
    }
  }
  return x0;
}

/// Warm-start hint as a full unknown vector, or empty when the hint is
/// missing or shaped for a different topology.
std::vector<double> warm_start_guess(const Circuit& circuit,
                                     const DcOptions& options) {
  if (options.warm_start == nullptr ||
      options.warm_start->node_v.size() != circuit.num_nodes() ||
      options.warm_start->branch_i.size() != circuit.num_branches()) {
    return {};
  }
  std::vector<double> xw(circuit.num_unknowns(), 0.0);
  for (NodeId n = 1; n < circuit.num_nodes(); ++n) {
    xw[n - 1] = options.warm_start->node_v[n];
  }
  for (std::size_t b = 0; b < circuit.num_branches(); ++b) {
    xw[(circuit.num_nodes() - 1) + b] = options.warm_start->branch_i[b];
  }
  return xw;
}

template <typename Driver>
util::Expected<OpPoint> solve_op_impl(const Circuit& circuit, Driver& driver,
                                      const DcOptions& options) {
  // Stage 0: warm start from a nearby design's converged operating point.
  // A hit skips stamping heuristics entirely; a miss falls through to the
  // cold-start chain below, keeping behaviour deterministic.
  std::vector<double> xw = warm_start_guess(circuit, options);
  if (!xw.empty()) {
    kernel_counters::add_warm_start_attempt();
    NewtonResult warm =
        newton(circuit, driver, options, 0.0, 1.0, std::move(xw));
    if (warm.converged) {
      kernel_counters::add_warm_start_hit();
      return circuit.unpack(warm.x);
    }
  }

  const std::vector<double> x0 = cold_start_guess(circuit, options);

  // Stage 1: plain Newton from the caller's guess.
  NewtonResult best = newton(circuit, driver, options, 0.0, 1.0, x0);
  if (best.converged) return circuit.unpack(best.x);

  // Stages 2 + 3: homotopy fallback chain.
  return homotopy_tail(circuit, driver, options, x0);
}

}  // namespace

util::Expected<OpPoint> solve_op(const Circuit& circuit,
                                 const DcOptions& options) {
  if (options.kernel == SimKernel::Dense) {
    detail::DenseRealDriver driver(circuit.num_unknowns());
    return solve_op_impl(circuit, driver, options);
  }
  if (options.workspace != nullptr) {
    // A stale workspace would stamp through the wrong frozen pattern;
    // fail deterministically instead of producing plausible garbage.
    if (!options.workspace->compatible(circuit) ||
        !options.workspace->has_real()) {
      return util::Error{"DC solve: workspace does not match the circuit", 1};
    }
    detail::SparseRealDriver driver{*options.workspace};
    return solve_op_impl(circuit, driver, options);
  }
  SimWorkspace scratch(circuit, SimWorkspace::Sides::Real);
  detail::SparseRealDriver driver{scratch};
  return solve_op_impl(circuit, driver, options);
}

std::vector<util::Expected<OpPoint>> solve_op_batch(
    const std::vector<const Circuit*>& circuits,
    const std::vector<DcOptions>& options, SimWorkspace& ws) {
  const std::size_t K = circuits.size();
  std::vector<util::Expected<OpPoint>> results(
      K, util::Error{"DC operating point did not converge", 1});
  if (K == 0) return results;

  // Per-lane Newton state for the lockstep stages. Stage 0 is the warm
  // start (only lanes with a usable hint), stage 1 the cold start; each has
  // its own max_iterations budget, exactly like the scalar solver.
  struct Lane {
    const Circuit* circuit = nullptr;
    const DcOptions* opt = nullptr;
    int stage = 1;
    int iter = 0;
    std::vector<double> x;
    std::vector<double> x0;
    std::vector<double> node_v;
    bool active = false;
    bool needs_homotopy = false;
  };
  std::vector<Lane> lanes(K);
  for (std::size_t l = 0; l < K; ++l) {
    Lane& lane = lanes[l];
    lane.circuit = circuits[l];
    lane.opt = &options[l];
    if (!ws.compatible(*lane.circuit) || !ws.has_real()) {
      results[l] =
          util::Error{"DC solve: workspace does not match the circuit", 1};
      continue;
    }
    lane.node_v.assign(lane.circuit->num_nodes(), 0.0);
    lane.x0 = cold_start_guess(*lane.circuit, *lane.opt);
    std::vector<double> xw = warm_start_guess(*lane.circuit, *lane.opt);
    if (!xw.empty()) {
      kernel_counters::add_warm_start_attempt();
      lane.stage = 0;
      lane.x = std::move(xw);
    } else {
      lane.stage = 1;
      lane.x = lane.x0;
    }
    lane.active = true;
  }

  // A failed stage moves the lane forward: warm miss -> cold start, cold
  // exhaustion -> retire to the scalar homotopy chain below.
  const auto advance_stage = [](Lane& lane) {
    if (lane.stage == 0) {
      lane.stage = 1;
      lane.iter = 0;
      lane.x = lane.x0;
    } else {
      lane.active = false;
      lane.needs_homotopy = true;
    }
  };

  std::vector<std::size_t> slots;
  std::vector<double> x_new;
  for (;;) {
    slots.clear();
    for (std::size_t l = 0; l < K; ++l) {
      if (lanes[l].active) slots.push_back(l);
    }
    if (slots.empty()) break;
    const std::size_t n_active = slots.size();
    ws.ensure_real_batch(n_active);
    kernel_counters::add_newton_iterations(static_cast<long>(n_active));

    // One restamp sweep: every active lane stages through the scalar value
    // arrays (preserving the scalar accumulation order) and commits its SoA
    // column.
    for (std::size_t s = 0; s < n_active; ++s) {
      Lane& lane = lanes[slots[s]];
      ++lane.iter;
      const std::size_t n_nodes = lane.circuit->num_nodes();
      for (NodeId n = 1; n < n_nodes; ++n) lane.node_v[n] = lane.x[n - 1];
      RealStamp ctx = ws.begin_real(lane.node_v);
      ctx.gmin = 0.0;
      ctx.source_scale = 1.0;
      lane.circuit->stamp_real(ctx);
      ws.commit_real_batch_lane(s);
    }
    ws.factor_real_batch();
    ws.solve_real_batch();

    for (std::size_t s = 0; s < n_active; ++s) {
      Lane& lane = lanes[slots[s]];
      const DcOptions& opt = *lane.opt;
      if (!ws.real_lane_solvable(s)) {
        advance_stage(lane);  // singular: the scalar stage reports failure
        continue;
      }
      ws.real_lane_solution(s, x_new);

      // Convergence check on the undamped node-voltage update (identical to
      // the scalar newton()).
      const std::size_t n_nodes = lane.circuit->num_nodes();
      double worst = 0.0;
      for (std::size_t i = 0; i + 1 < n_nodes; ++i) {
        const double dv = std::fabs(x_new[i] - lane.x[i]);
        const double tol = opt.v_abstol + opt.v_reltol * std::fabs(x_new[i]);
        worst = std::max(worst, dv - tol);
      }
      if (worst <= 0.0) {
        lane.x = x_new;
        if (lane.stage == 0) kernel_counters::add_warm_start_hit();
        results[slots[s]] = lane.circuit->unpack(lane.x);
        lane.active = false;
        continue;
      }

      // Damped update: clamp per-node moves, take branch currents in full.
      const std::size_t n_unknowns = lane.circuit->num_unknowns();
      for (std::size_t i = 0; i < n_unknowns; ++i) {
        double step = x_new[i] - lane.x[i];
        if (i + 1 < n_nodes) {
          step = std::clamp(step, -opt.max_step, opt.max_step);
        }
        lane.x[i] += step;
      }
      if (lane.iter >= opt.max_iterations) advance_stage(lane);
    }
  }

  // Retired lanes: scalar homotopy chain on the shared workspace (stages 2
  // and 3 restart from x0/zeros, so the result is independent of the
  // lockstep stages above — identical to the scalar fallback).
  for (std::size_t l = 0; l < K; ++l) {
    if (!lanes[l].needs_homotopy) continue;
    detail::SparseRealDriver driver{ws};
    results[l] =
        homotopy_tail(*lanes[l].circuit, driver, *lanes[l].opt, lanes[l].x0);
  }
  return results;
}

}  // namespace autockt::spice
