#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>

#include "spice/real_solver.hpp"

namespace autockt::spice {

namespace {

using detail::kNoExtraStamps;
using detail::StampKnobs;

struct NewtonResult {
  bool converged = false;
  std::vector<double> x;  // full unknown vector
};

/// Plain damped Newton at fixed (gmin, source_scale), warm-started from
/// `x0`, over either kernel driver.
template <typename Driver>
NewtonResult newton(const Circuit& circuit, Driver& driver,
                    const DcOptions& opt, double gmin, double source_scale,
                    std::vector<double> x0) {
  const std::size_t n_unknowns = circuit.num_unknowns();
  const std::size_t n_nodes = circuit.num_nodes();
  NewtonResult res;
  res.x = std::move(x0);
  res.x.resize(n_unknowns, 0.0);

  std::vector<double> node_v(n_nodes, 0.0);
  std::vector<double> x_new;
  StampKnobs knobs;
  knobs.gmin = gmin;
  knobs.source_scale = source_scale;

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    kernel_counters::add_newton_iterations(1);
    for (NodeId n = 1; n < n_nodes; ++n) node_v[n] = res.x[n - 1];
    if (!driver.solve(circuit, node_v, knobs, kNoExtraStamps, x_new)) {
      return res;  // singular: report non-convergence
    }

    // Convergence check on the undamped node-voltage update.
    double worst = 0.0;
    for (std::size_t i = 0; i + 1 < n_nodes; ++i) {
      const double dv = std::fabs(x_new[i] - res.x[i]);
      const double tol = opt.v_abstol + opt.v_reltol * std::fabs(x_new[i]);
      worst = std::max(worst, dv - tol);
    }
    if (worst <= 0.0) {
      res.x = x_new;
      res.converged = true;
      return res;
    }

    // Damped update: clamp per-node moves, take branch currents in full.
    for (std::size_t i = 0; i < n_unknowns; ++i) {
      double step = x_new[i] - res.x[i];
      if (i + 1 < n_nodes) {
        step = std::clamp(step, -opt.max_step, opt.max_step);
      }
      res.x[i] += step;
    }
  }
  return res;
}

template <typename Driver>
util::Expected<OpPoint> solve_op_impl(const Circuit& circuit, Driver& driver,
                                      const DcOptions& options) {
  // Stage 0: warm start from a nearby design's converged operating point.
  // A hit skips stamping heuristics entirely; a miss falls through to the
  // cold-start chain below, keeping behaviour deterministic.
  if (options.warm_start != nullptr &&
      options.warm_start->node_v.size() == circuit.num_nodes() &&
      options.warm_start->branch_i.size() == circuit.num_branches()) {
    kernel_counters::add_warm_start_attempt();
    std::vector<double> xw(circuit.num_unknowns(), 0.0);
    for (NodeId n = 1; n < circuit.num_nodes(); ++n) {
      xw[n - 1] = options.warm_start->node_v[n];
    }
    for (std::size_t b = 0; b < circuit.num_branches(); ++b) {
      xw[(circuit.num_nodes() - 1) + b] = options.warm_start->branch_i[b];
    }
    NewtonResult warm =
        newton(circuit, driver, options, 0.0, 1.0, std::move(xw));
    if (warm.converged) {
      kernel_counters::add_warm_start_hit();
      return circuit.unpack(warm.x);
    }
  }

  std::vector<double> x0(circuit.num_unknowns(), 0.0);
  if (!options.initial_node_v.empty()) {
    for (NodeId n = 1;
         n < std::min(circuit.num_nodes(), options.initial_node_v.size() + 0);
         ++n) {
      x0[n - 1] = options.initial_node_v[n];
    }
  }

  // Stage 1: plain Newton from the caller's guess.
  NewtonResult best = newton(circuit, driver, options, 0.0, 1.0, x0);
  if (best.converged) return circuit.unpack(best.x);

  // Stage 2: gmin stepping — heavy shunt conductance first, then relax.
  // Homotopy stages run with a larger iteration budget: they are the
  // last-resort path and only execute for hard bias points.
  DcOptions homotopy = options;
  homotopy.max_iterations = 3 * options.max_iterations;
  std::vector<double> x = x0;
  bool chain_ok = true;
  for (double gmin = 1e-2; gmin >= 1e-13; gmin *= 1e-2) {
    NewtonResult r = newton(circuit, driver, homotopy, gmin, 1.0, x);
    if (!r.converged) {
      chain_ok = false;
      break;
    }
    x = r.x;
  }
  if (chain_ok) {
    NewtonResult r = newton(circuit, driver, homotopy, 0.0, 1.0, x);
    if (r.converged) return circuit.unpack(r.x);
  }

  // Stage 3: source stepping — ramp all independent sources from zero.
  x.assign(circuit.num_unknowns(), 0.0);
  chain_ok = true;
  for (double scale : {0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0}) {
    NewtonResult r = newton(circuit, driver, homotopy, 0.0, scale, x);
    if (!r.converged) {
      chain_ok = false;
      break;
    }
    x = r.x;
  }
  if (chain_ok) return circuit.unpack(x);

  return util::Error{"DC operating point did not converge", 1};
}

}  // namespace

util::Expected<OpPoint> solve_op(const Circuit& circuit,
                                 const DcOptions& options) {
  if (options.kernel == SimKernel::Dense) {
    detail::DenseRealDriver driver(circuit.num_unknowns());
    return solve_op_impl(circuit, driver, options);
  }
  if (options.workspace != nullptr) {
    // A stale workspace would stamp through the wrong frozen pattern;
    // fail deterministically instead of producing plausible garbage.
    if (!options.workspace->compatible(circuit) ||
        !options.workspace->has_real()) {
      return util::Error{"DC solve: workspace does not match the circuit", 1};
    }
    detail::SparseRealDriver driver{*options.workspace};
    return solve_op_impl(circuit, driver, options);
  }
  SimWorkspace scratch(circuit, SimWorkspace::Sides::Real);
  detail::SparseRealDriver driver{scratch};
  return solve_op_impl(circuit, driver, options);
}

}  // namespace autockt::spice
