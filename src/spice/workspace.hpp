#pragma once
// SimWorkspace: the reusable, sparsity-aware simulation kernel behind every
// analysis. One workspace per circuit *topology* owns:
//
//  * the frozen real and complex (G/C) stamp patterns (triplet discovery ->
//    CSC, see linalg/sparse.hpp), including weak slots for gmin homotopy
//    diagonals and transient companion conductances;
//  * the symbolic sparse-LU factorizations (Markowitz pivot order + fill
//    pattern + compiled elimination program), computed ONCE per topology;
//  * preallocated value arrays, right-hand sides and solution buffers, so a
//    steady-state Newton iteration / AC frequency point performs zero heap
//    allocation.
//
// The sizing problems evaluate thousands of near-identical circuits (one
// per grid point the RL agent visits); the workspace registry keeps one
// workspace per (thread, topology key), so the symbolic work amortizes to
// nothing and every evaluation runs numeric-only refactorizations.
//
// Determinism: pivot orders are purely structural (value-free) and the
// dense partial-pivot fallback on a failed scale-aware pivot check depends
// only on the matrix values — results never depend on which design point a
// thread happened to see first.

#include <complex>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"
#include "spice/circuit.hpp"

namespace autockt::spice {

/// Linear-algebra kernel selection for the analyses. Sparse is the
/// production path; Dense is the legacy allocate-and-pivot reference kept
/// for the dense-vs-sparse parity tests and benchmarks.
enum class SimKernel { Sparse, Dense };

/// Snapshot of the process-wide simulation-kernel counters. Mirrored into
/// eval::EvalStats by SizingProblem::eval_stats() so training/deployment
/// stat dumps report kernel activity alongside simulator traffic.
struct KernelStats {
  long newton_iterations = 0;       // linear solves driven by Newton loops
  long symbolic_factorizations = 0; // once per (thread, topology) + repivots
  long numeric_factorizations = 0;  // pattern-reusing refactorizations
  long dense_fallbacks = 0;         // scale-aware pivot check failures
  long warm_start_attempts = 0;     // DC solves offered a previous op point
  long warm_start_hits = 0;         // ... that converged from it directly
  long batch_refactorizations = 0;  // batched SoA refactorization passes
  long batch_lanes = 0;             // lanes factored across batched passes
  long batch_lane_fallbacks = 0;    // single lanes that went dense in a batch
};

KernelStats kernel_stats_snapshot();
void reset_kernel_stats();

namespace kernel_counters {
void add_newton_iterations(long n);
void add_warm_start_attempt();
void add_warm_start_hit();
}  // namespace kernel_counters

class SimWorkspace {
 public:
  /// Which assembly sides to build. One-shot scratch workspaces build only
  /// the side their analysis needs (a DC solve never touches the complex
  /// symbolic factorization and vice versa); the registry builds both.
  enum class Sides { Real, Complex, Both };

  /// Discovers the stamp pattern(s) and runs the symbolic factorizations.
  explicit SimWorkspace(const Circuit& circuit, Sides sides = Sides::Both);

  /// Cheap structural check that `circuit` matches the topology this
  /// workspace was built from (same unknown/device counts).
  bool compatible(const Circuit& circuit) const;

  bool has_real() const { return real_built_; }
  bool has_complex() const { return cplx_built_; }

  std::size_t num_unknowns() const { return n_; }

  // ---- real side (DC and transient Newton iterations) ---------------------
  /// Zero the value array and RHS and return a stamping context writing
  /// through the frozen pattern. The caller stamps the circuit (plus any
  /// companion terms), then factors and solves.
  RealStamp begin_real(const std::vector<double>& node_v);
  /// Numeric-only refactorization; falls back to dense partial-pivot LU
  /// when the fixed pivot order fails its scale-aware check. False means
  /// the matrix is singular under both kernels.
  bool factor_real();
  /// Solve with the stamped RHS into the workspace solution buffer.
  const std::vector<double>& solve_real();

  // ---- complex side (AC and noise sweeps) ---------------------------------
  /// Zero G, C and the AC stimulus RHS; stamp once per operating point.
  ComplexStamp begin_complex(const std::vector<double>& op_voltages);
  /// Form Y(omega) = G + j*omega*C over the union pattern and refactor —
  /// no restamp, no reallocation. False means singular.
  bool factor_complex(double omega);
  /// Solve Y x = b_ac (the stamped stimulus).
  const std::vector<std::complex<double>>& solve_complex();
  /// Adjoint solve Y^T x = rhs (interreciprocal noise analysis).
  const std::vector<std::complex<double>>& solve_complex_transposed(
      const std::vector<std::complex<double>>& rhs);

  // ---- batched lanes (struct-of-arrays, K designs per kernel pass) --------
  // Staging protocol: ensure_*_batch(K) sizes the lane buffers, then for
  // each lane the caller runs the ordinary scalar staging (begin_real +
  // stamp) and commit_*_batch_lane(lane) snapshots the scalar value/RHS
  // arrays into that lane's SoA column. Factor/solve then run all K lanes
  // per elimination-program pass. Per-lane results are bitwise identical to
  // the scalar path, including the per-lane dense fallback on a failed
  // scale-aware pivot check.
  /// Size (or resize) the real-side batch to `lanes` lanes.
  void ensure_real_batch(std::size_t lanes);
  std::size_t real_batch_lanes() const { return batch_lanes_real_; }
  /// Snapshot the scalar staging arrays (vals + RHS) into lane `lane`.
  void commit_real_batch_lane(std::size_t lane);
  /// Batched numeric refactorization of every lane; failed lanes fall back
  /// to dense partial-pivot LU individually. Returns true when every lane
  /// has a usable factorization under either kernel.
  bool factor_real_batch();
  /// Lane factorization usable (sparse or dense fallback succeeded)?
  bool real_lane_solvable(std::size_t lane) const;
  /// Solve every lane against its committed RHS; layout [i*lanes + lane].
  const std::vector<double>& solve_real_batch();
  /// Copy lane `lane` of the batch solution into `out` (resized to n).
  void real_lane_solution(std::size_t lane, std::vector<double>& out) const;

  /// Complex-side batch mirror (AC / noise sweeps over K designs).
  void ensure_complex_batch(std::size_t lanes);
  std::size_t complex_batch_lanes() const { return batch_lanes_cplx_; }
  void commit_complex_batch_lane(std::size_t lane);
  /// Form Y(omega) per lane over the union pattern and batch-refactor.
  bool factor_complex_batch(double omega);
  bool complex_lane_solvable(std::size_t lane) const;
  /// Solve every lane against its committed AC stimulus RHS.
  const std::vector<std::complex<double>>& solve_complex_batch();
  /// Adjoint solve with one shared stimulus broadcast across all lanes.
  const std::vector<std::complex<double>>& solve_complex_transposed_batch(
      const std::vector<std::complex<double>>& rhs);
  void complex_lane_solution(std::size_t lane,
                             std::vector<std::complex<double>>& out) const;

 private:
  void build_real(const Circuit& circuit);
  void build_complex(const Circuit& circuit);

  std::size_t n_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t num_branches_ = 0;
  std::size_t num_devices_ = 0;
  bool real_built_ = false;
  bool cplx_built_ = false;

  // Real side.
  linalg::SparsePattern pattern_real_;
  linalg::SparseLuSymbolic sym_real_;
  linalg::SparseLuNumeric<double> lu_real_;
  std::vector<double> vals_real_;
  std::vector<double> rhs_real_;
  std::vector<double> x_real_;
  std::vector<int> real_slot_row_, real_slot_col_;  // dense-fallback scatter
  linalg::RealMatrix dense_real_;
  std::optional<linalg::LuFactorization<double>> dense_lu_real_;
  bool real_sparse_ok_ = false;
  // Real batch lanes (lane-contiguous SoA: slot s of lane l at [s*K + l]).
  std::size_t batch_lanes_real_ = 0;
  linalg::SparseLuNumericBatch<double> lu_real_batch_;
  std::vector<double> batch_vals_real_;   // [a_slot*K + lane]
  std::vector<double> batch_rhs_real_;    // [i*K + lane]
  std::vector<double> batch_x_real_;      // [i*K + lane]
  std::vector<unsigned char> real_lane_ok_;        // sparse pivot checks
  std::vector<unsigned char> real_lane_solvable_;  // sparse or dense ok
  std::vector<std::optional<linalg::LuFactorization<double>>>
      dense_lu_real_lanes_;

  // Complex side (one union pattern, separate G and C value arrays).
  linalg::SparsePattern pattern_cplx_;
  linalg::SparseLuSymbolic sym_cplx_;
  linalg::SparseLuNumeric<std::complex<double>> lu_cplx_;
  std::vector<double> g_vals_;
  std::vector<double> c_vals_;
  std::vector<std::complex<double>> y_vals_;
  std::vector<std::complex<double>> rhs_cplx_;
  std::vector<std::complex<double>> x_cplx_;
  std::vector<int> cplx_slot_row_, cplx_slot_col_;
  linalg::ComplexMatrix dense_cplx_;
  std::optional<linalg::LuFactorization<std::complex<double>>> dense_lu_cplx_;
  bool cplx_sparse_ok_ = false;
  // Complex batch lanes.
  std::size_t batch_lanes_cplx_ = 0;
  linalg::SparseLuNumericBatch<std::complex<double>> lu_cplx_batch_;
  std::vector<double> batch_g_vals_;               // [slot*K + lane]
  std::vector<double> batch_c_vals_;               // [slot*K + lane]
  std::vector<std::complex<double>> batch_rhs_cplx_;
  std::vector<std::complex<double>> batch_x_cplx_;
  std::vector<std::complex<double>> batch_bcast_cplx_;  // broadcast scratch
  std::vector<unsigned char> cplx_lane_ok_;
  std::vector<unsigned char> cplx_lane_solvable_;
  std::vector<std::optional<linalg::LuFactorization<std::complex<double>>>>
      dense_lu_cplx_lanes_;

  std::vector<double> zero_voltages_;  // discovery-pass scratch
};

/// Thread-local workspace registry: one workspace per (thread, topology
/// key), rebuilt automatically if an incompatible circuit arrives under the
/// same key. Thread-locality avoids locks; each worker pays the symbolic
/// cost once per topology and reuses it for every evaluation it runs.
SimWorkspace& workspace_for(const Circuit& circuit,
                            const std::string& topology_key);

}  // namespace autockt::spice
